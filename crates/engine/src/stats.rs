//! Measurement statistics.
//!
//! Microbenchmarks in the paper run many iterations and report a
//! representative cycle count; the engine collects iteration samples into
//! [`Samples`] and summarizes them as a [`Summary`] (min / mean / median /
//! p95 / max / standard deviation). Because the simulator is deterministic,
//! most microbenchmark distributions are degenerate — the summary machinery
//! earns its keep in the application workloads, where queueing introduces
//! genuine per-request variance.

use crate::Cycles;
use core::fmt;

/// A collection of cycle-count samples.
///
/// # Examples
///
/// ```
/// use hvx_engine::{Cycles, Samples};
///
/// let mut s = Samples::new();
/// for v in [10, 20, 30] {
///     s.push(Cycles::new(v));
/// }
/// let sum = s.summary();
/// assert_eq!(sum.mean, 20.0);
/// assert_eq!(sum.min, Cycles::new(10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<Cycles>,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples { values: Vec::new() }
    }

    /// Adds one sample.
    pub fn push(&mut self, v: Cycles) {
        self.values.push(v);
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw samples in collection order.
    pub fn values(&self) -> &[Cycles] {
        &self.values
    }

    /// Summarizes the samples.
    ///
    /// # Panics
    ///
    /// Panics if the sample set is empty.
    pub fn summary(&self) -> Summary {
        assert!(!self.values.is_empty(), "cannot summarize zero samples");
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let total: Cycles = sorted.iter().copied().sum();
        let mean = total.as_f64() / n as f64;
        let var = sorted
            .iter()
            .map(|v| {
                let d = v.as_f64() - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        Summary {
            count: n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            median: percentile_of(&sorted, 50.0),
            p95: percentile_of(&sorted, 95.0),
            std_dev: var.sqrt(),
        }
    }
}

impl FromIterator<Cycles> for Samples {
    fn from_iter<I: IntoIterator<Item = Cycles>>(iter: I) -> Self {
        Samples {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<Cycles> for Samples {
    fn extend<I: IntoIterator<Item = Cycles>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

/// Nearest-rank percentile over a pre-sorted slice.
fn percentile_of(sorted: &[Cycles], pct: f64) -> Cycles {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    let rank = ((pct / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Descriptive statistics over a [`Samples`] set.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: Cycles,
    /// Largest sample.
    pub max: Cycles,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile (nearest rank).
    pub median: Cycles,
    /// 95th percentile (nearest rank).
    pub p95: Cycles,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// The mean rounded to the nearest whole cycle — the form the paper's
    /// tables use.
    pub fn mean_cycles(&self) -> Cycles {
        Cycles::new(self.mean.round() as u64)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} mean={} median={} p95={} max={} sd={:.1}",
            self.count,
            self.min,
            self.mean_cycles(),
            self.median,
            self.p95,
            self.max,
            self.std_dev
        )
    }
}

/// Constant-space streaming statistics: the hot-path replacement for
/// [`Samples`] when only the summary matters.
///
/// Where [`Samples`] stores every value (an allocation per batch and a
/// sort per summary), `Streaming` folds each sample into O(1) state:
/// exact integer total (so the mean is **bit-identical** to
/// [`Samples::summary`]'s), exact min/max/count, Welford's recurrence for
/// the standard deviation, and a power-of-two [`Histogram`] giving
/// bucket-resolution median and p95. The deterministic microbenchmarks
/// have degenerate distributions (all iterations equal), for which every
/// field — including the percentiles — is exact.
///
/// # Examples
///
/// ```
/// use hvx_engine::{Cycles, Streaming};
///
/// let mut s = Streaming::new();
/// for v in [10, 20, 30] {
///     s.record(Cycles::new(v));
/// }
/// let sum = s.summary();
/// assert_eq!(sum.mean, 20.0);
/// assert_eq!(sum.min, Cycles::new(10));
/// ```
#[derive(Debug, Clone)]
pub struct Streaming {
    count: u64,
    total: u128,
    min: Cycles,
    max: Cycles,
    /// Welford running mean and sum of squared deviations.
    welford_mean: f64,
    welford_m2: f64,
    hist: Histogram,
}

impl Default for Streaming {
    fn default() -> Self {
        Streaming::new()
    }
}

impl Streaming {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Streaming {
            count: 0,
            total: 0,
            min: Cycles::MAX,
            max: Cycles::ZERO,
            welford_mean: 0.0,
            welford_m2: 0.0,
            hist: Histogram::new(),
        }
    }

    /// Folds in one sample.
    pub fn record(&mut self, v: Cycles) {
        self.count += 1;
        self.total += u128::from(v.as_u64());
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let x = v.as_f64();
        let delta = x - self.welford_mean;
        self.welford_mean += delta / self.count as f64;
        self.welford_m2 += delta * (x - self.welford_mean);
        self.hist.record(v);
    }

    /// Number of samples folded in.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Returns `true` if no samples were folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The underlying latency histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Summarizes the stream. Mean, min, max and count are exact;
    /// median/p95 are bucket-resolution approximations unless the
    /// distribution is degenerate (all samples equal), in which case they
    /// are exact too.
    ///
    /// # Panics
    ///
    /// Panics if no samples were recorded.
    pub fn summary(&self) -> Summary {
        assert!(self.count > 0, "cannot summarize zero samples");
        let (median, p95) = if self.min == self.max {
            // Degenerate distribution: every percentile is the value.
            (self.min, self.min)
        } else {
            (
                self.hist.approx_percentile(50.0),
                self.hist.approx_percentile(95.0),
            )
        };
        Summary {
            count: self.count as usize,
            min: self.min,
            max: self.max,
            mean: self.total as f64 / self.count as f64,
            median,
            p95,
            std_dev: (self.welford_m2 / self.count as f64).sqrt(),
        }
    }
}

impl FromIterator<Cycles> for Streaming {
    fn from_iter<I: IntoIterator<Item = Cycles>>(iter: I) -> Self {
        let mut s = Streaming::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<Cycles> for Streaming {
    fn extend<I: IntoIterator<Item = Cycles>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// A power-of-two-bucketed latency histogram, for workload latency
/// distributions (the paper reports means; the simulator can also show
/// the queueing tail that saturation produces).
///
/// # Examples
///
/// ```
/// use hvx_engine::{Cycles, Histogram};
///
/// let mut h = Histogram::new();
/// for v in [100u64, 120, 900, 5_000] {
///     h.record(Cycles::new(v));
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.render().contains("64")); // the 100 and 120 samples share the [64,128) bucket
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))`; bucket 0 also
    /// holds zero.
    buckets: [u64; 64],
    count: u64,
    total: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: Cycles) {
        let idx = 63u32.saturating_sub(v.as_u64().leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.total += u128::from(v.as_u64());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total as f64 / self.count as f64
    }

    /// The smallest value `v` such that at least `pct` percent of samples
    /// are `<= 2^(bucket(v)+1)` — a bucket-resolution percentile.
    pub fn approx_percentile(&self, pct: f64) -> Cycles {
        if self.count == 0 {
            return Cycles::ZERO;
        }
        let threshold = (pct / 100.0 * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= threshold {
                return Cycles::new(1u64 << (i + 1).min(63));
            }
        }
        Cycles::MAX
    }

    /// Renders the occupied buckets as an ASCII bar chart.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, b) in self.buckets.iter().enumerate() {
            if *b == 0 {
                continue;
            }
            let bar = (b * 40 / max) as usize;
            out.push_str(&format!(
                "{:>12} |{:<40}| {}\n",
                1u64 << i,
                "#".repeat(bar.max(1)),
                b
            ));
        }
        if out.is_empty() {
            out.push_str("(no samples)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(vals: &[u64]) -> Samples {
        vals.iter().copied().map(Cycles::new).collect()
    }

    #[test]
    fn summary_of_constant_samples_is_degenerate() {
        let s = samples(&[6500; 50]);
        let sum = s.summary();
        assert_eq!(sum.count, 50);
        assert_eq!(sum.min, Cycles::new(6500));
        assert_eq!(sum.max, Cycles::new(6500));
        assert_eq!(sum.mean, 6500.0);
        assert_eq!(sum.median, Cycles::new(6500));
        assert_eq!(sum.std_dev, 0.0);
    }

    #[test]
    fn summary_basic_statistics() {
        let s = samples(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let sum = s.summary();
        assert_eq!(sum.min, Cycles::new(1));
        assert_eq!(sum.max, Cycles::new(10));
        assert_eq!(sum.mean, 5.5);
        assert_eq!(sum.median, Cycles::new(5));
        assert_eq!(sum.p95, Cycles::new(10));
        assert!((sum.std_dev - 2.8722813).abs() < 1e-6);
    }

    #[test]
    fn percentile_nearest_rank_edges() {
        let sorted: Vec<Cycles> = [10u64, 20, 30, 40].into_iter().map(Cycles::new).collect();
        assert_eq!(percentile_of(&sorted, 0.0), Cycles::new(10));
        assert_eq!(percentile_of(&sorted, 25.0), Cycles::new(10));
        assert_eq!(percentile_of(&sorted, 26.0), Cycles::new(20));
        assert_eq!(percentile_of(&sorted, 100.0), Cycles::new(40));
    }

    #[test]
    fn mean_cycles_rounds() {
        let s = samples(&[1, 2]);
        assert_eq!(s.summary().mean_cycles(), Cycles::new(2)); // 1.5 rounds up
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_summary_panics() {
        let _ = Samples::new().summary();
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut s: Samples = [Cycles::new(1)].into_iter().collect();
        s.extend([Cycles::new(2), Cycles::new(3)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.values()[2], Cycles::new(3));
        assert!(!s.is_empty());
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 1000, 1023, 1024] {
            h.record(Cycles::new(v));
        }
        assert_eq!(h.count(), 7);
        assert!((h.mean() - (1.0 + 2.0 + 3.0 + 4.0 + 1000.0 + 1023.0 + 1024.0) / 7.0).abs() < 1e-9);
        let art = h.render();
        assert!(art.contains("1024"), "{art}");
        // p50 lands in a small bucket, p100 in the large one.
        assert!(h.approx_percentile(50.0) <= Cycles::new(8));
        assert!(h.approx_percentile(100.0) >= Cycles::new(1024));
    }

    #[test]
    fn histogram_empty_cases() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.approx_percentile(99.0), Cycles::ZERO);
        assert!(h.render().contains("no samples"));
    }

    #[test]
    fn streaming_mean_min_max_match_samples_exactly() {
        let vals = [6500u64, 120, 981, 44, 6500, 3250, 7, 999_983];
        let stored = samples(&vals);
        let streamed: Streaming = vals.iter().copied().map(Cycles::new).collect();
        let (a, b) = (stored.summary(), streamed.summary());
        assert_eq!(a.count, b.count);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert_eq!(
            a.mean.to_bits(),
            b.mean.to_bits(),
            "streaming mean must be bit-identical to the stored mean"
        );
        assert!((a.std_dev - b.std_dev).abs() < 1e-6 * a.std_dev.max(1.0));
    }

    #[test]
    fn streaming_is_exact_for_degenerate_distributions() {
        let streamed: Streaming = std::iter::repeat(Cycles::new(6500)).take(50).collect();
        let sum = streamed.summary();
        assert_eq!(sum.median, Cycles::new(6500));
        assert_eq!(sum.p95, Cycles::new(6500));
        assert_eq!(sum.mean, 6500.0);
        assert_eq!(sum.std_dev, 0.0);
    }

    #[test]
    fn streaming_percentiles_are_bucket_bounded() {
        let mut s = Streaming::new();
        for v in 1..=1000u64 {
            s.record(Cycles::new(v));
        }
        let sum = s.summary();
        // Nearest-rank p50 of 1..=1000 is 500; the bucket bound is the
        // next power of two above it.
        assert!(sum.median >= Cycles::new(500) && sum.median <= Cycles::new(1024));
        assert!(sum.p95 >= Cycles::new(950));
        assert_eq!(s.len(), 1000);
        assert!(!s.is_empty());
        assert_eq!(s.histogram().count(), 1000);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn streaming_empty_summary_panics() {
        let _ = Streaming::new().summary();
    }

    #[test]
    fn display_is_nonempty() {
        let s = samples(&[5, 5, 5]);
        let txt = s.summary().to_string();
        assert!(txt.contains("n=3"));
        assert!(txt.contains("mean=5"));
    }
}
