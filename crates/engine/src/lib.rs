//! # hvx-engine — deterministic discrete-event core for the hvx simulator
//!
//! This crate is the time substrate for hvx, a mechanistic reproduction of
//! *"ARM Virtualization: Performance and Architectural Implications"*
//! (Dall, Li, Lim, Nieh, Koloventzos — ISCA 2016). Everything the study
//! measures is, at bottom, cycle-stamped activity on the cores of a
//! multi-core server; this crate provides exactly that and nothing more:
//!
//! * [`Cycles`] / [`Frequency`] — cycle-denominated time, convertible to
//!   microseconds for the paper's latency tables;
//! * [`CoreId`] / [`Topology`] — the 8-core, pinned-VCPU machine layout of
//!   the paper's experimental design (§III);
//! * [`Machine`] — per-core clocks, cost charging, cross-core signals;
//! * [`TraceLog`] — the per-step decomposition that regenerates the paper's
//!   breakdown tables and lets tests assert exact transition sequences;
//! * [`EventQueue`] — a deterministic calendar for workload simulations;
//! * [`shard`] — conservative-PDES sharding: per-host calendars with a
//!   wire-latency lookahead bound, byte-identical serial and parallel
//!   execution;
//! * [`FaultPlan`] / [`Watchdog`] — seeded deterministic fault
//!   injection plus in-simulation cycle-budget and livelock watchdogs
//!   (the [`fault`] module);
//! * [`Samples`] / [`Summary`] — iteration statistics;
//! * re-exported [`TransitionId`] spans and [`MetricsRegistry`] metrics
//!   (from `hvx-obs`) — opt-in cycle attribution behind
//!   [`Machine::enable_profiling`].
//!
//! Higher layers (architectural state, interrupt controller, memory, I/O,
//! the hypervisor models themselves) all express their costs through
//! [`Machine::charge`], which is what makes every composite number in the
//! reproduced tables decomposable and auditable.
//!
//! # Example
//!
//! ```
//! use hvx_engine::{Machine, Topology, TraceKind, Cycles};
//!
//! let mut m = Machine::new(Topology::paper_default());
//! let vcpu0 = m.topology().guest_core(0);
//! m.charge(vcpu0, "trap:el1-to-el2", TraceKind::Trap, Cycles::new(160));
//! m.charge(vcpu0, "save:gp", TraceKind::ContextSave, Cycles::new(152));
//! assert_eq!(m.now(vcpu0), Cycles::new(312));
//! assert_eq!(m.trace().labels(), ["trap:el1-to-el2", "save:gp"]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compile;
mod cycles;
mod event;
pub mod fault;
pub mod fingerprint;
mod machine;
pub mod shard;
mod stats;
pub mod timeline;
mod topology;
mod trace;

pub use cycles::{Cycles, Frequency};
pub use event::EventQueue;
pub use fault::{FaultPlan, FaultPoint, Watchdog};
pub use fingerprint::{Fingerprint, FingerprintHasher};
// Observability primitives, re-exported so instrumented layers (core,
// gic, vio, suite) need only an `hvx-engine` dependency.
pub use hvx_obs::{
    render_span_deltas, span_deltas, CounterSnapshot, EventTracer, FlowChain, FlowId, FlowKind,
    FlowPhase, FlowPoint, HistogramSketch, HistogramSnapshot, MetricsRegistry, ProfileSnapshot,
    SliceEvent, SpanDelta, SpanRow, SpanSnapshotRow, SpanTracer, TransitionId,
};
pub use machine::{thread_transitions, Machine};
pub use stats::{Histogram, Samples, Streaming, Summary};
pub use topology::{CoreId, Topology};
pub use trace::{TraceEvent, TraceKind, TraceLog, TraceMode};
