//! Cycle-denominated simulated time.
//!
//! The paper reports all microbenchmark results in CPU cycles "to provide a
//! useful comparison across server hardware with different CPU frequencies"
//! (§IV). We adopt the same convention: the engine's base unit of time is
//! one CPU cycle, wrapped in the [`Cycles`] newtype so that cycle counts
//! cannot be confused with ordinary integers, IRQ numbers, or addresses.
//!
//! Conversion to wall-clock time requires a [`Frequency`]; the two reference
//! platforms of the study are exposed as [`Frequency::ARM_M400`] (2.4 GHz
//! Applied Micro Atlas) and [`Frequency::X86_R320`] (2.1 GHz Xeon ES-2450).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration (or instant, when measured from simulation start) in CPU
/// cycles.
///
/// `Cycles` is a transparent `u64` newtype with saturating-free checked
/// semantics: arithmetic panics on overflow in debug builds exactly like
/// `u64`, which is fine because a simulation would need ~244 years of
/// simulated 2.4 GHz time to overflow.
///
/// # Examples
///
/// ```
/// use hvx_engine::Cycles;
///
/// let trap = Cycles::new(160);
/// let eret = Cycles::new(120);
/// assert_eq!((trap + eret).as_u64(), 280);
/// assert!(trap > eret);
/// ```
#[derive(
    Debug,
    Default,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct Cycles(u64);

impl Cycles {
    /// The zero duration.
    pub const ZERO: Cycles = Cycles(0);

    /// The maximum representable duration; used as an "infinite" horizon.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Creates a duration of `n` cycles.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the raw cycle count as `f64` (for statistics).
    #[inline]
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns `true` if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs > self`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub const fn checked_sub(self, rhs: Cycles) -> Option<Cycles> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Cycles(v)),
            None => None,
        }
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }

    /// Converts this cycle count to microseconds at `freq`.
    ///
    /// ```
    /// use hvx_engine::{Cycles, Frequency};
    /// // 2.4 GHz: 2400 cycles per microsecond.
    /// assert_eq!(Cycles::new(2400).to_micros(Frequency::ARM_M400), 1.0);
    /// ```
    #[inline]
    pub fn to_micros(self, freq: Frequency) -> f64 {
        self.0 as f64 / freq.cycles_per_micro()
    }

    /// Builds a cycle count from microseconds at `freq`, rounding to the
    /// nearest cycle.
    #[inline]
    pub fn from_micros(us: f64, freq: Frequency) -> Cycles {
        Cycles((us * freq.cycles_per_micro()).round() as u64)
    }
}

impl fmt::Display for Cycles {
    /// Formats with thousands separators, matching the paper's tables
    /// (e.g. `6,500`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0.to_string();
        let bytes = s.as_bytes();
        let mut out = String::with_capacity(s.len() + s.len() / 3);
        for (i, b) in bytes.iter().enumerate() {
            if i > 0 && (bytes.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(*b as char);
        }
        f.pad(&out)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Cycles {
    #[inline]
    fn from(n: u64) -> Cycles {
        Cycles(n)
    }
}

impl From<Cycles> for u64 {
    #[inline]
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

/// A CPU clock frequency, used only to convert [`Cycles`] to wall time for
/// the latency tables the paper reports in microseconds (Table V).
///
/// # Examples
///
/// ```
/// use hvx_engine::Frequency;
/// let f = Frequency::from_mhz(2400);
/// assert_eq!(f.as_hz(), 2_400_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Frequency {
    hz: u64,
}

impl Frequency {
    /// 2.4 GHz — the HP Moonshot m400's Applied Micro Atlas SoC (§III).
    pub const ARM_M400: Frequency = Frequency { hz: 2_400_000_000 };

    /// 2.1 GHz — the Dell PowerEdge r320's Xeon ES-2450 (§III).
    pub const X86_R320: Frequency = Frequency { hz: 2_100_000_000 };

    /// Creates a frequency from Hz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub const fn from_hz(hz: u64) -> Frequency {
        assert!(hz > 0, "frequency must be non-zero");
        Frequency { hz }
    }

    /// Creates a frequency from MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub const fn from_mhz(mhz: u64) -> Frequency {
        Frequency::from_hz(mhz * 1_000_000)
    }

    /// Returns the frequency in Hz.
    #[inline]
    pub const fn as_hz(self) -> u64 {
        self.hz
    }

    /// Cycles elapsing per microsecond at this frequency.
    #[inline]
    pub fn cycles_per_micro(self) -> f64 {
        self.hz as f64 / 1e6
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GHz", self.hz as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let a = Cycles::new(1500);
        let b = Cycles::new(500);
        assert_eq!(a + b, Cycles::new(2000));
        assert_eq!(a - b, Cycles::new(1000));
        assert_eq!(a * 3, Cycles::new(4500));
        assert_eq!(a / 3, Cycles::new(500));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(Cycles::new(5).saturating_sub(Cycles::new(9)), Cycles::ZERO);
        assert_eq!(
            Cycles::new(9).saturating_sub(Cycles::new(5)),
            Cycles::new(4)
        );
    }

    #[test]
    fn checked_sub_reports_underflow() {
        assert_eq!(Cycles::new(5).checked_sub(Cycles::new(9)), None);
        assert_eq!(
            Cycles::new(9).checked_sub(Cycles::new(5)),
            Some(Cycles::new(4))
        );
    }

    #[test]
    fn min_max_select_endpoints() {
        let a = Cycles::new(10);
        let b = Cycles::new(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_uses_thousands_separators() {
        assert_eq!(Cycles::new(6500).to_string(), "6,500");
        assert_eq!(Cycles::new(71).to_string(), "71");
        assert_eq!(Cycles::new(1_234_567).to_string(), "1,234,567");
        assert_eq!(Cycles::new(0).to_string(), "0");
        assert_eq!(Cycles::new(1000).to_string(), "1,000");
    }

    #[test]
    fn micros_conversion_matches_platform_frequencies() {
        // The paper's ARM platform: 2.4 GHz, so 41.8 us = 100,320 cycles.
        let native_rr = Cycles::from_micros(41.8, Frequency::ARM_M400);
        assert_eq!(native_rr, Cycles::new(100_320));
        let back = native_rr.to_micros(Frequency::ARM_M400);
        assert!((back - 41.8).abs() < 1e-9);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycles = [152u64, 282, 230, 3250, 104, 92, 92]
            .into_iter()
            .map(Cycles::new)
            .sum();
        // Table III save column sums to 4,202 cycles.
        assert_eq!(total, Cycles::new(4202));
    }

    #[test]
    fn frequency_constructors() {
        assert_eq!(Frequency::from_mhz(2400), Frequency::ARM_M400);
        assert_eq!(Frequency::ARM_M400.to_string(), "2.4 GHz");
        assert_eq!(Frequency::X86_R320.cycles_per_micro(), 2100.0);
    }

    #[test]
    #[should_panic(expected = "frequency must be non-zero")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_hz(0);
    }
}
