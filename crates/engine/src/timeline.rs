//! ASCII timeline rendering of a trace — the simulator's answer to the
//! paper's hand-drawn transition diagrams.
//!
//! A [`TraceLog`] holds per-core, cycle-stamped intervals; [`render`]
//! lays them out as one lane per core so cross-core causality (an IPI
//! leaving one core and work starting on another) is visible at a
//! glance. Used by the quickstart example and by humans debugging new
//! hypervisor paths.

use crate::{Cycles, TraceKind, TraceLog};
use std::collections::BTreeMap;

/// Options for timeline rendering.
#[derive(Debug, Clone, Copy)]
pub struct TimelineOptions {
    /// Total character width of the time axis.
    pub width: usize,
    /// Drop events shorter than this many cycles (keeps dense traces
    /// readable).
    pub min_duration: Cycles,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            width: 72,
            min_duration: Cycles::ZERO,
        }
    }
}

fn glyph(kind: TraceKind) -> char {
    match kind {
        TraceKind::Trap => 'T',
        TraceKind::Return => 'R',
        TraceKind::ContextSave => 'S',
        TraceKind::ContextRestore => 'r',
        TraceKind::Emulation => 'e',
        TraceKind::Ipi => '>',
        TraceKind::Io => 'i',
        TraceKind::Copy => 'C',
        TraceKind::Guest => 'g',
        TraceKind::Host => 'h',
        TraceKind::Sched => 's',
        TraceKind::Wire => 'w',
        TraceKind::Other => '.',
    }
}

/// Renders the trace as one lane per core plus a legend.
///
/// Each lane shows the core's activity across the trace's time span,
/// with one glyph per time bucket chosen from the event covering most of
/// that bucket.
///
/// # Examples
///
/// ```
/// use hvx_engine::{timeline, Machine, Topology, TraceKind, Cycles};
///
/// let mut m = Machine::new(Topology::split(2, 1));
/// let c = m.topology().guest_core(0);
/// m.charge(c, "guest:work", TraceKind::Guest, Cycles::new(100));
/// m.charge(c, "hw:trap", TraceKind::Trap, Cycles::new(50));
/// let art = timeline::render(m.trace(), timeline::TimelineOptions::default());
/// assert!(art.contains("pcpu0"));
/// ```
pub fn render(trace: &TraceLog, opts: TimelineOptions) -> String {
    let events: Vec<_> = trace
        .events()
        .iter()
        .filter(|e| e.duration >= opts.min_duration)
        .collect();
    // No unwrap/expect on the bounds: a trace that filters down to
    // nothing (or is empty outright) renders as an explicit marker
    // instead of panicking.
    let (Some(t0), Some(t1)) = (
        events.iter().map(|e| e.start).min(),
        events.iter().map(|e| e.end()).max(),
    ) else {
        return "(empty trace)\n".to_string();
    };
    let span = (t1 - t0).as_u64().max(1);
    let width = opts.width.max(8);

    // Per-core lanes: for each bucket keep the event covering it longest.
    let mut lanes: BTreeMap<usize, Vec<(char, u64)>> = BTreeMap::new();
    for e in &events {
        let lane = lanes
            .entry(e.core.index())
            .or_insert_with(|| vec![(' ', 0); width]);
        let sb = ((e.start - t0).as_u64() * width as u64 / span) as usize;
        let eb = (((e.end() - t0).as_u64() * width as u64).div_ceil(span) as usize).min(width);
        for slot in lane.iter_mut().take(eb.max(sb + 1).min(width)).skip(sb) {
            if e.duration.as_u64() >= slot.1 {
                *slot = (glyph(e.kind), e.duration.as_u64());
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "timeline: {} .. {} cycles ({} per column)\n",
        t0,
        t1,
        Cycles::new(span / width as u64)
    ));
    for (core, lane) in &lanes {
        out.push_str(&format!("  pcpu{core:<2} |"));
        for (ch, _) in lane {
            out.push(*ch);
        }
        out.push_str("|\n");
    }
    out.push_str(
        "  key: T trap  R eret/entry  S save  r restore  e emulate  s sched\n\
         \x20      g guest  h host  i io  C copy  > ipi  w wire\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreId, Machine, Topology};

    fn sample_machine() -> Machine {
        let mut m = Machine::new(Topology::split(2, 1));
        let a = CoreId::new(0);
        let b = CoreId::new(1);
        m.charge(a, "guest:run", TraceKind::Guest, Cycles::new(500));
        m.charge(a, "hw:trap", TraceKind::Trap, Cycles::new(100));
        let arr = m.signal(a, b, Cycles::new(200));
        m.wait_until(b, arr);
        m.charge(b, "host:work", TraceKind::Host, Cycles::new(300));
        m
    }

    #[test]
    fn renders_one_lane_per_active_core() {
        let m = sample_machine();
        let art = render(m.trace(), TimelineOptions::default());
        assert!(art.contains("pcpu0"));
        assert!(art.contains("pcpu1"));
        assert!(art.contains('g'), "guest glyph present:\n{art}");
        assert!(art.contains('h'), "host glyph present:\n{art}");
        assert!(art.contains('T'), "trap glyph present:\n{art}");
    }

    #[test]
    fn empty_trace_is_explicit() {
        let log = TraceLog::new();
        assert_eq!(render(&log, TimelineOptions::default()), "(empty trace)\n");
    }

    /// Regression: a non-empty trace whose every event is filtered out
    /// by `min_duration` must render the empty marker, not panic on a
    /// missing minimum (the old `expect("non-empty")` path).
    #[test]
    fn fully_filtered_trace_renders_empty_marker() {
        let m = sample_machine();
        let art = render(
            m.trace(),
            TimelineOptions {
                width: 40,
                min_duration: Cycles::MAX,
            },
        );
        assert_eq!(art, "(empty trace)\n");
    }

    #[test]
    fn min_duration_filters_noise() {
        let m = sample_machine();
        let art = render(
            m.trace(),
            TimelineOptions {
                width: 40,
                min_duration: Cycles::new(450),
            },
        );
        // Only the 500-cycle guest run survives the filter (inspect the
        // lanes, not the legend).
        let lanes: String = art
            .lines()
            .filter(|l| l.contains("pcpu"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(lanes.contains('g'), "{art}");
        assert!(!lanes.contains('h'), "{art}");
    }

    #[test]
    fn lanes_have_constant_width() {
        let m = sample_machine();
        let opts = TimelineOptions {
            width: 30,
            min_duration: Cycles::ZERO,
        };
        let art = render(m.trace(), opts);
        for line in art.lines().filter(|l| l.contains("|")) {
            let inner = line.split('|').nth(1).unwrap();
            assert_eq!(inner.chars().count(), 30, "{line}");
        }
    }

    #[test]
    fn longer_events_win_bucket_conflicts() {
        let mut m = Machine::new(Topology::split(2, 1));
        let c = CoreId::new(0);
        // A long event followed by a tiny one in the same bucket.
        m.charge(c, "big", TraceKind::Guest, Cycles::new(10_000));
        m.charge(c, "tiny", TraceKind::Trap, Cycles::new(1));
        let art = render(
            m.trace(),
            TimelineOptions {
                width: 10,
                min_duration: Cycles::ZERO,
            },
        );
        let lane: String = art
            .lines()
            .find(|l| l.contains("pcpu0"))
            .unwrap()
            .split('|')
            .nth(1)
            .unwrap()
            .to_string();
        assert!(lane.chars().all(|ch| ch == 'g'), "{lane}");
    }
}
