//! Deterministic fault injection and run watchdogs.
//!
//! The paper's I/O numbers are explained by each hypervisor's I/O
//! *path*; this module lets the models exercise those same paths under
//! stress. A [`FaultPlan`] names the places where real hardware and
//! real backends misbehave — a dropped wire packet, a stalled NIC, a
//! lost virtual interrupt, a transient grant-copy failure, a tardy
//! vhost thread — and decides, deterministically, which occurrences of
//! each fault point actually fire.
//!
//! # Determinism rule
//!
//! A fault decision is a pure function of `(seed, fault point,
//! occurrence index)`. Every machine keeps its own per-point
//! occurrence counters, so the decision sequence depends only on the
//! order of consults *within one simulated machine* — never on wall
//! clock, thread scheduling, or `--jobs`. The same plan and seed
//! therefore replay bit-identically, serial or parallel.
//!
//! An **empty plan is free**: [`Machine`](crate::Machine) holds
//! `None` fault state and every consult is a single branch, so the
//! default simulation is byte-identical to a build without this module.
//!
//! # Watchdogs
//!
//! [`Watchdog`] bounds a simulation from the inside: a simulated-cycle
//! budget and a no-progress (livelock) detector, both enforced in
//! [`Machine::charge`](crate::Machine::charge). Trips raise typed
//! panic payloads ([`CycleBudgetExceeded`], [`Livelocked`]) that a
//! harness can downcast after `catch_unwind` to classify the failure.

use std::cell::RefCell;
use std::fmt;

/// Parts-per-million denominator for probabilistic fault rates.
const PPM: u64 = 1_000_000;

/// A named place in the simulated I/O stack where a fault may be
/// injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FaultPoint {
    /// A packet vanishes on the wire between client and NIC.
    WireDrop,
    /// A packet arrives corrupted and must be retransmitted end-to-end.
    WireCorrupt,
    /// The NIC stalls before DMA completes; the driver re-kicks.
    NicStall,
    /// A virtual interrupt is dropped before the guest observes it.
    VirqDrop,
    /// A spurious virtual interrupt fires with no work pending.
    VirqSpurious,
    /// A grant copy fails transiently (Xen netback) and is retried.
    GrantCopyFail,
    /// The vhost backend thread is delayed before servicing a kick.
    VhostDelay,
}

impl FaultPoint {
    /// Every fault point, in declaration order.
    pub const ALL: [FaultPoint; 7] = [
        FaultPoint::WireDrop,
        FaultPoint::WireCorrupt,
        FaultPoint::NicStall,
        FaultPoint::VirqDrop,
        FaultPoint::VirqSpurious,
        FaultPoint::GrantCopyFail,
        FaultPoint::VhostDelay,
    ];

    /// Number of fault points.
    pub const COUNT: usize = FaultPoint::ALL.len();

    /// Stable snake_case name (used in plan specs and metrics).
    pub const fn name(self) -> &'static str {
        match self {
            FaultPoint::WireDrop => "wire_drop",
            FaultPoint::WireCorrupt => "wire_corrupt",
            FaultPoint::NicStall => "nic_stall",
            FaultPoint::VirqDrop => "virq_drop",
            FaultPoint::VirqSpurious => "virq_spurious",
            FaultPoint::GrantCopyFail => "grant_copy_fail",
            FaultPoint::VhostDelay => "vhost_delay",
        }
    }

    /// Metrics-registry counter name for injections at this point.
    pub const fn metric(self) -> &'static str {
        match self {
            FaultPoint::WireDrop => "fault.wire_drop",
            FaultPoint::WireCorrupt => "fault.wire_corrupt",
            FaultPoint::NicStall => "fault.nic_stall",
            FaultPoint::VirqDrop => "fault.virq_drop",
            FaultPoint::VirqSpurious => "fault.virq_spurious",
            FaultPoint::GrantCopyFail => "fault.grant_copy_fail",
            FaultPoint::VhostDelay => "fault.vhost_delay",
        }
    }

    /// Dense index (`self as usize`).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Parses a spec name back to a point.
    pub fn parse(s: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded, deterministic fault plan: per-point probabilistic rates
/// (parts-per-million) and/or explicit occurrence schedules.
///
/// # Examples
///
/// ```
/// use hvx_engine::fault::{FaultPlan, FaultPoint};
///
/// // 5% wire loss plus a forced vIRQ drop on occurrence 3.
/// let plan = FaultPlan::new(42)
///     .with_rate(FaultPoint::WireDrop, 0.05)
///     .with_occurrence(FaultPoint::VirqDrop, 3);
/// assert!(!plan.is_empty());
/// // The same spec, parsed:
/// let parsed = FaultPlan::parse("wire_drop=0.05,virq_drop@3", 42).unwrap();
/// assert_eq!(plan, parsed);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Probability each consult faults, in parts per million.
    rate_ppm: [u32; FaultPoint::COUNT],
    /// Sorted 0-based occurrence indices that always fault.
    schedule: [Vec<u64>; FaultPoint::COUNT],
}

impl FaultPlan {
    /// An empty plan under `seed`: no point ever faults.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rate_ppm: [0; FaultPoint::COUNT],
            schedule: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// The plan's seed.
    #[inline]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no rate and no schedule entry can ever fire. Empty
    /// plans cost nothing: the machine stores no fault state at all.
    pub fn is_empty(&self) -> bool {
        self.rate_ppm.iter().all(|&r| r == 0) && self.schedule.iter().all(|s| s.is_empty())
    }

    /// Sets the probabilistic fault rate for `point` (clamped to
    /// `[0, 1]`, quantized to parts per million).
    pub fn with_rate(mut self, point: FaultPoint, probability: f64) -> Self {
        let p = probability.clamp(0.0, 1.0);
        self.rate_ppm[point.index()] = (p * PPM as f64).round() as u32;
        self
    }

    /// Forces a fault on the `occurrence`-th consult (0-based) of
    /// `point`, regardless of rate.
    pub fn with_occurrence(mut self, point: FaultPoint, occurrence: u64) -> Self {
        let sched = &mut self.schedule[point.index()];
        if let Err(at) = sched.binary_search(&occurrence) {
            sched.insert(at, occurrence);
        }
        self
    }

    /// The configured rate for `point`, in parts per million.
    pub fn rate_ppm(&self, point: FaultPoint) -> u32 {
        self.rate_ppm[point.index()]
    }

    /// Absorbs the plan's full identity — seed, per-point rates, and
    /// forced-occurrence schedules — into `h`. Part of the scenario
    /// input closure content-addressed by the suite's result cache.
    pub fn fingerprint_into(&self, h: &mut crate::fingerprint::FingerprintHasher) {
        h.write_str("fault_plan");
        h.write_u64(self.seed);
        for &rate in &self.rate_ppm {
            h.write_u32(rate);
        }
        for sched in &self.schedule {
            h.write_u64(sched.len() as u64);
            for &occ in sched {
                h.write_u64(occ);
            }
        }
    }

    /// Parses a plan spec: comma-separated `point=probability` (rate)
    /// and `point@occurrence` (forced, 0-based) clauses.
    ///
    /// `"wire_drop=0.05,nic_stall@5"` means 5% wire loss plus a forced
    /// NIC stall on the 6th stall-point consult.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(seed);
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some((name, prob)) = clause.split_once('=') {
                let point = FaultPoint::parse(name.trim())
                    .ok_or_else(|| format!("unknown fault point '{}'", name.trim()))?;
                let p: f64 = prob
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad probability '{}' for {point}", prob.trim()))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} for {point} outside [0, 1]"));
                }
                plan = plan.with_rate(point, p);
            } else if let Some((name, occ)) = clause.split_once('@') {
                let point = FaultPoint::parse(name.trim())
                    .ok_or_else(|| format!("unknown fault point '{}'", name.trim()))?;
                let n: u64 = occ
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad occurrence '{}' for {point}", occ.trim()))?;
                plan = plan.with_occurrence(point, n);
            } else {
                return Err(format!(
                    "bad fault clause '{clause}' (expected point=prob or point@occurrence)"
                ));
            }
        }
        Ok(plan)
    }

    /// Renders the plan back to [`FaultPlan::parse`] syntax.
    ///
    /// The round trip is exact: rates are stored as integer
    /// parts-per-million and rendered as `<ppm>e-6`, which
    /// [`FaultPlan::with_rate`] re-quantizes to the same integer, so
    /// `FaultPlan::parse(&plan.to_spec(), plan.seed()) == plan` for
    /// every plan. An empty plan renders as the empty string, which
    /// parses back to an empty plan.
    ///
    /// # Examples
    ///
    /// ```
    /// use hvx_engine::fault::{FaultPlan, FaultPoint};
    ///
    /// let plan = FaultPlan::new(9)
    ///     .with_rate(FaultPoint::WireDrop, 0.05)
    ///     .with_occurrence(FaultPoint::VirqDrop, 3);
    /// assert_eq!(plan.to_spec(), "wire_drop=50000e-6,virq_drop@3");
    /// assert_eq!(FaultPlan::parse(&plan.to_spec(), 9).unwrap(), plan);
    /// ```
    pub fn to_spec(&self) -> String {
        let mut clauses = Vec::new();
        for point in FaultPoint::ALL {
            let ppm = self.rate_ppm[point.index()];
            if ppm > 0 {
                clauses.push(format!("{point}={ppm}e-6"));
            }
            for &occ in &self.schedule[point.index()] {
                clauses.push(format!("{point}@{occ}"));
            }
        }
        clauses.join(",")
    }
}

/// Per-machine fault state: the plan plus occurrence counters.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    consulted: [u64; FaultPoint::COUNT],
    injected: [u64; FaultPoint::COUNT],
}

impl FaultState {
    /// Fresh state (all occurrence counters zero) for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            consulted: [0; FaultPoint::COUNT],
            injected: [0; FaultPoint::COUNT],
        }
    }

    /// The plan driving this state.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Consults the plan at `point`: advances that point's occurrence
    /// counter and returns whether this occurrence faults. Pure in
    /// `(seed, point, occurrence)` — see the module's determinism rule.
    pub fn should_fault(&mut self, point: FaultPoint) -> bool {
        let i = point.index();
        let occurrence = self.consulted[i];
        self.consulted[i] += 1;
        let scheduled = self.plan.schedule[i].binary_search(&occurrence).is_ok();
        let rate = self.plan.rate_ppm[i];
        let rolled =
            rate > 0 && decision(self.plan.seed, point, occurrence) % PPM < u64::from(rate);
        let hit = scheduled || rolled;
        if hit {
            self.injected[i] += 1;
        }
        hit
    }

    /// Times `point` was consulted so far.
    pub fn consulted(&self, point: FaultPoint) -> u64 {
        self.consulted[point.index()]
    }

    /// Faults injected at `point` so far.
    pub fn injected(&self, point: FaultPoint) -> u64 {
        self.injected[point.index()]
    }

    /// Total faults injected across all points.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }
}

/// splitmix64 — the finalizer is a strong 64-bit mixer, used here as a
/// counter-based deterministic hash (no RNG state to share or lock).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The decision hash for one `(seed, point, occurrence)` triple.
fn decision(seed: u64, point: FaultPoint, occurrence: u64) -> u64 {
    splitmix64(seed ^ splitmix64(0x5EED ^ (point.index() as u64) << 32 ^ splitmix64(occurrence)))
}

// --- watchdog -----------------------------------------------------------

/// In-simulation watchdog limits, enforced by
/// [`Machine::charge`](crate::Machine::charge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Watchdog {
    /// Trip once total charged cycles exceed this budget.
    pub cycle_budget: Option<u64>,
    /// Trip after this many *consecutive* charges that advance no
    /// core's clock (a spin with zero simulated progress).
    pub livelock_threshold: Option<u64>,
}

impl Watchdog {
    /// No limits: never trips.
    pub const UNLIMITED: Watchdog = Watchdog {
        cycle_budget: None,
        livelock_threshold: None,
    };

    /// Absorbs the watchdog limits into `h`. A tripped watchdog changes
    /// scenario outcomes, so the limits belong to the input closure.
    pub fn fingerprint_into(&self, h: &mut crate::fingerprint::FingerprintHasher) {
        h.write_str("watchdog");
        h.write_u64(self.cycle_budget.unwrap_or(u64::MAX));
        h.write_u64(self.livelock_threshold.unwrap_or(u64::MAX));
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::UNLIMITED
    }
}

/// Typed panic payload: the machine charged past its cycle budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleBudgetExceeded {
    /// The configured budget.
    pub budget: u64,
    /// Total cycles charged when the watchdog tripped.
    pub reached: u64,
}

impl fmt::Display for CycleBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulated-cycle budget exceeded: {} > {}",
            self.reached, self.budget
        )
    }
}

/// Typed panic payload: the machine made no simulated progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Livelocked {
    /// Consecutive zero-progress charges observed.
    pub streak: u64,
}

impl fmt::Display for Livelocked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "livelock: {} consecutive charges advanced no clock",
            self.streak
        )
    }
}

// --- ambient configuration ----------------------------------------------

/// The ambient (thread-local) fault configuration picked up by
/// [`Machine::new`](crate::Machine::new).
#[derive(Debug, Clone, Default)]
struct Ambient {
    plan: Option<FaultPlan>,
    watchdog: Watchdog,
}

thread_local! {
    static AMBIENT: RefCell<Ambient> = RefCell::new(Ambient::default());
}

/// Installs `plan` and `watchdog` as this thread's ambient fault
/// configuration; every machine subsequently constructed *on this
/// thread* starts with them. Returns a guard that restores the
/// previous configuration when dropped (including during unwinding, so
/// a panicking scenario cannot leak its plan into the next one).
///
/// This is how a harness applies one CLI-wide `--fault-plan` to
/// machines built deep inside scenario code without threading the plan
/// through every signature. An empty/`None` plan installs nothing.
pub fn install_ambient(plan: Option<FaultPlan>, watchdog: Watchdog) -> AmbientGuard {
    let plan = plan.filter(|p| !p.is_empty());
    let previous =
        AMBIENT.with(|a| std::mem::replace(&mut *a.borrow_mut(), Ambient { plan, watchdog }));
    AmbientGuard { previous }
}

/// Reads the current ambient configuration (machine construction).
pub(crate) fn ambient() -> (Option<FaultPlan>, Watchdog) {
    AMBIENT.with(|a| {
        let a = a.borrow();
        (a.plan.clone(), a.watchdog)
    })
}

/// RAII guard for [`install_ambient`]; restores the prior ambient
/// configuration on drop.
#[derive(Debug)]
pub struct AmbientGuard {
    previous: Ambient,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        let previous = std::mem::take(&mut self.previous);
        AMBIENT.with(|a| *a.borrow_mut() = previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let mut st = FaultState::new(FaultPlan::new(7));
        for _ in 0..10_000 {
            for p in FaultPoint::ALL {
                assert!(!st.should_fault(p));
            }
        }
        assert_eq!(st.total_injected(), 0);
    }

    #[test]
    fn full_rate_always_faults() {
        let plan = FaultPlan::new(1).with_rate(FaultPoint::WireDrop, 1.0);
        let mut st = FaultState::new(plan);
        for _ in 0..100 {
            assert!(st.should_fault(FaultPoint::WireDrop));
            assert!(!st.should_fault(FaultPoint::NicStall));
        }
        assert_eq!(st.injected(FaultPoint::WireDrop), 100);
    }

    #[test]
    fn schedule_fires_exactly_on_listed_occurrences() {
        let plan = FaultPlan::new(0)
            .with_occurrence(FaultPoint::VirqDrop, 0)
            .with_occurrence(FaultPoint::VirqDrop, 3);
        let mut st = FaultState::new(plan);
        let fired: Vec<bool> = (0..6)
            .map(|_| st.should_fault(FaultPoint::VirqDrop))
            .collect();
        assert_eq!(fired, [true, false, false, true, false, false]);
    }

    #[test]
    fn decisions_are_replayable_and_seed_sensitive() {
        let plan = FaultPlan::new(42).with_rate(FaultPoint::GrantCopyFail, 0.3);
        let run = |plan: &FaultPlan| -> Vec<bool> {
            let mut st = FaultState::new(plan.clone());
            (0..256)
                .map(|_| st.should_fault(FaultPoint::GrantCopyFail))
                .collect()
        };
        assert_eq!(run(&plan), run(&plan));
        let other = FaultPlan::new(43).with_rate(FaultPoint::GrantCopyFail, 0.3);
        assert_ne!(run(&plan), run(&other), "seed must matter");
    }

    #[test]
    fn rate_is_roughly_honoured() {
        let plan = FaultPlan::new(9).with_rate(FaultPoint::WireDrop, 0.10);
        let mut st = FaultState::new(plan);
        let hits = (0..20_000)
            .filter(|_| st.should_fault(FaultPoint::WireDrop))
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.07..=0.13).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn parse_round_trips_rates_and_schedules() {
        let plan = FaultPlan::parse(" wire_drop=0.05, nic_stall@5 ,vhost_delay=1", 11).unwrap();
        assert_eq!(plan.rate_ppm(FaultPoint::WireDrop), 50_000);
        assert_eq!(plan.rate_ppm(FaultPoint::VhostDelay), 1_000_000);
        assert_eq!(plan.schedule[FaultPoint::NicStall.index()], [5]);
        assert!(FaultPlan::parse("", 0).unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("bogus=0.5", 0).is_err());
        assert!(FaultPlan::parse("wire_drop=2.0", 0).is_err());
        assert!(FaultPlan::parse("wire_drop", 0).is_err());
        assert!(FaultPlan::parse("nic_stall@many", 0).is_err());
    }

    #[test]
    fn ambient_guard_restores_previous_config() {
        let plan = FaultPlan::new(5).with_rate(FaultPoint::WireDrop, 0.5);
        {
            let _g = install_ambient(Some(plan.clone()), Watchdog::UNLIMITED);
            assert_eq!(ambient().0.as_ref(), Some(&plan));
            {
                let inner = FaultPlan::new(6).with_rate(FaultPoint::NicStall, 0.1);
                let _g2 = install_ambient(Some(inner.clone()), Watchdog::UNLIMITED);
                assert_eq!(ambient().0.as_ref(), Some(&inner));
            }
            assert_eq!(ambient().0.as_ref(), Some(&plan));
        }
        assert_eq!(ambient().0, None);
    }

    #[test]
    fn empty_ambient_plan_installs_nothing() {
        let _g = install_ambient(Some(FaultPlan::new(3)), Watchdog::UNLIMITED);
        assert_eq!(ambient().0, None);
    }
}
