//! The simulated multi-core machine: per-core cycle clocks plus the trace.
//!
//! hvx models time the way the paper measures it: with per-physical-core
//! cycle counters ("measurements were obtained using cycle counters ... to
//! ensure consistency across multiple CPUs", §IV). Each core owns a
//! monotonically advancing clock. Sequential work on a core advances that
//! core's clock; cross-core interactions (physical IPIs, wire deliveries)
//! produce an *arrival instant* which the receiving core synchronizes to
//! with [`Machine::wait_until`] — if the receiver was busy past the arrival,
//! the signal simply finds it later, which is precisely how queueing delay
//! emerges in the application-level simulations.

use crate::compile::{LoopState, Program, RawOp, Recorder, GIVE_UP_ITERS};
use crate::fault::{
    self, CycleBudgetExceeded, FaultPlan, FaultPoint, FaultState, Livelocked, Watchdog,
};
use crate::{CoreId, Cycles, Topology, TraceEvent, TraceKind, TraceLog};
use hvx_obs::{EventTracer, FlowId, FlowKind, MetricsRegistry, SpanTracer, TransitionId};
use std::cell::Cell;

thread_local! {
    /// Simulated transitions (cost charges) executed on this thread,
    /// interpreted and replayed alike. Thread-local so the counter
    /// needs no atomics on the charge hot path and parallel runner
    /// workers count independently.
    static TRANSITIONS: Cell<u64> = const { Cell::new(0) };
}

/// Total simulated transitions executed by the calling thread since it
/// started (wrapping). The runner samples this around each scenario to
/// report per-artifact transition counts and throughput.
pub fn thread_transitions() -> u64 {
    TRANSITIONS.with(Cell::get)
}

/// The machine's optional observability state: a span tracer fed by
/// every [`Machine::charge`] plus a metrics registry. Boxed so a
/// non-profiling machine pays one pointer of space and a single branch
/// per charge.
#[derive(Debug, Clone, Default)]
struct Profiler {
    spans: SpanTracer,
    metrics: MetricsRegistry,
}

/// A simulated multi-core machine.
///
/// # Examples
///
/// Two cores exchanging a signal:
///
/// ```
/// use hvx_engine::{Machine, Topology, TraceKind, CoreId, Cycles};
///
/// let mut m = Machine::new(Topology::split(2, 1));
/// let a = CoreId::new(0);
/// let b = CoreId::new(1);
/// m.charge(a, "guest:work", TraceKind::Guest, Cycles::new(1000));
/// // Core a sends an IPI costing 400 cycles of wire latency.
/// let arrival = m.signal(a, b, Cycles::new(400));
/// m.wait_until(b, arrival);
/// assert_eq!(m.now(b), Cycles::new(1400));
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    topology: Topology,
    clocks: Vec<Cycles>,
    /// Cycles each core spent doing charged work (clock time minus time
    /// skipped by [`Machine::wait_until`] — i.e. minus idle waiting).
    busy: Vec<Cycles>,
    trace: TraceLog,
    /// `Some` once profiling is enabled; `None` keeps the charge hot
    /// path identical to the pre-observability engine.
    profiler: Option<Box<Profiler>>,
    /// `Some` once a non-empty [`FaultPlan`] is installed; `None`
    /// keeps every fault consult a single branch.
    faults: Option<Box<FaultState>>,
    /// `Some` once causal event tracing is enabled; `None` keeps the
    /// charge hot path and every flow hook a single branch, so an
    /// untraced run is byte-identical to the pre-tracing engine.
    events: Option<Box<EventTracer>>,
    /// Cycle-budget ceiling enforced in [`Machine::charge`]
    /// (`u64::MAX` = unlimited, so the hot-path check is one compare).
    cycle_budget: u64,
    /// Livelock threshold (`u64::MAX` = unlimited).
    livelock_limit: u64,
    /// Running total of charged cycles (watchdog bookkeeping).
    total_charged: u64,
    /// Consecutive zero-cost charges (watchdog bookkeeping).
    zero_streak: u64,
    /// `Some` while a loop session (see [`Machine::loop_begin`]) is
    /// recording or replaying; `None` keeps every hot-path hook a
    /// single branch.
    loop_state: Option<Box<LoopState>>,
    /// Iterations skipped by compiled replay since construction.
    iters_replayed: u64,
}

impl Machine {
    /// Creates a machine with all core clocks at zero and tracing
    /// enabled. Picks up the thread's ambient fault configuration (see
    /// [`fault::install_ambient`]); with none installed — the default —
    /// the machine carries no fault state and no watchdog.
    pub fn new(topology: Topology) -> Self {
        let clocks = vec![Cycles::ZERO; topology.num_cores()];
        let busy = clocks.clone();
        let (plan, watchdog) = fault::ambient();
        let mut m = Machine {
            topology,
            clocks,
            busy,
            trace: TraceLog::new(),
            profiler: None,
            faults: None,
            events: None,
            cycle_budget: u64::MAX,
            livelock_limit: u64::MAX,
            total_charged: 0,
            zero_streak: 0,
            loop_state: None,
            iters_replayed: 0,
        };
        if let Some(plan) = plan {
            m.set_fault_plan(plan);
        }
        m.set_watchdog(watchdog);
        m
    }

    /// Creates a machine with tracing disabled (bulk workload runs).
    pub fn without_tracing(topology: Topology) -> Self {
        let mut m = Machine::new(topology);
        m.trace = TraceLog::disabled();
        m
    }

    /// Creates a machine whose trace keeps only per-`(kind, label)`
    /// totals — breakdown tables stay exact while [`Machine::charge`]
    /// never allocates per step (microbenchmark iteration loops).
    pub fn with_aggregate_trace(topology: Topology) -> Self {
        let mut m = Machine::new(topology);
        m.trace = TraceLog::aggregate();
        m
    }

    /// The machine's core topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Content fingerprint of the machine's input configuration:
    /// topology, installed fault plan (if any), and watchdog limits.
    ///
    /// Clocks, traces, and other *derived* state are deliberately
    /// excluded — two machines with the same fingerprint started from
    /// the same closure, whatever they have executed since.
    pub fn fingerprint(&self) -> crate::fingerprint::Fingerprint {
        let mut h = crate::fingerprint::FingerprintHasher::new();
        self.fingerprint_into(&mut h);
        h.finish()
    }

    /// Absorbs the machine's input configuration into `h` (see
    /// [`Machine::fingerprint`]).
    pub fn fingerprint_into(&self, h: &mut crate::fingerprint::FingerprintHasher) {
        h.write_str("machine");
        h.write_serialize(&self.topology);
        match &self.faults {
            Some(state) => state.plan().fingerprint_into(h),
            None => h.write_str("no_faults"),
        }
        h.write_u64(self.cycle_budget);
        h.write_u64(self.livelock_limit);
    }

    /// The current instant on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is not part of the topology.
    #[inline]
    pub fn now(&self, core: CoreId) -> Cycles {
        self.clocks[core.index()]
    }

    /// The latest instant across all cores.
    pub fn global_now(&self) -> Cycles {
        self.clocks.iter().copied().fold(Cycles::ZERO, Cycles::max)
    }

    /// Spends `cost` cycles of labelled work on `core`, advancing its clock
    /// and recording a trace event.
    ///
    /// Zero-cost charges still record an event (they mark a causal step,
    /// e.g. a register write that is free but architecturally significant).
    ///
    /// Returns the instant the work completed.
    pub fn charge(
        &mut self,
        core: CoreId,
        label: &'static str,
        kind: TraceKind,
        cost: Cycles,
    ) -> Cycles {
        self.charge_inner(core, label, kind, cost, None)
    }

    fn charge_inner(
        &mut self,
        core: CoreId,
        label: &'static str,
        kind: TraceKind,
        cost: Cycles,
        transition: Option<TransitionId>,
    ) -> Cycles {
        let start = self.clocks[core.index()];
        self.trace.record(TraceEvent {
            core,
            start,
            duration: cost,
            kind,
            label,
        });
        if let Some(p) = &mut self.profiler {
            p.spans.charge(cost.as_u64());
        }
        if let Some(ev) = &mut self.events {
            ev.record_slice(
                core.index() as u8,
                start.as_u64(),
                cost.as_u64(),
                label,
                transition,
            );
        }
        let end = start + cost;
        self.clocks[core.index()] = end;
        self.busy[core.index()] += cost;
        TRANSITIONS.with(|t| t.set(t.get().wrapping_add(1)));
        if self.loop_state.is_some() {
            self.loop_record(RawOp::Charge {
                core: core.index() as u8,
                kind,
                cost: cost.as_u64(),
            });
        }
        self.watchdog_tick(cost);
        end
    }

    /// Watchdog bookkeeping for one charge; trips raise typed panic
    /// payloads a harness can downcast after `catch_unwind`.
    #[inline]
    fn watchdog_tick(&mut self, cost: Cycles) {
        self.total_charged = self.total_charged.saturating_add(cost.as_u64());
        if self.total_charged > self.cycle_budget {
            std::panic::panic_any(CycleBudgetExceeded {
                budget: self.cycle_budget,
                reached: self.total_charged,
            });
        }
        if cost.is_zero() {
            self.zero_streak += 1;
            if self.zero_streak > self.livelock_limit {
                std::panic::panic_any(Livelocked {
                    streak: self.zero_streak,
                });
            }
        } else {
            self.zero_streak = 0;
        }
    }

    /// Spends `cost` cycles attributed to transition `id`: shorthand
    /// for a single-charge span (`span_enter(id)`, [`Machine::charge`],
    /// `span_exit(id)`).
    pub fn charge_as(
        &mut self,
        core: CoreId,
        label: &'static str,
        kind: TraceKind,
        cost: Cycles,
        id: TransitionId,
    ) -> Cycles {
        self.span_enter(id);
        let end = self.charge_inner(core, label, kind, cost, Some(id));
        self.span_exit(id);
        end
    }

    /// Advances `core`'s clock to `instant` if it is currently earlier;
    /// does nothing if the core is already past `instant`. Returns the
    /// core's (possibly unchanged) clock.
    ///
    /// This models a core blocking until a cross-core signal arrives — or
    /// discovering, when it next looks, that the signal already arrived.
    pub fn wait_until(&mut self, core: CoreId, instant: Cycles) -> Cycles {
        if self.loop_recording() {
            let clocks = self.clock_snapshot();
            self.loop_record(RawOp::Wait {
                core: core.index() as u8,
                target: instant.as_u64(),
                clocks,
            });
        }
        let clock = &mut self.clocks[core.index()];
        *clock = (*clock).max(instant);
        *clock
    }

    /// Sends a point-to-point signal (physical IPI, doorbell, wire packet)
    /// from `from` to `to`, taking `latency` cycles in flight. The send
    /// itself is free on the sending core (charge any send-side cost
    /// separately); the returned instant is when the signal becomes visible
    /// at `to`. The receiving core's clock is *not* advanced — pair with
    /// [`Machine::wait_until`] on the receive path.
    pub fn signal(&mut self, from: CoreId, to: CoreId, latency: Cycles) -> Cycles {
        let depart = self.now(from);
        let arrival = depart + latency;
        if self.loop_recording() {
            self.loop_record(RawOp::Signal {
                from: from.index() as u8,
                to: to.index() as u8,
                latency: latency.as_u64(),
                arrival: arrival.as_u64(),
            });
        }
        self.trace.record(TraceEvent {
            core: to,
            start: depart,
            duration: latency,
            kind: TraceKind::Ipi,
            label: "signal:in-flight",
        });
        arrival
    }

    /// Synchronizes every core's clock to the global maximum. Used between
    /// benchmark iterations so each iteration starts from a common instant,
    /// mirroring the paper's barriers between measurements.
    pub fn barrier(&mut self) -> Cycles {
        // A barrier mid-loop means the loop body is not self-contained;
        // drop any compile session rather than skip over it.
        self.loop_state = None;
        let now = self.global_now();
        for c in &mut self.clocks {
            *c = now;
        }
        now
    }

    /// Cycles `core` spent on charged work (its clock minus idle time
    /// skipped by [`Machine::wait_until`]).
    #[inline]
    pub fn busy(&self, core: CoreId) -> Cycles {
        self.busy[core.index()]
    }

    /// The fraction of the interval `[0, global_now]` that `core` spent
    /// busy — the quantity behind §V's bottleneck analysis ("fully
    /// utilizes the underlying PCPU").
    pub fn utilization(&self, core: CoreId) -> f64 {
        let total = self.global_now().as_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.busy[core.index()].as_f64() / total
    }

    /// Shared access to the trace log.
    #[inline]
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Mutable access to the trace log (e.g. to clear between phases).
    #[inline]
    pub fn trace_mut(&mut self) -> &mut TraceLog {
        &mut self.trace
    }

    // --- fault injection & watchdog ------------------------------------

    /// Installs `plan` as this machine's fault plan, resetting all
    /// occurrence counters. An empty plan clears fault state entirely,
    /// restoring the zero-cost default.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.loop_state = None;
        self.faults = if plan.is_empty() {
            None
        } else {
            Some(Box::new(FaultState::new(plan)))
        };
    }

    /// Applies watchdog limits (enforced from the next charge on).
    pub fn set_watchdog(&mut self, watchdog: Watchdog) {
        self.loop_state = None;
        self.cycle_budget = watchdog.cycle_budget.unwrap_or(u64::MAX);
        self.livelock_limit = watchdog.livelock_threshold.unwrap_or(u64::MAX);
    }

    /// Whether a non-empty fault plan is installed.
    #[inline]
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Consults the fault plan at `point`. Returns `false` (one
    /// branch, no other work) when no plan is installed; otherwise
    /// advances the point's occurrence counter, bumps the
    /// `fault.<point>` metric on injection, and returns the decision.
    #[inline]
    pub fn fault(&mut self, point: FaultPoint) -> bool {
        let Some(f) = &mut self.faults else {
            return false;
        };
        let hit = f.should_fault(point);
        if hit {
            if let Some(p) = &mut self.profiler {
                p.metrics.bump(point.metric(), 1);
            }
            if let Some(ev) = &mut self.events {
                // The next charged slice is the recovery path's head.
                ev.note_fault();
            }
        }
        hit
    }

    /// Faults injected at `point` so far (0 with no plan installed).
    pub fn faults_injected(&self, point: FaultPoint) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.injected(point))
    }

    /// Total faults injected across all points.
    pub fn total_faults_injected(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.total_injected())
    }

    /// Total cycles charged since construction (watchdog's measure —
    /// equals [`Machine::total_busy`]).
    #[inline]
    pub fn total_charged(&self) -> u64 {
        self.total_charged
    }

    // --- observability -------------------------------------------------

    /// Turns on span attribution and metrics collection. Call before
    /// any work is charged so the span totals cover the whole run
    /// (conservation: `spans().total() == Σ busy(core)`). Idempotent.
    pub fn enable_profiling(&mut self) {
        self.loop_state = None;
        if self.profiler.is_none() {
            self.profiler = Some(Box::default());
        }
    }

    /// Whether profiling is enabled.
    #[inline]
    pub fn profiling(&self) -> bool {
        self.profiler.is_some()
    }

    /// Opens a span: until the matching [`Machine::span_exit`], every
    /// charge on this machine is attributed to `id` (unless an inner
    /// span opens). No-op while profiling is disabled, so models can
    /// instrument unconditionally.
    #[inline]
    pub fn span_enter(&mut self, id: TransitionId) {
        let Some(p) = &mut self.profiler else { return };
        p.spans.enter(id);
        if self.loop_state.is_some() {
            self.loop_record(RawOp::SpanEnter(id));
        }
    }

    /// Closes the innermost span, which must be `id`.
    ///
    /// # Panics
    ///
    /// Panics (with profiling enabled) if `id` is not the innermost
    /// open span — unbalanced instrumentation is a bug.
    #[inline]
    pub fn span_exit(&mut self, id: TransitionId) {
        let Some(p) = &mut self.profiler else { return };
        p.spans.exit(id);
        if self.loop_state.is_some() {
            self.loop_record(RawOp::SpanExit(id));
        }
    }

    /// Adds `n` to the named counter. No-op while profiling is
    /// disabled.
    #[inline]
    pub fn bump(&mut self, name: &'static str, n: u64) {
        let Some(p) = &mut self.profiler else { return };
        p.metrics.bump(name, n);
        if self.loop_state.is_some() {
            self.loop_record(RawOp::Bump { name, n });
        }
    }

    /// Records one histogram observation. No-op while profiling is
    /// disabled.
    #[inline]
    pub fn observe(&mut self, name: &'static str, value: u64) {
        let Some(p) = &mut self.profiler else { return };
        p.metrics.observe(name, value);
        if self.loop_state.is_some() {
            self.loop_record(RawOp::Observe { name, value });
        }
    }

    /// The span tracer, if profiling is enabled.
    pub fn spans(&self) -> Option<&SpanTracer> {
        self.profiler.as_ref().map(|p| &p.spans)
    }

    /// The metrics registry, if profiling is enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.profiler.as_ref().map(|p| &p.metrics)
    }

    /// Mutable metrics registry access (suite-level sampling), if
    /// profiling is enabled.
    pub fn metrics_mut(&mut self) -> Option<&mut MetricsRegistry> {
        self.profiler.as_mut().map(|p| &mut p.metrics)
    }

    // --- steady-state loop compilation ----------------------------------

    /// Opens a loop compile session: until [`Machine::loop_end`], the
    /// machine records each iteration (delimited by
    /// [`Machine::loop_iter_begin`] / [`Machine::loop_replay`]) and —
    /// once a steady-state period is confirmed — replays the compiled
    /// block in bulk, skipping iterations wholesale.
    ///
    /// Returns `false` (and records nothing) when the machine is not
    /// eligible: tracing enabled, profiling enabled (see
    /// [`Machine::loop_begin_profiled`]), a fault plan installed,
    /// event tracing on, or a finite watchdog — in every such case the
    /// per-transition machinery observes state a bulk replay cannot
    /// reproduce, so the loop stays interpreted. All other `loop_*`
    /// calls are cheap no-ops after a `false` here, so drivers need no
    /// separate code path.
    pub fn loop_begin(&mut self) -> bool {
        self.loop_begin_inner(false)
    }

    /// Like [`Machine::loop_begin`] but also eligible on a profiled
    /// machine with no open span: the compiled block then carries a
    /// batched span/metric delta applied via `merge_scaled` per
    /// replayed block. Only sound when nothing samples model-side
    /// lifetime counters into the registry mid-loop (the suite's
    /// profiling harness does, so it never opts in).
    pub fn loop_begin_profiled(&mut self) -> bool {
        self.loop_begin_inner(true)
    }

    fn loop_begin_inner(&mut self, allow_profiled: bool) -> bool {
        if self.loop_state.is_some() {
            // Nested sessions are unsupported; drop the outer one
            // rather than corrupt its iteration structure.
            self.loop_state = None;
            return false;
        }
        let profiled = self.profiler.is_some();
        let profile_ok = match &self.profiler {
            None => true,
            Some(p) => allow_profiled && p.spans.depth() == 0,
        };
        let eligible = !self.trace.is_enabled()
            && self.faults.is_none()
            && self.events.is_none()
            && self.cycle_budget == u64::MAX
            && self.livelock_limit == u64::MAX
            && self.clocks.len() <= usize::from(u8::MAX) + 1
            && profile_ok;
        if eligible {
            self.loop_state = Some(Box::new(LoopState::Recording(Recorder::new(profiled))));
        }
        eligible
    }

    /// Marks the start of one loop iteration (clock snapshot while
    /// recording; no-op otherwise).
    pub fn loop_iter_begin(&mut self) {
        if !self.loop_recording() {
            return;
        }
        let clocks = self.clock_snapshot();
        if let Some(LoopState::Recording(rec)) = self.loop_state.as_deref_mut() {
            rec.begin_iter(clocks);
        }
    }

    /// Closes the current iteration and, once the loop has compiled,
    /// replays as many whole blocks as fit in `remaining` iterations.
    /// Returns the number of iterations skipped (0 while recording,
    /// after give-up, or when `remaining` is below one period). The
    /// driver must advance its induction variable by the return value
    /// and refresh loop-carried values from [`Machine::loop_reg`].
    pub fn loop_replay(&mut self, remaining: u64) -> u64 {
        let Some(mut state) = self.loop_state.take() else {
            return 0;
        };
        match &mut *state {
            LoopState::Recording(rec) => {
                rec.close_iter();
                let clocks: Vec<u64> = self.clocks.iter().map(|c| c.as_u64()).collect();
                if let Some(mut program) = rec.try_compile(&clocks) {
                    let skipped = self.replay(&mut program, remaining);
                    *state = LoopState::Ready(program);
                    self.loop_state = Some(state);
                    skipped
                } else if rec.recorded_iters() >= GIVE_UP_ITERS {
                    // No steady period: stop paying recording costs.
                    0
                } else {
                    self.loop_state = Some(state);
                    0
                }
            }
            LoopState::Ready(program) => {
                let skipped = self.replay(program, remaining);
                self.loop_state = Some(state);
                skipped
            }
        }
    }

    /// Publishes a loop-carried suite value (e.g. TCP_RR's next send
    /// instant) so compiled replay can reconstruct it across skipped
    /// iterations. No-op unless recording.
    pub fn loop_set_reg(&mut self, idx: usize, value: Cycles) {
        if !self.loop_recording() {
            return;
        }
        if idx > usize::from(u8::MAX) {
            self.loop_state = None;
            return;
        }
        let clocks = self.clock_snapshot();
        self.loop_record(RawOp::Reg {
            idx: idx as u8,
            value: value.as_u64(),
            clocks,
        });
    }

    /// The current value of loop register `idx` after a replay
    /// (`None` while interpreting — the driver's own value is then
    /// already current).
    pub fn loop_reg(&self, idx: usize) -> Option<Cycles> {
        match self.loop_state.as_deref() {
            Some(LoopState::Ready(p)) => p.regs.get(idx).copied().map(Cycles::new),
            _ => None,
        }
    }

    /// Ends the loop session, dropping any recording or compiled
    /// program.
    pub fn loop_end(&mut self) {
        self.loop_state = None;
    }

    /// Whether the active loop session has compiled to a program.
    pub fn loop_compiled(&self) -> bool {
        matches!(self.loop_state.as_deref(), Some(LoopState::Ready(_)))
    }

    /// Iterations skipped by compiled replay since construction.
    pub fn iters_replayed(&self) -> u64 {
        self.iters_replayed
    }

    #[inline]
    fn loop_recording(&self) -> bool {
        matches!(self.loop_state.as_deref(), Some(LoopState::Recording(_)))
    }

    fn clock_snapshot(&self) -> Box<[u64]> {
        self.clocks.iter().map(|c| c.as_u64()).collect()
    }

    /// Feeds one recorded op to the session; aborts the session when
    /// the op falls outside an open iteration (the loop body is then
    /// not the only thing charging the machine).
    fn loop_record(&mut self, op: RawOp) {
        if let Some(LoopState::Recording(rec)) = self.loop_state.as_deref_mut() {
            if !rec.record(op) {
                self.loop_state = None;
            }
        }
    }

    /// Applies `blocks × program` to the machine's aggregate state.
    fn replay(&mut self, program: &mut Program, remaining: u64) -> u64 {
        let blocks = remaining / program.period;
        if blocks == 0 {
            return 0;
        }
        let mut clocks: Vec<u64> = self.clocks.iter().map(|c| c.as_u64()).collect();
        program.run_blocks(&mut clocks, blocks);
        for (c, v) in self.clocks.iter_mut().zip(&clocks) {
            *c = Cycles::new(*v);
        }
        for (b, d) in self.busy.iter_mut().zip(&program.busy_delta) {
            *b += Cycles::new(d * blocks);
        }
        self.total_charged = self
            .total_charged
            .saturating_add(program.charged_delta.saturating_mul(blocks));
        let charges = program.charges_per_block * blocks;
        if program.charges_per_block > 0 {
            if program.all_zero {
                self.zero_streak += charges;
            } else {
                self.zero_streak = program.tail_zero_run;
            }
        }
        TRANSITIONS.with(|t| t.set(t.get().wrapping_add(charges)));
        if let Some(delta) = &program.profile_delta {
            if let Some(p) = &mut self.profiler {
                p.spans.merge_scaled(&delta.spans, blocks);
                p.metrics.merge_scaled(&delta.metrics, blocks);
            }
        }
        let skipped = blocks * program.period;
        self.iters_replayed += skipped;
        skipped
    }

    // --- causal event tracing -------------------------------------------

    /// Turns on causal event tracing: from now on every charge records
    /// a timestamped slice on its core's track, and the flow hooks
    /// below stitch cross-core chains. `ring` bounds the kept events
    /// (`None` = unbounded). Tracing reads clocks but never advances
    /// them, so an identical run with tracing off charges identical
    /// cycles.
    pub fn enable_event_tracing(&mut self, ring: Option<usize>) {
        self.loop_state = None;
        self.events = Some(Box::new(match ring {
            Some(n) => EventTracer::with_capacity(n),
            None => EventTracer::new(),
        }));
    }

    /// Whether causal event tracing is enabled.
    #[inline]
    pub fn event_tracing(&self) -> bool {
        self.events.is_some()
    }

    /// The event tracer, if tracing is enabled.
    pub fn event_tracer(&self) -> Option<&EventTracer> {
        self.events.as_deref()
    }

    /// Takes the event tracer out of the machine (export/derivation
    /// time), disabling further recording.
    pub fn take_event_tracer(&mut self) -> Option<EventTracer> {
        self.events.take().map(|b| *b)
    }

    /// Opens a causal chain anchored at `core`'s current instant.
    /// Returns `None` (one branch, no other work) while tracing is
    /// disabled, so models can instrument unconditionally and thread
    /// the `Option` through [`Machine::flow_step`]/[`Machine::flow_end`].
    #[inline]
    pub fn flow_begin(
        &mut self,
        kind: FlowKind,
        core: CoreId,
        label: &'static str,
    ) -> Option<FlowId> {
        let ts = self.now(core).as_u64();
        self.events
            .as_mut()
            .map(|ev| ev.flow_begin(kind, core.index() as u8, ts, label))
    }

    /// Records an intermediate hop of chain `id` at `core`'s current
    /// instant. No-op for `None` (tracing disabled at begin time).
    #[inline]
    pub fn flow_step(&mut self, id: Option<FlowId>, core: CoreId, label: &'static str) {
        let Some(id) = id else { return };
        let ts = self.now(core).as_u64();
        if let Some(ev) = &mut self.events {
            ev.flow_step(id, core.index() as u8, ts, label);
        }
    }

    /// Ends chain `id` at `core`'s current instant. No-op for `None`.
    #[inline]
    pub fn flow_end(&mut self, id: Option<FlowId>, core: CoreId, label: &'static str) {
        let Some(id) = id else { return };
        let ts = self.now(core).as_u64();
        if let Some(ev) = &mut self.events {
            ev.flow_end(id, core.index() as u8, ts, label);
        }
    }

    /// Sum of every core's charged work — the run total that the span
    /// breakdown must account for.
    pub fn total_busy(&self) -> Cycles {
        self.busy.iter().copied().sum()
    }

    /// Asserts span/charge conservation: with profiling enabled, the
    /// attributed exclusive cycles plus the unattributed remainder must
    /// equal both the tracer's running total and the machine's summed
    /// busy time. Returns the verified total.
    ///
    /// # Panics
    ///
    /// Panics if profiling is disabled or the identity does not hold.
    pub fn assert_conservation(&self) -> Cycles {
        let spans = self
            .spans()
            .expect("assert_conservation requires profiling to be enabled");
        let excl_sum: u64 = TransitionId::ALL
            .into_iter()
            .map(|id| spans.exclusive(id))
            .sum();
        assert_eq!(
            excl_sum + spans.unattributed(),
            spans.total(),
            "span exclusive totals do not sum to the tracer total"
        );
        assert_eq!(
            spans.total(),
            self.total_busy().as_u64(),
            "span totals diverge from the machine's busy cycles"
        );
        self.total_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_core_machine() -> Machine {
        Machine::new(Topology::split(2, 1))
    }

    #[test]
    fn charge_advances_only_target_core() {
        let mut m = two_core_machine();
        let end = m.charge(CoreId::new(0), "a", TraceKind::Guest, Cycles::new(100));
        assert_eq!(end, Cycles::new(100));
        assert_eq!(m.now(CoreId::new(0)), Cycles::new(100));
        assert_eq!(m.now(CoreId::new(1)), Cycles::ZERO);
        assert_eq!(m.global_now(), Cycles::new(100));
    }

    #[test]
    fn zero_cost_charge_still_traces() {
        let mut m = two_core_machine();
        m.charge(CoreId::new(0), "mark", TraceKind::Other, Cycles::ZERO);
        assert_eq!(m.trace().len(), 1);
        assert_eq!(m.now(CoreId::new(0)), Cycles::ZERO);
    }

    #[test]
    fn wait_until_never_rewinds() {
        let mut m = two_core_machine();
        m.charge(CoreId::new(0), "a", TraceKind::Guest, Cycles::new(500));
        // Waiting for an instant in the past leaves the clock alone.
        let t = m.wait_until(CoreId::new(0), Cycles::new(100));
        assert_eq!(t, Cycles::new(500));
        // Waiting for the future advances.
        let t = m.wait_until(CoreId::new(0), Cycles::new(900));
        assert_eq!(t, Cycles::new(900));
    }

    #[test]
    fn signal_latency_composes_with_receiver_clock() {
        let mut m = two_core_machine();
        let (a, b) = (CoreId::new(0), CoreId::new(1));
        m.charge(a, "w", TraceKind::Guest, Cycles::new(1000));
        let arrival = m.signal(a, b, Cycles::new(250));
        assert_eq!(arrival, Cycles::new(1250));
        // Busy receiver: signal waits for the receiver, not vice versa.
        m.charge(b, "busy", TraceKind::Host, Cycles::new(2000));
        let t = m.wait_until(b, arrival);
        assert_eq!(t, Cycles::new(2000));
    }

    #[test]
    fn barrier_aligns_all_clocks() {
        let mut m = two_core_machine();
        m.charge(CoreId::new(0), "a", TraceKind::Guest, Cycles::new(77));
        let t = m.barrier();
        assert_eq!(t, Cycles::new(77));
        assert_eq!(m.now(CoreId::new(1)), Cycles::new(77));
    }

    #[test]
    fn without_tracing_drops_events_but_keeps_time() {
        let mut m = Machine::without_tracing(Topology::split(2, 1));
        m.charge(CoreId::new(0), "a", TraceKind::Guest, Cycles::new(10));
        assert!(m.trace().is_empty());
        assert_eq!(m.now(CoreId::new(0)), Cycles::new(10));
    }

    #[test]
    fn busy_time_excludes_idle_waits() {
        let mut m = two_core_machine();
        let (a, b) = (CoreId::new(0), CoreId::new(1));
        m.charge(a, "w", TraceKind::Guest, Cycles::new(1_000));
        let arrival = m.signal(a, b, Cycles::new(500));
        m.wait_until(b, arrival); // b idled for 1,500 cycles
        m.charge(b, "h", TraceKind::Host, Cycles::new(500));
        assert_eq!(m.busy(a), Cycles::new(1_000));
        assert_eq!(m.busy(b), Cycles::new(500));
        assert_eq!(m.now(b), Cycles::new(2_000));
        assert!((m.utilization(a) - 0.5).abs() < 1e-9);
        assert!((m.utilization(b) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn utilization_of_fresh_machine_is_zero() {
        let m = two_core_machine();
        assert_eq!(m.utilization(CoreId::new(0)), 0.0);
    }

    #[test]
    fn profiling_attributes_charges_to_innermost_span() {
        let mut m = two_core_machine();
        m.enable_profiling();
        let c0 = CoreId::new(0);
        m.charge(c0, "boot", TraceKind::Other, Cycles::new(10)); // unattributed
        m.span_enter(TransitionId::ContextSave);
        m.charge(c0, "save:gp", TraceKind::ContextSave, Cycles::new(152));
        m.charge_as(
            c0,
            "save:vgic",
            TraceKind::ContextSave,
            Cycles::new(500),
            TransitionId::VgicLrSave,
        );
        m.span_exit(TransitionId::ContextSave);
        m.bump("traps", 2);
        m.observe("lat", 662);
        let spans = m.spans().unwrap();
        assert_eq!(spans.exclusive(TransitionId::ContextSave), 152);
        assert_eq!(spans.exclusive(TransitionId::VgicLrSave), 500);
        assert_eq!(spans.inclusive(TransitionId::ContextSave), 652);
        assert_eq!(spans.unattributed(), 10);
        assert_eq!(m.metrics().unwrap().counter("traps"), 2);
        assert_eq!(m.assert_conservation(), Cycles::new(662));
    }

    #[test]
    fn profiling_disabled_makes_spans_free_noops() {
        let mut m = two_core_machine();
        m.span_enter(TransitionId::TrapToEl2);
        m.charge(CoreId::new(0), "t", TraceKind::Trap, Cycles::new(40));
        m.span_exit(TransitionId::TrapToEl2);
        m.bump("traps", 1);
        assert!(m.spans().is_none());
        assert!(m.metrics().is_none());
        assert!(!m.profiling());
    }

    #[test]
    fn conservation_spans_multiple_cores() {
        let mut m = two_core_machine();
        m.enable_profiling();
        m.charge_as(
            CoreId::new(0),
            "g",
            TraceKind::Guest,
            Cycles::new(100),
            TransitionId::GuestRun,
        );
        m.charge_as(
            CoreId::new(1),
            "h",
            TraceKind::Host,
            Cycles::new(300),
            TransitionId::HostDispatch,
        );
        assert_eq!(m.total_busy(), Cycles::new(400));
        assert_eq!(m.assert_conservation(), Cycles::new(400));
    }

    #[test]
    fn fault_consult_without_plan_is_false_and_free() {
        let mut m = two_core_machine();
        assert!(!m.faults_enabled());
        for p in FaultPoint::ALL {
            assert!(!m.fault(p));
            assert_eq!(m.faults_injected(p), 0);
        }
    }

    #[test]
    fn fault_plan_decisions_bump_metrics_when_profiling() {
        use crate::FaultPlan;
        let mut m = two_core_machine();
        m.enable_profiling();
        m.set_fault_plan(FaultPlan::new(1).with_rate(FaultPoint::VirqDrop, 1.0));
        assert!(m.faults_enabled());
        assert!(m.fault(FaultPoint::VirqDrop));
        assert!(!m.fault(FaultPoint::NicStall));
        assert_eq!(m.faults_injected(FaultPoint::VirqDrop), 1);
        assert_eq!(m.total_faults_injected(), 1);
        assert_eq!(m.metrics().unwrap().counter("fault.virq_drop"), 1);
    }

    #[test]
    fn empty_fault_plan_clears_state() {
        use crate::FaultPlan;
        let mut m = two_core_machine();
        m.set_fault_plan(FaultPlan::new(1).with_rate(FaultPoint::WireDrop, 1.0));
        assert!(m.faults_enabled());
        m.set_fault_plan(FaultPlan::new(1));
        assert!(!m.faults_enabled());
    }

    #[test]
    fn cycle_budget_watchdog_trips_with_typed_payload() {
        use crate::fault::CycleBudgetExceeded;
        use crate::Watchdog;
        let payload = std::panic::catch_unwind(|| {
            let mut m = two_core_machine();
            m.set_watchdog(Watchdog {
                cycle_budget: Some(1_000),
                livelock_threshold: None,
            });
            for _ in 0..100 {
                m.charge(CoreId::new(0), "w", TraceKind::Guest, Cycles::new(100));
            }
        })
        .expect_err("budget must trip");
        let trip = payload
            .downcast_ref::<CycleBudgetExceeded>()
            .expect("typed payload");
        assert_eq!(trip.budget, 1_000);
        assert!(trip.reached > 1_000);
    }

    #[test]
    fn livelock_watchdog_trips_on_zero_progress() {
        use crate::fault::Livelocked;
        use crate::Watchdog;
        let payload = std::panic::catch_unwind(|| {
            let mut m = two_core_machine();
            m.set_watchdog(Watchdog {
                cycle_budget: None,
                livelock_threshold: Some(10),
            });
            loop {
                m.charge(CoreId::new(0), "spin", TraceKind::Other, Cycles::ZERO);
            }
        })
        .expect_err("livelock must trip");
        assert!(payload.downcast_ref::<Livelocked>().is_some());
    }

    #[test]
    fn nonzero_charges_reset_livelock_streak() {
        use crate::Watchdog;
        let mut m = two_core_machine();
        m.set_watchdog(Watchdog {
            cycle_budget: None,
            livelock_threshold: Some(5),
        });
        for _ in 0..10 {
            for _ in 0..5 {
                m.charge(CoreId::new(0), "z", TraceKind::Other, Cycles::ZERO);
            }
            m.charge(CoreId::new(0), "w", TraceKind::Guest, Cycles::new(1));
        }
        assert_eq!(m.total_charged(), 10);
    }

    #[test]
    fn machine_new_picks_up_ambient_plan() {
        use crate::fault::install_ambient;
        use crate::{FaultPlan, Watchdog};
        let plan = FaultPlan::new(12).with_rate(FaultPoint::WireDrop, 1.0);
        let _g = install_ambient(Some(plan), Watchdog::UNLIMITED);
        let mut m = two_core_machine();
        assert!(m.faults_enabled());
        assert!(m.fault(FaultPoint::WireDrop));
        drop(_g);
        let m2 = two_core_machine();
        assert!(!m2.faults_enabled());
    }

    #[test]
    fn event_tracing_records_slices_and_flows_without_advancing_time() {
        let mut m = two_core_machine();
        m.enable_event_tracing(None);
        assert!(m.event_tracing());
        let (a, b) = (CoreId::new(0), CoreId::new(1));
        m.charge_as(
            a,
            "guest:kick",
            TraceKind::Emulation,
            Cycles::new(100),
            TransitionId::VhostKick,
        );
        let flow = m.flow_begin(FlowKind::VirtioKick, a, "virtio:kick");
        assert!(flow.is_some());
        let arrival = m.signal(a, b, Cycles::new(400));
        m.wait_until(b, arrival);
        m.flow_step(flow, b, "vhost:wake");
        m.charge(b, "vhost:tx", TraceKind::Host, Cycles::new(1_000));
        m.flow_end(flow, b, "nic:dma");

        // Tracing is read-only on time: clocks match an untraced twin.
        let mut twin = two_core_machine();
        twin.charge_as(
            a,
            "guest:kick",
            TraceKind::Emulation,
            Cycles::new(100),
            TransitionId::VhostKick,
        );
        let arr = twin.signal(a, b, Cycles::new(400));
        twin.wait_until(b, arr);
        twin.charge(b, "vhost:tx", TraceKind::Host, Cycles::new(1_000));
        assert_eq!(m.now(a), twin.now(a));
        assert_eq!(m.now(b), twin.now(b));

        let tracer = m.take_event_tracer().unwrap();
        assert!(!m.event_tracing(), "taking the tracer disables tracing");
        let slices = tracer.slices();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].transition, Some(TransitionId::VhostKick));
        assert_eq!(slices[1].track, 1);
        assert_eq!(slices[1].start, 500);
        let chains = tracer.chains();
        assert_eq!(chains.len(), 1);
        assert!(chains[0].complete);
        assert_eq!(chains[0].latency, 1_400, "kick at 100, dma at 1,500");
        assert_eq!(chains[0].track_span(), 2);
    }

    #[test]
    fn flow_hooks_are_noops_while_tracing_is_disabled() {
        let mut m = two_core_machine();
        let flow = m.flow_begin(FlowKind::IrqDelivery, CoreId::new(0), "irq");
        assert!(flow.is_none());
        m.flow_step(flow, CoreId::new(1), "hop");
        m.flow_end(flow, CoreId::new(1), "done");
        assert!(m.event_tracer().is_none());
        assert!(m.take_event_tracer().is_none());
    }

    #[test]
    fn fault_injection_marks_the_next_traced_slice() {
        use crate::FaultPlan;
        let mut m = two_core_machine();
        m.enable_event_tracing(None);
        m.set_fault_plan(FaultPlan::new(1).with_rate(FaultPoint::VirqDrop, 1.0));
        m.charge(CoreId::new(0), "ok", TraceKind::Guest, Cycles::new(10));
        assert!(m.fault(FaultPoint::VirqDrop));
        m.charge(CoreId::new(0), "recover", TraceKind::Host, Cycles::new(20));
        let slices = m.event_tracer().unwrap().slices();
        assert!(!slices[0].fault);
        assert!(slices[1].fault);
    }

    #[test]
    fn ring_mode_caps_kept_slices() {
        let mut m = two_core_machine();
        m.enable_event_tracing(Some(3));
        for _ in 0..10 {
            m.charge(CoreId::new(0), "w", TraceKind::Guest, Cycles::new(5));
        }
        let t = m.event_tracer().unwrap();
        assert_eq!(t.slices().len(), 3);
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.dropped_slices(), 7);
    }

    #[test]
    fn trace_records_interval_and_order() {
        let mut m = two_core_machine();
        m.charge(CoreId::new(0), "first", TraceKind::Trap, Cycles::new(160));
        m.charge(
            CoreId::new(0),
            "second",
            TraceKind::Return,
            Cycles::new(120),
        );
        let evs = m.trace().events();
        assert_eq!(evs[0].label, "first");
        assert_eq!(evs[0].start, Cycles::ZERO);
        assert_eq!(evs[0].end(), Cycles::new(160));
        assert_eq!(evs[1].start, Cycles::new(160));
        assert_eq!(evs[1].end(), Cycles::new(280));
    }

    // --- steady-state loop compilation ---------------------------------

    /// Runs `iters` iterations of `body` under a loop session, the way
    /// suite drivers do.
    fn drive(m: &mut Machine, iters: u64, profiled: bool, mut body: impl FnMut(&mut Machine, u64)) {
        if profiled {
            m.loop_begin_profiled();
        } else {
            m.loop_begin();
        }
        let mut i = 0;
        while i < iters {
            let skipped = m.loop_replay(iters - i);
            if skipped > 0 {
                i += skipped;
                continue;
            }
            m.loop_iter_begin();
            body(m, i);
            i += 1;
        }
        m.loop_end();
    }

    fn assert_replay_matches(compiled: &Machine, interpreted: &Machine) {
        assert_eq!(compiled.clocks, interpreted.clocks, "clocks diverged");
        assert_eq!(compiled.busy, interpreted.busy, "busy diverged");
        assert_eq!(
            compiled.total_charged, interpreted.total_charged,
            "total_charged diverged"
        );
        assert_eq!(
            compiled.zero_streak, interpreted.zero_streak,
            "zero_streak diverged"
        );
    }

    /// A ping-pong body: compute on core 0, IPI to core 1, handle,
    /// reply. Exercises Charge, Signal, and slot-classified waits.
    fn ping_pong(m: &mut Machine, _i: u64) {
        let c0 = CoreId::new(0);
        let c1 = CoreId::new(1);
        m.charge(c0, "guest:work", TraceKind::Guest, Cycles::new(1000));
        let there = m.signal(c0, c1, Cycles::new(400));
        m.wait_until(c1, there);
        m.charge(c1, "hyp:handle", TraceKind::Emulation, Cycles::new(300));
        let back = m.signal(c1, c0, Cycles::new(400));
        m.wait_until(c0, back);
    }

    #[test]
    fn loop_replay_is_identical_to_interpretation() {
        let mut compiled = Machine::without_tracing(Topology::split(2, 1));
        let mut interpreted = Machine::without_tracing(Topology::split(2, 1));
        drive(&mut compiled, 500, false, ping_pong);
        for i in 0..500 {
            ping_pong(&mut interpreted, i);
        }
        assert!(compiled.iters_replayed() > 400, "loop should have compiled");
        assert_replay_matches(&compiled, &interpreted);
    }

    #[test]
    fn loop_replay_handles_period_two() {
        let body = |m: &mut Machine, i: u64| {
            let cost = if i % 2 == 0 { 700 } else { 900 };
            m.charge(CoreId::new(0), "alt", TraceKind::Guest, Cycles::new(cost));
            ping_pong(m, i);
        };
        let mut compiled = Machine::without_tracing(Topology::split(2, 1));
        let mut interpreted = Machine::without_tracing(Topology::split(2, 1));
        drive(&mut compiled, 501, false, body);
        for i in 0..501 {
            body(&mut interpreted, i);
        }
        assert!(compiled.iters_replayed() > 400);
        assert_replay_matches(&compiled, &interpreted);
    }

    #[test]
    fn loop_replay_handles_linear_wait_targets() {
        // A paced receive loop: arrivals stride by a constant spacing
        // larger than the per-iteration work, so the wait is binding
        // and classifies as linear.
        let body = |m: &mut Machine, i: u64| {
            let arrival = Cycles::new(5_000 + i * 2_500);
            m.wait_until(CoreId::new(1), arrival);
            m.charge(CoreId::new(1), "rx", TraceKind::Io, Cycles::new(600));
        };
        let mut compiled = Machine::without_tracing(Topology::split(2, 1));
        let mut interpreted = Machine::without_tracing(Topology::split(2, 1));
        drive(&mut compiled, 400, false, body);
        for i in 0..400 {
            body(&mut interpreted, i);
        }
        assert!(compiled.iters_replayed() > 300);
        assert_replay_matches(&compiled, &interpreted);
    }

    #[test]
    fn loop_registers_reconstruct_loop_carried_values() {
        // A TCP_RR-style loop carrying the next send instant.
        let run = |use_loop: bool| -> (Machine, Cycles) {
            let mut m = Machine::without_tracing(Topology::split(2, 1));
            let mut t_send = Cycles::ZERO;
            if use_loop {
                m.loop_begin();
            }
            let iters = 600u64;
            let mut i = 0;
            while i < iters {
                if use_loop {
                    let skipped = m.loop_replay(iters - i);
                    if skipped > 0 {
                        i += skipped;
                        t_send = m.loop_reg(0).expect("reg after replay");
                        continue;
                    }
                    m.loop_iter_begin();
                }
                let arrival = t_send + Cycles::new(2_000);
                m.wait_until(CoreId::new(0), arrival);
                t_send = m.charge(CoreId::new(0), "rr", TraceKind::Guest, Cycles::new(1_234));
                if use_loop {
                    m.loop_set_reg(0, t_send);
                }
                i += 1;
            }
            m.loop_end();
            (m, t_send)
        };
        let (compiled, t_compiled) = run(true);
        let (interpreted, t_interpreted) = run(false);
        assert!(compiled.iters_replayed() > 500);
        assert_eq!(t_compiled, t_interpreted);
        assert_replay_matches(&compiled, &interpreted);
    }

    #[test]
    fn profiled_loop_replay_matches_interpreted_observability() {
        let body = |m: &mut Machine, _i: u64| {
            m.charge_as(
                CoreId::new(0),
                "vm:hypercall",
                TraceKind::Trap,
                Cycles::new(520),
                TransitionId::Eret,
            );
            m.bump("loop.iters", 1);
            m.observe("loop.cost", 520);
            m.charge(CoreId::new(0), "guest", TraceKind::Guest, Cycles::new(80));
        };
        let mk = || {
            let mut m = Machine::without_tracing(Topology::split(2, 1));
            m.enable_profiling();
            m
        };
        let mut compiled = mk();
        let mut interpreted = mk();
        drive(&mut compiled, 300, true, body);
        for i in 0..300 {
            body(&mut interpreted, i);
        }
        assert!(compiled.iters_replayed() > 200);
        assert_replay_matches(&compiled, &interpreted);
        let (cs, is) = (compiled.spans().unwrap(), interpreted.spans().unwrap());
        assert_eq!(cs.total(), is.total());
        assert_eq!(cs.unattributed(), is.unattributed());
        assert_eq!(
            cs.exclusive(TransitionId::Eret),
            is.exclusive(TransitionId::Eret)
        );
        assert_eq!(cs.count(TransitionId::Eret), is.count(TransitionId::Eret));
        assert_eq!(cs.folded("run"), is.folded("run"));
        let (cm, im) = (compiled.metrics().unwrap(), interpreted.metrics().unwrap());
        assert_eq!(cm.counter("loop.iters"), im.counter("loop.iters"));
        let (ch, ih) = (
            cm.histogram("loop.cost").unwrap(),
            im.histogram("loop.cost").unwrap(),
        );
        assert_eq!(ch.count(), ih.count());
        assert_eq!(ch.sum(), ih.sum());
    }

    #[test]
    fn plain_loop_begin_refuses_profiled_machines() {
        let mut m = Machine::without_tracing(Topology::split(2, 1));
        m.enable_profiling();
        assert!(!m.loop_begin());
        drive(&mut m, 100, false, ping_pong);
        assert_eq!(m.iters_replayed(), 0);
    }

    #[test]
    fn ineligible_machines_stay_interpreted() {
        // Tracing on.
        let mut m = Machine::new(Topology::split(2, 1));
        assert!(!m.loop_begin());
        // Fault plan installed.
        let mut m = Machine::without_tracing(Topology::split(2, 1));
        m.set_fault_plan(FaultPlan::new(7).with_occurrence(FaultPoint::VirqDrop, 3));
        assert!(!m.loop_begin());
        // Finite watchdog.
        let mut m = Machine::without_tracing(Topology::split(2, 1));
        m.set_watchdog(Watchdog {
            cycle_budget: Some(u64::MAX - 1),
            livelock_threshold: None,
        });
        assert!(!m.loop_begin());
        // Event tracing on.
        let mut m = Machine::without_tracing(Topology::split(2, 1));
        m.enable_event_tracing(None);
        assert!(!m.loop_begin());
        // Even with a session refused, the loop still runs correctly.
        let mut refused = Machine::without_tracing(Topology::split(2, 1));
        refused.enable_event_tracing(None);
        drive(&mut refused, 50, false, ping_pong);
        assert_eq!(refused.iters_replayed(), 0);
        let mut interpreted = Machine::without_tracing(Topology::split(2, 1));
        interpreted.enable_event_tracing(None);
        for i in 0..50 {
            ping_pong(&mut interpreted, i);
        }
        assert_eq!(refused.clocks, interpreted.clocks);
    }

    #[test]
    fn config_changes_abort_an_open_session() {
        let mut m = Machine::without_tracing(Topology::split(2, 1));
        assert!(m.loop_begin());
        m.loop_iter_begin();
        ping_pong(&mut m, 0);
        m.set_watchdog(Watchdog {
            cycle_budget: Some(1 << 60),
            livelock_threshold: None,
        });
        assert!(m.loop_state.is_none());
        // Aborted sessions no-op from then on.
        assert_eq!(m.loop_replay(100), 0);
    }

    #[test]
    fn aperiodic_loops_give_up_and_stay_correct() {
        // Cost grows every iteration: no steady period exists.
        let body = |m: &mut Machine, i: u64| {
            m.charge(
                CoreId::new(0),
                "grow",
                TraceKind::Guest,
                Cycles::new(100 + i),
            );
        };
        let mut compiled = Machine::without_tracing(Topology::split(2, 1));
        let mut interpreted = Machine::without_tracing(Topology::split(2, 1));
        drive(&mut compiled, 200, false, body);
        for i in 0..200 {
            body(&mut interpreted, i);
        }
        assert_eq!(compiled.iters_replayed(), 0);
        assert!(!compiled.loop_compiled());
        assert_replay_matches(&compiled, &interpreted);
    }

    #[test]
    fn thread_transitions_counts_interpreted_and_replayed_alike() {
        let before = thread_transitions();
        let mut m = Machine::without_tracing(Topology::split(2, 1));
        drive(&mut m, 500, false, ping_pong);
        let counted = thread_transitions().wrapping_sub(before);
        // Two charges per iteration, whether interpreted or replayed.
        assert_eq!(counted, 1000);
        assert!(m.iters_replayed() > 400);
    }
}
