//! Stable content fingerprints over simulation input closures.
//!
//! A scenario's result is a pure function of its inputs: the hypervisor
//! kind, the cost model constants, the workload mix, the machine
//! topology, the fault plan, and the charging logic itself. This module
//! provides a small, dependency-free hash — 128-bit FNV-1a over a
//! canonical encoding — that higher layers (the suite's result cache
//! and baseline gate) use to content-address those closures.
//!
//! Two properties matter more than hash quality here:
//!
//! 1. **Stability.** The digest for a given closure must be identical
//!    across runs, platforms, and `--jobs` settings. The hasher
//!    therefore never consumes pointers, map iteration order, or
//!    platform-sized integers; every multi-byte value is written
//!    little-endian, and strings/sequences are length-prefixed so that
//!    adjacent fields cannot alias (`("ab", "c")` vs `("a", "bc")`).
//! 2. **Sensitivity.** Any change to any input must change the digest.
//!    Structured inputs are hashed through their `serde` `Value` tree
//!    ([`FingerprintHasher::write_serialize`]) with a tag byte per node
//!    kind, so `0u64`, `false`, and `""` all hash differently.
//!
//! Collision resistance against an adversary is explicitly a non-goal:
//! the cache keys are produced and consumed by the same trusted tool.

use std::fmt;

use serde::{Serialize, Value};

/// A 128-bit content fingerprint, displayed as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// The raw 128-bit digest.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// The canonical 32-digit lowercase hex rendering.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the canonical hex rendering back into a fingerprint.
    pub fn parse_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }

    /// Fingerprint of a single serializable value (fresh hasher).
    pub fn of_serialize<T: Serialize + ?Sized>(value: &T) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write_serialize(value);
        h.finish()
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a-128 hasher with a domain-separated encoding.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u128,
}

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

// Node-kind tags keep differently-typed but same-bit inputs distinct.
const TAG_NULL: u8 = 0x01;
const TAG_BOOL: u8 = 0x02;
const TAG_UINT: u8 = 0x03;
const TAG_INT: u8 = 0x04;
const TAG_FLOAT: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;
const TAG_U128: u8 = 0x09;

impl FingerprintHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> FingerprintHasher {
        FingerprintHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes (no framing — callers wanting self-delimiting
    /// input should use the typed writers).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one tag byte (domain separation).
    fn write_tag(&mut self, tag: u8) {
        self.write_bytes(&[tag]);
    }

    /// Absorbs a `u64`, little-endian, with a uint tag.
    pub fn write_u64(&mut self, v: u64) {
        self.write_tag(TAG_UINT);
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u32` (widened — the digest does not distinguish
    /// integer widths, only values).
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    /// Absorbs an `i64` with a distinct tag from unsigned values.
    pub fn write_i64(&mut self, v: i64) {
        self.write_tag(TAG_INT);
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_tag(TAG_STR);
        self.write_bytes(&(s.len() as u64).to_le_bytes());
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs any serializable value via its canonical `Value` tree.
    ///
    /// Object keys are hashed in insertion (declaration) order — the
    /// shim's `Value::Object` preserves field order, so this is as
    /// stable as the type definition itself. Renaming or reordering
    /// fields is a schema change and *should* move the digest.
    pub fn write_serialize<T: Serialize + ?Sized>(&mut self, value: &T) {
        self.write_value(&value.serialize());
    }

    fn write_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.write_tag(TAG_NULL),
            Value::Bool(b) => {
                self.write_tag(TAG_BOOL);
                self.write_bytes(&[u8::from(*b)]);
            }
            Value::U64(n) => self.write_u64(*n),
            Value::I64(n) => self.write_i64(*n),
            Value::U128(n) => {
                self.write_tag(TAG_U128);
                self.write_bytes(&n.to_le_bytes());
            }
            Value::F64(f) => {
                self.write_tag(TAG_FLOAT);
                // Hash the bit pattern: distinguishes -0.0 from 0.0 and
                // needs no decimal rendering to be canonical.
                self.write_bytes(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => self.write_str(s),
            Value::Array(items) => {
                self.write_tag(TAG_ARRAY);
                self.write_bytes(&(items.len() as u64).to_le_bytes());
                for item in items {
                    self.write_value(item);
                }
            }
            Value::Object(fields) => {
                self.write_tag(TAG_OBJECT);
                self.write_bytes(&(fields.len() as u64).to_le_bytes());
                for (k, val) in fields {
                    self.write_str(k);
                    self.write_value(val);
                }
            }
        }
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        FingerprintHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hasher_is_offset_basis() {
        assert_eq!(FingerprintHasher::new().finish().as_u128(), FNV_OFFSET);
    }

    #[test]
    fn hex_round_trip() {
        let mut h = FingerprintHasher::new();
        h.write_str("hello");
        let fp = h.finish();
        assert_eq!(Fingerprint::parse_hex(&fp.to_hex()), Some(fp));
        assert_eq!(fp.to_hex().len(), 32);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(Fingerprint::parse_hex(""), None);
        assert_eq!(Fingerprint::parse_hex("xyz"), None);
        assert_eq!(Fingerprint::parse_hex(&"g".repeat(32)), None);
        assert_eq!(Fingerprint::parse_hex(&"0".repeat(31)), None);
    }

    #[test]
    fn adjacent_strings_do_not_alias() {
        let mut a = FingerprintHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = FingerprintHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn typed_values_do_not_alias() {
        let zero = Fingerprint::of_serialize(&0u64);
        let fals = Fingerprint::of_serialize(&false);
        let empty = Fingerprint::of_serialize("");
        assert_ne!(zero, fals);
        assert_ne!(zero, empty);
        assert_ne!(fals, empty);
    }

    #[test]
    fn serialize_digest_tracks_value_changes() {
        #[derive(serde::Serialize)]
        struct Probe {
            a: u64,
            b: f64,
        }
        let base = Fingerprint::of_serialize(&Probe { a: 1, b: 2.0 });
        assert_eq!(base, Fingerprint::of_serialize(&Probe { a: 1, b: 2.0 }));
        assert_ne!(base, Fingerprint::of_serialize(&Probe { a: 2, b: 2.0 }));
        assert_ne!(base, Fingerprint::of_serialize(&Probe { a: 1, b: 2.5 }));
    }
}
