//! A deterministic future-event queue.
//!
//! Application-level simulations (netperf streams, Apache request storms,
//! memcached closed loops) need a calendar of future happenings: packet
//! arrivals from the client machine, timer expiries, deferred backend
//! work. [`EventQueue`] is a plain min-heap keyed by [`Cycles`] with a
//! monotonic sequence number breaking ties, so two events scheduled for the
//! same instant pop in scheduling order and runs are bit-for-bit
//! reproducible.

use crate::Cycles;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: `(when, seq, payload)` with reversed ordering so
/// the `BinaryHeap` max-heap behaves as a min-heap on `(when, seq)`.
#[derive(Debug)]
struct Entry<T> {
    when: Cycles,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.when == other.when && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest (when, seq) is the heap maximum.
        (other.when, other.seq).cmp(&(self.when, self.seq))
    }
}

/// A future-event calendar ordered by instant, FIFO among equal instants.
///
/// # Examples
///
/// ```
/// use hvx_engine::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles::new(200), "later");
/// q.schedule(Cycles::new(100), "sooner");
/// q.schedule(Cycles::new(100), "sooner-but-second");
///
/// assert_eq!(q.pop(), Some((Cycles::new(100), "sooner")));
/// assert_eq!(q.pop(), Some((Cycles::new(100), "sooner-but-second")));
/// assert_eq!(q.pop(), Some((Cycles::new(200), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to occur at `when`.
    pub fn schedule(&mut self, when: Cycles, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { when, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycles, T)> {
        self.heap.pop().map(|e| (e.when, e.payload))
    }

    /// The instant of the earliest event without removing it.
    pub fn peek_when(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.when)
    }

    /// Removes the earliest event only if it occurs at or before `now`.
    pub fn pop_due(&mut self, now: Cycles) -> Option<(Cycles, T)> {
        match self.peek_when() {
            Some(w) if w <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(30), 3);
        q.schedule(Cycles::new(10), 1);
        q.schedule(Cycles::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_instants_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles::new(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(100), "a");
        q.schedule(Cycles::new(200), "b");
        assert_eq!(q.pop_due(Cycles::new(50)), None);
        assert_eq!(q.pop_due(Cycles::new(100)), Some((Cycles::new(100), "a")));
        assert_eq!(q.pop_due(Cycles::new(150)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_when(), None);
        q.schedule(Cycles::new(7), ());
        assert_eq!(q.peek_when(), Some(Cycles::new(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
