//! A deterministic future-event queue.
//!
//! Application-level simulations (netperf streams, Apache request storms,
//! memcached closed loops) need a calendar of future happenings: packet
//! arrivals from the client machine, timer expiries, deferred backend
//! work. [`EventQueue`] is a min-heap keyed by `(Cycles, seq)` where the
//! monotonic sequence number breaks ties, so two events scheduled for the
//! same instant pop in scheduling order and runs are bit-for-bit
//! reproducible.
//!
//! # Layout
//!
//! The heap is a *flat four-ary* array rather than `BinaryHeap`'s binary
//! layout: sift-down touches one cache line of children per level and the
//! tree is half as deep, which measurably cuts pop cost in the simulation
//! hot loop (see `benches/` and DESIGN.md §5). Entries store `(when, seq)`
//! inline next to the payload, so ordering never chases a pointer, and
//! [`EventQueue::clear`] retains the allocation so scenario resets in the
//! parallel runner are allocation-free.

use crate::Cycles;

const ARITY: usize = 4;

/// A heap slot: key fields inline, compared as the tuple `(when, seq)`.
#[derive(Debug, Clone)]
struct Entry<T> {
    when: Cycles,
    seq: u64,
    payload: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (Cycles, u64) {
        (self.when, self.seq)
    }
}

/// A future-event calendar ordered by instant, FIFO among equal instants.
///
/// # Examples
///
/// ```
/// use hvx_engine::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles::new(200), "later");
/// q.schedule(Cycles::new(100), "sooner");
/// q.schedule(Cycles::new(100), "sooner-but-second");
///
/// assert_eq!(q.pop(), Some((Cycles::new(100), "sooner")));
/// assert_eq!(q.pop(), Some((Cycles::new(100), "sooner-but-second")));
/// assert_eq!(q.pop(), Some((Cycles::new(200), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    slots: Vec<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue that can hold `capacity` events without
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            slots: Vec::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Empties the queue, **keeping** its allocation and resetting the
    /// FIFO sequence counter — the scenario-reset path of the parallel
    /// runner, which reuses one queue across scenarios allocation-free.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.next_seq = 0;
    }

    /// Schedules `payload` to occur at `when`.
    pub fn schedule(&mut self, when: Cycles, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push(Entry { when, seq, payload });
        self.sift_up(self.slots.len() - 1);
    }

    /// Schedules `payload` at `now + delta`, saturating at the cycle
    /// horizon, and returns the scheduled instant. Sugar for the common
    /// "this happens `delta` cycles from now" pattern.
    pub fn schedule_after(&mut self, now: Cycles, delta: Cycles, payload: T) -> Cycles {
        let when = Cycles::new(now.as_u64().saturating_add(delta.as_u64()));
        self.schedule(when, payload);
        when
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycles, T)> {
        if self.slots.is_empty() {
            return None;
        }
        let last = self.slots.len() - 1;
        self.slots.swap(0, last);
        let entry = self.slots.pop().expect("checked non-empty");
        if !self.slots.is_empty() {
            self.sift_down(0);
        }
        Some((entry.when, entry.payload))
    }

    /// The instant of the earliest event without removing it.
    pub fn peek_when(&self) -> Option<Cycles> {
        self.slots.first().map(|e| e.when)
    }

    /// Removes the earliest event only if it occurs at or before `now`.
    pub fn pop_due(&mut self, now: Cycles) -> Option<(Cycles, T)> {
        match self.peek_when() {
            Some(w) if w <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    #[inline]
    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / ARITY;
            if self.slots[idx].key() >= self.slots[parent].key() {
                break;
            }
            self.slots.swap(idx, parent);
            idx = parent;
        }
    }

    #[inline]
    fn sift_down(&mut self, mut idx: usize) {
        let len = self.slots.len();
        loop {
            let first_child = idx * ARITY + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + ARITY).min(len);
            // The four children are adjacent, so this scan is one cache
            // line in the common case.
            let mut smallest = first_child;
            for child in first_child + 1..last_child {
                if self.slots[child].key() < self.slots[smallest].key() {
                    smallest = child;
                }
            }
            if self.slots[smallest].key() >= self.slots[idx].key() {
                break;
            }
            self.slots.swap(idx, smallest);
            idx = smallest;
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(30), 3);
        q.schedule(Cycles::new(10), 1);
        q.schedule(Cycles::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_instants_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles::new(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(100), "a");
        q.schedule(Cycles::new(200), "b");
        assert_eq!(q.pop_due(Cycles::new(50)), None);
        assert_eq!(q.pop_due(Cycles::new(100)), Some((Cycles::new(100), "a")));
        assert_eq!(q.pop_due(Cycles::new(150)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_when(), None);
        q.schedule(Cycles::new(7), ());
        assert_eq!(q.peek_when(), Some(Cycles::new(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn schedule_after_offsets_and_saturates() {
        let mut q = EventQueue::new();
        let when = q.schedule_after(Cycles::new(100), Cycles::new(40), "x");
        assert_eq!(when, Cycles::new(140));
        assert_eq!(q.pop(), Some((Cycles::new(140), "x")));
        let horizon = q.schedule_after(Cycles::MAX, Cycles::new(1), "clamped");
        assert_eq!(horizon, Cycles::MAX);
    }

    #[test]
    fn clear_keeps_allocation_and_resets_fifo() {
        let mut q = EventQueue::with_capacity(64);
        let cap = q.capacity();
        assert!(cap >= 64);
        for i in 0..50 {
            q.schedule(Cycles::new(5), i);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), cap, "clear must keep the allocation");
        // Sequence counter restarts: FIFO order is per-lifetime again.
        q.schedule(Cycles::new(9), 100);
        q.schedule(Cycles::new(9), 200);
        assert_eq!(q.pop(), Some((Cycles::new(9), 100)));
        assert_eq!(q.pop(), Some((Cycles::new(9), 200)));
    }

    #[test]
    fn reserve_grows_capacity() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.reserve(128);
        assert!(q.capacity() >= 128);
    }

    #[test]
    fn random_interleaving_matches_sorted_order() {
        // Deterministic LCG; no external rand needed here.
        let mut state = 0x2545F491_4F6CDD1Du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u64
        };
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        for i in 0..5_000 {
            let t = next() % 997;
            q.schedule(Cycles::new(t), i);
            expected.push((t, i));
        }
        expected.sort(); // (time, insertion index) == (when, seq) order
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(w, p)| (w.as_u64(), p))).collect();
        assert_eq!(got, expected);
    }
}
