//! Steady-state loop compilation: record → detect → replay.
//!
//! Every scenario in the suite spends almost all of its time in one
//! iteration loop whose per-iteration transition sequence is *steady*:
//! the same charges with the same costs, the same signal/wait pairs,
//! the same span and metric activity, block after block. Interpreting
//! that loop pays per-transition dispatch (cost-model lookup, tracer
//! branching, enum matching) millions of times for work that is fully
//! determined after a handful of iterations.
//!
//! This module compiles such loops. While a loop session is open
//! ([`crate::Machine::loop_begin`]), the machine records each
//! transition as a [`RawOp`]. After every recorded iteration the
//! recorder looks for a period `p ≤ MAX_PERIOD` such that the last
//! [`CONFIRM_BLOCKS`] blocks of `p` iterations are *congruent*:
//! identical op streams (ignoring variable fields such as wait targets
//! and signal arrivals) with identical per-core block-start clock
//! deltas. Once confirmed, the variable fields are classified:
//!
//! - a wait target that always equals a signal arrival held in a
//!   *slot* (covering both same-block signal→wait and cross-block
//!   pipelining) becomes [`Op::WaitSlot`];
//! - a target at a constant offset from some core's clock at the wait
//!   becomes [`Op::WaitNow`];
//! - a target advancing by a constant stride per block becomes
//!   [`Op::WaitLin`] (a constant target is the stride-0 case).
//!
//! Loop registers (suite-side loop-carried values such as TCP_RR's
//! next send instant) classify the same way. Anything unclassifiable
//! fails the compile and the loop stays interpreted — falling back is
//! always correct, compiling is only ever an optimization.
//!
//! The compiled [`Program`] is a flat op array replayed block-at-once
//! with branch-light straight-line code: clocks advance in place,
//! busy/charged/transition totals are applied as `delta × blocks`,
//! and (for profiled machines that opted in) one block's span/metric
//! delta is folded in via `merge_scaled`. Before a program is
//! accepted, the compiler replays the final recorded block from its
//! recorded start clocks and requires the result to equal the
//! machine's current clocks exactly — a self-check that catches any
//! misclassification before a single iteration is skipped.

use crate::TraceKind;
use hvx_obs::{MetricsRegistry, SpanTracer, TransitionId};

/// Longest iteration period (in iterations) the detector considers.
/// Covers per-iteration round-robin vCPU rotation (period = #vCPUs)
/// composed with event-coalescing parity (period 2) on 4-vCPU guests.
pub const MAX_PERIOD: usize = 8;

/// Consecutive congruent blocks required before a loop compiles.
pub const CONFIRM_BLOCKS: usize = 4;

/// Recorded iterations after which detection gives up and the session
/// reverts to plain interpretation (bounds recording memory).
pub const GIVE_UP_ITERS: usize = MAX_PERIOD * CONFIRM_BLOCKS * 2;

/// One machine-level operation captured while recording a loop.
/// Variable fields (arrivals, targets, clock snapshots, register
/// values) are excluded from congruence and classified separately.
#[derive(Debug, Clone)]
pub(crate) enum RawOp {
    /// A cost charge on one core (one simulated transition).
    Charge {
        core: u8,
        kind: TraceKind,
        cost: u64,
    },
    /// A cross-core signal; `arrival` is the computed arrival instant.
    Signal {
        from: u8,
        to: u8,
        latency: u64,
        arrival: u64,
    },
    /// A wait; `clocks` snapshots every core clock *before* the max.
    Wait {
        core: u8,
        target: u64,
        clocks: Box<[u64]>,
    },
    /// Span entry (recorded only on profiled sessions).
    SpanEnter(TransitionId),
    /// Span exit (recorded only on profiled sessions).
    SpanExit(TransitionId),
    /// Counter bump (recorded only on profiled sessions).
    Bump { name: &'static str, n: u64 },
    /// Histogram observation (recorded only on profiled sessions).
    Observe { name: &'static str, value: u64 },
    /// Suite-side loop register update, with a clock snapshot.
    Reg {
        idx: u8,
        value: u64,
        clocks: Box<[u64]>,
    },
}

/// Structural equality ignoring variable fields.
fn congruent(a: &RawOp, b: &RawOp) -> bool {
    use RawOp::*;
    match (a, b) {
        (
            Charge {
                core: c1,
                kind: k1,
                cost: x1,
            },
            Charge {
                core: c2,
                kind: k2,
                cost: x2,
            },
        ) => c1 == c2 && k1 == k2 && x1 == x2,
        (
            Signal {
                from: f1,
                to: t1,
                latency: l1,
                ..
            },
            Signal {
                from: f2,
                to: t2,
                latency: l2,
                ..
            },
        ) => f1 == f2 && t1 == t2 && l1 == l2,
        (Wait { core: c1, .. }, Wait { core: c2, .. }) => c1 == c2,
        (SpanEnter(x), SpanEnter(y)) | (SpanExit(x), SpanExit(y)) => x == y,
        (Bump { name: n1, n: v1 }, Bump { name: n2, n: v2 }) => n1 == n2 && v1 == v2,
        (
            Observe {
                name: n1,
                value: v1,
            },
            Observe {
                name: n2,
                value: v2,
            },
        ) => n1 == n2 && v1 == v2,
        (Reg { idx: i1, .. }, Reg { idx: i2, .. }) => i1 == i2,
        _ => false,
    }
}

/// A pre-resolved compiled operation. No HashMap lookups, no cost
/// model, no tracer branches — just index arithmetic over `clocks`,
/// `slots`, and `lin` arrays.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `clocks[core] += cost`.
    Charge { core: u8, cost: u64 },
    /// `slots[slot] = clocks[from] + latency`.
    Signal { slot: u16, from: u8, latency: u64 },
    /// `clocks[core] = max(clocks[core], slots[slot])`.
    WaitSlot { core: u8, slot: u16 },
    /// `clocks[core] = max(clocks[core], clocks[src] ⊞ offset)`
    /// (`⊞` = wrapping add; `offset` is two's-complement).
    WaitNow { core: u8, src: u8, offset: u64 },
    /// `lin[lin] ⊞= step; clocks[core] = max(clocks[core], lin[lin])`.
    WaitLin { core: u8, lin: u16, step: u64 },
    /// `regs[idx] = clocks[src] ⊞ offset`.
    RegNow { idx: u8, src: u8, offset: u64 },
    /// `lin[lin] ⊞= step; regs[idx] = lin[lin]`.
    RegLin { idx: u8, lin: u16, step: u64 },
}

/// Batched span/metric delta for one steady-state block, applied via
/// `merge_scaled(×blocks)` on replay.
#[derive(Debug, Clone)]
pub(crate) struct ProfileDelta {
    pub(crate) spans: SpanTracer,
    pub(crate) metrics: MetricsRegistry,
}

/// A compiled steady-state loop: the flat op array plus its live
/// state (signal slots, linear accumulators, loop registers) and the
/// per-block aggregates replay charges in bulk.
#[derive(Debug, Clone)]
pub(crate) struct Program {
    /// Iterations per block.
    pub(crate) period: u64,
    ops: Vec<Op>,
    /// Live signal-arrival slots (cross-block pipelining state).
    slots: Vec<u64>,
    /// Live linear accumulators (one per `WaitLin`/`RegLin` op).
    lin: Vec<u64>,
    /// Live loop-register values, readable via `Machine::loop_reg`.
    pub(crate) regs: Vec<u64>,
    /// Per-core busy-cycle delta per block.
    pub(crate) busy_delta: Vec<u64>,
    /// Total charged cycles per block.
    pub(crate) charged_delta: u64,
    /// Charges (simulated transitions) per block.
    pub(crate) charges_per_block: u64,
    /// Zero-cost charges trailing the last nonzero charge in a block.
    pub(crate) tail_zero_run: u64,
    /// True when the block has charges and all of them are zero-cost.
    pub(crate) all_zero: bool,
    /// Span/metric delta per block (profiled sessions only).
    pub(crate) profile_delta: Option<Box<ProfileDelta>>,
}

impl Program {
    /// Replays `blocks` blocks in place over `clocks`, advancing the
    /// program's live slot/linear/register state.
    pub(crate) fn run_blocks(&mut self, clocks: &mut [u64], blocks: u64) {
        for _ in 0..blocks {
            for op in &self.ops {
                match *op {
                    Op::Charge { core, cost } => clocks[core as usize] += cost,
                    Op::Signal {
                        slot,
                        from,
                        latency,
                    } => {
                        self.slots[slot as usize] = clocks[from as usize] + latency;
                    }
                    Op::WaitSlot { core, slot } => {
                        let t = self.slots[slot as usize];
                        let c = &mut clocks[core as usize];
                        if t > *c {
                            *c = t;
                        }
                    }
                    Op::WaitNow { core, src, offset } => {
                        let t = clocks[src as usize].wrapping_add(offset);
                        let c = &mut clocks[core as usize];
                        if t > *c {
                            *c = t;
                        }
                    }
                    Op::WaitLin { core, lin, step } => {
                        let v = self.lin[lin as usize].wrapping_add(step);
                        self.lin[lin as usize] = v;
                        let c = &mut clocks[core as usize];
                        if v > *c {
                            *c = v;
                        }
                    }
                    Op::RegNow { idx, src, offset } => {
                        self.regs[idx as usize] = clocks[src as usize].wrapping_add(offset);
                    }
                    Op::RegLin { idx, lin, step } => {
                        let v = self.lin[lin as usize].wrapping_add(step);
                        self.lin[lin as usize] = v;
                        self.regs[idx as usize] = v;
                    }
                }
            }
        }
    }
}

/// A recording loop session: raw op streams per iteration plus the
/// clock snapshot taken at each iteration start.
#[derive(Debug, Clone, Default)]
pub(crate) struct Recorder {
    iters: Vec<Vec<RawOp>>,
    starts: Vec<Box<[u64]>>,
    cur: Vec<RawOp>,
    pub(crate) iter_open: bool,
    pub(crate) profiled: bool,
}

impl Recorder {
    pub(crate) fn new(profiled: bool) -> Recorder {
        Recorder {
            profiled,
            ..Recorder::default()
        }
    }

    /// Records one op. Returns `false` (→ abort the session) when an
    /// op arrives outside an open iteration: the loop body is then not
    /// the only thing charging the machine and skipping is unsound.
    pub(crate) fn record(&mut self, op: RawOp) -> bool {
        if !self.iter_open {
            return false;
        }
        self.cur.push(op);
        true
    }

    /// Opens iteration `n` with the machine's current clocks.
    pub(crate) fn begin_iter(&mut self, clocks: Box<[u64]>) {
        if self.iter_open {
            self.iters.push(std::mem::take(&mut self.cur));
        }
        self.starts.push(clocks);
        self.iter_open = true;
    }

    /// Closes the current iteration, if one is open.
    pub(crate) fn close_iter(&mut self) {
        if self.iter_open {
            self.iters.push(std::mem::take(&mut self.cur));
            self.iter_open = false;
        }
    }

    pub(crate) fn recorded_iters(&self) -> usize {
        self.iters.len()
    }

    /// Attempts to compile: smallest period wins. `current` must be
    /// the machine's clocks at the end of the last closed iteration.
    pub(crate) fn try_compile(&self, current: &[u64]) -> Option<Program> {
        for p in 1..=MAX_PERIOD {
            if CONFIRM_BLOCKS * p > self.iters.len() {
                break;
            }
            if let Some(prog) = self.try_period(p, current) {
                return Some(prog);
            }
        }
        None
    }

    fn try_period(&self, p: usize, current: &[u64]) -> Option<Program> {
        let w = CONFIRM_BLOCKS;
        let base = self.iters.len() - w * p;
        let block: Vec<Vec<&RawOp>> = (0..w)
            .map(|b| {
                self.iters[base + b * p..base + (b + 1) * p]
                    .iter()
                    .flatten()
                    .collect()
            })
            .collect();
        let len = block[0].len();
        if block.iter().any(|b| b.len() != len) {
            return None;
        }
        for (k, &op0) in block[0].iter().enumerate() {
            if (1..w).any(|b| !congruent(op0, block[b][k])) {
                return None;
            }
        }
        // Block-start clock deltas must be identical between every
        // consecutive block pair, per core, with the current clocks
        // acting as the final block's end.
        let start = |b: usize| &self.starts[base + b * p];
        for (c, &cur) in current.iter().enumerate() {
            let d0 = start(1)[c].wrapping_sub(start(0)[c]);
            for b in 1..w - 1 {
                if start(b + 1)[c].wrapping_sub(start(b)[c]) != d0 {
                    return None;
                }
            }
            if cur.wrapping_sub(start(w - 1)[c]) != d0 {
                return None;
            }
        }
        self.build(&block, p, base, current)
    }

    /// Classifies variable fields and assembles the program, then
    /// self-checks by replaying the final recorded block.
    #[allow(clippy::too_many_lines)]
    fn build(
        &self,
        block: &[Vec<&RawOp>],
        p: usize,
        base: usize,
        current: &[u64],
    ) -> Option<Program> {
        let w = CONFIRM_BLOCKS;
        let len = block[0].len();
        // Slot table: one per signal op position in the block.
        let sig_pos: Vec<usize> = (0..len)
            .filter(|&k| matches!(block[0][k], RawOp::Signal { .. }))
            .collect();
        if sig_pos.len() > u16::MAX as usize {
            return None;
        }
        let arrival = |b: usize, k: usize| match block[b][k] {
            RawOp::Signal { arrival, .. } => *arrival,
            _ => unreachable!("slot positions are signals"),
        };
        // For each variable value (wait target / reg value), pick a
        // classification that holds on every recorded instance.
        let cores = current.len();
        let classify = |k: usize,
                        allow_slot: bool,
                        targets: &dyn Fn(usize) -> u64,
                        snaps: &dyn Fn(usize, usize) -> u64,
                        lin_seed: &mut Vec<(u64, u64)>|
         -> Option<Classified> {
            // Slot: target equals the value a slot holds at this point
            // of the block — the arrival from this block for signals
            // earlier in the block, the previous block's arrival for
            // signals at or after this position (cross-block
            // pipelining). Prefer the most recent qualifying signal.
            let slot_value = |slot: usize, b: usize| -> Option<u64> {
                let spos = sig_pos[slot];
                if spos < k {
                    Some(arrival(b, spos))
                } else if b > 0 {
                    Some(arrival(b - 1, spos))
                } else {
                    None // unverifiable on the first block; allowed
                }
            };
            if allow_slot {
                for slot in (0..sig_pos.len()).rev() {
                    if (0..w).all(|b| slot_value(slot, b).is_none_or(|v| v == targets(b))) {
                        return Some(Classified::Slot(slot as u16));
                    }
                }
            }
            // Now: constant offset from some core's clock at this op.
            for src in 0..cores {
                let d0 = targets(0).wrapping_sub(snaps(0, src));
                if (1..w).all(|b| targets(b).wrapping_sub(snaps(b, src)) == d0) {
                    return Some(Classified::Now {
                        src: src as u8,
                        offset: d0,
                    });
                }
            }
            // Linear: constant stride per block (0 = constant value).
            let step = targets(1).wrapping_sub(targets(0));
            if (1..w - 1).all(|b| targets(b + 1).wrapping_sub(targets(b)) == step) {
                let idx = lin_seed.len() as u16;
                if idx == u16::MAX {
                    return None;
                }
                // Seed with the value observed in the second-to-last
                // block (the self-check block steps it to the last).
                lin_seed.push((targets(w - 2), step));
                return Some(Classified::Lin { idx, step });
            }
            None
        };

        let mut ops = Vec::with_capacity(len);
        let mut lin_seed: Vec<(u64, u64)> = Vec::new();
        let mut max_reg = 0usize;
        let mut has_reg = false;
        let mut profile = self.profiled.then(|| ProfileDelta {
            spans: SpanTracer::new(),
            metrics: MetricsRegistry::new(),
        });
        let mut busy_delta = vec![0u64; current.len()];
        let mut charged_delta = 0u64;
        let mut charges = 0u64;
        let mut tail_zero = 0u64;
        let mut any_nonzero = false;
        let mut next_slot = 0u16;
        for (k, &op0) in block[0].iter().enumerate() {
            match op0 {
                RawOp::Charge {
                    core,
                    kind: _,
                    cost,
                } => {
                    ops.push(Op::Charge {
                        core: *core,
                        cost: *cost,
                    });
                    busy_delta[*core as usize] += cost;
                    charged_delta += cost;
                    charges += 1;
                    if *cost == 0 {
                        tail_zero += 1;
                    } else {
                        tail_zero = 0;
                        any_nonzero = true;
                    }
                    if let Some(pd) = &mut profile {
                        pd.spans.charge(*cost);
                    }
                }
                RawOp::Signal { from, latency, .. } => {
                    ops.push(Op::Signal {
                        slot: next_slot,
                        from: *from,
                        latency: *latency,
                    });
                    next_slot += 1;
                }
                RawOp::Wait { core, .. } => {
                    let targets = |b: usize| match block[b][k] {
                        RawOp::Wait { target, .. } => *target,
                        _ => unreachable!(),
                    };
                    let snaps = |b: usize, src: usize| -> u64 {
                        match block[b][k] {
                            RawOp::Wait { clocks, .. } => clocks[src],
                            _ => unreachable!(),
                        }
                    };
                    match classify(k, true, &targets, &snaps, &mut lin_seed)? {
                        Classified::Slot(slot) => ops.push(Op::WaitSlot { core: *core, slot }),
                        Classified::Now { src, offset } => ops.push(Op::WaitNow {
                            core: *core,
                            src,
                            offset,
                        }),
                        Classified::Lin { idx, step } => ops.push(Op::WaitLin {
                            core: *core,
                            lin: idx,
                            step,
                        }),
                    }
                }
                RawOp::SpanEnter(id) => {
                    let pd = profile.as_mut()?;
                    pd.spans.enter(*id);
                }
                RawOp::SpanExit(id) => {
                    let pd = profile.as_mut()?;
                    pd.spans.exit(*id);
                }
                RawOp::Bump { name, n } => {
                    let pd = profile.as_mut()?;
                    pd.metrics.bump(name, *n);
                }
                RawOp::Observe { name, value } => {
                    let pd = profile.as_mut()?;
                    pd.metrics.observe(name, *value);
                }
                RawOp::Reg { idx, .. } => {
                    let targets = |b: usize| match block[b][k] {
                        RawOp::Reg { value, .. } => *value,
                        _ => unreachable!(),
                    };
                    let snaps = |b: usize, src: usize| -> u64 {
                        match block[b][k] {
                            RawOp::Reg { clocks, .. } => clocks[src],
                            _ => unreachable!(),
                        }
                    };
                    max_reg = max_reg.max(*idx as usize);
                    has_reg = true;
                    match classify(k, false, &targets, &snaps, &mut lin_seed)? {
                        Classified::Slot(_) => unreachable!("regs never classify as slots"),
                        Classified::Now { src, offset } => ops.push(Op::RegNow {
                            idx: *idx,
                            src,
                            offset,
                        }),
                        Classified::Lin { idx: lin, step } => ops.push(Op::RegLin {
                            idx: *idx,
                            lin,
                            step,
                        }),
                    }
                }
            }
        }
        // A profiled block must leave the span stack balanced, or the
        // batched delta cannot be merged.
        if let Some(pd) = &profile {
            if pd.spans.depth() != 0 {
                return None;
            }
        }

        // Live state seeded from the *second-to-last* block so the
        // self-check replay of the last block starts from truth.
        let start = |b: usize| &self.starts[base + b * p];
        let slots_at = |b: usize| -> Vec<u64> { sig_pos.iter().map(|&s| arrival(b, s)).collect() };
        let regs_at = |b: usize| -> Vec<u64> {
            let mut regs = vec![0u64; if has_reg { max_reg + 1 } else { 0 }];
            for op in &block[b] {
                if let RawOp::Reg { idx, value, .. } = op {
                    regs[*idx as usize] = *value;
                }
            }
            regs
        };
        let mut check = Program {
            period: p as u64,
            ops,
            slots: slots_at(w - 2),
            lin: lin_seed.iter().map(|&(v, _)| v).collect(),
            regs: regs_at(w - 2),
            busy_delta,
            charged_delta,
            charges_per_block: charges,
            tail_zero_run: tail_zero,
            all_zero: charges > 0 && !any_nonzero,
            profile_delta: profile.map(Box::new),
        };
        // Self-check: replay the last recorded block and require exact
        // clock agreement with the machine.
        let mut clocks: Vec<u64> = start(w - 1).to_vec();
        check.run_blocks(&mut clocks, 1);
        if clocks != current {
            return None;
        }
        // The check replay stepped lin/slots/regs to the last block's
        // values, which is exactly the live state replay must resume
        // from — but recompute from the record to stay obviously
        // correct even if the replayer drifts.
        check.slots = slots_at(w - 1);
        check.regs = regs_at(w - 1);
        check.lin = lin_seed
            .iter()
            .map(|&(v, step)| v.wrapping_add(step))
            .collect();
        Some(check)
    }
}

/// Result of classifying one variable field.
enum Classified {
    Slot(u16),
    Now { src: u8, offset: u64 },
    Lin { idx: u16, step: u64 },
}

/// The state a loop session carries on the machine.
#[derive(Debug, Clone)]
pub(crate) enum LoopState {
    /// Recording iterations, hunting for a steady period.
    Recording(Recorder),
    /// Compiled; iterations replay in bulk.
    Ready(Program),
}
