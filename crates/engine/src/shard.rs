//! Conservative parallel discrete-event sharding across hosts.
//!
//! A multi-host simulation (a rack of servers exchanging packets) does
//! not need one global [`EventQueue`]: hosts only interact through
//! **wire messages** whose modelled latency is bounded below by the
//! physical link. That bound is exploitable *lookahead* in the
//! classical conservative-PDES sense (Chandy/Misra/Bryant): a host may
//! safely simulate ahead of its neighbors by up to the minimum wire
//! latency, because nothing a neighbor does *now* can affect it sooner
//! than one wire flight from now.
//!
//! [`ShardSim`] implements the bulk-synchronous variant of that
//! algorithm. Each host owns a **shard**: its own model state and its
//! own [`EventQueue`]. Execution proceeds in windows:
//!
//! 1. `window_start` = the minimum next-event instant across all
//!    shards (the global virtual-time floor);
//! 2. `horizon` = `window_start + lookahead` (exclusive);
//! 3. every shard independently drains its local events with
//!    `when < horizon` — including local follow-ups they schedule —
//!    collecting cross-host sends into a per-shard outbox;
//! 4. a single-threaded barrier delivers every outbox in (sender
//!    index, emission order), then the next window begins.
//!
//! Step 3 is safe to run on parallel OS threads because a send's
//! arrival is `depart + latency ≥ window_start + lookahead = horizon`
//! ([`HostCtx::send`] enforces both bounds), so no message can land
//! inside the window that produced it. Step 4 is what makes the
//! parallel execution **byte-identical** to the serial one: delivery
//! order into each destination queue — and therefore the FIFO sequence
//! numbers that break timestamp ties — is a pure function of (sender
//! index, emission order), never of thread completion order.
//! [`ShardSim::run`] and [`ShardSim::run_parallel`] share every line of
//! the window algorithm; they differ only in whether step 3's loop body
//! runs on one thread or many.
//!
//! # Example
//!
//! A two-host ping-pong where each hop charges local work:
//!
//! ```
//! use hvx_engine::shard::{HostCtx, HostModel, ShardSim};
//! use hvx_engine::Cycles;
//!
//! struct Host {
//!     clock: Cycles,
//!     served: u64,
//! }
//! impl HostModel for Host {
//!     type Event = u32; // remaining hops
//!     fn handle(&mut self, when: Cycles, hops: u32, ctx: &mut HostCtx<'_, u32>) {
//!         self.clock = self.clock.max(when) + Cycles::new(500); // local work
//!         self.served += 1;
//!         if hops > 0 {
//!             let to = (ctx.host() + 1) % ctx.hosts();
//!             ctx.send(to, self.clock, ctx.lookahead(), hops - 1);
//!         }
//!     }
//! }
//!
//! let mut sim = ShardSim::new(Cycles::new(1_000));
//! sim.add_host(Host { clock: Cycles::ZERO, served: 0 });
//! sim.add_host(Host { clock: Cycles::ZERO, served: 0 });
//! sim.schedule(0, Cycles::ZERO, 3);
//! let stats = sim.run();
//! assert_eq!(stats.events, 4);
//! assert_eq!(sim.host(0).served + sim.host(1).served, 4);
//! ```

use crate::{Cycles, EventQueue};
use hvx_obs::HistogramSketch;

/// Per-host behaviour plugged into a [`ShardSim`].
///
/// The model owns all host-local state (clocks, counters, a whole
/// [`Machine`](crate::Machine)); the executor owns the calendar. One
/// event is handled at a time per host, in nondecreasing timestamp
/// order, FIFO among equal instants.
pub trait HostModel {
    /// The event payload exchanged on this host's calendar and wires.
    type Event;

    /// Handles one due event. `when` is the event's scheduled instant
    /// (the host's local virtual time never runs backwards across
    /// calls). Local follow-ups and cross-host sends go through `ctx`.
    fn handle(&mut self, when: Cycles, event: Self::Event, ctx: &mut HostCtx<'_, Self::Event>);
}

/// A cross-host message with its precomputed arrival instant.
#[derive(Debug)]
struct Outgoing<E> {
    to: usize,
    arrival: Cycles,
    payload: E,
}

/// One host's drained window: `(host index, outbox, events drained)`.
type Drained<E> = (usize, Vec<Outgoing<E>>, u64);

/// The scheduling surface a [`HostModel`] sees while handling an event.
#[derive(Debug)]
pub struct HostCtx<'a, E> {
    now: Cycles,
    host: usize,
    hosts: usize,
    lookahead: Cycles,
    local: &'a mut Vec<(Cycles, E)>,
    sends: &'a mut Vec<Outgoing<E>>,
}

impl<E> HostCtx<'_, E> {
    /// The instant of the event being handled.
    #[inline]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// This host's index.
    #[inline]
    pub fn host(&self) -> usize {
        self.host
    }

    /// Total hosts in the simulation.
    #[inline]
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// The executor's lookahead bound — the minimum legal wire latency.
    #[inline]
    pub fn lookahead(&self) -> Cycles {
        self.lookahead
    }

    /// Schedules a host-local follow-up at `when`.
    ///
    /// # Panics
    ///
    /// Panics if `when` precedes the event being handled — a local
    /// event in the past would have to run in an already-closed window.
    pub fn schedule_local(&mut self, when: Cycles, event: E) {
        assert!(
            when >= self.now,
            "local event at {when} precedes the current instant {}",
            self.now
        );
        self.local.push((when, event));
    }

    /// Sends a wire message to host `to`, departing at `depart` (the
    /// sender-side instant the packet leaves, typically the sending
    /// core's clock) and arriving `latency` later.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range, if `depart` precedes the event
    /// being handled, or if `latency < lookahead` — a wire faster than
    /// the lookahead bound would break the conservatism argument (its
    /// arrival could land inside the current window on another thread).
    pub fn send(&mut self, to: usize, depart: Cycles, latency: Cycles, payload: E) {
        assert!(to < self.hosts, "host {to} out of range ({})", self.hosts);
        assert!(
            depart >= self.now,
            "departure {depart} precedes the current instant {}",
            self.now
        );
        assert!(
            latency >= self.lookahead,
            "wire latency {latency} below the lookahead bound {}",
            self.lookahead
        );
        self.sends.push(Outgoing {
            to,
            arrival: depart + latency,
            payload,
        });
    }
}

/// One host's shard: its model and its private calendar.
struct Shard<M: HostModel> {
    model: M,
    queue: EventQueue<M::Event>,
}

impl<M: HostModel> std::fmt::Debug for Shard<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("pending", &self.queue.len())
            .finish_non_exhaustive()
    }
}

/// Execution counters and per-window telemetry of one [`ShardSim`]
/// run.
///
/// The histograms make `run_parallel` speedup regressions diagnosable:
/// small [`ShardStats::window_events`] values mean windows are too
/// narrow to amortize the barrier, and a wide
/// [`ShardStats::host_imbalance`] spread means one host serializes each
/// window while the others idle. Both are computed from the canonical
/// per-window per-host event counts, so serial and parallel runs
/// produce byte-identical stats.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Synchronization windows executed.
    pub windows: u64,
    /// Events handled across all hosts.
    pub events: u64,
    /// Cross-host wire messages delivered at window barriers.
    pub wires: u64,
    /// Host-windows in which a shard held pending events but none below
    /// the horizon: the host woke at the barrier only to find its next
    /// event beyond the lookahead bound.
    pub lookahead_stalls: u64,
    /// Distribution of events handled per window (all hosts summed).
    pub window_events: HistogramSketch,
    /// Distribution of the per-window event spread across hosts
    /// (`max(per-host events) - min(per-host events)`).
    pub host_imbalance: HistogramSketch,
}

impl ShardStats {
    /// Folds one completed window into the stats: `per_host` holds the
    /// events each host drained this window, in host-index order. Both
    /// executors call this with identical inputs — the counts are a
    /// pure function of the window, never of thread scheduling.
    fn record_window(&mut self, per_host: &[u64]) {
        self.windows += 1;
        let total: u64 = per_host.iter().sum();
        self.events += total;
        self.window_events.record(total);
        let max = per_host.iter().copied().max().unwrap_or(0);
        let min = per_host.iter().copied().min().unwrap_or(0);
        self.host_imbalance.record(max - min);
    }
}

/// A conservative, windowed multi-host discrete-event executor. See
/// the [module docs](self) for the algorithm and determinism argument.
pub struct ShardSim<M: HostModel> {
    shards: Vec<Shard<M>>,
    lookahead: Cycles,
}

impl<M: HostModel> std::fmt::Debug for ShardSim<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSim")
            .field("hosts", &self.shards.len())
            .field("lookahead", &self.lookahead)
            .finish_non_exhaustive()
    }
}

impl<M: HostModel> ShardSim<M> {
    /// Creates an executor with the given lookahead bound: the minimum
    /// wire latency any host may use, and therefore how far a host may
    /// run ahead of the global virtual-time floor.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero — windows would never admit any
    /// event and the simulation could not advance.
    pub fn new(lookahead: Cycles) -> Self {
        assert!(!lookahead.is_zero(), "lookahead must be positive");
        ShardSim {
            shards: Vec::new(),
            lookahead,
        }
    }

    /// Adds a host and returns its index.
    pub fn add_host(&mut self, model: M) -> usize {
        self.shards.push(Shard {
            model,
            queue: EventQueue::new(),
        });
        self.shards.len() - 1
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.shards.len()
    }

    /// The lookahead bound this executor was built with.
    pub fn lookahead(&self) -> Cycles {
        self.lookahead
    }

    /// Seeds an event on `host`'s calendar before (or between) runs.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn schedule(&mut self, host: usize, when: Cycles, event: M::Event) {
        self.shards[host].queue.schedule(when, event);
    }

    /// Shared access to a host's model.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn host(&self, host: usize) -> &M {
        &self.shards[host].model
    }

    /// Exclusive access to a host's model.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn host_mut(&mut self, host: usize) -> &mut M {
        &mut self.shards[host].model
    }

    /// Consumes the executor, returning every host model in index
    /// order.
    pub fn into_models(self) -> Vec<M> {
        self.shards.into_iter().map(|s| s.model).collect()
    }

    /// The global virtual-time floor: the earliest pending event across
    /// all hosts, or `None` when every calendar is empty.
    pub fn next_event(&self) -> Option<Cycles> {
        self.shards.iter().filter_map(|s| s.queue.peek_when()).min()
    }

    /// Runs to completion on the calling thread — the serial reference
    /// execution. Uses the exact window/delivery algorithm of
    /// [`ShardSim::run_parallel`], so both produce identical state.
    pub fn run(&mut self) -> ShardStats {
        let mut stats = ShardStats::default();
        let lookahead = self.lookahead;
        let hosts = self.shards.len();
        while let Some(start) = self.next_event() {
            let horizon = start + lookahead;
            stats.lookahead_stalls += self.stalled_hosts(horizon);
            let mut outboxes: Vec<Vec<Outgoing<M::Event>>> = Vec::with_capacity(hosts);
            let mut per_host = Vec::with_capacity(hosts);
            for (idx, shard) in self.shards.iter_mut().enumerate() {
                let (outbox, events) = drain_window(shard, idx, hosts, horizon, lookahead);
                per_host.push(events);
                outboxes.push(outbox);
            }
            stats.record_window(&per_host);
            stats.wires += self.deliver(outboxes);
        }
        stats
    }

    /// Runs to completion with each window's step 3 fanned out over up
    /// to `jobs` OS threads. Shards are statically partitioned per
    /// window; every shard is touched by exactly one thread, and the
    /// barrier delivery runs single-threaded in sender order, so the
    /// final state is byte-identical to [`ShardSim::run`].
    pub fn run_parallel(&mut self, jobs: usize) -> ShardStats
    where
        M: Send,
        M::Event: Send,
    {
        let hosts = self.shards.len();
        let workers = jobs.min(hosts).max(1);
        if workers <= 1 {
            return self.run();
        }
        let mut stats = ShardStats::default();
        let lookahead = self.lookahead;
        while let Some(start) = self.next_event() {
            let horizon = start + lookahead;
            stats.lookahead_stalls += self.stalled_hosts(horizon);
            let chunk = hosts.div_ceil(workers);
            // (host index, outbox, events) triples, collected per chunk
            // and re-sorted into host order below: completion order of
            // the worker threads never reaches the delivery step.
            let mut drained: Vec<Drained<M::Event>> = Vec::with_capacity(hosts);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for (ci, shard_chunk) in self.shards.chunks_mut(chunk).enumerate() {
                    handles.push(scope.spawn(move || {
                        let mut out = Vec::with_capacity(shard_chunk.len());
                        for (j, shard) in shard_chunk.iter_mut().enumerate() {
                            let idx = ci * chunk + j;
                            let (outbox, events) =
                                drain_window(shard, idx, hosts, horizon, lookahead);
                            out.push((idx, outbox, events));
                        }
                        out
                    }));
                }
                for handle in handles {
                    drained.extend(handle.join().expect("shard worker panicked"));
                }
            });
            drained.sort_by_key(|(idx, ..)| *idx);
            let mut outboxes = Vec::with_capacity(hosts);
            let mut per_host = Vec::with_capacity(hosts);
            for (_, outbox, events) in drained {
                per_host.push(events);
                outboxes.push(outbox);
            }
            stats.record_window(&per_host);
            stats.wires += self.deliver(outboxes);
        }
        stats
    }

    /// Hosts whose calendars are non-empty but whose next event lies at
    /// or beyond `horizon`: they stall this window, waiting out the
    /// lookahead bound. Evaluated at the window start (before any
    /// drain), so serial and parallel runs count identically.
    fn stalled_hosts(&self, horizon: Cycles) -> u64 {
        self.shards
            .iter()
            .filter(|s| s.queue.peek_when().is_some_and(|w| w >= horizon))
            .count() as u64
    }

    /// Step 4: the single-threaded delivery barrier. Outboxes arrive in
    /// sender-index order and are drained in emission order, so the
    /// insertion sequence into every destination queue — and with it
    /// the FIFO tie-break among equal arrival instants — is canonical.
    fn deliver(&mut self, outboxes: Vec<Vec<Outgoing<M::Event>>>) -> u64 {
        let mut wires = 0;
        for outbox in outboxes {
            for wire in outbox {
                self.shards[wire.to]
                    .queue
                    .schedule(wire.arrival, wire.payload);
                wires += 1;
            }
        }
        wires
    }
}

/// Step 3 for one shard: drain every local event below `horizon`
/// (follow-ups included), accumulating cross-host sends. Shared by the
/// serial and parallel executors — this function *is* the semantics.
fn drain_window<M: HostModel>(
    shard: &mut Shard<M>,
    host: usize,
    hosts: usize,
    horizon: Cycles,
    lookahead: Cycles,
) -> (Vec<Outgoing<M::Event>>, u64) {
    let mut outbox = Vec::new();
    let mut local = Vec::new();
    let mut events = 0;
    while shard.queue.peek_when().is_some_and(|when| when < horizon) {
        let (when, event) = shard.queue.pop().expect("peeked event exists");
        events += 1;
        let mut ctx = HostCtx {
            now: when,
            host,
            hosts,
            lookahead,
            local: &mut local,
            sends: &mut outbox,
        };
        shard.model.handle(when, event, &mut ctx);
        // Emission order feeds the queue's FIFO sequence numbers, so
        // follow-ups among equal instants replay in the order the
        // model produced them.
        for (at, ev) in local.drain(..) {
            shard.queue.schedule(at, ev);
        }
    }
    (outbox, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A host that logs every event it sees and forwards tokens around
    /// the ring with per-host work.
    struct Ring {
        work: Cycles,
        log: Vec<(u64, u32)>,
        clock: Cycles,
    }

    impl HostModel for Ring {
        type Event = u32; // remaining hops

        fn handle(&mut self, when: Cycles, hops: u32, ctx: &mut HostCtx<'_, u32>) {
            self.clock = self.clock.max(when) + self.work;
            self.log.push((when.as_u64(), hops));
            if hops > 0 {
                let to = (ctx.host() + 1) % ctx.hosts();
                ctx.send(to, self.clock, ctx.lookahead(), hops - 1);
            }
        }
    }

    fn ring_sim(hosts: usize, work: u64) -> ShardSim<Ring> {
        let mut sim = ShardSim::new(Cycles::new(1_000));
        for _ in 0..hosts {
            sim.add_host(Ring {
                work: Cycles::new(work),
                log: Vec::new(),
                clock: Cycles::ZERO,
            });
        }
        sim
    }

    fn seed(sim: &mut ShardSim<Ring>, tokens: u32, hops: u32) {
        for t in 0..tokens {
            sim.schedule(
                t as usize % sim.hosts(),
                Cycles::new(u64::from(t) * 10),
                hops,
            );
        }
    }

    fn final_state(sim: ShardSim<Ring>) -> Vec<(u64, Vec<(u64, u32)>)> {
        sim.into_models()
            .into_iter()
            .map(|h| (h.clock.as_u64(), h.log))
            .collect()
    }

    #[test]
    fn serial_and_parallel_runs_are_identical() {
        for hosts in [1, 2, 3, 8] {
            for jobs in [2, 4, 16] {
                let mut a = ring_sim(hosts, 700);
                seed(&mut a, 6, 9);
                let sa = a.run();

                let mut b = ring_sim(hosts, 700);
                seed(&mut b, 6, 9);
                let sb = b.run_parallel(jobs);

                assert_eq!(sa, sb, "stats diverged at hosts={hosts} jobs={jobs}");
                assert_eq!(
                    final_state(a),
                    final_state(b),
                    "state diverged at hosts={hosts} jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn ring_token_visits_every_host_in_order() {
        let mut sim = ring_sim(3, 500);
        sim.schedule(0, Cycles::ZERO, 5);
        let stats = sim.run();
        assert_eq!(stats.events, 6);
        assert_eq!(stats.wires, 5);
        let models = sim.into_models();
        // 6 hops over 3 hosts: hosts 0,1,2 each see 2 events.
        assert_eq!(models.iter().map(|m| m.log.len()).sum::<usize>(), 6);
        for m in &models {
            assert_eq!(m.log.len(), 2);
        }
    }

    #[test]
    fn equal_instant_wires_deliver_in_sender_order() {
        /// Every host sends to host 0 at the same departure instant;
        /// host 0 records arrival order.
        struct Fanin {
            received: Vec<u32>,
        }
        impl HostModel for Fanin {
            type Event = u32;
            fn handle(&mut self, _when: Cycles, ev: u32, ctx: &mut HostCtx<'_, u32>) {
                if ev == 0 {
                    // Kick event: send tagged messages to host 0.
                    let tag = ctx.host() as u32 + 100;
                    ctx.send(0, ctx.now(), ctx.lookahead(), tag);
                } else {
                    self.received.push(ev);
                }
            }
        }
        let run = |parallel: bool| {
            let mut sim = ShardSim::new(Cycles::new(1_000));
            for _ in 0..4 {
                sim.add_host(Fanin {
                    received: Vec::new(),
                });
            }
            for h in 0..4 {
                sim.schedule(h, Cycles::new(50), 0);
            }
            if parallel {
                sim.run_parallel(4);
            } else {
                sim.run();
            }
            sim.into_models().remove(0).received
        };
        // Identical departure + identical latency → identical arrival;
        // the FIFO tie-break must be sender order in both modes.
        assert_eq!(run(false), vec![100, 101, 102, 103]);
        assert_eq!(run(true), vec![100, 101, 102, 103]);
    }

    #[test]
    fn hosts_one_degenerates_to_a_plain_event_loop() {
        let mut sim = ring_sim(1, 300);
        sim.schedule(0, Cycles::ZERO, 4);
        let stats = sim.run();
        assert_eq!(stats.events, 5);
        // Self-sends still ride the barrier.
        assert_eq!(stats.wires, 4);
    }

    #[test]
    #[should_panic(expected = "below the lookahead bound")]
    fn undercutting_the_lookahead_panics() {
        struct Fast;
        impl HostModel for Fast {
            type Event = ();
            fn handle(&mut self, _: Cycles, (): (), ctx: &mut HostCtx<'_, ()>) {
                ctx.send(0, ctx.now(), Cycles::new(1), ());
            }
        }
        let mut sim = ShardSim::new(Cycles::new(1_000));
        sim.add_host(Fast);
        sim.schedule(0, Cycles::ZERO, ());
        sim.run();
    }

    #[test]
    #[should_panic(expected = "lookahead must be positive")]
    fn zero_lookahead_is_rejected() {
        let _ = ShardSim::<Ring>::new(Cycles::ZERO);
    }

    #[test]
    fn local_followups_run_inside_the_window() {
        /// Each event schedules a local follow-up just after itself;
        /// the chain must drain without extra windows.
        struct Chain {
            seen: u64,
        }
        impl HostModel for Chain {
            type Event = u32;
            fn handle(&mut self, when: Cycles, left: u32, ctx: &mut HostCtx<'_, u32>) {
                self.seen += 1;
                if left > 0 {
                    ctx.schedule_local(when + Cycles::new(1), left - 1);
                }
            }
        }
        let mut sim = ShardSim::new(Cycles::new(1_000_000));
        sim.add_host(Chain { seen: 0 });
        sim.schedule(0, Cycles::ZERO, 9);
        let stats = sim.run();
        assert_eq!(stats.windows, 1, "a wide window drains the whole chain");
        assert_eq!(sim.host(0).seen, 10);
    }

    #[test]
    fn window_telemetry_counts_stalls_and_imbalance() {
        // A 3-host ring passing one token: every window drains exactly
        // one event on one host while the other two hosts stall (their
        // calendars hold nothing, so they are idle, not stalled — a
        // stall requires a *pending* event beyond the horizon).
        let mut sim = ring_sim(3, 500);
        sim.schedule(0, Cycles::ZERO, 5);
        let stats = sim.run();
        assert_eq!(stats.window_events.count(), stats.windows);
        assert_eq!(stats.window_events.sum(), stats.events);
        // One event per window, on exactly one host: spread is 1.
        assert_eq!(stats.host_imbalance.max(), Some(1));
        assert_eq!(stats.lookahead_stalls, 0, "empty calendars never stall");

        // Two tokens far apart in time on one host: the second token
        // is pending-but-beyond-horizon while the first drains.
        let mut sim = ring_sim(2, 500);
        sim.schedule(0, Cycles::ZERO, 1);
        sim.schedule(0, Cycles::new(1_000_000), 1);
        let stats = sim.run();
        assert!(stats.lookahead_stalls > 0, "distant event must stall");

        // The telemetry is byte-identical across executors.
        let mut a = ring_sim(8, 700);
        seed(&mut a, 6, 9);
        let mut b = ring_sim(8, 700);
        seed(&mut b, 6, 9);
        assert_eq!(a.run(), b.run_parallel(4));
    }
}
