//! Transition tracing.
//!
//! The paper's methodology instruments every VM↔hypervisor transition with
//! cycle counters and explains composite costs by decomposing them into
//! primitive steps (Table III decomposes the KVM ARM hypercall into
//! per-register-class save/restore costs; Table V decomposes a netperf
//! transaction into five segments). The engine makes the same decomposition
//! a first-class artifact: every cost a hypervisor model charges is recorded
//! as a [`TraceEvent`] in a [`TraceLog`], so tests can assert *which* steps
//! executed in *which order* on *which core*, and harnesses can aggregate
//! per-step totals to regenerate the paper's breakdown tables.

use crate::{CoreId, Cycles};
use std::collections::BTreeMap;
use std::fmt;

/// Broad classification of a traced step, used for coarse aggregation
/// (e.g. "how much of this hypercall was context switching?").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum TraceKind {
    /// Hardware trap entry (EL1→EL2, VM exit, interrupt entry).
    Trap,
    /// Return from the hypervisor to a lower level (ERET, VM entry).
    Return,
    /// Saving register state to memory.
    ContextSave,
    /// Restoring register state from memory.
    ContextRestore,
    /// Software emulation work in the hypervisor (GIC distributor access,
    /// instruction decode, hypercall handling).
    Emulation,
    /// Physical inter-processor interrupt in flight.
    Ipi,
    /// I/O backend work (vhost handler, netback, device driver).
    Io,
    /// Data copy (grant copy, bounce buffer).
    Copy,
    /// Work executing inside a guest (or native application) context.
    Guest,
    /// Work executing in host OS / Dom0 context other than I/O backends.
    Host,
    /// Scheduler activity (VM switch, idle-domain wake).
    Sched,
    /// Time on the physical wire between machines.
    Wire,
    /// Anything else.
    Other,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Trap => "trap",
            TraceKind::Return => "return",
            TraceKind::ContextSave => "save",
            TraceKind::ContextRestore => "restore",
            TraceKind::Emulation => "emulation",
            TraceKind::Ipi => "ipi",
            TraceKind::Io => "io",
            TraceKind::Copy => "copy",
            TraceKind::Guest => "guest",
            TraceKind::Host => "host",
            TraceKind::Sched => "sched",
            TraceKind::Wire => "wire",
            TraceKind::Other => "other",
        };
        f.pad(s)
    }
}

/// One traced step: a labelled, cycle-stamped interval on a core.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceEvent {
    /// Core the step executed on.
    pub core: CoreId,
    /// Instant the step began.
    pub start: Cycles,
    /// Duration of the step.
    pub duration: Cycles,
    /// Step classification.
    pub kind: TraceKind,
    /// Stable, machine-readable step label, e.g. `"save:vgic"` or
    /// `"xen:signal-dom0"`. Labels are namespaced with `:`.
    pub label: &'static str,
}

impl TraceEvent {
    /// Instant the step ended.
    #[inline]
    pub fn end(&self) -> Cycles {
        self.start + self.duration
    }
}

/// How a [`TraceLog`] stores what it is told.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Every [`TraceEvent`] is stored in order (assertable sequences,
    /// timeline rendering, instant extraction).
    #[default]
    Full,
    /// Only per-`(kind, label)` duration totals are folded into a small
    /// flat map; no event is ever stored, so the simulation hot path
    /// performs **zero allocations** per charged step. Label/kind totals
    /// match [`TraceMode::Full`] exactly; ordering queries see an empty
    /// log.
    Aggregate,
}

/// An append-only log of [`TraceEvent`]s.
///
/// Recording can be disabled ([`TraceLog::disabled`]) for bulk workload
/// simulations where only aggregate time matters; charging costs then skips
/// the per-event allocation entirely. Between the extremes sits
/// [`TraceLog::aggregate`]: per-`(kind, label)` totals are kept (enough for
/// the paper's breakdown tables) without storing any event.
///
/// # Examples
///
/// ```
/// use hvx_engine::{TraceLog, TraceEvent, TraceKind, CoreId, Cycles};
///
/// let mut log = TraceLog::new();
/// log.record(TraceEvent {
///     core: CoreId::new(0),
///     start: Cycles::ZERO,
///     duration: Cycles::new(152),
///     kind: TraceKind::ContextSave,
///     label: "save:gp",
/// });
/// assert_eq!(log.total_by_label("save:gp"), Cycles::new(152));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    /// Per-`(kind, label)` duration totals, only fed in aggregate mode.
    /// A flat vec beats a map here: breakdowns have a few dozen distinct
    /// labels and the hot path usually re-hits the most recent ones.
    totals: Vec<(TraceKind, &'static str, Cycles)>,
    mode: TraceMode,
    enabled: bool,
}

impl TraceLog {
    /// Creates an enabled, empty log storing full events.
    pub fn new() -> Self {
        TraceLog {
            events: Vec::new(),
            totals: Vec::new(),
            mode: TraceMode::Full,
            enabled: true,
        }
    }

    /// Creates a log that drops every event (for bulk simulations).
    pub fn disabled() -> Self {
        TraceLog {
            enabled: false,
            ..TraceLog::new()
        }
    }

    /// Creates a log that keeps only per-`(kind, label)` totals —
    /// allocation-free per recorded step once the small totals table has
    /// seen every distinct label.
    pub fn aggregate() -> Self {
        TraceLog {
            mode: TraceMode::Aggregate,
            ..TraceLog::new()
        }
    }

    /// The storage mode.
    #[inline]
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Switches storage mode. Already-accumulated events/totals are kept;
    /// only future [`TraceLog::record`] calls are affected.
    pub fn set_mode(&mut self, mode: TraceMode) {
        self.mode = mode;
    }

    /// Returns `true` if events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording (already-recorded events are kept).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Appends an event (no-op when disabled). In aggregate mode the
    /// event itself is discarded after folding its duration into the
    /// `(kind, label)` totals.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        match self.mode {
            TraceMode::Full => self.events.push(ev),
            TraceMode::Aggregate => {
                // Pointer comparison first: labels are `&'static str`
                // literals, so the same call site always re-hits its slot
                // without a byte-wise compare. Two distinct literals with
                // equal contents may occupy two slots; every query below
                // sums all content-equal slots, so totals stay exact.
                if let Some(slot) = self.totals.iter_mut().find(|(k, l, _)| {
                    *k == ev.kind && (std::ptr::eq(*l, ev.label) || *l == ev.label)
                }) {
                    slot.2 += ev.duration;
                } else {
                    self.totals.push((ev.kind, ev.label, ev.duration));
                }
            }
        }
    }

    /// All recorded events in recording order.
    #[inline]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of **stored** events. Always 0 in aggregate mode — the
    /// whole point is that nothing is stored per step.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events are stored (always `true` in
    /// aggregate mode).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Discards all recorded events and totals, keeping allocations.
    pub fn clear(&mut self) {
        self.events.clear();
        self.totals.clear();
    }

    /// The labels of all events, in order — convenient for asserting the
    /// exact step sequence of a code path.
    pub fn labels(&self) -> Vec<&'static str> {
        self.events.iter().map(|e| e.label).collect()
    }

    /// Sum of durations of all events with the given label. Exact in
    /// both full and aggregate mode.
    pub fn total_by_label(&self, label: &str) -> Cycles {
        let stored: Cycles = self
            .events
            .iter()
            .filter(|e| e.label == label)
            .map(|e| e.duration)
            .sum();
        let folded: Cycles = self
            .totals
            .iter()
            .filter(|(_, l, _)| *l == label)
            .map(|(_, _, d)| *d)
            .sum();
        stored + folded
    }

    /// Sum of durations of all events of the given kind. Exact in both
    /// full and aggregate mode.
    pub fn total_by_kind(&self, kind: TraceKind) -> Cycles {
        let stored: Cycles = self
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.duration)
            .sum();
        let folded: Cycles = self
            .totals
            .iter()
            .filter(|(k, _, _)| *k == kind)
            .map(|(_, _, d)| *d)
            .sum();
        stored + folded
    }

    /// Aggregates total duration per label, sorted by label — the shape of
    /// the paper's Table III. Exact in both full and aggregate mode.
    pub fn totals_by_label(&self) -> BTreeMap<&'static str, Cycles> {
        let mut out: BTreeMap<&'static str, Cycles> = BTreeMap::new();
        for e in &self.events {
            *out.entry(e.label).or_insert(Cycles::ZERO) += e.duration;
        }
        for (_, label, d) in &self.totals {
            *out.entry(label).or_insert(Cycles::ZERO) += *d;
        }
        out
    }

    /// Returns the events that executed on `core`, in order.
    pub fn events_on(&self, core: CoreId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.core == core)
    }

    /// Returns `true` if `needle` occurs as a (not necessarily contiguous)
    /// subsequence of the recorded label sequence. Useful for asserting
    /// that a path passed through required steps in order without pinning
    /// every intermediate step.
    pub fn contains_label_subsequence(&self, needle: &[&str]) -> bool {
        let mut it = needle.iter();
        let mut want = match it.next() {
            Some(w) => *w,
            None => return true,
        };
        for e in &self.events {
            if e.label == want {
                match it.next() {
                    Some(w) => want = *w,
                    None => return true,
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(label: &'static str, kind: TraceKind, dur: u64) -> TraceEvent {
        TraceEvent {
            core: CoreId::new(0),
            start: Cycles::ZERO,
            duration: Cycles::new(dur),
            kind,
            label,
        }
    }

    #[test]
    fn record_and_aggregate_by_label() {
        let mut log = TraceLog::new();
        log.record(ev("save:gp", TraceKind::ContextSave, 152));
        log.record(ev("save:vgic", TraceKind::ContextSave, 3250));
        log.record(ev("save:gp", TraceKind::ContextSave, 152));
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_by_label("save:gp"), Cycles::new(304));
        assert_eq!(log.total_by_label("save:vgic"), Cycles::new(3250));
        assert_eq!(log.total_by_label("missing"), Cycles::ZERO);
        let totals = log.totals_by_label();
        assert_eq!(totals["save:gp"], Cycles::new(304));
        assert_eq!(totals.len(), 2);
    }

    #[test]
    fn aggregate_by_kind() {
        let mut log = TraceLog::new();
        log.record(ev("trap:el2", TraceKind::Trap, 160));
        log.record(ev("save:gp", TraceKind::ContextSave, 152));
        log.record(ev("restore:gp", TraceKind::ContextRestore, 184));
        assert_eq!(log.total_by_kind(TraceKind::ContextSave), Cycles::new(152));
        assert_eq!(log.total_by_kind(TraceKind::Trap), Cycles::new(160));
        assert_eq!(log.total_by_kind(TraceKind::Wire), Cycles::ZERO);
    }

    #[test]
    fn disabled_log_drops_events() {
        let mut log = TraceLog::disabled();
        log.record(ev("x", TraceKind::Other, 1));
        assert!(log.is_empty());
        log.set_enabled(true);
        log.record(ev("x", TraceKind::Other, 1));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn label_subsequence_matching() {
        let mut log = TraceLog::new();
        for l in ["trap:el2", "save:gp", "save:vgic", "restore:gp", "eret"] {
            log.record(ev(l, TraceKind::Other, 1));
        }
        assert!(log.contains_label_subsequence(&["trap:el2", "save:vgic", "eret"]));
        assert!(log.contains_label_subsequence(&[]));
        assert!(!log.contains_label_subsequence(&["eret", "trap:el2"]));
        assert!(!log.contains_label_subsequence(&["nope"]));
    }

    #[test]
    fn events_on_core_filters() {
        let mut log = TraceLog::new();
        log.record(TraceEvent {
            core: CoreId::new(1),
            ..ev("a", TraceKind::Other, 5)
        });
        log.record(ev("b", TraceKind::Other, 5));
        assert_eq!(log.events_on(CoreId::new(1)).count(), 1);
        assert_eq!(log.events_on(CoreId::new(0)).count(), 1);
        assert_eq!(log.events_on(CoreId::new(9)).count(), 0);
    }

    #[test]
    fn event_end_is_start_plus_duration() {
        let e = TraceEvent {
            core: CoreId::new(0),
            start: Cycles::new(100),
            duration: Cycles::new(50),
            kind: TraceKind::Guest,
            label: "guest:run",
        };
        assert_eq!(e.end(), Cycles::new(150));
    }

    #[test]
    fn clear_empties_log() {
        let mut log = TraceLog::new();
        log.record(ev("a", TraceKind::Other, 1));
        log.clear();
        assert!(log.is_empty());
        assert!(log.is_enabled());
    }

    #[test]
    fn aggregate_mode_stores_nothing_but_totals_match_full() {
        let steps = [
            ("save:gp", TraceKind::ContextSave, 152u64),
            ("save:vgic", TraceKind::ContextSave, 3250),
            ("save:gp", TraceKind::ContextSave, 152),
            ("trap:el2", TraceKind::Trap, 160),
            ("save:gp", TraceKind::ContextSave, 152),
        ];
        let mut full = TraceLog::new();
        let mut agg = TraceLog::aggregate();
        for (l, k, d) in steps {
            full.record(ev(l, k, d));
            agg.record(ev(l, k, d));
        }
        assert_eq!(agg.mode(), TraceMode::Aggregate);
        assert_eq!(agg.len(), 0, "aggregate mode must not store events");
        assert!(agg.is_empty());
        assert_eq!(full.len(), 5);
        assert_eq!(agg.totals_by_label(), full.totals_by_label());
        for label in ["save:gp", "save:vgic", "trap:el2", "missing"] {
            assert_eq!(agg.total_by_label(label), full.total_by_label(label));
        }
        for kind in [TraceKind::ContextSave, TraceKind::Trap, TraceKind::Wire] {
            assert_eq!(agg.total_by_kind(kind), full.total_by_kind(kind));
        }
    }

    #[test]
    fn aggregate_clear_resets_totals() {
        let mut agg = TraceLog::aggregate();
        agg.record(ev("x", TraceKind::Other, 9));
        agg.clear();
        assert_eq!(agg.total_by_label("x"), Cycles::ZERO);
        assert!(agg.totals_by_label().is_empty());
    }

    #[test]
    fn disabled_aggregate_drops_everything() {
        let mut agg = TraceLog::aggregate();
        agg.set_enabled(false);
        agg.record(ev("x", TraceKind::Other, 9));
        assert_eq!(agg.total_by_label("x"), Cycles::ZERO);
    }
}
