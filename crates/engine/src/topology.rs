//! Physical CPU identifiers and machine topology.
//!
//! The study runs every configuration as a 4-way SMP guest on an 8-core
//! host, with VCPUs pinned to dedicated PCPUs and host/Dom0 work confined
//! to a disjoint PCPU set (§III). [`Topology`] captures exactly that
//! partitioning so hypervisor models can reproduce the paper's pinning
//! discipline, and so tests can assert that e.g. a vhost kick really does
//! cross cores.

use core::fmt;

/// Identifier of a physical CPU core.
///
/// # Examples
///
/// ```
/// use hvx_engine::CoreId;
/// let c = CoreId::new(3);
/// assert_eq!(c.index(), 3);
/// assert_eq!(c.to_string(), "pcpu3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier with the given index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        CoreId(index)
    }

    /// Returns the zero-based core index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pcpu{}", self.0)
    }
}

/// The physical-core layout used by every experiment in the paper:
/// 8 physical cores, of which 4 run pinned guest VCPUs and 4 are reserved
/// for the hypervisor side (host OS interrupt/vhost threads for KVM, Dom0
/// VCPUs for Xen).
///
/// # Examples
///
/// ```
/// use hvx_engine::Topology;
/// let topo = Topology::paper_default();
/// assert_eq!(topo.num_cores(), 8);
/// assert_eq!(topo.guest_cores().len(), 4);
/// assert_eq!(topo.host_cores().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Topology {
    num_cores: u16,
    guest: Vec<CoreId>,
    host: Vec<CoreId>,
}

impl Topology {
    /// The paper's configuration: PCPUs 0–3 for the guest's 4 VCPUs,
    /// PCPUs 4–7 for host/Dom0 work (§III: "we pinned each VCPU to a
    /// specific physical CPU and generally ensured that no other work was
    /// scheduled on that PCPU").
    pub fn paper_default() -> Self {
        Topology::split(8, 4)
    }

    /// Builds a topology with `num_cores` cores of which the first
    /// `num_guest` are guest cores and the rest are host cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_guest` is zero, or `num_guest >= num_cores`.
    pub fn split(num_cores: u16, num_guest: u16) -> Self {
        assert!(num_guest > 0, "need at least one guest core");
        assert!(
            num_guest < num_cores,
            "need at least one host core ({num_guest} guest of {num_cores} total)"
        );
        Topology {
            num_cores,
            guest: (0..num_guest).map(CoreId::new).collect(),
            host: (num_guest..num_cores).map(CoreId::new).collect(),
        }
    }

    /// Total number of physical cores.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.num_cores as usize
    }

    /// Cores dedicated to guest VCPUs, in VCPU order (VCPU *i* is pinned
    /// to `guest_cores()[i]`).
    #[inline]
    pub fn guest_cores(&self) -> &[CoreId] {
        &self.guest
    }

    /// Cores reserved for the hypervisor side (host kernel threads,
    /// device interrupts, Dom0 VCPUs).
    #[inline]
    pub fn host_cores(&self) -> &[CoreId] {
        &self.host
    }

    /// The core a given guest VCPU is pinned to.
    ///
    /// # Panics
    ///
    /// Panics if `vcpu` is out of range for the guest core set.
    #[inline]
    pub fn guest_core(&self, vcpu: usize) -> CoreId {
        self.guest[vcpu]
    }

    /// The host core that handles physical device interrupts (the paper
    /// assigns "all of the host's device interrupts and processes ... to
    /// run on a specific set of PCPUs"); we use the first host core.
    #[inline]
    pub fn io_core(&self) -> CoreId {
        self.host[0]
    }

    /// The host core running the I/O backend thread (vhost worker or Dom0
    /// netback VCPU). Kept distinct from [`Topology::io_core`] when enough
    /// host cores exist, mirroring the multi-core I/O paths of §IV.
    #[inline]
    pub fn backend_core(&self) -> CoreId {
        if self.host.len() > 1 {
            self.host[1]
        } else {
            self.host[0]
        }
    }

    /// Returns `true` if `core` is one of the guest cores.
    pub fn is_guest_core(&self, core: CoreId) -> bool {
        self.guest.contains(&core)
    }

    /// Iterates over every core in the machine.
    pub fn all_cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.num_cores).map(CoreId::new)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_experimental_design() {
        let t = Topology::paper_default();
        assert_eq!(t.num_cores(), 8);
        assert_eq!(t.guest_cores(), &[0, 1, 2, 3].map(CoreId::new));
        assert_eq!(t.host_cores(), &[4, 5, 6, 7].map(CoreId::new));
        assert_eq!(t.guest_core(2), CoreId::new(2));
        assert!(t.is_guest_core(CoreId::new(0)));
        assert!(!t.is_guest_core(CoreId::new(5)));
    }

    #[test]
    fn io_and_backend_cores_are_distinct_host_cores() {
        let t = Topology::paper_default();
        assert_ne!(t.io_core(), t.backend_core());
        assert!(!t.is_guest_core(t.io_core()));
        assert!(!t.is_guest_core(t.backend_core()));
    }

    #[test]
    fn tiny_topology_shares_backend_and_io_core() {
        let t = Topology::split(2, 1);
        assert_eq!(t.io_core(), t.backend_core());
    }

    #[test]
    fn all_cores_enumerates_everything() {
        let t = Topology::split(3, 2);
        let cores: Vec<_> = t.all_cores().collect();
        assert_eq!(cores.len(), 3);
        assert_eq!(cores[2], CoreId::new(2));
    }

    #[test]
    #[should_panic(expected = "at least one host core")]
    fn all_guest_topology_rejected() {
        let _ = Topology::split(4, 4);
    }

    #[test]
    #[should_panic(expected = "at least one guest core")]
    fn zero_guest_topology_rejected() {
        let _ = Topology::split(4, 0);
    }
}
