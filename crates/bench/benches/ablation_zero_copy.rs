//! Regenerates the §V zero-copy analysis: grant copies vs mapped I/O
//! under the two TLB-shootdown disciplines, and times the grant paths.
//!
//! Run with: `cargo bench --bench ablation_zero_copy`

use criterion::{criterion_group, criterion_main, Criterion};
use hvx_mem::{DomId, GrantTable, Ipa, Pa, PhysMemory, ShootdownMethod, TlbModel};
use hvx_suite::ablations;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== Section V: zero-copy trade analysis ===\n");
    println!(
        "{}",
        ablations::render_zero_copy(&ablations::zero_copy().unwrap())
    );
    let mut group = c.benchmark_group("zero_copy");
    group.bench_function("grant-copy-per-packet", |b| {
        let mut grants = GrantTable::new(64);
        let mut mem = PhysMemory::new(8 << 20);
        let gref = grants
            .grant_access(DomId::DOM0, Pa::new(0x10_0000), false)
            .unwrap();
        b.iter(|| {
            grants
                .grant_copy(
                    &mut mem,
                    gref,
                    DomId::DOM0,
                    0,
                    Pa::new(0x20_0000),
                    1500,
                    true,
                )
                .unwrap();
            black_box(grants.copy_count())
        });
    });
    group.bench_function("shootdown/ipi-8-cores", |b| {
        let mut tlb = TlbModel::new(8, ShootdownMethod::IpiFlush);
        b.iter(|| black_box(tlb.shootdown(0, Ipa::new(0x1000))));
    });
    group.bench_function("shootdown/broadcast-8-cores", |b| {
        let mut tlb = TlbModel::new(8, ShootdownMethod::BroadcastTlbi);
        b.iter(|| black_box(tlb.shootdown(0, Ipa::new(0x1000))));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
