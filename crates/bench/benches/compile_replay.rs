//! Times the steady-state loop compiler against plain interpretation on
//! the same mixes: the compiled path turns a per-transition interpreter
//! walk into one bulk block replay, so the gap here is the whole point
//! of the optimization. Also prints measured simulated-transition
//! throughput for both paths.
//!
//! Run with: `cargo bench --bench compile_replay`

use criterion::{criterion_group, criterion_main, Criterion};
use hvx_core::{KvmArm, VirqPolicy, XenArm};
use hvx_engine::thread_transitions;
use hvx_suite::workloads::{self, Mix};
use std::hint::black_box;
use std::time::Instant;

/// A mix long enough that recording (the first ~dozen iterations) is
/// noise and replay dominates.
fn scaled_mixes() -> Vec<(&'static str, Mix)> {
    workloads::catalog()
        .into_iter()
        .filter(|w| matches!(w.name, "Kernbench" | "Hackbench" | "TCP_RR" | "Apache"))
        .map(|w| (w.name, w.mix.scaled(500)))
        .collect()
}

fn throughput(compile: bool) -> f64 {
    let before = thread_transitions();
    let start = Instant::now();
    for (_, mix) in scaled_mixes() {
        workloads::run_with(&mut KvmArm::new(), mix, VirqPolicy::Vcpu0, compile).unwrap();
    }
    (thread_transitions() - before) as f64 / start.elapsed().as_secs_f64()
}

fn bench(c: &mut Criterion) {
    println!("\n=== Steady-state loop compilation: replay vs interpretation ===\n");
    println!(
        "  interpreted: {:>13.0} transitions/sec\n  compiled:    {:>13.0} transitions/sec\n",
        throughput(false),
        throughput(true)
    );

    let mut group = c.benchmark_group("compile_replay");
    for (name, mix) in scaled_mixes() {
        group.bench_function(&format!("{name}/kvm-arm/interpreted"), |b| {
            b.iter(|| {
                black_box(
                    workloads::run_with(&mut KvmArm::new(), mix, VirqPolicy::Vcpu0, false).unwrap(),
                )
            });
        });
        group.bench_function(&format!("{name}/kvm-arm/compiled"), |b| {
            b.iter(|| {
                black_box(
                    workloads::run_with(&mut KvmArm::new(), mix, VirqPolicy::Vcpu0, true).unwrap(),
                )
            });
        });
        group.bench_function(&format!("{name}/xen-arm/compiled"), |b| {
            b.iter(|| {
                black_box(
                    workloads::run_with(&mut XenArm::new(), mix, VirqPolicy::Vcpu0, true).unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
