//! Regenerates the §V interrupt-distribution ablation (Apache/Memcached
//! overhead with concentrated vs distributed virtual interrupts) and
//! times the underlying request-server simulation.
//!
//! Run with: `cargo bench --bench ablation_irq_distribution`

use criterion::{criterion_group, criterion_main, Criterion};
use hvx_core::{KvmArm, VirqPolicy, XenArm};
use hvx_suite::ablations;
use hvx_suite::workloads::{self};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== Section V ablation: virtual-interrupt distribution ===\n");
    println!(
        "{}",
        ablations::render_irq_distribution(&ablations::irq_distribution().unwrap())
    );
    let apache = workloads::catalog()
        .into_iter()
        .find(|w| w.name == "Apache")
        .unwrap()
        .mix;
    let mut group = c.benchmark_group("irq_distribution");
    group.bench_function("apache/kvm-arm/concentrated", |b| {
        b.iter(|| {
            black_box(workloads::run(&mut KvmArm::new(), apache, VirqPolicy::Vcpu0).unwrap())
        });
    });
    group.bench_function("apache/xen-arm/distributed", |b| {
        b.iter(|| {
            black_box(workloads::run(&mut XenArm::new(), apache, VirqPolicy::RoundRobin).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
