//! Regenerates Figure 4 (the nine application workloads × four
//! hypervisors, normalized to native) and times representative workload
//! simulations.
//!
//! Run with: `cargo bench --bench fig4_applications`

use criterion::{criterion_group, criterion_main, Criterion};
use hvx_core::{KvmArm, Native, VirqPolicy, XenArm};
use hvx_suite::fig4::Figure4;
use hvx_suite::workloads::{self, Mix};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 4: Application Benchmark Performance ===\n");
    let fig = Figure4::measure().expect("paper configuration is valid");
    println!("{}", fig.render());
    println!(
        "Worst deviation from a verbatim paper number: {:.2}\n",
        fig.worst_verbatim_error()
    );
    let mut group = c.benchmark_group("fig4");
    let rr = Mix::NetRr { transactions: 10 };
    group.bench_function("tcp-rr/kvm-arm", |b| {
        b.iter(|| black_box(workloads::run(&mut KvmArm::new(), rr, VirqPolicy::Vcpu0).unwrap()));
    });
    let stream = Mix::StreamRx {
        chunks: 44,
        chunk_len: 1_490,
        bursts: 12,
        link_mbit: 10_000,
    };
    group.bench_function("tcp-stream/xen-arm", |b| {
        b.iter(|| {
            black_box(workloads::run(&mut XenArm::new(), stream, VirqPolicy::Vcpu0).unwrap())
        });
    });
    let apache = workloads::catalog()
        .into_iter()
        .find(|w| w.name == "Apache")
        .unwrap()
        .mix;
    group.bench_function("apache/native-baseline", |b| {
        b.iter(|| {
            black_box(workloads::run(&mut Native::new(), apache, VirqPolicy::Vcpu0).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
