//! Extension ablations beyond the paper's printed artifacts: the §III
//! link-speed observation, the §IV vAPIC forward-looking note, the
//! Table I oversubscription motivation, and the §V one-time Stage-2
//! fault cost — each quantified on the models.
//!
//! Run with: `cargo bench --bench ablation_extensions`

use criterion::{criterion_group, criterion_main, Criterion};
use hvx_core::{KvmArm, XenArm};
use hvx_suite::ablations;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== Link-speed ablation (Section III) ===\n");
    println!(
        "{}",
        ablations::render_link_speed(&ablations::link_speed().unwrap())
    );
    println!("=== vAPIC ablation (Section IV) ===\n");
    println!("{}", ablations::render_vapic(&ablations::vapic()));
    println!("=== Oversubscription sweep (Table I motivation) ===\n");
    println!(
        "{}",
        ablations::render_oversubscription(&ablations::oversubscription())
    );
    println!("=== Storage ablation (Section III devices) ===\n");
    println!(
        "{}",
        ablations::render_storage(&ablations::storage().unwrap())
    );
    println!("=== Stage-2 demand-fault cost (Section V aside) ===\n");
    let mut kvm = KvmArm::new();
    let mut vhe = KvmArm::new_vhe();
    let mut xen = XenArm::new();
    println!(
        "  KVM ARM:       {:>6} cycles\n  KVM ARM + VHE: {:>6} cycles\n  Xen ARM:       {:>6} cycles\n",
        kvm.stage2_fault(0).as_u64(),
        vhe.stage2_fault(0).as_u64(),
        xen.stage2_fault(0).as_u64()
    );

    let mut group = c.benchmark_group("extensions");
    group.bench_function("stage2-fault/kvm-arm", |b| {
        let mut hv = KvmArm::new();
        b.iter(|| black_box(hv.stage2_fault(0)));
    });
    group.bench_function("stage2-fault/xen-arm", |b| {
        let mut hv = XenArm::new();
        b.iter(|| black_box(hv.stage2_fault(0)));
    });
    group.bench_function("credit-scheduler/period", |b| {
        b.iter(|| {
            black_box(hvx_core::sched::oversubscription_point(
                4,
                hvx_engine::Cycles::new(240_000),
                hvx_engine::Cycles::new(8_799),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
