//! Regenerates Table V (the netperf TCP_RR latency decomposition) and
//! times the closed-loop transaction simulation.
//!
//! Run with: `cargo bench --bench table5_tcp_rr`

use criterion::{criterion_group, criterion_main, Criterion};
use hvx_core::{KvmArm, Native, XenArm};
use hvx_engine::Frequency;
use hvx_suite::netperf::{run_rr, Table5};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== Table V: Netperf TCP_RR Analysis on ARM ===\n");
    println!("{}", Table5::measure(50).unwrap().render());
    let mut group = c.benchmark_group("table5");
    group.bench_function("rr-transaction/native", |b| {
        b.iter(|| black_box(run_rr(&mut Native::new(), 5, Frequency::ARM_M400)));
    });
    group.bench_function("rr-transaction/kvm-arm", |b| {
        b.iter(|| black_box(run_rr(&mut KvmArm::new(), 5, Frequency::ARM_M400)));
    });
    group.bench_function("rr-transaction/xen-arm", |b| {
        b.iter(|| black_box(run_rr(&mut XenArm::new(), 5, Frequency::ARM_M400)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
