//! Regenerates Table II (the seven microbenchmarks × four hypervisors)
//! and times the simulated operations with criterion.
//!
//! Run with: `cargo bench --bench table2_micro`

use criterion::{criterion_group, criterion_main, Criterion};
use hvx_core::{Hypervisor, KvmArm, KvmX86, XenArm, XenX86};
use hvx_suite::micro::{Micro, Table2};
use std::hint::black_box;

fn print_table() {
    println!("\n=== Table II: Microbenchmark Measurements (cycle counts) ===\n");
    let t = Table2::measure(10).unwrap();
    println!("{}", t.render());
    println!("Worst residual vs paper: {:.1}%\n", t.worst_error() * 100.0);
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("table2");
    group.bench_function("hypercall/kvm-arm", |b| {
        let mut hv = KvmArm::new();
        b.iter(|| black_box(hv.hypercall(0)));
    });
    group.bench_function("hypercall/xen-arm", |b| {
        let mut hv = XenArm::new();
        b.iter(|| black_box(hv.hypercall(0)));
    });
    group.bench_function("hypercall/kvm-x86", |b| {
        let mut hv = KvmX86::new();
        b.iter(|| black_box(hv.hypercall(0)));
    });
    group.bench_function("hypercall/xen-x86", |b| {
        let mut hv = XenX86::new();
        b.iter(|| black_box(hv.hypercall(0)));
    });
    group.bench_function("virtual-ipi/kvm-arm", |b| {
        let mut hv = KvmArm::new();
        b.iter(|| black_box(hv.virtual_ipi(0, 1)));
    });
    group.bench_function("full-suite/all-hypervisors", |b| {
        b.iter(|| {
            let mut hv = KvmArm::new();
            for m in Micro::ALL {
                black_box(m.run_once(&mut hv));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
