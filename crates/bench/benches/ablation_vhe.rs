//! Regenerates the §VI VHE projection (transition-cost collapse and its
//! application-level effect) and times the VHE vs classic world switch.
//!
//! Run with: `cargo bench --bench ablation_vhe`

use criterion::{criterion_group, criterion_main, Criterion};
use hvx_core::{Hypervisor, KvmArm};
use hvx_suite::ablations;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== Section VI: VHE projection ===\n");
    println!("{}", ablations::render_vhe(&ablations::vhe().unwrap()));
    let mut group = c.benchmark_group("vhe");
    group.bench_function("hypercall/classic-split-mode", |b| {
        let mut hv = KvmArm::new();
        b.iter(|| black_box(hv.hypercall(0)));
    });
    group.bench_function("hypercall/vhe", |b| {
        let mut hv = KvmArm::new_vhe();
        b.iter(|| black_box(hv.hypercall(0)));
    });
    group.bench_function("io-in/vhe", |b| {
        let mut hv = KvmArm::new_vhe();
        b.iter(|| black_box(hv.io_latency_in(0)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
