//! Regenerates Table III (the KVM ARM hypercall save/restore breakdown)
//! and times the traced world switch.
//!
//! Run with: `cargo bench --bench table3_breakdown`

use criterion::{criterion_group, criterion_main, Criterion};
use hvx_core::{Hypervisor, KvmArm};
use hvx_suite::table3::Table3;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n=== Table III: KVM ARM Hypercall Analysis (cycle counts) ===\n");
    println!("{}", Table3::measure().unwrap().render());
    let mut group = c.benchmark_group("table3");
    group.bench_function("traced-hypercall", |b| {
        let mut kvm = KvmArm::new();
        b.iter(|| {
            kvm.machine_mut().trace_mut().clear();
            black_box(kvm.hypercall(0))
        });
    });
    group.bench_function("breakdown-extraction", |b| {
        b.iter(|| black_box(Table3::measure().unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
