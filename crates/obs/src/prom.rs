//! Prometheus text-exposition rendering.
//!
//! [`PromText`] renders counters, gauges, and [`HistogramSketch`]s in
//! the Prometheus exposition format (version 0.0.4): `# HELP` / `#
//! TYPE` headers followed by sample lines. Histograms render as
//! cumulative `_bucket{le=...}` series (one per power-of-two bucket up
//! to the largest populated one, plus `+Inf`) with `_sum` and `_count`,
//! followed by `_p50` / `_p95` / `_p99` gauges so dashboards get
//! quantiles without running histogram_quantile.
//!
//! Metric names are sanitized to `[a-zA-Z0-9_:]` (dots in registry
//! names become underscores), so [`MetricsRegistry`] contents can be
//! exported directly.
//!
//! ```
//! use hvx_obs::PromText;
//!
//! let mut t = PromText::new();
//! t.counter("hvx_serve_accepted_total", "Jobs admitted", 3);
//! t.gauge("hvx_serve_queue_depth", "Jobs waiting", 2.0);
//! let text = t.finish();
//! assert!(text.contains("# TYPE hvx_serve_accepted_total counter"));
//! ```

use crate::metrics::{HistogramSketch, MetricsRegistry};
use std::fmt::Write as _;

/// Incremental Prometheus text-exposition builder.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

/// Rewrites a metric name into the Prometheus alphabet: every
/// character outside `[a-zA-Z0-9_:]` becomes `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("NaN");
    }
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> Self {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Appends one counter family with a single sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        let name = sanitize_metric_name(name);
        self.header(&name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends one gauge family with a single sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        let name = sanitize_metric_name(name);
        self.header(&name, help, "gauge");
        let mut line = name;
        line.push(' ');
        write_f64(&mut line, value);
        self.out.push_str(&line);
        self.out.push('\n');
    }

    /// Appends one gauge family with one sample per `(labels, value)`
    /// pair. `labels` is raw label text (`client="alice"`); callers
    /// are responsible for escaping label values.
    pub fn labeled_gauge(&mut self, name: &str, help: &str, samples: &[(String, f64)]) {
        let name = sanitize_metric_name(name);
        self.header(&name, help, "gauge");
        for (labels, value) in samples {
            let mut line = format!("{name}{{{labels}}} ");
            write_f64(&mut line, *value);
            self.out.push_str(&line);
            self.out.push('\n');
        }
    }

    /// Appends one histogram family: cumulative `le` buckets (upper
    /// bounds from the sketch's power-of-two buckets), `_sum`,
    /// `_count`, and `_p50`/`_p95`/`_p99` quantile gauges.
    pub fn histogram(&mut self, name: &str, help: &str, h: &HistogramSketch) {
        let name = sanitize_metric_name(name);
        self.header(&name, help, "histogram");
        let mut cumulative = 0u64;
        for (le, n) in h.bucket_counts() {
            cumulative += n;
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(self.out, "{name}_sum {}", h.sum());
        let _ = writeln!(self.out, "{name}_count {}", h.count());
        for (q, suffix) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            let qname = format!("{name}_{suffix}");
            self.header(
                &qname,
                "Bucket upper bound of the quantile (power-of-two resolution)",
                "gauge",
            );
            let _ = writeln!(self.out, "{qname} {}", h.approx_quantile(q).unwrap_or(0));
        }
    }

    /// Appends every counter and histogram in a registry, name-sorted,
    /// each prefixed with `prefix` (registry dots become underscores).
    pub fn registry(&mut self, prefix: &str, m: &MetricsRegistry) {
        for (name, v) in m.counters_sorted() {
            self.counter(
                &format!("{prefix}{name}"),
                "Registry counter (see hvx-obs)",
                v,
            );
        }
        for (name, h) in m.histograms_sorted() {
            self.histogram(
                &format!("{prefix}{name}"),
                "Registry histogram (see hvx-obs)",
                h,
            );
        }
    }

    /// The rendered exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One parsed sample line from an exposition: name, labels (raw text
/// between braces, empty if none), and value. Used by scrape tests to
/// round-trip the format.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sample name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Raw label text (`le="3"`), empty when the sample has no labels.
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

/// Parses exposition text back into samples, skipping comment lines.
/// Returns `None` if any non-comment line fails to parse — a scrape
/// round-trip gate for tests.
pub fn parse_exposition(text: &str) -> Option<Vec<PromSample>> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = line.rsplit_once(' ')?;
        let value: f64 = value.parse().ok()?;
        let (name, labels) = match head.split_once('{') {
            Some((n, rest)) => (n.to_string(), rest.strip_suffix('}')?.to_string()),
            None => (head.to_string(), String::new()),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return None;
        }
        out.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_headers() {
        let mut t = PromText::new();
        t.counter("hvx_x_total", "things", 7);
        t.gauge("hvx_depth", "depth", 2.5);
        let text = t.finish();
        assert!(
            text.contains("# HELP hvx_x_total things\n# TYPE hvx_x_total counter\nhvx_x_total 7\n")
        );
        assert!(text.contains("# TYPE hvx_depth gauge\nhvx_depth 2.5\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let mut h = HistogramSketch::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        let mut t = PromText::new();
        t.histogram("hvx.lat.us", "latency", &h);
        let text = t.finish();
        assert!(text.contains("# TYPE hvx_lat_us histogram"));
        assert!(text.contains("hvx_lat_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("hvx_lat_us_sum 106"));
        assert!(text.contains("hvx_lat_us_count 4"));
        assert!(text.contains("hvx_lat_us_p50"));
        assert!(text.contains("hvx_lat_us_p95"));
        assert!(text.contains("hvx_lat_us_p99"));
        // Cumulative counts never decrease.
        let samples = parse_exposition(&text).unwrap();
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == "hvx_lat_us_bucket")
            .map(|s| s.value)
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn registry_exports_name_sorted_families() {
        let mut m = MetricsRegistry::new();
        m.bump("z.total", 1);
        m.bump("a.total", 2);
        m.observe("lat", 5);
        let mut t = PromText::new();
        t.registry("hvx_", &m);
        let text = t.finish();
        let a = text.find("hvx_a_total").unwrap();
        let z = text.find("hvx_z_total").unwrap();
        assert!(a < z, "counters are name-sorted");
        assert!(text.contains("hvx_lat_count 1"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_exposition("good_name 1\n# comment\n").is_some());
        assert!(parse_exposition("bad name 1\n").is_none());
        assert!(parse_exposition("name notanumber\n").is_none());
        let s = parse_exposition("x_bucket{le=\"3\"} 4\n").unwrap();
        assert_eq!(s[0].labels, "le=\"3\"");
        assert_eq!(s[0].value, 4.0);
    }
}
