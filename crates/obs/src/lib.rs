//! # hvx-obs — observability primitives for the hvx simulator
//!
//! The paper's core contribution is *attributing* cycles to individual
//! architectural transitions (Table III's hypercall breakdown, Figure
//! 4's per-workload overheads). This crate provides the machinery to do
//! the same from instrumentation instead of from summed cost constants:
//!
//! * [`TransitionId`] / [`SpanTracer`] — nested spans keyed by static
//!   transition identities; cycles are charged to the innermost open
//!   span, so exclusive totals are exact and, with the unattributed
//!   remainder, sum to the run total (conservation);
//! * [`MetricsRegistry`] / [`HistogramSketch`] — named counters and
//!   power-of-two histograms, lock-free in steady state, with a
//!   deterministic cross-thread merge;
//! * [`EventTracer`] — causal event tracing: timestamped slices on
//!   per-core tracks plus [`FlowKind`] chains stitching causally-linked
//!   work across machines, with Chrome trace-event export and a
//!   derivation pass folding end-to-end latencies into the registry;
//! * [`ProfileSnapshot`] and [`SpanTracer::folded`] — exporters: JSON
//!   (via the in-tree serde shim) and folded-stack flamegraph text;
//! * [`log`] — a leveled JSON-lines logger (off by default, `HVX_LOG`
//!   controlled) for the serving and runner paths;
//! * [`PromText`] — a Prometheus text-exposition renderer over
//!   registry counters, gauges, and histogram sketches.
//!
//! The crate is deliberately substrate-free: it counts raw `u64`
//! cycles and knows nothing about machines, cores, or hypervisors, so
//! every layer of the workspace (engine, models, suite) can depend on
//! it without cycles in the crate graph.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod export;
pub mod log;
mod metrics;
mod prom;
mod span;
mod tracing;

pub use export::{
    render_histogram_summary, render_span_deltas, span_deltas, transition_names, CounterSnapshot,
    HistogramSnapshot, ProfileSnapshot, SpanDelta, SpanSnapshotRow,
};
pub use log::{LogLevel, LogValue};
pub use metrics::{HistogramSketch, MetricsRegistry};
pub use prom::{parse_exposition, sanitize_metric_name, PromSample, PromText};
pub use span::{SpanRow, SpanTracer, TransitionId};
pub use tracing::{EventTracer, FlowChain, FlowId, FlowKind, FlowPhase, FlowPoint, SliceEvent};
