//! A leveled, structured JSON-lines logger.
//!
//! The serving path (admission decisions, worker lifecycle, journal
//! errors) and the runner (watchdog trips) log through this module
//! instead of ad-hoc `eprintln!`: every record is one JSON object per
//! line on stderr with a fixed field order (`ts_ms`, `level`,
//! `component`, `event`, then the record's own key/value fields), so
//! the stream is machine-parseable with nothing more than a
//! line-oriented JSON reader.
//!
//! Logging is **off by default** — the level starts at
//! [`LogLevel::Off`] and a disabled call is a single relaxed atomic
//! load, so instrumented code paths stay byte-identical and effectively
//! free when telemetry is disabled. The level is raised either
//! programmatically ([`set_level`], wired to `--log-level` in the CLI)
//! or through the `HVX_LOG` environment variable (`error`, `info`,
//! `debug`), which is read once on first use.
//!
//! ```
//! use hvx_obs::log::{self, LogValue};
//!
//! // Off by default: this line emits nothing.
//! log::info("serve", "job_accepted", &[("id", LogValue::from(7u64))]);
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// Logging verbosity, ordered: `Off < Error < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Nothing is emitted (the default).
    Off,
    /// Only errors (journal write failures, recovery problems).
    Error,
    /// Errors plus lifecycle decisions (admission, retries, drains).
    Info,
    /// Everything, including per-request detail.
    Debug,
}

impl LogLevel {
    /// Parses a CLI/env slug (`off`, `error`, `info`, `debug`).
    pub fn parse(slug: &str) -> Option<LogLevel> {
        match slug.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(LogLevel::Off),
            "error" => Some(LogLevel::Error),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    /// The slug this level renders as in log records.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }

    fn from_u8(v: u8) -> LogLevel {
        match v {
            1 => LogLevel::Error,
            2 => LogLevel::Info,
            3 => LogLevel::Debug,
            _ => LogLevel::Off,
        }
    }
}

/// One typed field value in a log record. Numbers and booleans render
/// unquoted; strings are JSON-escaped.
#[derive(Debug, Clone)]
pub enum LogValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rendered with `{}`, `null` when non-finite).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on output).
    Str(String),
}

impl From<u64> for LogValue {
    fn from(v: u64) -> Self {
        LogValue::U64(v)
    }
}

impl From<usize> for LogValue {
    fn from(v: usize) -> Self {
        LogValue::U64(v as u64)
    }
}

impl From<u32> for LogValue {
    fn from(v: u32) -> Self {
        LogValue::U64(u64::from(v))
    }
}

impl From<i64> for LogValue {
    fn from(v: i64) -> Self {
        LogValue::I64(v)
    }
}

impl From<f64> for LogValue {
    fn from(v: f64) -> Self {
        LogValue::F64(v)
    }
}

impl From<bool> for LogValue {
    fn from(v: bool) -> Self {
        LogValue::Bool(v)
    }
}

impl From<&str> for LogValue {
    fn from(v: &str) -> Self {
        LogValue::Str(v.to_string())
    }
}

impl From<String> for LogValue {
    fn from(v: String) -> Self {
        LogValue::Str(v)
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(0);
static INIT: Once = Once::new();

/// Ensures `HVX_LOG` has been consulted. An explicit [`set_level`]
/// always wins over the environment because it runs `INIT` first.
pub fn init_from_env() {
    INIT.call_once(|| {
        if let Ok(v) = std::env::var("HVX_LOG") {
            if let Some(l) = LogLevel::parse(&v) {
                LEVEL.store(l as u8, Ordering::Relaxed);
            }
        }
    });
}

/// Sets the global level, overriding any `HVX_LOG` value.
pub fn set_level(level: LogLevel) {
    INIT.call_once(|| {});
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The currently effective level.
pub fn level() -> LogLevel {
    init_from_env();
    LogLevel::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// True when a record at `at` would be emitted — use to skip expensive
/// field construction.
pub fn enabled(at: LogLevel) -> bool {
    at != LogLevel::Off && at <= level()
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn value_into(out: &mut String, v: &LogValue) {
    match v {
        LogValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        LogValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        LogValue::F64(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        LogValue::F64(_) => out.push_str("null"),
        LogValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        LogValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

/// Emits one record at `at` if the level allows it. `component` names
/// the subsystem (`serve`, `runner`, ...), `event` the decision
/// (`shed`, `retry`, `watchdog_trip`, ...); `fields` carry the
/// record-specific context.
pub fn log(at: LogLevel, component: &str, event: &str, fields: &[(&str, LogValue)]) {
    if !enabled(at) {
        return;
    }
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let mut line = String::with_capacity(96 + fields.len() * 24);
    let _ = write!(
        line,
        "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"component\":\"",
        at.as_str()
    );
    escape_into(&mut line, component);
    line.push_str("\",\"event\":\"");
    escape_into(&mut line, event);
    line.push('"');
    for (k, v) in fields {
        line.push_str(",\"");
        escape_into(&mut line, k);
        line.push_str("\":");
        value_into(&mut line, v);
    }
    line.push('}');
    eprintln!("{line}");
}

/// [`log`] at [`LogLevel::Error`].
pub fn error(component: &str, event: &str, fields: &[(&str, LogValue)]) {
    log(LogLevel::Error, component, event, fields);
}

/// [`log`] at [`LogLevel::Info`].
pub fn info(component: &str, event: &str, fields: &[(&str, LogValue)]) {
    log(LogLevel::Info, component, event, fields);
}

/// [`log`] at [`LogLevel::Debug`].
pub fn debug(component: &str, event: &str, fields: &[(&str, LogValue)]) {
    log(LogLevel::Debug, component, event, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(LogLevel::parse("info"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("DEBUG"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("off"), Some(LogLevel::Off));
        assert_eq!(LogLevel::parse("verbose"), None);
        assert!(LogLevel::Off < LogLevel::Error);
        assert!(LogLevel::Error < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }

    #[test]
    fn record_renders_escaped_json() {
        // Render through the internal writers (the global level stays
        // Off so nothing reaches stderr in tests).
        let mut line = String::new();
        value_into(&mut line, &LogValue::Str("a\"b\\c\nd".to_string()));
        assert_eq!(line, "\"a\\\"b\\\\c\\nd\"");
        let mut num = String::new();
        value_into(&mut num, &LogValue::U64(42));
        value_into(&mut num, &LogValue::Bool(true));
        value_into(&mut num, &LogValue::F64(f64::NAN));
        assert_eq!(num, "42truenull");
    }

    #[test]
    fn disabled_level_suppresses_everything() {
        // The default level is Off; enabled() must be false for all.
        assert!(!enabled(LogLevel::Error) || level() != LogLevel::Off);
        // Off-level records are never emitted regardless of the level.
        assert!(!enabled(LogLevel::Off));
    }
}
