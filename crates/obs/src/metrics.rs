//! A registry of named counters and histograms.
//!
//! Metrics complement spans: a span says *where cycles went*, a metric
//! says *how often something happened* (traps, exits, IRQ injections,
//! ring notifications) or *how a quantity distributed* (burst sizes,
//! per-transaction latencies).
//!
//! The registry is **lock-free in steady state**: names are `&'static
//! str`, lookup is a pointer-equality scan first (string comparison only
//! on first sight of a name), and after every metric has been touched
//! once no path allocates or synchronizes. Each scenario owns a private
//! registry; the parallel runner merges them **in plan order**, so the
//! merged result is identical no matter how many worker threads ran.

/// Power-of-two bucketed histogram: bucket `b` holds values whose
/// `ilog2` is `b - 1` (bucket 0 holds zeros). Covers the full `u64`
/// range in 65 buckets — enough resolution for latency/size
/// distributions without per-sample storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSketch {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSketch {
    fn default() -> Self {
        HistogramSketch::new()
    }
}

fn bucket_of(value: u64) -> usize {
    match value {
        0 => 0,
        v => 64 - v.leading_zeros() as usize,
    }
}

impl HistogramSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        HistogramSketch {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Upper bound of the bucket containing the `q` quantile
    /// (`0.0 ..= 1.0`); `None` if empty. Exact to within one
    /// power-of-two bucket.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if b == 0 {
                    0
                } else {
                    (1u64 << (b - 1)).saturating_mul(2) - 1
                });
            }
        }
        Some(self.max)
    }

    /// The populated buckets as `(upper bound, count)` pairs, lowest
    /// bound first, up to and including the highest non-empty bucket.
    /// Upper bounds are inclusive (`0, 1, 3, 7, 15, ...`); exporters
    /// turn these into cumulative `le` series.
    pub fn bucket_counts(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let last = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| i + 1);
        self.buckets[..last].iter().enumerate().map(|(b, &n)| {
            let bound = if b == 0 {
                0
            } else {
                (1u64 << (b - 1)).saturating_mul(2) - 1
            };
            (bound, n)
        })
    }

    /// Folds `other`'s observations into `self`.
    pub fn merge(&mut self, other: &HistogramSketch) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Folds `other` into `self` `k` times at once: equivalent to `k`
    /// calls to [`HistogramSketch::merge`]. Used by compiled loop
    /// replay to apply one steady-state block's observations for every
    /// skipped block.
    pub fn merge_scaled(&mut self, other: &HistogramSketch, k: u64) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b * k;
        }
        self.count += other.count * k;
        self.sum += other.sum * k;
        if k > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// The metrics registry: named counters plus named histograms.
///
/// # Examples
///
/// ```
/// use hvx_obs::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.bump("kvm.traps", 1);
/// m.bump("kvm.traps", 2);
/// m.observe("rr.latency_cycles", 180);
/// assert_eq!(m.counter("kvm.traps"), 3);
/// assert_eq!(m.histogram("rr.latency_cycles").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, HistogramSketch)>,
}

/// Pointer-equality-first slot lookup: after a name's first appearance
/// its `&'static str` pointer is cached in the slot, so steady-state
/// lookup never compares string contents.
fn find<T>(slots: &[(&'static str, T)], name: &'static str) -> Option<usize> {
    slots
        .iter()
        .position(|(n, _)| std::ptr::eq(n.as_ptr(), name.as_ptr()) || *n == name)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter `name`, registering it on first use.
    pub fn bump(&mut self, name: &'static str, n: u64) {
        match find(&self.counters, name) {
            Some(i) => self.counters[i].1 += n,
            None => self.counters.push((name, n)),
        }
    }

    /// Records `value` into the histogram `name`, registering it on
    /// first use.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        match find(&self.histograms, name) {
            Some(i) => self.histograms[i].1.record(value),
            None => {
                let mut h = HistogramSketch::new();
                h.record(value);
                self.histograms.push((name, h));
            }
        }
    }

    /// Current value of counter `name` (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The histogram `name`, if any value was ever observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSketch> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// All counters, sorted by name (a stable presentation order
    /// independent of registration order).
    pub fn counters_sorted(&self) -> Vec<(&'static str, u64)> {
        let mut out = self.counters.clone();
        out.sort_by_key(|(n, _)| *n);
        out
    }

    /// All histograms, sorted by name.
    pub fn histograms_sorted(&self) -> Vec<(&'static str, &HistogramSketch)> {
        let mut out: Vec<_> = self.histograms.iter().map(|(n, h)| (*n, h)).collect();
        out.sort_by_key(|(n, _)| *n);
        out
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`. Merging is associative and — because
    /// every per-scenario registry is itself deterministic — merging in
    /// plan order yields identical results for any worker count.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            self.bump(name, *v);
        }
        for (name, h) in &other.histograms {
            match find(&self.histograms, name) {
                Some(i) => self.histograms[i].1.merge(h),
                None => self.histograms.push((name, h.clone())),
            }
        }
    }

    /// Folds `other` into `self` `k` times at once: equivalent to `k`
    /// calls to [`MetricsRegistry::merge`]. Compiled loop replay uses
    /// this to charge one block's metric delta for every skipped block.
    pub fn merge_scaled(&mut self, other: &MetricsRegistry, k: u64) {
        for (name, v) in &other.counters {
            self.bump(name, *v * k);
        }
        for (name, h) in &other.histograms {
            match find(&self.histograms, name) {
                Some(i) => self.histograms[i].1.merge_scaled(h, k),
                None => {
                    let mut fresh = HistogramSketch::new();
                    fresh.merge_scaled(h, k);
                    self.histograms.push((name, fresh));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.bump("x", 2);
        m.bump("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert!(!m.is_empty());
    }

    #[test]
    fn histogram_tracks_distribution() {
        let mut h = HistogramSketch::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!(h.approx_quantile(0.5).unwrap() >= 2);
        assert!(h.approx_quantile(1.0).unwrap() >= 1000);
    }

    #[test]
    fn merge_is_order_insensitive_for_totals() {
        let mut a = MetricsRegistry::new();
        a.bump("traps", 3);
        a.observe("lat", 10);
        let mut b = MetricsRegistry::new();
        b.bump("traps", 4);
        b.bump("exits", 1);
        b.observe("lat", 20);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counter("traps"), 7);
        assert_eq!(ab.counter("traps"), ba.counter("traps"));
        assert_eq!(ab.counter("exits"), ba.counter("exits"));
        assert_eq!(
            ab.histogram("lat").unwrap().sum(),
            ba.histogram("lat").unwrap().sum()
        );
        assert_eq!(ab.counters_sorted(), ba.counters_sorted());
    }

    #[test]
    fn merge_scaled_matches_repeated_merge() {
        let mut delta = MetricsRegistry::new();
        delta.bump("kvm.traps", 3);
        delta.observe("rr.latency_cycles", 180);
        delta.observe("rr.latency_cycles", 12);

        let mut scaled = MetricsRegistry::new();
        scaled.bump("kvm.traps", 100);
        scaled.merge_scaled(&delta, 7);
        let mut repeated = MetricsRegistry::new();
        repeated.bump("kvm.traps", 100);
        for _ in 0..7 {
            repeated.merge(&delta);
        }
        assert_eq!(scaled.counter("kvm.traps"), repeated.counter("kvm.traps"));
        let hs = scaled.histogram("rr.latency_cycles").unwrap();
        let hr = repeated.histogram("rr.latency_cycles").unwrap();
        assert_eq!(hs.count(), hr.count());
        assert_eq!(hs.sum(), hr.sum());
        assert_eq!(hs.min(), hr.min());
        assert_eq!(hs.max(), hr.max());
        assert_eq!(hs.approx_quantile(0.5), hr.approx_quantile(0.5));
    }

    #[test]
    fn sorted_views_are_name_ordered() {
        let mut m = MetricsRegistry::new();
        m.bump("z", 1);
        m.bump("a", 1);
        m.observe("q", 1);
        m.observe("b", 1);
        let names: Vec<_> = m.counters_sorted().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["a", "z"]);
        let hnames: Vec<_> = m.histograms_sorted().iter().map(|(n, _)| *n).collect();
        assert_eq!(hnames, ["b", "q"]);
    }
}
