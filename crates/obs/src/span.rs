//! Span-based cycle attribution.
//!
//! Every architecturally interesting hypervisor transition opens a
//! **span** keyed by a static [`TransitionId`]. Spans nest; the engine
//! charges every cycle to the *innermost* open span, so per-transition
//! exclusive totals are exact and — together with the
//! [`SpanTracer::unattributed`] remainder — sum to the run total. That
//! conservation property is what lets the profile table reproduce the
//! paper's Table III breakdown from instrumentation instead of from
//! summed cost constants.

use std::fmt;

/// Statically-known identity of one hypervisor transition class.
///
/// The set covers the transitions the paper attributes cycles to:
/// hardware mode switches (`trap_to_el2`, `eret`, `vmcs_world_switch`),
/// the context save/restore classes of Table III (with the VGIC
/// list-register window split out), interrupt virtualization, and the
/// paravirtual I/O signalling paths of §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TransitionId {
    /// Guest vCPU executing its own instructions.
    GuestRun,
    /// Guest application/OS network stack processing.
    GuestStack,
    /// Hardware trap from the VM into EL2 (or an x86 `#VMEXIT` reaching
    /// the hypervisor entry stub).
    TrapToEl2,
    /// Exception return from hypervisor back into the VM.
    Eret,
    /// x86 VMCS-backed world switch (`vmexit`/`vmresume` microcode).
    VmcsWorldSwitch,
    /// Saving a VM's register state (Table III's save classes).
    ContextSave,
    /// Restoring a VM's register state.
    ContextRestore,
    /// Saving the VGIC virtual-interface state, list registers included.
    VgicLrSave,
    /// Restoring the VGIC virtual-interface state.
    VgicLrRestore,
    /// Enabling/disabling EL2 virtualization features (split-mode KVM's
    /// per-transition reconfiguration).
    VirtToggle,
    /// Reads/writes of the physical or virtual GIC CPU interface
    /// (acks, EOIs, deactivations).
    GicAccess,
    /// Emulating a guest access to the virtual distributor.
    GicdEmulate,
    /// Hypervisor/host exit reason decode and routing.
    HostDispatch,
    /// Decoding and emulating a trapped MMIO access.
    MmioDecode,
    /// Injecting a virtual interrupt (list-register programming and the
    /// bookkeeping around it).
    VirqInject,
    /// Sending a Xen event-channel notification.
    EventChannelSignal,
    /// Delivering an event upcall into a guest.
    EventUpcall,
    /// Guest→host doorbell for a virtio queue (ioeventfd/irqfd edge).
    VhostKick,
    /// vhost worker processing virtio descriptors.
    VhostBackend,
    /// Copying a grant-mapped buffer between domains.
    GrantCopy,
    /// Xen netback/blkback request processing in Dom0.
    Netback,
    /// Host/Dom0 kernel network stack processing.
    HostStack,
    /// Host-side interrupt handling for a physical device.
    HostIrq,
    /// Hypervisor scheduler work (domain/VM switches, wakeups).
    Sched,
    /// NIC DMA engine moving a frame.
    NicDma,
    /// Device service time (disk, emulated I/O port).
    DeviceService,
    // Recovery transitions (fault injection). New ids append here so
    // earlier indices — and every pinned profile artifact — are stable.
    /// Virtio driver re-kicking a queue after a lost doorbell or a TX
    /// completion timeout.
    VirtioRekick,
    /// Re-sending a Xen event-channel notification after a dropped
    /// upcall.
    EvtchnRedeliver,
    /// Retrying a transiently-failed grant copy (bounded exponential
    /// backoff in netfront/netback).
    GrantRetry,
    /// Guest TCP retransmit-timer processing (timeout detection plus
    /// the retransmitted segment's stack work).
    TcpRetransmit,
    /// Hypervisor scheduler-timer interrupt: timeslice expiry handling
    /// on an oversubscribed pCPU (consolidation scenarios).
    SchedTimer,
    /// Guest cycles burnt spinning on a lock whose holder vCPU was
    /// preempted by the hypervisor scheduler (lock-holder preemption).
    LockHolderSpin,
}

impl TransitionId {
    /// Every transition, in breakdown-table row order.
    pub const ALL: [TransitionId; 32] = [
        TransitionId::GuestRun,
        TransitionId::GuestStack,
        TransitionId::TrapToEl2,
        TransitionId::Eret,
        TransitionId::VmcsWorldSwitch,
        TransitionId::ContextSave,
        TransitionId::ContextRestore,
        TransitionId::VgicLrSave,
        TransitionId::VgicLrRestore,
        TransitionId::VirtToggle,
        TransitionId::GicAccess,
        TransitionId::GicdEmulate,
        TransitionId::HostDispatch,
        TransitionId::MmioDecode,
        TransitionId::VirqInject,
        TransitionId::EventChannelSignal,
        TransitionId::EventUpcall,
        TransitionId::VhostKick,
        TransitionId::VhostBackend,
        TransitionId::GrantCopy,
        TransitionId::Netback,
        TransitionId::HostStack,
        TransitionId::HostIrq,
        TransitionId::Sched,
        TransitionId::NicDma,
        TransitionId::DeviceService,
        TransitionId::VirtioRekick,
        TransitionId::EvtchnRedeliver,
        TransitionId::GrantRetry,
        TransitionId::TcpRetransmit,
        TransitionId::SchedTimer,
        TransitionId::LockHolderSpin,
    ];

    /// Number of transition classes.
    pub const COUNT: usize = TransitionId::ALL.len();

    /// The stable snake_case name used in folded stacks and JSON.
    pub fn name(self) -> &'static str {
        match self {
            TransitionId::GuestRun => "guest_run",
            TransitionId::GuestStack => "guest_stack",
            TransitionId::TrapToEl2 => "trap_to_el2",
            TransitionId::Eret => "eret",
            TransitionId::VmcsWorldSwitch => "vmcs_world_switch",
            TransitionId::ContextSave => "context_save",
            TransitionId::ContextRestore => "context_restore",
            TransitionId::VgicLrSave => "vgic_lr_save",
            TransitionId::VgicLrRestore => "vgic_lr_restore",
            TransitionId::VirtToggle => "virt_toggle",
            TransitionId::GicAccess => "gic_access",
            TransitionId::GicdEmulate => "gicd_emulate",
            TransitionId::HostDispatch => "host_dispatch",
            TransitionId::MmioDecode => "mmio_decode",
            TransitionId::VirqInject => "virq_inject",
            TransitionId::EventChannelSignal => "event_channel_signal",
            TransitionId::EventUpcall => "event_upcall",
            TransitionId::VhostKick => "vhost_kick",
            TransitionId::VhostBackend => "vhost_backend",
            TransitionId::GrantCopy => "grant_copy",
            TransitionId::Netback => "netback",
            TransitionId::HostStack => "host_stack",
            TransitionId::HostIrq => "host_irq",
            TransitionId::Sched => "sched",
            TransitionId::NicDma => "nic_dma",
            TransitionId::DeviceService => "device_service",
            TransitionId::VirtioRekick => "virtio_rekick",
            TransitionId::EvtchnRedeliver => "evtchn_redeliver",
            TransitionId::GrantRetry => "grant_retry",
            TransitionId::TcpRetransmit => "tcp_retransmit",
            TransitionId::SchedTimer => "sched_timer",
            TransitionId::LockHolderSpin => "lock_holder_spin",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.name())
    }
}

/// One row of a span breakdown (see [`SpanTracer::rows`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRow {
    /// Which transition.
    pub id: TransitionId,
    /// Times the span was entered.
    pub count: u64,
    /// Cycles charged while this span was innermost.
    pub exclusive: u64,
    /// Cycles charged while this span was open anywhere on the stack
    /// (self plus children; recursive re-entries counted once).
    pub inclusive: u64,
}

/// Sentinel for "no folded-path slot cached" (empty span stack).
const NO_SLOT: usize = usize::MAX;

/// The span tracer: a stack of open transitions plus per-transition
/// exclusive/inclusive totals and folded-stack path accumulation.
///
/// The charge hot path is allocation-free: folded-path slots are
/// resolved once per [`SpanTracer::enter`]/[`SpanTracer::exit`] and
/// cached, so [`SpanTracer::charge`] is a few array additions.
///
/// # Conservation
///
/// For any sequence of balanced `enter`/`exit` pairs interleaved with
/// `charge` calls:
///
/// ```text
/// Σ exclusive(id) + unattributed() == total()
/// ```
///
/// holds exactly — the engine asserts the same identity against the
/// machine's per-core busy totals.
///
/// # Examples
///
/// ```
/// use hvx_obs::{SpanTracer, TransitionId};
///
/// let mut t = SpanTracer::new();
/// t.enter(TransitionId::ContextSave);
/// t.charge(100);
/// t.enter(TransitionId::VgicLrSave); // nested: innermost gets charged
/// t.charge(40);
/// t.exit(TransitionId::VgicLrSave);
/// t.charge(10);
/// t.exit(TransitionId::ContextSave);
/// assert_eq!(t.exclusive(TransitionId::ContextSave), 110);
/// assert_eq!(t.exclusive(TransitionId::VgicLrSave), 40);
/// assert_eq!(t.inclusive(TransitionId::ContextSave), 150);
/// assert_eq!(t.total(), 150);
/// ```
#[derive(Debug, Clone)]
pub struct SpanTracer {
    /// Open spans, innermost last: `(id index, inclusive accumulator)`.
    stack: Vec<(u8, u64)>,
    /// How many times each id is currently on the stack (recursion guard
    /// for inclusive totals).
    on_stack: [u32; TransitionId::COUNT],
    excl: [u64; TransitionId::COUNT],
    incl: [u64; TransitionId::COUNT],
    counts: [u64; TransitionId::COUNT],
    unattributed: u64,
    total: u64,
    /// Folded call paths (outermost first) and their exclusive cycles.
    folded: Vec<(Vec<u8>, u64)>,
    /// Cached index into `folded` for the current stack.
    cur_slot: usize,
}

impl Default for SpanTracer {
    fn default() -> Self {
        SpanTracer::new()
    }
}

impl SpanTracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        SpanTracer {
            stack: Vec::with_capacity(8),
            on_stack: [0; TransitionId::COUNT],
            excl: [0; TransitionId::COUNT],
            incl: [0; TransitionId::COUNT],
            counts: [0; TransitionId::COUNT],
            unattributed: 0,
            total: 0,
            folded: Vec::new(),
            cur_slot: NO_SLOT,
        }
    }

    /// Opens a span. Spans nest; close with a matching
    /// [`SpanTracer::exit`].
    pub fn enter(&mut self, id: TransitionId) {
        let i = id.index();
        self.counts[i] += 1;
        self.on_stack[i] += 1;
        self.stack.push((i as u8, 0));
        self.cur_slot = self.slot_for_current_path();
    }

    /// Closes the innermost span, which must be `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the innermost open span (unbalanced
    /// instrumentation is a bug, not a runtime condition).
    pub fn exit(&mut self, id: TransitionId) {
        let (top, acc) = self
            .stack
            .pop()
            .unwrap_or_else(|| panic!("span_exit({}) with no open span", id.name()));
        assert_eq!(
            top as usize,
            id.index(),
            "span_exit({}) but innermost open span is {}",
            id.name(),
            TransitionId::ALL[top as usize].name()
        );
        let i = id.index();
        self.on_stack[i] -= 1;
        // Inclusive: count each cycle once per id even under recursion.
        if self.on_stack[i] == 0 {
            self.incl[i] += acc;
        }
        if let Some((_, parent_acc)) = self.stack.last_mut() {
            *parent_acc += acc;
            self.cur_slot = self.slot_for_current_path();
        } else {
            self.cur_slot = NO_SLOT;
        }
    }

    /// Attributes `cycles` to the innermost open span (or to the
    /// unattributed bucket if none is open). Allocation-free.
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.total += cycles;
        match self.stack.last_mut() {
            Some((i, acc)) => {
                self.excl[*i as usize] += cycles;
                *acc += cycles;
                self.folded[self.cur_slot].1 += cycles;
            }
            None => self.unattributed += cycles,
        }
    }

    fn slot_for_current_path(&mut self) -> usize {
        let path: Vec<u8> = self.stack.iter().map(|(i, _)| *i).collect();
        if let Some(pos) = self.folded.iter().position(|(p, _)| *p == path) {
            return pos;
        }
        self.folded.push((path, 0));
        self.folded.len() - 1
    }

    /// Cycles charged while `id` was the innermost open span.
    pub fn exclusive(&self, id: TransitionId) -> u64 {
        self.excl[id.index()]
    }

    /// Cycles charged while `id` was open anywhere on the stack.
    /// Only complete (exited) spans contribute.
    pub fn inclusive(&self, id: TransitionId) -> u64 {
        self.incl[id.index()]
    }

    /// Times `id` was entered.
    pub fn count(&self, id: TransitionId) -> u64 {
        self.counts[id.index()]
    }

    /// Cycles charged with no span open.
    pub fn unattributed(&self) -> u64 {
        self.unattributed
    }

    /// Every cycle ever charged through this tracer.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Current nesting depth (0 = no open span).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The active breakdown rows, in [`TransitionId::ALL`] order,
    /// skipping transitions that never ran.
    pub fn rows(&self) -> Vec<SpanRow> {
        TransitionId::ALL
            .into_iter()
            .filter(|id| self.counts[id.index()] > 0 || self.excl[id.index()] > 0)
            .map(|id| SpanRow {
                id,
                count: self.counts[id.index()],
                exclusive: self.excl[id.index()],
                inclusive: self.incl[id.index()],
            })
            .collect()
    }

    /// Folds `other` into `self` (cross-thread scenario merge). Both
    /// tracers must have no open spans.
    ///
    /// # Panics
    ///
    /// Panics if either tracer still has open spans.
    pub fn merge(&mut self, other: &SpanTracer) {
        assert!(
            self.stack.is_empty() && other.stack.is_empty(),
            "merging tracers with open spans"
        );
        for i in 0..TransitionId::COUNT {
            self.excl[i] += other.excl[i];
            self.incl[i] += other.incl[i];
            self.counts[i] += other.counts[i];
        }
        self.unattributed += other.unattributed;
        self.total += other.total;
        for (path, cycles) in &other.folded {
            if let Some(pos) = self.folded.iter().position(|(p, _)| p == path) {
                self.folded[pos].1 += cycles;
            } else {
                self.folded.push((path.clone(), *cycles));
            }
        }
        self.cur_slot = NO_SLOT;
    }

    /// Folds `other` into `self` `k` times at once — the batched form
    /// of [`SpanTracer::merge`] used by compiled loop replay, where one
    /// steady-state block's span delta is applied for every skipped
    /// block without re-walking the span stream. Equivalent to calling
    /// `merge(other)` `k` times.
    ///
    /// # Panics
    ///
    /// Panics if either tracer still has open spans.
    pub fn merge_scaled(&mut self, other: &SpanTracer, k: u64) {
        assert!(
            self.stack.is_empty() && other.stack.is_empty(),
            "merging tracers with open spans"
        );
        for i in 0..TransitionId::COUNT {
            self.excl[i] += other.excl[i] * k;
            self.incl[i] += other.incl[i] * k;
            self.counts[i] += other.counts[i] * k;
        }
        self.unattributed += other.unattributed * k;
        self.total += other.total * k;
        for (path, cycles) in &other.folded {
            if let Some(pos) = self.folded.iter().position(|(p, _)| p == path) {
                self.folded[pos].1 += cycles * k;
            } else {
                self.folded.push((path.clone(), cycles * k));
            }
        }
        self.cur_slot = NO_SLOT;
    }

    /// Renders the folded-stack flamegraph text: one line per unique
    /// span path, `root;outer;inner <exclusive cycles>`, with
    /// zero-cycle frames dropped deterministically and parents emitted
    /// before children. Siblings order by (subtree cycles descending,
    /// name ascending), so the heaviest call path reads top-down and
    /// the bytes are stable regardless of discovery order or worker
    /// count. Unattributed cycles fold into the bare `root` frame,
    /// which — when present — always leads.
    pub fn folded(&self, root: &str) -> String {
        /// One frame of the reassembled call tree.
        struct Node {
            name: &'static str,
            exclusive: u64,
            subtree: u64,
            children: Vec<Node>,
        }
        fn insert(node: &mut Node, path: &[u8], cycles: u64) {
            node.subtree += cycles;
            let Some((head, rest)) = path.split_first() else {
                node.exclusive += cycles;
                return;
            };
            let name = TransitionId::ALL[*head as usize].name();
            let child = match node.children.iter_mut().position(|c| c.name == name) {
                Some(i) => &mut node.children[i],
                None => {
                    node.children.push(Node {
                        name,
                        exclusive: 0,
                        subtree: 0,
                        children: Vec::new(),
                    });
                    node.children.last_mut().expect("just pushed")
                }
            };
            insert(child, rest, cycles);
        }
        fn emit(node: &Node, prefix: &str, out: &mut String) {
            if node.exclusive > 0 {
                out.push_str(prefix);
                out.push(' ');
                out.push_str(&node.exclusive.to_string());
                out.push('\n');
            }
            let mut order: Vec<&Node> = node.children.iter().collect();
            order.sort_by(|a, b| b.subtree.cmp(&a.subtree).then_with(|| a.name.cmp(b.name)));
            for child in order {
                emit(child, &format!("{prefix};{}", child.name), out);
            }
        }
        let mut tree = Node {
            name: "",
            exclusive: self.unattributed,
            subtree: self.unattributed,
            children: Vec::new(),
        };
        for (path, cycles) in &self.folded {
            if *cycles > 0 {
                insert(&mut tree, path, *cycles);
            }
        }
        let mut out = String::new();
        emit(&tree, root, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_are_unique_and_indexed() {
        for (i, id) in TransitionId::ALL.into_iter().enumerate() {
            assert_eq!(id.index(), i);
            assert!(!id.name().is_empty());
        }
        let mut names: Vec<_> = TransitionId::ALL.iter().map(|i| i.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), TransitionId::COUNT);
    }

    #[test]
    fn unattributed_catches_bare_charges() {
        let mut t = SpanTracer::new();
        t.charge(7);
        t.enter(TransitionId::TrapToEl2);
        t.charge(20);
        t.exit(TransitionId::TrapToEl2);
        t.charge(3);
        assert_eq!(t.unattributed(), 10);
        assert_eq!(t.exclusive(TransitionId::TrapToEl2), 20);
        assert_eq!(t.total(), 30);
    }

    #[test]
    fn conservation_holds_under_nesting() {
        let mut t = SpanTracer::new();
        t.charge(1);
        for _ in 0..3 {
            t.enter(TransitionId::ContextSave);
            t.charge(100);
            t.enter(TransitionId::VgicLrSave);
            t.charge(40);
            t.exit(TransitionId::VgicLrSave);
            t.exit(TransitionId::ContextSave);
        }
        let excl_sum: u64 = TransitionId::ALL.into_iter().map(|i| t.exclusive(i)).sum();
        assert_eq!(excl_sum + t.unattributed(), t.total());
        assert_eq!(t.total(), 1 + 3 * 140);
        assert_eq!(t.inclusive(TransitionId::ContextSave), 3 * 140);
        assert_eq!(t.count(TransitionId::VgicLrSave), 3);
    }

    #[test]
    fn recursive_spans_count_inclusive_once() {
        let mut t = SpanTracer::new();
        t.enter(TransitionId::Sched);
        t.charge(10);
        t.enter(TransitionId::Sched);
        t.charge(5);
        t.exit(TransitionId::Sched);
        t.exit(TransitionId::Sched);
        assert_eq!(t.exclusive(TransitionId::Sched), 15);
        assert_eq!(t.inclusive(TransitionId::Sched), 15);
    }

    #[test]
    #[should_panic(expected = "innermost open span")]
    fn mismatched_exit_panics() {
        let mut t = SpanTracer::new();
        t.enter(TransitionId::TrapToEl2);
        t.exit(TransitionId::Eret);
    }

    #[test]
    fn folded_output_is_sorted_and_complete() {
        let mut t = SpanTracer::new();
        t.charge(5);
        t.enter(TransitionId::TrapToEl2);
        t.charge(20);
        t.exit(TransitionId::TrapToEl2);
        t.enter(TransitionId::ContextSave);
        t.enter(TransitionId::VgicLrSave);
        t.charge(40);
        t.exit(TransitionId::VgicLrSave);
        t.exit(TransitionId::ContextSave);
        let s = t.folded("kvm_arm");
        assert_eq!(
            s,
            "kvm_arm 5\nkvm_arm;context_save;vgic_lr_save 40\nkvm_arm;trap_to_el2 20\n"
        );
    }

    #[test]
    fn folded_orders_siblings_by_cycles_then_name_and_drops_zero_frames() {
        let mut t = SpanTracer::new();
        // Two siblings with equal subtree weight: name breaks the tie.
        t.enter(TransitionId::Eret);
        t.charge(30);
        t.exit(TransitionId::Eret);
        t.enter(TransitionId::ContextSave);
        t.charge(30);
        t.exit(TransitionId::ContextSave);
        // A heavier subtree whose own frame is zero-cost: the parent
        // frame gets no line, but its child sorts by the subtree sum.
        t.enter(TransitionId::HostDispatch);
        t.enter(TransitionId::MmioDecode);
        t.charge(100);
        t.exit(TransitionId::MmioDecode);
        t.exit(TransitionId::HostDispatch);
        // A zero-cycle leaf path: deterministically dropped.
        t.enter(TransitionId::Sched);
        t.charge(0);
        t.exit(TransitionId::Sched);
        assert_eq!(
            t.folded("r"),
            "r;host_dispatch;mmio_decode 100\nr;context_save 30\nr;eret 30\n"
        );
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = SpanTracer::new();
        a.enter(TransitionId::Eret);
        a.charge(10);
        a.exit(TransitionId::Eret);
        let mut b = SpanTracer::new();
        b.enter(TransitionId::Eret);
        b.charge(32);
        b.exit(TransitionId::Eret);
        b.charge(8);
        a.merge(&b);
        assert_eq!(a.exclusive(TransitionId::Eret), 42);
        assert_eq!(a.count(TransitionId::Eret), 2);
        assert_eq!(a.unattributed(), 8);
        assert_eq!(a.total(), 50);
        assert_eq!(a.folded("r"), "r 8\nr;eret 42\n");
    }

    #[test]
    fn merge_scaled_matches_repeated_merge() {
        let mut delta = SpanTracer::new();
        delta.enter(TransitionId::Eret);
        delta.charge(10);
        delta.enter(TransitionId::GicAccess);
        delta.charge(3);
        delta.exit(TransitionId::GicAccess);
        delta.exit(TransitionId::Eret);
        delta.charge(7);

        let mut scaled = SpanTracer::new();
        scaled.merge_scaled(&delta, 5);
        let mut repeated = SpanTracer::new();
        for _ in 0..5 {
            repeated.merge(&delta);
        }
        assert_eq!(scaled.total(), repeated.total());
        assert_eq!(scaled.unattributed(), repeated.unattributed());
        for id in TransitionId::ALL {
            assert_eq!(scaled.exclusive(id), repeated.exclusive(id));
            assert_eq!(scaled.inclusive(id), repeated.inclusive(id));
            assert_eq!(scaled.count(id), repeated.count(id));
        }
        assert_eq!(scaled.folded("r"), repeated.folded("r"));
    }

    #[test]
    fn rows_skip_idle_transitions() {
        let mut t = SpanTracer::new();
        t.enter(TransitionId::GrantCopy);
        t.charge(9);
        t.exit(TransitionId::GrantCopy);
        let rows = t.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id, TransitionId::GrantCopy);
        assert_eq!(rows[0].exclusive, 9);
    }
}
