//! Causal event tracing: per-track timelines with cross-machine flows.
//!
//! Where spans ([`crate::SpanTracer`]) answer *where did cycles go in
//! aggregate*, the event tracer answers *what happened, when, and what
//! caused it*: every charge becomes a timestamped **slice** on a
//! per-core track, and causally-linked slices on different cores are
//! stitched together by **flow points** (the paper's guest kick →
//! vhost/Dom0 handling → vIRQ delivery chains). The result exports to
//! Chrome trace-event JSON, which loads directly in Perfetto or
//! `chrome://tracing`.
//!
//! The tracer is substrate-free: tracks are plain `u8` ids and
//! timestamps are raw cycle counts. The engine maps cores to tracks and
//! clock instants to timestamps; this module never advances time, so
//! enabling it cannot perturb a simulation.
//!
//! # Ring-buffer mode
//!
//! With a capacity installed ([`EventTracer::with_capacity`]) the slice
//! and flow stores become fixed-size rings: the newest events overwrite
//! the oldest and [`EventTracer::dropped_slices`] counts the casualties.
//! Full traces of large scenarios stay memory-capped; chains whose
//! beginnings were overwritten simply surface as incomplete.

use crate::{MetricsRegistry, TransitionId};
use serde::Value;

/// Identity of one causal flow: every point of a chain carries the same
/// id, which becomes the Chrome trace-event `id` binding the arrows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(u64);

impl FlowId {
    /// The raw flow identifier.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// What kind of causal chain a flow traces. Each kind derives into its
/// own end-to-end latency histogram (see
/// [`EventTracer::derive_metrics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowKind {
    /// Guest virtio doorbell → vhost worker → wire departure (KVM's
    /// transmit kick path).
    VirtioKick,
    /// Guest event-channel signal → Dom0 wakeup → wire departure (Xen's
    /// transmit path).
    EvtchnSignal,
    /// Physical device IRQ on the host/Dom0 → backend processing →
    /// vIRQ injection → guest acknowledge (the paper's interrupt
    /// delivery asymmetry, Fig. 4 / Table V).
    IrqDelivery,
    /// One grant copy (including its bounded retries under fault
    /// injection).
    GrantCopy,
    /// An injected fault's charged recovery path (rekick, redeliver,
    /// retry, retransmit).
    FaultRecovery,
}

impl FlowKind {
    /// Every flow kind.
    pub const ALL: [FlowKind; 5] = [
        FlowKind::VirtioKick,
        FlowKind::EvtchnSignal,
        FlowKind::IrqDelivery,
        FlowKind::GrantCopy,
        FlowKind::FaultRecovery,
    ];

    /// Stable snake_case name, used as the Chrome flow-event name.
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::VirtioKick => "virtio_kick",
            FlowKind::EvtchnSignal => "evtchn_signal",
            FlowKind::IrqDelivery => "irq_delivery",
            FlowKind::GrantCopy => "grant_copy",
            FlowKind::FaultRecovery => "fault_recovery",
        }
    }

    /// The latency histogram this kind's complete chains derive into.
    /// Virtio kicks and event-channel signals share the I/O-kick
    /// histogram so KVM and Xen are directly comparable.
    pub fn latency_metric(self) -> &'static str {
        match self {
            FlowKind::VirtioKick | FlowKind::EvtchnSignal => "trace.latency.io_kick",
            FlowKind::IrqDelivery => "trace.latency.irq_delivery",
            FlowKind::GrantCopy => "trace.latency.grant_copy",
            FlowKind::FaultRecovery => "trace.latency.fault_recovery",
        }
    }
}

/// Position of a flow point within its chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// Chain start (Chrome `ph:"s"`).
    Begin,
    /// Intermediate hop (Chrome `ph:"t"`).
    Step,
    /// Chain end (Chrome `ph:"f"`, binding enclosing).
    End,
}

impl FlowPhase {
    /// The Chrome trace-event phase letter.
    pub fn chrome_ph(self) -> &'static str {
        match self {
            FlowPhase::Begin => "s",
            FlowPhase::Step => "t",
            FlowPhase::End => "f",
        }
    }
}

/// One timestamped interval of charged work on a track — a Chrome
/// complete event (`ph:"X"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceEvent {
    /// Track the work ran on (the engine uses the physical core index).
    pub track: u8,
    /// Start instant in cycles.
    pub start: u64,
    /// Duration in cycles (zero-cost charges still record: they mark
    /// causal steps).
    pub duration: u64,
    /// The charge label (e.g. `kvm:vgic-inject`).
    pub label: &'static str,
    /// The transition the charge was attributed to, if charged through
    /// a span (`charge_as`).
    pub transition: Option<TransitionId>,
    /// Whether a fault-plan injection fired immediately before this
    /// slice (the slice is the start of a charged recovery path).
    pub fault: bool,
    /// Global record sequence number (monotone; survives ring wrap).
    pub seq: u64,
}

/// One point of a causal flow chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPoint {
    /// The chain this point belongs to.
    pub id: FlowId,
    /// The chain's kind.
    pub kind: FlowKind,
    /// Begin/step/end.
    pub phase: FlowPhase,
    /// Track the point was recorded on.
    pub track: u8,
    /// Instant in cycles.
    pub ts: u64,
    /// A short hop label (e.g. `vhost:wake`).
    pub label: &'static str,
}

/// One reassembled causal chain (see [`EventTracer::chains`]).
#[derive(Debug, Clone)]
pub struct FlowChain {
    /// The chain id.
    pub id: FlowId,
    /// The chain kind.
    pub kind: FlowKind,
    /// The chain's points, in recording order.
    pub points: Vec<FlowPoint>,
    /// `true` when the chain has both its begin and end point (ring
    /// mode can drop either).
    pub complete: bool,
    /// End-to-end latency in cycles (0 unless complete).
    pub latency: u64,
}

impl FlowChain {
    /// Distinct tracks this chain touched.
    pub fn track_span(&self) -> usize {
        let mut tracks: Vec<u8> = self.points.iter().map(|p| p.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        tracks.len()
    }
}

/// Fixed-capacity ring over a `Vec`: pushes overwrite the oldest entry
/// once `cap` is reached.
#[derive(Debug, Clone)]
struct Ring<T> {
    items: Vec<T>,
    /// `None` = unbounded.
    cap: Option<usize>,
    /// Next overwrite position once full.
    head: usize,
    dropped: u64,
}

impl<T: Copy> Ring<T> {
    fn new(cap: Option<usize>) -> Self {
        let reserve = cap.unwrap_or(0).min(4096);
        Ring {
            items: Vec::with_capacity(reserve),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, item: T) {
        match self.cap {
            Some(cap) if self.items.len() >= cap => {
                if cap == 0 {
                    self.dropped += 1;
                    return;
                }
                self.items[self.head] = item;
                self.head = (self.head + 1) % cap;
                self.dropped += 1;
            }
            _ => self.items.push(item),
        }
    }

    /// Entries in recording order (oldest surviving first).
    fn in_order(&self) -> Vec<T> {
        if self.dropped == 0 || self.head == 0 {
            self.items.clone()
        } else {
            let mut out = Vec::with_capacity(self.items.len());
            out.extend_from_slice(&self.items[self.head..]);
            out.extend_from_slice(&self.items[..self.head]);
            out
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

/// The structured event tracer: slices plus flow points, exportable to
/// Chrome trace-event JSON.
///
/// # Examples
///
/// ```
/// use hvx_obs::{EventTracer, FlowKind, TransitionId};
///
/// let mut t = EventTracer::new();
/// t.record_slice(0, 0, 100, "guest:kick", Some(TransitionId::VhostKick));
/// let flow = t.flow_begin(FlowKind::VirtioKick, 0, 100, "virtio:kick");
/// t.flow_step(flow, 4, 700, "vhost:wake");
/// t.record_slice(4, 700, 2_000, "kvm:vhost-tx", Some(TransitionId::VhostBackend));
/// t.flow_end(flow, 4, 2_700, "nic:dma");
/// let chains = t.chains();
/// assert_eq!(chains.len(), 1);
/// assert!(chains[0].complete);
/// assert_eq!(chains[0].latency, 2_600);
/// ```
#[derive(Debug, Clone)]
pub struct EventTracer {
    slices: Ring<SliceEvent>,
    flows: Ring<FlowPoint>,
    /// Total slices ever recorded (ring wrap does not rewind this).
    seq: u64,
    next_flow: u64,
    /// Set by [`EventTracer::note_fault`]; consumed by the next slice.
    pending_fault: bool,
}

impl Default for EventTracer {
    fn default() -> Self {
        EventTracer::new()
    }
}

impl EventTracer {
    /// An unbounded tracer: every event is kept.
    pub fn new() -> Self {
        EventTracer::build(None)
    }

    /// A ring-buffered tracer keeping at most `capacity` slices and
    /// `capacity` flow points.
    pub fn with_capacity(capacity: usize) -> Self {
        EventTracer::build(Some(capacity))
    }

    fn build(cap: Option<usize>) -> Self {
        EventTracer {
            slices: Ring::new(cap),
            flows: Ring::new(cap),
            seq: 0,
            next_flow: 0,
            pending_fault: false,
        }
    }

    /// The installed ring capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.slices.cap
    }

    /// Records one slice of charged work. Consumes a pending fault mark
    /// (see [`EventTracer::note_fault`]) into the slice's `fault` flag.
    pub fn record_slice(
        &mut self,
        track: u8,
        start: u64,
        duration: u64,
        label: &'static str,
        transition: Option<TransitionId>,
    ) {
        let fault = std::mem::take(&mut self.pending_fault);
        let seq = self.seq;
        self.seq += 1;
        self.slices.push(SliceEvent {
            track,
            start,
            duration,
            label,
            transition,
            fault,
            seq,
        });
    }

    /// Marks that a fault was just injected: the next recorded slice is
    /// flagged as the head of its charged recovery path.
    pub fn note_fault(&mut self) {
        self.pending_fault = true;
    }

    /// Opens a new causal chain at `(track, ts)` and returns its id.
    pub fn flow_begin(
        &mut self,
        kind: FlowKind,
        track: u8,
        ts: u64,
        label: &'static str,
    ) -> FlowId {
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.push(FlowPoint {
            id,
            kind,
            phase: FlowPhase::Begin,
            track,
            ts,
            label,
        });
        id
    }

    /// Records an intermediate hop of chain `id`.
    pub fn flow_step(&mut self, id: FlowId, track: u8, ts: u64, label: &'static str) {
        self.push_point(id, FlowPhase::Step, track, ts, label);
    }

    /// Closes chain `id` at `(track, ts)`.
    pub fn flow_end(&mut self, id: FlowId, track: u8, ts: u64, label: &'static str) {
        self.push_point(id, FlowPhase::End, track, ts, label);
    }

    fn push_point(
        &mut self,
        id: FlowId,
        phase: FlowPhase,
        track: u8,
        ts: u64,
        label: &'static str,
    ) {
        let kind = self
            .flows
            .items
            .iter()
            .rev()
            .find(|p| p.id == id)
            .map(|p| p.kind);
        // A chain whose earlier points were all overwritten by the ring
        // cannot name its kind; drop the orphan point rather than guess.
        let Some(kind) = kind else { return };
        self.flows.push(FlowPoint {
            id,
            kind,
            phase,
            track,
            ts,
            label,
        });
    }

    /// Surviving slices, oldest first.
    pub fn slices(&self) -> Vec<SliceEvent> {
        self.slices.in_order()
    }

    /// Surviving flow points, oldest first.
    pub fn flow_points(&self) -> Vec<FlowPoint> {
        self.flows.in_order()
    }

    /// Total slices ever recorded (including any the ring overwrote).
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Slices lost to ring overwrites.
    pub fn dropped_slices(&self) -> u64 {
        self.slices.dropped
    }

    /// Flow points lost to ring overwrites.
    pub fn dropped_flow_points(&self) -> u64 {
        self.flows.dropped
    }

    /// Reassembles the surviving flow points into chains, in order of
    /// each chain's first surviving point. A chain is complete when both
    /// its begin and end survived; only complete chains carry a latency.
    pub fn chains(&self) -> Vec<FlowChain> {
        let points = self.flows.in_order();
        let mut order: Vec<usize> = (0..points.len()).collect();
        order.sort_by_key(|&i| (points[i].id, i));
        let mut chains: Vec<FlowChain> = Vec::new();
        for i in order {
            let p = points[i];
            match chains.last_mut() {
                Some(c) if c.id == p.id => c.points.push(p),
                _ => chains.push(FlowChain {
                    id: p.id,
                    kind: p.kind,
                    points: vec![p],
                    complete: false,
                    latency: 0,
                }),
            }
        }
        for c in &mut chains {
            let begin = c.points.iter().find(|p| p.phase == FlowPhase::Begin);
            let end = c.points.iter().rfind(|p| p.phase == FlowPhase::End);
            if let (Some(b), Some(e)) = (begin, end) {
                c.complete = true;
                c.latency = e.ts.saturating_sub(b.ts);
            }
        }
        // Present chains in the order they began.
        chains.sort_by_key(|c| {
            c.points
                .first()
                .map_or((u64::MAX, u64::MAX), |p| (p.ts, c.id.0))
        });
        chains
    }

    /// The derivation pass: walks the reassembled chains and folds
    /// end-to-end latencies, chain lengths, and completeness counters
    /// into `metrics`:
    ///
    /// * `trace.latency.io_kick` — virtio-kick / event-channel chains;
    /// * `trace.latency.irq_delivery` — interrupt-delivery chains (the
    ///   Fig. 4 asymmetry quantity);
    /// * `trace.latency.grant_copy`, `trace.latency.fault_recovery`;
    /// * `trace.chain_len` — points per complete chain;
    /// * `trace.events`, `trace.events_dropped`, `trace.flows_complete`,
    ///   `trace.flows_incomplete` counters.
    pub fn derive_metrics(&self, metrics: &mut MetricsRegistry) {
        metrics.bump("trace.events", self.seq);
        metrics.bump("trace.events_dropped", self.slices.dropped);
        for c in self.chains() {
            if c.complete {
                metrics.bump("trace.flows_complete", 1);
                metrics.observe(c.kind.latency_metric(), c.latency);
                metrics.observe("trace.chain_len", c.points.len() as u64);
            } else {
                metrics.bump("trace.flows_incomplete", 1);
            }
        }
    }

    /// Exports the trace as a Chrome trace-event JSON value
    /// (`{"traceEvents": [...], ...}`), loadable in Perfetto and
    /// `chrome://tracing`.
    ///
    /// Timestamps are raw simulated cycles presented as microseconds
    /// (the viewers require *some* time unit; relative magnitudes are
    /// what matter for a simulation). Tracks map to thread ids under a
    /// single process; `track_names[track]` supplies the thread names,
    /// with `track<N>` as the fallback.
    pub fn chrome_trace(&self, process_name: &str, track_names: &[String]) -> Value {
        let mut events: Vec<Value> = Vec::new();
        events.push(obj(vec![
            ("name", Value::Str("process_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(0)),
            (
                "args",
                obj(vec![("name", Value::Str(process_name.to_string()))]),
            ),
        ]));
        let slices = self.slices.in_order();
        let points = self.flows.in_order();
        let mut tracks: Vec<u8> = slices
            .iter()
            .map(|s| s.track)
            .chain(points.iter().map(|p| p.track))
            .collect();
        tracks.sort_unstable();
        tracks.dedup();
        for t in &tracks {
            let name = track_names
                .get(*t as usize)
                .cloned()
                .unwrap_or_else(|| format!("track{t}"));
            events.push(obj(vec![
                ("name", Value::Str("thread_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(u64::from(*t))),
                ("args", obj(vec![("name", Value::Str(name))])),
            ]));
        }
        for s in &slices {
            let mut args = vec![
                ("cycles", Value::U64(s.duration)),
                ("seq", Value::U64(s.seq)),
            ];
            if let Some(id) = s.transition {
                args.push(("transition", Value::Str(id.name().to_string())));
            }
            if s.fault {
                args.push(("fault", Value::Bool(true)));
            }
            events.push(obj(vec![
                ("name", Value::Str(s.label.to_string())),
                ("ph", Value::Str("X".into())),
                ("ts", Value::U64(s.start)),
                ("dur", Value::U64(s.duration)),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(u64::from(s.track))),
                ("args", obj(args)),
            ]));
        }
        for p in &points {
            let mut fields = vec![
                ("name", Value::Str(p.kind.name().to_string())),
                ("cat", Value::Str("flow".into())),
                ("ph", Value::Str(p.phase.chrome_ph().to_string())),
                ("id", Value::U64(p.id.raw())),
                ("ts", Value::U64(p.ts)),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(u64::from(p.track))),
                ("args", obj(vec![("hop", Value::Str(p.label.to_string()))])),
            ];
            if p.phase == FlowPhase::End {
                // Bind the arrow head to the enclosing slice.
                fields.push(("bp", Value::Str("e".into())));
            }
            events.push(obj(fields));
        }
        obj(vec![
            ("traceEvents", Value::Array(events)),
            ("displayTimeUnit", Value::Str("ns".into())),
            (
                "otherData",
                obj(vec![
                    ("events_recorded", Value::U64(self.seq)),
                    ("events_dropped", Value::U64(self.slices.dropped)),
                    ("flow_points", Value::U64(self.flows.len() as u64)),
                ]),
            ),
        ])
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_record_in_order_with_fault_marks() {
        let mut t = EventTracer::new();
        t.record_slice(0, 0, 10, "a", None);
        t.note_fault();
        t.record_slice(1, 10, 20, "b", Some(TransitionId::GrantRetry));
        t.record_slice(1, 30, 5, "c", None);
        let s = t.slices();
        assert_eq!(s.len(), 3);
        assert!(!s[0].fault);
        assert!(s[1].fault, "fault mark attaches to the next slice");
        assert!(!s[2].fault, "fault mark is consumed");
        assert_eq!(s[1].transition, Some(TransitionId::GrantRetry));
        assert_eq!(s.iter().map(|s| s.seq).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(t.recorded(), 3);
        assert_eq!(t.dropped_slices(), 0);
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut t = EventTracer::with_capacity(2);
        for i in 0..5u64 {
            t.record_slice(0, i * 10, 1, "s", None);
        }
        let s = t.slices();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].start, 30, "oldest surviving first");
        assert_eq!(s[1].start, 40);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped_slices(), 3);
    }

    #[test]
    fn chains_reassemble_interleaved_flows() {
        let mut t = EventTracer::new();
        let a = t.flow_begin(FlowKind::VirtioKick, 0, 100, "kick");
        let b = t.flow_begin(FlowKind::IrqDelivery, 4, 150, "irq");
        t.flow_step(a, 4, 300, "wake");
        t.flow_end(b, 1, 900, "ack");
        t.flow_end(a, 5, 600, "dma");
        let chains = t.chains();
        assert_eq!(chains.len(), 2);
        // Presented in begin order.
        assert_eq!(chains[0].kind, FlowKind::VirtioKick);
        assert_eq!(chains[0].points.len(), 3);
        assert!(chains[0].complete);
        assert_eq!(chains[0].latency, 500);
        assert_eq!(chains[1].kind, FlowKind::IrqDelivery);
        assert_eq!(chains[1].latency, 750);
        assert_eq!(chains[1].track_span(), 2);
    }

    #[test]
    fn ring_truncated_chain_is_incomplete_not_wrong() {
        let mut t = EventTracer::with_capacity(2);
        let a = t.flow_begin(FlowKind::EvtchnSignal, 0, 10, "send");
        t.flow_step(a, 5, 50, "wake");
        t.flow_end(a, 5, 90, "wire"); // overwrites the begin
        let chains = t.chains();
        assert_eq!(chains.len(), 1);
        assert!(!chains[0].complete);
        assert_eq!(chains[0].latency, 0);
    }

    #[test]
    fn orphan_flow_point_after_full_overwrite_is_dropped() {
        let mut t = EventTracer::with_capacity(1);
        let a = t.flow_begin(FlowKind::GrantCopy, 0, 10, "copy");
        let b = t.flow_begin(FlowKind::GrantCopy, 0, 20, "copy");
        t.flow_end(a, 0, 30, "done"); // a's begin was overwritten by b's
        let chains = t.chains();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].id, b);
    }

    #[test]
    fn derive_metrics_builds_latency_histograms() {
        let mut t = EventTracer::new();
        let a = t.flow_begin(FlowKind::IrqDelivery, 4, 0, "irq");
        t.flow_end(a, 1, 7_000, "ack");
        let b = t.flow_begin(FlowKind::VirtioKick, 0, 100, "kick");
        t.flow_end(b, 5, 2_100, "dma");
        let _c = t.flow_begin(FlowKind::GrantCopy, 5, 50, "copy"); // never ends
        t.record_slice(0, 0, 10, "s", None);
        let mut m = MetricsRegistry::new();
        t.derive_metrics(&mut m);
        assert_eq!(m.counter("trace.events"), 1);
        assert_eq!(m.counter("trace.flows_complete"), 2);
        assert_eq!(m.counter("trace.flows_incomplete"), 1);
        let irq = m.histogram("trace.latency.irq_delivery").unwrap();
        assert_eq!(irq.count(), 1);
        assert_eq!(irq.sum(), 7_000);
        let kick = m.histogram("trace.latency.io_kick").unwrap();
        assert_eq!(kick.sum(), 2_000);
        assert_eq!(m.histogram("trace.chain_len").unwrap().count(), 2);
    }

    #[test]
    fn chrome_trace_shape_is_valid() {
        let mut t = EventTracer::new();
        t.record_slice(0, 0, 100, "guest:kick", Some(TransitionId::VhostKick));
        let f = t.flow_begin(FlowKind::VirtioKick, 0, 100, "kick");
        t.flow_end(f, 4, 900, "dma");
        let v = t.chrome_trace("hvx kvm-arm", &["pcpu0".to_string()]);
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // process_name + 2 thread_names + 1 slice + 2 flow points.
        assert_eq!(events.len(), 6);
        assert_eq!(events[0]["ph"].as_str(), Some("M"));
        assert_eq!(events[1]["args"]["name"].as_str(), Some("pcpu0"));
        assert_eq!(events[2]["args"]["name"].as_str(), Some("track4"));
        let slice = &events[3];
        assert_eq!(slice["ph"].as_str(), Some("X"));
        assert_eq!(slice["dur"].as_u64(), Some(100));
        assert_eq!(slice["args"]["transition"].as_str(), Some("vhost_kick"));
        let begin = &events[4];
        assert_eq!(begin["ph"].as_str(), Some("s"));
        assert_eq!(begin["id"].as_u64(), Some(0));
        let end = &events[5];
        assert_eq!(end["ph"].as_str(), Some("f"));
        assert_eq!(end["bp"].as_str(), Some("e"));
        assert_eq!(v["otherData"]["events_recorded"].as_u64(), Some(1));
    }

    #[test]
    fn flow_kind_names_and_metrics_are_stable() {
        let mut names: Vec<_> = FlowKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FlowKind::ALL.len());
        assert_eq!(
            FlowKind::VirtioKick.latency_metric(),
            FlowKind::EvtchnSignal.latency_metric(),
            "KVM and Xen kick chains must land in the same histogram"
        );
    }
}
