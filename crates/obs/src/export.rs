//! Serializable snapshots of a profile run.
//!
//! The live [`SpanTracer`](crate::SpanTracer) and
//! [`MetricsRegistry`](crate::MetricsRegistry) are optimized for the
//! charge hot path; exporters convert them into plain, serializable
//! snapshot structs whose JSON field order is fixed, so exported
//! profiles are byte-stable. The folded-stack flamegraph text comes
//! straight from [`SpanTracer::folded`](crate::SpanTracer::folded).

use crate::{MetricsRegistry, SpanTracer, TransitionId};
use serde::{Deserialize, Serialize};

/// One exported breakdown row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanSnapshotRow {
    /// Transition name ([`TransitionId::name`]).
    pub transition: &'static str,
    /// Times the span was entered.
    pub count: u64,
    /// Cycles charged while innermost.
    pub exclusive_cycles: u64,
    /// Cycles charged while open (self + children).
    pub inclusive_cycles: u64,
    /// Exclusive share of the run total, in percent.
    pub share_pct: f64,
}

/// One exported counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// One exported histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Mean observation.
    pub mean: f64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Power-of-two-bucketed median upper bound.
    pub p50: u64,
    /// Power-of-two-bucketed 95th-percentile upper bound.
    pub p95: u64,
    /// Power-of-two-bucketed 99th-percentile upper bound.
    pub p99: u64,
}

/// The complete exported profile of one scenario: the span breakdown
/// (with its conservation remainder) plus sampled metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileSnapshot {
    /// Total cycles charged during the profiled run.
    pub total_cycles: u64,
    /// Cycles charged with no open span.
    pub unattributed_cycles: u64,
    /// Per-transition rows, in [`TransitionId::ALL`] order.
    pub spans: Vec<SpanSnapshotRow>,
    /// Counters, name-sorted.
    pub counters: Vec<CounterSnapshot>,
    /// Histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl ProfileSnapshot {
    /// Snapshots a tracer and a registry into an exportable form.
    pub fn capture(spans: &SpanTracer, metrics: &MetricsRegistry) -> ProfileSnapshot {
        let total = spans.total();
        let pct = |c: u64| {
            if total == 0 {
                0.0
            } else {
                c as f64 * 100.0 / total as f64
            }
        };
        ProfileSnapshot {
            total_cycles: total,
            unattributed_cycles: spans.unattributed(),
            spans: spans
                .rows()
                .into_iter()
                .map(|r| SpanSnapshotRow {
                    transition: r.id.name(),
                    count: r.count,
                    exclusive_cycles: r.exclusive,
                    inclusive_cycles: r.inclusive,
                    share_pct: pct(r.exclusive),
                })
                .collect(),
            counters: metrics
                .counters_sorted()
                .into_iter()
                .map(|(name, value)| CounterSnapshot { name, value })
                .collect(),
            histograms: metrics
                .histograms_sorted()
                .into_iter()
                .map(|(name, h)| HistogramSnapshot {
                    name,
                    count: h.count(),
                    sum: h.sum(),
                    mean: h.mean(),
                    min: h.min().unwrap_or(0),
                    max: h.max().unwrap_or(0),
                    p50: h.approx_quantile(0.5).unwrap_or(0),
                    p95: h.approx_quantile(0.95).unwrap_or(0),
                    p99: h.approx_quantile(0.99).unwrap_or(0),
                })
                .collect(),
        }
    }

    /// Sum of the exported exclusive cycles plus the unattributed
    /// remainder — equals [`ProfileSnapshot::total_cycles`] whenever the
    /// source tracer was conservation-clean.
    pub fn accounted_cycles(&self) -> u64 {
        self.spans.iter().map(|r| r.exclusive_cycles).sum::<u64>() + self.unattributed_cycles
    }
}

/// Renders a histogram summary table: one aligned line per histogram
/// with count, mean, and the p50/p95/p99 bucket upper bounds — the
/// human-readable companion of the raw-bucket JSON export.
pub fn render_histogram_summary(histograms: &[HistogramSnapshot]) -> String {
    let mut out = String::new();
    if histograms.is_empty() {
        return out;
    }
    out.push_str(&format!(
        "{:<32}{:>10}{:>14}{:>10}{:>10}{:>10}{:>12}\n",
        "histogram", "count", "mean", "p50", "p95", "p99", "max"
    ));
    for h in histograms {
        out.push_str(&format!(
            "{:<32}{:>10}{:>14.1}{:>10}{:>10}{:>10}{:>12}\n",
            h.name, h.count, h.mean, h.p50, h.p95, h.p99, h.max
        ));
    }
    out
}

/// Lists every transition name, for exporters that want a schema.
pub fn transition_names() -> Vec<&'static str> {
    TransitionId::ALL
        .into_iter()
        .map(TransitionId::name)
        .collect()
}

/// One per-transition divergence between two profile snapshots.
#[derive(Debug, Clone, Serialize)]
pub struct SpanDelta {
    /// Transition name.
    pub transition: &'static str,
    /// Exclusive cycles in the baseline snapshot (0 if absent).
    pub baseline_cycles: u64,
    /// Exclusive cycles in the current snapshot (0 if absent).
    pub current_cycles: u64,
    /// `current - baseline`, signed.
    pub delta_cycles: i64,
}

impl SpanDelta {
    /// Relative change against the baseline (`+inf` for a span that
    /// appeared from nothing).
    pub fn delta_pct(&self) -> f64 {
        if self.baseline_cycles == 0 {
            if self.current_cycles == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.delta_cycles as f64 * 100.0 / self.baseline_cycles as f64
        }
    }
}

/// Computes the per-transition exclusive-cycle deltas between two
/// snapshots, largest absolute delta first. Transitions present in
/// either snapshot are compared; identical rows are omitted, so an
/// empty result means the two span breakdowns agree exactly.
pub fn span_deltas(baseline: &ProfileSnapshot, current: &ProfileSnapshot) -> Vec<SpanDelta> {
    let mut out = Vec::new();
    for name in transition_names() {
        let find = |s: &ProfileSnapshot| {
            s.spans
                .iter()
                .find(|r| r.transition == name)
                .map_or(0, |r| r.exclusive_cycles)
        };
        let b = find(baseline);
        let c = find(current);
        if b != c {
            out.push(SpanDelta {
                transition: name,
                baseline_cycles: b,
                current_cycles: c,
                delta_cycles: c as i64 - b as i64,
            });
        }
    }
    out.sort_by_key(|d| std::cmp::Reverse(d.delta_cycles.unsigned_abs()));
    out
}

/// Renders a span-delta table for drift reports: one aligned row per
/// diverging transition, with signed cycle and percentage changes.
pub fn render_span_deltas(deltas: &[SpanDelta]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "    {:<22}{:>14}{:>14}{:>12}{:>10}\n",
        "transition", "baseline", "current", "delta", "pct"
    ));
    for d in deltas {
        let pct = d.delta_pct();
        let pct = if pct.is_infinite() {
            "new".to_string()
        } else {
            format!("{pct:+.1}%")
        };
        out.push_str(&format!(
            "    {:<22}{:>14}{:>14}{:>+12}{:>10}\n",
            d.transition, d.baseline_cycles, d.current_cycles, d.delta_cycles, pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_preserves_conservation() {
        let mut t = SpanTracer::new();
        t.charge(5);
        t.enter(TransitionId::TrapToEl2);
        t.charge(95);
        t.exit(TransitionId::TrapToEl2);
        let mut m = MetricsRegistry::new();
        m.bump("traps", 1);
        m.observe("lat", 95);
        let snap = ProfileSnapshot::capture(&t, &m);
        assert_eq!(snap.total_cycles, 100);
        assert_eq!(snap.accounted_cycles(), 100);
        assert_eq!(snap.spans.len(), 1);
        assert!((snap.spans[0].share_pct - 95.0).abs() < 1e-9);
        assert_eq!(snap.counters[0].value, 1);
        assert_eq!(snap.histograms[0].max, 95);
    }

    #[test]
    fn transition_names_cover_all() {
        assert_eq!(transition_names().len(), TransitionId::COUNT);
        assert!(transition_names().contains(&"vgic_lr_save"));
    }

    fn snapshot_with(cycles: &[(TransitionId, u64)]) -> ProfileSnapshot {
        let mut t = SpanTracer::new();
        for (id, c) in cycles {
            t.enter(*id);
            t.charge(*c);
            t.exit(*id);
        }
        ProfileSnapshot::capture(&t, &MetricsRegistry::new())
    }

    #[test]
    fn empty_profiles_have_no_deltas() {
        let empty = snapshot_with(&[]);
        assert!(span_deltas(&empty, &empty).is_empty());
        // Identical non-empty snapshots agree exactly too.
        let same = snapshot_with(&[(TransitionId::GrantCopy, 40)]);
        assert!(span_deltas(&same, &same).is_empty());
        let rendered = render_span_deltas(&[]);
        assert_eq!(rendered.lines().count(), 1, "header only");
        assert!(rendered.contains("transition"));
    }

    #[test]
    fn one_sided_transition_renders_as_new_or_vanished() {
        let empty = snapshot_with(&[]);
        let current = snapshot_with(&[(TransitionId::VirqInject, 500)]);
        // Appeared from nothing: +inf pct renders as "new".
        let appeared = span_deltas(&empty, &current);
        assert_eq!(appeared.len(), 1);
        assert_eq!(appeared[0].baseline_cycles, 0);
        assert_eq!(appeared[0].delta_cycles, 500);
        assert!(appeared[0].delta_pct().is_infinite());
        let rendered = render_span_deltas(&appeared);
        assert!(rendered.contains("virq_inject"));
        assert!(rendered.contains("new"));
        // Vanished entirely: finite -100%.
        let vanished = span_deltas(&current, &empty);
        assert_eq!(vanished[0].delta_cycles, -500);
        assert!((vanished[0].delta_pct() + 100.0).abs() < 1e-9);
        assert!(render_span_deltas(&vanished).contains("-100.0%"));
    }

    #[test]
    fn delta_signs_render_explicitly_and_sort_by_magnitude() {
        let baseline = snapshot_with(&[
            (TransitionId::GrantCopy, 1_000),
            (TransitionId::TrapToEl2, 200),
        ]);
        let current = snapshot_with(&[
            (TransitionId::GrantCopy, 900),
            (TransitionId::TrapToEl2, 600),
        ]);
        let deltas = span_deltas(&baseline, &current);
        assert_eq!(deltas.len(), 2);
        // Largest |delta| first: trap +400 beats grant -100.
        assert_eq!(deltas[0].transition, "trap_to_el2");
        assert_eq!(deltas[0].delta_cycles, 400);
        assert_eq!(deltas[1].delta_cycles, -100);
        let rendered = render_span_deltas(&deltas);
        assert!(rendered.contains("+400"), "positive deltas carry a sign");
        assert!(rendered.contains("-100"));
        assert!(rendered.contains("+200.0%"));
        assert!(rendered.contains("-10.0%"));
    }
}
