//! Serializable snapshots of a profile run.
//!
//! The live [`SpanTracer`](crate::SpanTracer) and
//! [`MetricsRegistry`](crate::MetricsRegistry) are optimized for the
//! charge hot path; exporters convert them into plain, serializable
//! snapshot structs whose JSON field order is fixed, so exported
//! profiles are byte-stable. The folded-stack flamegraph text comes
//! straight from [`SpanTracer::folded`](crate::SpanTracer::folded).

use crate::{MetricsRegistry, SpanTracer, TransitionId};
use serde::Serialize;

/// One exported breakdown row.
#[derive(Debug, Clone, Serialize)]
pub struct SpanSnapshotRow {
    /// Transition name ([`TransitionId::name`]).
    pub transition: &'static str,
    /// Times the span was entered.
    pub count: u64,
    /// Cycles charged while innermost.
    pub exclusive_cycles: u64,
    /// Cycles charged while open (self + children).
    pub inclusive_cycles: u64,
    /// Exclusive share of the run total, in percent.
    pub share_pct: f64,
}

/// One exported counter.
#[derive(Debug, Clone, Serialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// One exported histogram.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Mean observation.
    pub mean: f64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Power-of-two-bucketed median upper bound.
    pub p50: u64,
    /// Power-of-two-bucketed 99th-percentile upper bound.
    pub p99: u64,
}

/// The complete exported profile of one scenario: the span breakdown
/// (with its conservation remainder) plus sampled metrics.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileSnapshot {
    /// Total cycles charged during the profiled run.
    pub total_cycles: u64,
    /// Cycles charged with no open span.
    pub unattributed_cycles: u64,
    /// Per-transition rows, in [`TransitionId::ALL`] order.
    pub spans: Vec<SpanSnapshotRow>,
    /// Counters, name-sorted.
    pub counters: Vec<CounterSnapshot>,
    /// Histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl ProfileSnapshot {
    /// Snapshots a tracer and a registry into an exportable form.
    pub fn capture(spans: &SpanTracer, metrics: &MetricsRegistry) -> ProfileSnapshot {
        let total = spans.total();
        let pct = |c: u64| {
            if total == 0 {
                0.0
            } else {
                c as f64 * 100.0 / total as f64
            }
        };
        ProfileSnapshot {
            total_cycles: total,
            unattributed_cycles: spans.unattributed(),
            spans: spans
                .rows()
                .into_iter()
                .map(|r| SpanSnapshotRow {
                    transition: r.id.name(),
                    count: r.count,
                    exclusive_cycles: r.exclusive,
                    inclusive_cycles: r.inclusive,
                    share_pct: pct(r.exclusive),
                })
                .collect(),
            counters: metrics
                .counters_sorted()
                .into_iter()
                .map(|(name, value)| CounterSnapshot { name, value })
                .collect(),
            histograms: metrics
                .histograms_sorted()
                .into_iter()
                .map(|(name, h)| HistogramSnapshot {
                    name,
                    count: h.count(),
                    sum: h.sum(),
                    mean: h.mean(),
                    min: h.min().unwrap_or(0),
                    max: h.max().unwrap_or(0),
                    p50: h.approx_quantile(0.5).unwrap_or(0),
                    p99: h.approx_quantile(0.99).unwrap_or(0),
                })
                .collect(),
        }
    }

    /// Sum of the exported exclusive cycles plus the unattributed
    /// remainder — equals [`ProfileSnapshot::total_cycles`] whenever the
    /// source tracer was conservation-clean.
    pub fn accounted_cycles(&self) -> u64 {
        self.spans.iter().map(|r| r.exclusive_cycles).sum::<u64>() + self.unattributed_cycles
    }
}

/// Lists every transition name, for exporters that want a schema.
pub fn transition_names() -> Vec<&'static str> {
    TransitionId::ALL
        .into_iter()
        .map(TransitionId::name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_preserves_conservation() {
        let mut t = SpanTracer::new();
        t.charge(5);
        t.enter(TransitionId::TrapToEl2);
        t.charge(95);
        t.exit(TransitionId::TrapToEl2);
        let mut m = MetricsRegistry::new();
        m.bump("traps", 1);
        m.observe("lat", 95);
        let snap = ProfileSnapshot::capture(&t, &m);
        assert_eq!(snap.total_cycles, 100);
        assert_eq!(snap.accounted_cycles(), 100);
        assert_eq!(snap.spans.len(), 1);
        assert!((snap.spans[0].share_pct - 95.0).abs() < 1e-9);
        assert_eq!(snap.counters[0].value, 1);
        assert_eq!(snap.histograms[0].max, 95);
    }

    #[test]
    fn transition_names_cover_all() {
        assert_eq!(transition_names().len(), TransitionId::COUNT);
        assert!(transition_names().contains(&"vgic_lr_save"));
    }
}
