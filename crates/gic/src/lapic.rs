//! The x86 local APIC analog, for the cross-architecture baseline.
//!
//! On the paper's x86 test hardware, interrupt-controller virtualization
//! traps: a guest EOI write exits to the hypervisor, which is why Virtual
//! IRQ Completion costs ~1,500 cycles on x86 against 71 on ARM (Table II).
//! Newer parts add hardware vAPIC ("so that newer x86 hardware with vAPIC
//! support should perform more comparably to ARM", §IV) — modelled as the
//! [`Lapic::vapic`] flag, which the vAPIC ablation flips.

use core::fmt;

/// Effects of a local-APIC register write that the virtualizing
/// hypervisor must carry out.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LapicEffect {
    /// IPIs to deliver: `(destination APIC id, vector)`.
    pub ipis: Vec<(usize, u8)>,
}

/// Errors from local-APIC operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LapicError {
    /// EOI with an empty in-service stack.
    NoInService,
    /// Vectors 0–31 are reserved for exceptions.
    ReservedVector {
        /// The offending vector.
        vector: u8,
    },
}

impl fmt::Display for LapicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LapicError::NoInService => write!(f, "EOI with no interrupt in service"),
            LapicError::ReservedVector { vector } => {
                write!(f, "vector {vector} is reserved")
            }
        }
    }
}

impl std::error::Error for LapicError {}

/// A (virtual) local APIC: request/in-service vector tracking plus the
/// ICR-based IPI mechanism.
///
/// # Examples
///
/// ```
/// use hvx_gic::Lapic;
///
/// let mut apic = Lapic::new(false);
/// apic.set_irr(0x40).unwrap();
/// assert_eq!(apic.ack(), Some(0x40));
/// assert!(apic.eoi_traps(), "pre-vAPIC hardware exits on EOI");
/// apic.eoi().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Lapic {
    /// Interrupt request register: one bit per vector.
    irr: [bool; 256],
    /// In-service register, as a priority stack of vectors.
    isr: Vec<u8>,
    /// Hardware vAPIC: EOI does not exit.
    vapic: bool,
}

impl Lapic {
    /// Creates an idle APIC. `vapic` selects hardware-assisted interrupt
    /// virtualization (no EOI exits).
    pub fn new(vapic: bool) -> Self {
        Lapic {
            irr: [false; 256],
            isr: Vec::new(),
            vapic,
        }
    }

    /// Returns `true` if this APIC has hardware vAPIC assistance.
    pub fn has_vapic(&self) -> bool {
        self.vapic
    }

    /// Returns `true` if a guest EOI write causes a VM exit on this
    /// hardware.
    pub fn eoi_traps(&self) -> bool {
        !self.vapic
    }

    /// Marks `vector` as requested.
    ///
    /// # Errors
    ///
    /// [`LapicError::ReservedVector`] for vectors 0–31.
    pub fn set_irr(&mut self, vector: u8) -> Result<(), LapicError> {
        if vector < 32 {
            return Err(LapicError::ReservedVector { vector });
        }
        self.irr[vector as usize] = true;
        Ok(())
    }

    /// Highest requested vector above the current in-service priority, if
    /// any — what the CPU will take next.
    pub fn pending(&self) -> Option<u8> {
        let floor = self.isr.last().copied().unwrap_or(0);
        (32..=255u16)
            .rev()
            .map(|v| v as u8)
            .find(|&v| self.irr[v as usize] && v > floor)
    }

    /// Takes the highest pending vector into service.
    pub fn ack(&mut self) -> Option<u8> {
        let v = self.pending()?;
        self.irr[v as usize] = false;
        self.isr.push(v);
        Some(v)
    }

    /// Completes the in-service interrupt.
    ///
    /// # Errors
    ///
    /// [`LapicError::NoInService`] if nothing is in service.
    pub fn eoi(&mut self) -> Result<u8, LapicError> {
        self.isr.pop().ok_or(LapicError::NoInService)
    }

    /// Writes the interrupt command register: sends an IPI with `vector`
    /// to `dest`. On the modelled hardware this is a trapped access
    /// (x2APIC ICR MSR write); the returned effect tells the hypervisor
    /// what to deliver.
    ///
    /// # Errors
    ///
    /// [`LapicError::ReservedVector`] for vectors 0–31.
    pub fn icr_write(&mut self, dest: usize, vector: u8) -> Result<LapicEffect, LapicError> {
        if vector < 32 {
            return Err(LapicError::ReservedVector { vector });
        }
        Ok(LapicEffect {
            ipis: vec![(dest, vector)],
        })
    }

    /// Number of vectors currently in service (nesting depth).
    pub fn in_service_depth(&self) -> usize {
        self.isr.len()
    }
}

impl Default for Lapic {
    fn default() -> Self {
        Lapic::new(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ack_eoi_lifecycle() {
        let mut a = Lapic::new(false);
        a.set_irr(0x50).unwrap();
        assert_eq!(a.pending(), Some(0x50));
        assert_eq!(a.ack(), Some(0x50));
        assert_eq!(a.pending(), None);
        assert_eq!(a.in_service_depth(), 1);
        assert_eq!(a.eoi().unwrap(), 0x50);
        assert_eq!(a.in_service_depth(), 0);
    }

    #[test]
    fn higher_vector_preempts() {
        let mut a = Lapic::new(false);
        a.set_irr(0x40).unwrap();
        assert_eq!(a.ack(), Some(0x40));
        // A higher vector can nest above the in-service one ...
        a.set_irr(0x60).unwrap();
        assert_eq!(a.pending(), Some(0x60));
        assert_eq!(a.ack(), Some(0x60));
        // ... but a lower one must wait.
        a.set_irr(0x35).unwrap();
        assert_eq!(a.pending(), None);
        a.eoi().unwrap();
        a.eoi().unwrap();
        assert_eq!(a.pending(), Some(0x35));
    }

    #[test]
    fn eoi_without_service_is_error() {
        let mut a = Lapic::new(false);
        assert_eq!(a.eoi(), Err(LapicError::NoInService));
    }

    #[test]
    fn reserved_vectors_rejected() {
        let mut a = Lapic::new(false);
        assert_eq!(a.set_irr(3), Err(LapicError::ReservedVector { vector: 3 }));
        assert!(a.icr_write(1, 0).is_err());
    }

    #[test]
    fn icr_write_produces_ipi_effect() {
        let mut a = Lapic::new(false);
        let eff = a.icr_write(2, 0xF0).unwrap();
        assert_eq!(eff.ipis, vec![(2, 0xF0)]);
    }

    #[test]
    fn vapic_flag_controls_eoi_exit() {
        assert!(Lapic::new(false).eoi_traps());
        assert!(!Lapic::new(true).eoi_traps());
        assert!(Lapic::new(true).has_vapic());
    }
}
