//! Interrupt identifiers.
//!
//! GIC interrupt IDs partition into software-generated interrupts (SGIs —
//! the IPIs at the heart of the Virtual IPI microbenchmark), private
//! peripheral interrupts (PPIs — notably the virtual timer), and shared
//! peripheral interrupts (SPIs — devices such as the 10 GbE NIC).

use core::fmt;

/// A GIC interrupt identifier (INTID).
///
/// # Examples
///
/// ```
/// use hvx_gic::IntId;
/// assert!(IntId::sgi(3).is_sgi());
/// assert!(IntId::VTIMER.is_ppi());
/// assert!(IntId::spi(42).is_spi());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct IntId(u32);

impl IntId {
    /// Highest modelled INTID (GICv2 supports up to 1020 SPIs).
    pub const MAX: u32 = 1019;

    /// The virtual timer PPI (INTID 27 on ARM Linux platforms). When the
    /// VM-programmed virtual timer fires "it raises a physical interrupt,
    /// which must be handled by the hypervisor and translated into a
    /// virtual interrupt" (§II).
    pub const VTIMER: IntId = IntId(27);

    /// The maintenance interrupt PPI (INTID 25): raised by the GIC virtual
    /// interface to notify the hypervisor of list-register conditions.
    pub const MAINTENANCE: IntId = IntId(25);

    /// Creates an SGI (IPI) identifier.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub const fn sgi(n: u32) -> IntId {
        assert!(n <= 15, "SGIs are INTIDs 0-15");
        IntId(n)
    }

    /// Creates a PPI identifier from a PPI number `0..16` (INTIDs 16–31).
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub const fn ppi(n: u32) -> IntId {
        assert!(n <= 15, "PPIs are INTIDs 16-31");
        IntId(16 + n)
    }

    /// Creates an SPI identifier from an SPI number (INTIDs 32–1019).
    ///
    /// # Panics
    ///
    /// Panics if the resulting INTID exceeds [`IntId::MAX`].
    pub const fn spi(n: u32) -> IntId {
        assert!(32 + n <= IntId::MAX, "SPI INTID out of range");
        IntId(32 + n)
    }

    /// Builds from a raw INTID.
    ///
    /// # Panics
    ///
    /// Panics if `raw > IntId::MAX`.
    pub const fn from_raw(raw: u32) -> IntId {
        assert!(raw <= IntId::MAX, "INTID out of range");
        IntId(raw)
    }

    /// The raw INTID value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// `true` for software-generated interrupts (IPIs), INTIDs 0–15.
    pub const fn is_sgi(self) -> bool {
        self.0 < 16
    }

    /// `true` for private peripheral interrupts, INTIDs 16–31.
    pub const fn is_ppi(self) -> bool {
        self.0 >= 16 && self.0 < 32
    }

    /// `true` for shared peripheral interrupts, INTIDs 32+.
    pub const fn is_spi(self) -> bool {
        self.0 >= 32
    }

    /// `true` for interrupts private to a CPU (SGIs and PPIs).
    pub const fn is_private(self) -> bool {
        self.0 < 32
    }
}

impl fmt::Display for IntId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_sgi() {
            "SGI"
        } else if self.is_ppi() {
            "PPI"
        } else {
            "SPI"
        };
        write!(f, "{kind}{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert!(IntId::from_raw(0).is_sgi());
        assert!(IntId::from_raw(15).is_sgi());
        assert!(IntId::from_raw(16).is_ppi());
        assert!(IntId::from_raw(31).is_ppi());
        assert!(IntId::from_raw(32).is_spi());
        assert!(IntId::from_raw(1019).is_spi());
        assert!(IntId::from_raw(31).is_private());
        assert!(!IntId::from_raw(32).is_private());
    }

    #[test]
    fn constructors_map_to_intid_ranges() {
        assert_eq!(IntId::sgi(5).raw(), 5);
        assert_eq!(IntId::ppi(11).raw(), 27);
        assert_eq!(IntId::ppi(11), IntId::VTIMER);
        assert_eq!(IntId::spi(0).raw(), 32);
        assert_eq!(IntId::spi(43).raw(), 75);
    }

    #[test]
    #[should_panic(expected = "SGIs are INTIDs 0-15")]
    fn sgi_range_enforced() {
        let _ = IntId::sgi(16);
    }

    #[test]
    #[should_panic(expected = "SPI INTID out of range")]
    fn spi_range_enforced() {
        let _ = IntId::spi(1000);
    }

    #[test]
    fn display_names_kind() {
        assert_eq!(IntId::sgi(1).to_string(), "SGI1");
        assert_eq!(IntId::VTIMER.to_string(), "PPI27");
        assert_eq!(IntId::spi(43).to_string(), "SPI75");
    }
}
