//! # hvx-gic — interrupt-controller models for the hvx simulator
//!
//! The ARM Generic Interrupt Controller with its virtualization
//! extensions, and the x86 local-APIC analog, as required by the
//! interrupt-centric results of *"ARM Virtualization: Performance and
//! Architectural Implications"* (ISCA 2016):
//!
//! * [`Distributor`] — a GICv2 distributor with banked private interrupts,
//!   priority-ordered acknowledge/complete, SPI targeting (single-CPU by
//!   default, as in the paper's Apache/Memcached bottleneck analysis), and
//!   the MMIO register interface hypervisors emulate;
//! * [`VgicCpuInterface`] — per-VCPU list registers: hypervisor-side
//!   injection, guest-side acknowledge/complete **without trapping**
//!   (Table II's 71-cycle Virtual IRQ Completion), and the
//!   [`VgicSnapshot`] save/restore that dominates KVM ARM's transition
//!   cost (Table III's 3,250-cycle VGIC save);
//! * [`Lapic`] — request/in-service vector tracking with trapping EOI
//!   (pre-vAPIC x86) or hardware vAPIC.
//!
//! Like `hvx-arch`, this crate is purely functional; cycle costs are
//! charged by `hvx-core`'s calibrated cost model.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod distributor;
mod irq;
mod lapic;
mod vgic;

pub use distributor::{dist_reg, Distributor, GicError, MmioEffect, SgiFilter};
pub use irq::IntId;
pub use lapic::{Lapic, LapicEffect, LapicError};
pub use vgic::{
    ListRegister, LrState, VgicCpuInterface, VgicError, VgicSnapshot, GICH_HCR_EN, GICH_HCR_UIE,
    NUM_LRS,
};
