//! The GIC virtual CPU interface: list registers and no-trap completion.
//!
//! ARM's interrupt-virtualization extensions "allow a hypervisor to
//! program the GIC to inject virtual interrupts to VMs, which VMs can
//! acknowledge and complete without trapping to the hypervisor" (§II).
//! The mechanism is a small set of per-VCPU **list registers** plus
//! control state (`GICH_HCR`, `GICH_VMCR`, `GICH_APR`) that the
//! hypervisor programs from EL2.
//!
//! Two of the paper's headline numbers live here:
//!
//! * **Virtual IRQ Completion = 71 cycles on ARM, ~1,500 on x86**
//!   (Table II): [`VgicCpuInterface::guest_eoi`] works entirely in guest
//!   context, while the pre-vAPIC x86 path must trap for every EOI.
//! * **VGIC save = 3,250 cycles** (Table III): because the virtual
//!   interface is accessible only from EL2, KVM ARM reads all of it back
//!   to memory on *every* VM→hypervisor transition; [`VgicCpuInterface::save`]
//!   produces exactly the [`VgicSnapshot`] that world switch moves.

use core::fmt;

/// Number of list registers per virtual CPU interface (GIC-400 has 4).
pub const NUM_LRS: usize = 4;

/// State of one list register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum LrState {
    /// Empty / available for injection.
    #[default]
    Invalid,
    /// A virtual interrupt is pending delivery to the guest.
    Pending,
    /// The guest acknowledged it and is handling it.
    Active,
    /// Re-raised while still being handled.
    PendingActive,
}

/// One list register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ListRegister {
    /// The virtual INTID presented to the guest.
    pub virq: u32,
    /// Occupancy state.
    pub state: LrState,
    /// Virtual priority.
    pub priority: u8,
    /// For hardware-mapped interrupts, the physical INTID to deactivate
    /// when the guest completes the virtual one.
    pub hw_intid: Option<u32>,
}

/// The register state of one virtual CPU interface — the "VGIC Regs" row
/// of Table III. KVM ARM copies this to/from memory on every transition;
/// Xen ARM only on VM switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct VgicSnapshot {
    /// `GICH_HCR` — virtual interface control (global enable, underflow
    /// maintenance-interrupt enable).
    pub hcr: u32,
    /// `GICH_VMCR` — the guest's view of its CPU-interface controls
    /// (priority mask, binary point, group enables).
    pub vmcr: u32,
    /// `GICH_APR` — active priorities.
    pub apr: u32,
    /// The list registers.
    pub lrs: [ListRegister; NUM_LRS],
}

/// Errors from virtual-interface operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VgicError {
    /// All list registers are occupied; the hypervisor must queue the
    /// interrupt in software and enable the underflow maintenance
    /// interrupt.
    NoFreeLr {
        /// The virtual INTID that could not be injected.
        virq: u32,
    },
    /// The guest completed an interrupt no list register holds active.
    NotActive {
        /// The offending virtual INTID.
        virq: u32,
    },
    /// The same virtual INTID is already in a list register (the GIC
    /// forbids double-listing; re-raise flips Active → PendingActive via
    /// [`VgicCpuInterface::inject`]).
    AlreadyListed {
        /// The duplicated INTID.
        virq: u32,
    },
}

impl fmt::Display for VgicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VgicError::NoFreeLr { virq } => write!(f, "no free list register for vIRQ {virq}"),
            VgicError::NotActive { virq } => write!(f, "vIRQ {virq} is not active"),
            VgicError::AlreadyListed { virq } => {
                write!(f, "vIRQ {virq} already in a list register")
            }
        }
    }
}

impl std::error::Error for VgicError {}

/// `GICH_HCR` global-enable bit.
pub const GICH_HCR_EN: u32 = 1 << 0;
/// `GICH_HCR` underflow maintenance-interrupt enable.
pub const GICH_HCR_UIE: u32 = 1 << 1;

/// One VCPU's virtual CPU interface.
///
/// # Examples
///
/// Inject → guest acknowledge → guest complete, with no hypervisor
/// involvement after injection:
///
/// ```
/// use hvx_gic::VgicCpuInterface;
///
/// let mut vgic = VgicCpuInterface::new();
/// vgic.inject(27, 0x80).unwrap(); // virtual timer
/// assert_eq!(vgic.guest_ack(), Some(27));
/// vgic.guest_eoi(27).unwrap(); // completes WITHOUT trapping
/// assert!(vgic.is_idle());
/// ```
#[derive(Debug, Clone, Default)]
pub struct VgicCpuInterface {
    regs: VgicSnapshot,
    /// Software overflow queue: interrupts the hypervisor wanted to
    /// inject while all LRs were busy (KVM's `vgic_cpu->ap_list`).
    overflow: Vec<(u32, u8)>,
    /// Lifetime count of successful injections (LR or overflow queue).
    injected: u64,
    /// Lifetime count of guest completions ([`VgicCpuInterface::guest_eoi`]).
    completed: u64,
    /// Most recently injected vIRQ — the correlation point the causal
    /// event tracer links a flow's `virq:inject` hop against.
    last_injected: Option<u32>,
}

impl VgicCpuInterface {
    /// Creates an enabled virtual interface with empty list registers.
    pub fn new() -> Self {
        VgicCpuInterface {
            regs: VgicSnapshot {
                hcr: GICH_HCR_EN,
                ..VgicSnapshot::default()
            },
            overflow: Vec::new(),
            injected: 0,
            completed: 0,
            last_injected: None,
        }
    }

    /// The vIRQ most recently passed to [`VgicCpuInterface::inject`]
    /// (directly or absorbed from a scratch interface), if any. Event
    /// tracers use this to confirm a flow's injection hop refers to the
    /// interrupt the chain was opened for.
    pub fn last_injected(&self) -> Option<u32> {
        self.last_injected
    }

    /// Lifetime number of virtual interrupts injected through this
    /// interface (including those parked in the overflow queue). Sampled
    /// by the observability layer's metrics registry.
    pub fn injected_count(&self) -> u64 {
        self.injected
    }

    /// Lifetime number of trap-free guest completions — the events whose
    /// 71-cycle cost (Table II) motivates the paper's vGIC analysis.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Folds another interface's lifetime counters into this one.
    ///
    /// Split-mode KVM injects into a *scratch* interface holding a
    /// switched-out VCPU's saved memory image ([`Self::restore`] /
    /// [`Self::save`] round trip); the scratch's counters must be
    /// absorbed by the VCPU's live interface or the injection would be
    /// invisible to the metrics registry.
    pub fn absorb_counters(&mut self, scratch: &VgicCpuInterface) {
        self.injected += scratch.injected;
        self.completed += scratch.completed;
        if scratch.last_injected.is_some() {
            self.last_injected = scratch.last_injected;
        }
    }

    /// Hypervisor-side: injects virtual interrupt `virq` with `priority`.
    /// Finds a free list register; if the interrupt is already listed
    /// Active it becomes PendingActive; if no LR is free the interrupt
    /// goes to the software overflow queue and `Err(NoFreeLr)` tells the
    /// caller to enable the underflow maintenance interrupt.
    ///
    /// # Errors
    ///
    /// [`VgicError::NoFreeLr`] when all list registers are occupied (the
    /// interrupt is still queued in software and will be moved into an LR
    /// by [`VgicCpuInterface::refill_from_overflow`]);
    /// [`VgicError::AlreadyListed`] when `virq` is already Pending.
    pub fn inject(&mut self, virq: u32, priority: u8) -> Result<usize, VgicError> {
        // Re-raise of an interrupt the guest is handling.
        for (i, lr) in self.regs.lrs.iter_mut().enumerate() {
            if lr.virq == virq && lr.state != LrState::Invalid {
                return match lr.state {
                    LrState::Active => {
                        lr.state = LrState::PendingActive;
                        self.injected += 1;
                        self.last_injected = Some(virq);
                        Ok(i)
                    }
                    _ => Err(VgicError::AlreadyListed { virq }),
                };
            }
        }
        for (i, lr) in self.regs.lrs.iter_mut().enumerate() {
            if lr.state == LrState::Invalid {
                *lr = ListRegister {
                    virq,
                    state: LrState::Pending,
                    priority,
                    hw_intid: None,
                };
                self.injected += 1;
                self.last_injected = Some(virq);
                return Ok(i);
            }
        }
        self.injected += 1;
        self.last_injected = Some(virq);
        self.overflow.push((virq, priority));
        self.regs.hcr |= GICH_HCR_UIE;
        Err(VgicError::NoFreeLr { virq })
    }

    /// Hypervisor-side: injects a hardware-mapped virtual interrupt; the
    /// guest's completion will also deactivate physical `hw_intid`.
    ///
    /// # Errors
    ///
    /// As for [`VgicCpuInterface::inject`].
    pub fn inject_hw(
        &mut self,
        virq: u32,
        priority: u8,
        hw_intid: u32,
    ) -> Result<usize, VgicError> {
        let idx = self.inject(virq, priority)?;
        self.regs.lrs[idx].hw_intid = Some(hw_intid);
        Ok(idx)
    }

    /// Guest-side: highest-priority pending virtual interrupt, if any —
    /// what the VCPU sees asserted.
    pub fn pending_virq(&self) -> Option<u32> {
        if self.regs.hcr & GICH_HCR_EN == 0 {
            return None;
        }
        self.regs
            .lrs
            .iter()
            .filter(|lr| matches!(lr.state, LrState::Pending | LrState::PendingActive))
            .min_by_key(|lr| (lr.priority, lr.virq))
            .map(|lr| lr.virq)
    }

    /// Guest-side acknowledge (read of virtual `GICC_IAR`): takes the
    /// highest pending virtual interrupt, marking it active. **No trap.**
    pub fn guest_ack(&mut self) -> Option<u32> {
        let virq = self.pending_virq()?;
        let lr = self
            .regs
            .lrs
            .iter_mut()
            .find(|lr| {
                lr.virq == virq && matches!(lr.state, LrState::Pending | LrState::PendingActive)
            })
            .expect("pending_virq returned a listed interrupt");
        lr.state = match lr.state {
            LrState::Pending => LrState::Active,
            LrState::PendingActive => LrState::Active, // ack consumes the pend
            s => s,
        };
        Some(virq)
    }

    /// Guest-side completion (write of virtual `GICC_EOIR`): deactivates
    /// an acknowledged virtual interrupt. **No trap** — this is the
    /// 71-cycle row of Table II. Returns the physical INTID to deactivate
    /// for hardware-mapped interrupts.
    ///
    /// # Errors
    ///
    /// [`VgicError::NotActive`] if `virq` is not active in any LR.
    pub fn guest_eoi(&mut self, virq: u32) -> Result<Option<u32>, VgicError> {
        let lr = self
            .regs
            .lrs
            .iter_mut()
            .find(|lr| lr.virq == virq && lr.state == LrState::Active)
            .ok_or(VgicError::NotActive { virq })?;
        let hw = lr.hw_intid;
        *lr = ListRegister::default();
        self.completed += 1;
        Ok(hw)
    }

    /// Hypervisor-side: moves software-queued interrupts into freed list
    /// registers (the maintenance-interrupt handler's job). Returns how
    /// many were moved; clears the underflow enable when the queue drains.
    pub fn refill_from_overflow(&mut self) -> usize {
        let mut moved = 0;
        while !self.overflow.is_empty() {
            let free = self
                .regs
                .lrs
                .iter()
                .position(|lr| lr.state == LrState::Invalid);
            let Some(i) = free else { break };
            let (virq, priority) = self.overflow.remove(0);
            self.regs.lrs[i] = ListRegister {
                virq,
                state: LrState::Pending,
                priority,
                hw_intid: None,
            };
            moved += 1;
        }
        if self.overflow.is_empty() {
            self.regs.hcr &= !GICH_HCR_UIE;
        }
        moved
    }

    /// Returns `true` if a maintenance interrupt is warranted: underflow
    /// enabled and at most one list register still occupied.
    pub fn maintenance_needed(&self) -> bool {
        self.regs.hcr & GICH_HCR_UIE != 0 && self.occupied() <= 1
    }

    /// Number of occupied list registers.
    pub fn occupied(&self) -> usize {
        self.regs
            .lrs
            .iter()
            .filter(|lr| lr.state != LrState::Invalid)
            .count()
    }

    /// Number of interrupts waiting in the software overflow queue.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// `GICH_ELRSR`: bitmask of *empty* list registers.
    pub fn elrsr(&self) -> u32 {
        let mut v = 0;
        for (i, lr) in self.regs.lrs.iter().enumerate() {
            if lr.state == LrState::Invalid {
                v |= 1 << i;
            }
        }
        v
    }

    /// Returns `true` if no virtual interrupts are listed or queued.
    pub fn is_idle(&self) -> bool {
        self.occupied() == 0 && self.overflow.is_empty()
    }

    /// Hypervisor-side (EL2 only on real hardware): reads the full
    /// register state out — the expensive operation KVM ARM performs on
    /// every VM→hypervisor transition (Table III: 3,250 cycles).
    pub fn save(&self) -> VgicSnapshot {
        self.regs
    }

    /// Hypervisor-side: writes register state back (Table III: 181
    /// cycles — much cheaper than the save, which is why the paper notes
    /// saving "is much more expensive than restoring").
    pub fn restore(&mut self, snapshot: VgicSnapshot) {
        self.regs = snapshot;
    }

    /// Direct access to the registers, for assertions and emulation.
    pub fn regs(&self) -> &VgicSnapshot {
        &self.regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_ack_eoi_without_hypervisor() {
        let mut v = VgicCpuInterface::new();
        let lr = v.inject(crate::IntId::spi(43).raw(), 0x80).unwrap();
        assert_eq!(lr, 0);
        assert_eq!(v.pending_virq(), Some(75));
        assert_eq!(v.guest_ack(), Some(75));
        assert_eq!(v.pending_virq(), None, "active, not pending");
        assert_eq!(v.guest_eoi(75).unwrap(), None);
        assert!(v.is_idle());
    }

    #[test]
    fn priority_selects_among_pending() {
        let mut v = VgicCpuInterface::new();
        v.inject(100, 0xA0).unwrap();
        v.inject(101, 0x10).unwrap();
        v.inject(102, 0x10).unwrap();
        assert_eq!(v.guest_ack(), Some(101), "priority then INTID");
        assert_eq!(v.guest_ack(), Some(102));
        assert_eq!(v.guest_ack(), Some(100));
    }

    #[test]
    fn lr_exhaustion_overflows_to_software_queue() {
        let mut v = VgicCpuInterface::new();
        for i in 0..NUM_LRS as u32 {
            v.inject(100 + i, 0x80).unwrap();
        }
        let err = v.inject(200, 0x80).unwrap_err();
        assert_eq!(err, VgicError::NoFreeLr { virq: 200 });
        assert_eq!(v.overflow_len(), 1);
        assert_eq!(v.regs().hcr & GICH_HCR_UIE, GICH_HCR_UIE);
        // Guest drains one, hypervisor refills on maintenance.
        v.guest_ack().unwrap();
        v.guest_eoi(100).unwrap();
        assert!(v.maintenance_needed() || v.occupied() > 1);
        assert_eq!(v.refill_from_overflow(), 1);
        assert_eq!(v.overflow_len(), 0);
        assert_eq!(v.regs().hcr & GICH_HCR_UIE, 0);
    }

    #[test]
    fn reraise_while_active_becomes_pending_active() {
        let mut v = VgicCpuInterface::new();
        v.inject(27, 0x80).unwrap();
        v.guest_ack().unwrap();
        v.inject(27, 0x80).unwrap(); // timer fires again mid-handler
        assert_eq!(v.regs().lrs[0].state, LrState::PendingActive);
        // Ack the new pend, then both EOIs.
        assert_eq!(v.guest_ack(), Some(27));
        v.guest_eoi(27).unwrap();
        assert!(v.is_idle());
    }

    #[test]
    fn double_pending_injection_rejected() {
        let mut v = VgicCpuInterface::new();
        v.inject(27, 0x80).unwrap();
        assert_eq!(
            v.inject(27, 0x80),
            Err(VgicError::AlreadyListed { virq: 27 })
        );
    }

    #[test]
    fn eoi_of_unacked_irq_is_error() {
        let mut v = VgicCpuInterface::new();
        v.inject(27, 0x80).unwrap();
        assert_eq!(v.guest_eoi(27), Err(VgicError::NotActive { virq: 27 }));
    }

    #[test]
    fn hw_mapped_completion_returns_physical_intid() {
        let mut v = VgicCpuInterface::new();
        v.inject_hw(75, 0x80, 75).unwrap();
        v.guest_ack().unwrap();
        assert_eq!(v.guest_eoi(75).unwrap(), Some(75));
    }

    #[test]
    fn save_restore_round_trips_bit_identically() {
        let mut v = VgicCpuInterface::new();
        v.inject(27, 0x10).unwrap();
        v.inject(75, 0x80).unwrap();
        v.guest_ack().unwrap();
        let snap = v.save();
        let mut other = VgicCpuInterface::new();
        other.restore(snap);
        assert_eq!(other.regs(), v.regs());
        assert_eq!(other.save(), snap);
    }

    #[test]
    fn lifetime_counters_track_inject_and_eoi() {
        let mut v = VgicCpuInterface::new();
        for i in 0..NUM_LRS as u32 + 1 {
            let _ = v.inject(100 + i, 0x80); // last one overflows; still counted
        }
        assert_eq!(v.injected_count(), NUM_LRS as u64 + 1);
        v.guest_ack().unwrap();
        v.guest_eoi(100).unwrap();
        assert_eq!(v.completed_count(), 1);
        assert_eq!(v.guest_eoi(100), Err(VgicError::NotActive { virq: 100 }));
        assert_eq!(v.completed_count(), 1, "failed EOI is not counted");
    }

    #[test]
    fn elrsr_tracks_free_lrs() {
        let mut v = VgicCpuInterface::new();
        assert_eq!(v.elrsr(), 0b1111);
        v.inject(1, 0).unwrap();
        v.inject(2, 0).unwrap();
        assert_eq!(v.elrsr(), 0b1100);
    }

    #[test]
    fn disabled_interface_presents_nothing() {
        let mut v = VgicCpuInterface::new();
        v.inject(27, 0x80).unwrap();
        let mut snap = v.save();
        snap.hcr &= !GICH_HCR_EN;
        v.restore(snap);
        assert_eq!(v.pending_virq(), None);
        assert_eq!(v.guest_ack(), None);
    }
}
