//! The GICv2 distributor and (physical) CPU interface.
//!
//! One [`Distributor`] instance plays two roles in hvx, exactly as one
//! hardware block design does in the real systems:
//!
//! * the machine's *physical* GIC, operated by the hypervisor; and
//! * each VM's *emulated* distributor — "Xen ARM emulates the ARM GIC
//!   interrupt controller directly in the hypervisor running in EL2 ...
//!   KVM ARM emulates the GIC in the part of the hypervisor running in
//!   EL1" (§IV). Guest MMIO accesses arrive via Stage-2 aborts and are
//!   fed to [`Distributor::mmio_write`] / [`Distributor::mmio_read`].
//!
//! The per-CPU acknowledge/complete flow (GICC_IAR / GICC_EOIR) is folded
//! into the distributor as [`Distributor::acknowledge`] and
//! [`Distributor::complete`]; the *virtual* CPU interface with its list
//! registers lives in [`crate::VgicCpuInterface`].

use crate::IntId;
use core::fmt;

/// Per-interrupt bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
struct IrqState {
    enabled: bool,
    pending: bool,
    active: bool,
    priority: u8,
}

/// Result of a guest (or host) write to the distributor's MMIO space:
/// side effects the caller — a hypervisor — must carry out on the
/// simulated machine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MmioEffect {
    /// SGIs that became pending on other CPUs and require a physical IPI
    /// (or, for an emulated distributor, a virtual-IPI injection) to each
    /// listed `(cpu, sgi)` pair.
    pub sgi_targets: Vec<(usize, IntId)>,
}

/// Errors from distributor operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GicError {
    /// CPU index out of range for this distributor.
    BadCpu {
        /// The offending index.
        cpu: usize,
    },
    /// INTID beyond the configured SPI count.
    BadIntId {
        /// The offending INTID.
        intid: IntId,
    },
    /// Completion of an interrupt that was not active on that CPU.
    NotActive {
        /// The offending INTID.
        intid: IntId,
    },
}

impl fmt::Display for GicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GicError::BadCpu { cpu } => write!(f, "cpu index {cpu} out of range"),
            GicError::BadIntId { intid } => write!(f, "{intid} out of range"),
            GicError::NotActive { intid } => write!(f, "{intid} is not active"),
        }
    }
}

impl std::error::Error for GicError {}

/// `GICD_SGIR` target-list filter (GICv2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SgiFilter {
    /// Deliver to the CPUs named in the target-list mask.
    TargetList,
    /// Deliver to every CPU except the requester (Linux's
    /// `smp_cross_call` broadcast).
    AllOthers,
    /// Deliver to the requesting CPU only.
    SelfOnly,
}

impl SgiFilter {
    /// Encodes the filter into the model's `GICD_SGIR` layout
    /// (bits \[29:28\]).
    pub fn encode(self) -> u64 {
        match self {
            SgiFilter::TargetList => 0,
            SgiFilter::AllOthers => 1 << 28,
            SgiFilter::SelfOnly => 2 << 28,
        }
    }
}

/// MMIO register offsets (GICv2 memory map, word-granular subset).
pub mod dist_reg {
    /// Distributor control register.
    pub const GICD_CTLR: u64 = 0x000;
    /// Interrupt set-enable registers (1 bit per INTID).
    pub const GICD_ISENABLER: u64 = 0x100;
    /// Interrupt clear-enable registers.
    pub const GICD_ICENABLER: u64 = 0x180;
    /// Interrupt set-pending registers.
    pub const GICD_ISPENDR: u64 = 0x200;
    /// Interrupt priority registers (1 byte per INTID).
    pub const GICD_IPRIORITYR: u64 = 0x400;
    /// Interrupt target registers (1 byte per INTID, SPIs only).
    pub const GICD_ITARGETSR: u64 = 0x800;
    /// Software-generated interrupt register: writing sends IPIs.
    pub const GICD_SGIR: u64 = 0xF00;
}

/// A GICv2 distributor with banked private interrupts, plus the per-CPU
/// acknowledge/complete interface.
///
/// # Examples
///
/// ```
/// use hvx_gic::{Distributor, IntId};
///
/// let mut gic = Distributor::new(4, 64);
/// let nic = IntId::spi(43);
/// gic.enable(nic, 0).unwrap();
/// gic.set_target(nic, 0).unwrap();
/// gic.raise(nic, 0).unwrap();
/// assert_eq!(gic.acknowledge(0).unwrap(), Some(nic));
/// gic.complete(0, nic).unwrap();
/// assert_eq!(gic.acknowledge(0).unwrap(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Distributor {
    /// Global distributor enable (GICD_CTLR bit 0).
    enabled: bool,
    /// Banked SGI+PPI state, one bank of 32 per CPU.
    private: Vec<[IrqState; 32]>,
    /// Shared SPI state.
    spis: Vec<IrqState>,
    /// Target CPU for each SPI (single-target model: the paper pins each
    /// IRQ to one CPU; the IRQ-distribution ablation retargets them).
    spi_target: Vec<usize>,
}

impl Distributor {
    /// Creates a distributor serving `num_cpus` CPU interfaces and
    /// `num_spis` shared peripheral interrupts. All interrupts start
    /// disabled with priority 0xA0 and SPIs target CPU 0 — the
    /// single-CPU-interrupt default whose cost §V quantifies.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is 0 or greater than 8 (GICv2 limit).
    pub fn new(num_cpus: usize, num_spis: usize) -> Self {
        assert!(num_cpus > 0 && num_cpus <= 8, "GICv2 supports 1-8 CPUs");
        let default = IrqState {
            priority: 0xA0,
            ..IrqState::default()
        };
        Distributor {
            enabled: true,
            private: vec![[default; 32]; num_cpus],
            spis: vec![default; num_spis],
            spi_target: vec![0; num_spis],
        }
    }

    /// Number of CPU interfaces.
    pub fn num_cpus(&self) -> usize {
        self.private.len()
    }

    /// Number of configured SPIs.
    pub fn num_spis(&self) -> usize {
        self.spis.len()
    }

    /// Returns `true` if the distributor is globally enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn state_mut(&mut self, intid: IntId, cpu: usize) -> Result<&mut IrqState, GicError> {
        if cpu >= self.private.len() {
            return Err(GicError::BadCpu { cpu });
        }
        if intid.is_private() {
            Ok(&mut self.private[cpu][intid.raw() as usize])
        } else {
            let idx = intid.raw() as usize - 32;
            self.spis.get_mut(idx).ok_or(GicError::BadIntId { intid })
        }
    }

    fn state(&self, intid: IntId, cpu: usize) -> Result<&IrqState, GicError> {
        if cpu >= self.private.len() {
            return Err(GicError::BadCpu { cpu });
        }
        if intid.is_private() {
            Ok(&self.private[cpu][intid.raw() as usize])
        } else {
            let idx = intid.raw() as usize - 32;
            self.spis.get(idx).ok_or(GicError::BadIntId { intid })
        }
    }

    /// Enables forwarding of `intid` (banked per `cpu` for privates).
    ///
    /// # Errors
    ///
    /// [`GicError`] for out-of-range CPU or INTID.
    pub fn enable(&mut self, intid: IntId, cpu: usize) -> Result<(), GicError> {
        self.state_mut(intid, cpu)?.enabled = true;
        Ok(())
    }

    /// Disables forwarding of `intid`.
    ///
    /// # Errors
    ///
    /// [`GicError`] for out-of-range CPU or INTID.
    pub fn disable(&mut self, intid: IntId, cpu: usize) -> Result<(), GicError> {
        self.state_mut(intid, cpu)?.enabled = false;
        Ok(())
    }

    /// Returns `true` if `intid` is enabled (banked per `cpu` for
    /// privates).
    pub fn is_irq_enabled(&self, intid: IntId, cpu: usize) -> bool {
        self.state(intid, cpu).map(|s| s.enabled).unwrap_or(false)
    }

    /// Sets the priority of `intid` (lower value = higher priority).
    ///
    /// # Errors
    ///
    /// [`GicError`] for out-of-range CPU or INTID.
    pub fn set_priority(&mut self, intid: IntId, cpu: usize, prio: u8) -> Result<(), GicError> {
        self.state_mut(intid, cpu)?.priority = prio;
        Ok(())
    }

    /// Routes SPI `intid` to `target` CPU.
    ///
    /// # Errors
    ///
    /// [`GicError::BadIntId`] if `intid` is not an SPI in range;
    /// [`GicError::BadCpu`] if `target` is out of range.
    pub fn set_target(&mut self, intid: IntId, target: usize) -> Result<(), GicError> {
        if !intid.is_spi() {
            return Err(GicError::BadIntId { intid });
        }
        if target >= self.private.len() {
            return Err(GicError::BadCpu { cpu: target });
        }
        let idx = intid.raw() as usize - 32;
        if idx >= self.spi_target.len() {
            return Err(GicError::BadIntId { intid });
        }
        self.spi_target[idx] = target;
        Ok(())
    }

    /// The CPU an SPI currently targets.
    pub fn target_of(&self, intid: IntId) -> Option<usize> {
        if !intid.is_spi() {
            return None;
        }
        self.spi_target.get(intid.raw() as usize - 32).copied()
    }

    /// Makes `intid` pending, as a device (or SGI sender) would. For
    /// private interrupts `cpu` selects the bank; for SPIs it is ignored
    /// (the configured target receives it).
    ///
    /// # Errors
    ///
    /// [`GicError`] for out-of-range CPU or INTID.
    pub fn raise(&mut self, intid: IntId, cpu: usize) -> Result<(), GicError> {
        self.state_mut(intid, cpu)?.pending = true;
        Ok(())
    }

    /// The CPU that should see `intid` asserted: its bank CPU for
    /// privates, the configured target for SPIs.
    pub fn destination(&self, intid: IntId, bank_cpu: usize) -> usize {
        if intid.is_private() {
            bank_cpu
        } else {
            self.spi_target[intid.raw() as usize - 32]
        }
    }

    /// Highest-priority pending, enabled, non-active interrupt visible to
    /// `cpu`, without acknowledging it.
    ///
    /// # Errors
    ///
    /// [`GicError::BadCpu`] if `cpu` is out of range.
    pub fn highest_pending(&self, cpu: usize) -> Result<Option<IntId>, GicError> {
        if cpu >= self.private.len() {
            return Err(GicError::BadCpu { cpu });
        }
        if !self.enabled {
            return Ok(None);
        }
        let mut best: Option<(u8, IntId)> = None;
        let mut consider = |prio: u8, intid: IntId| match best {
            Some((bp, bi)) if (bp, bi.raw()) <= (prio, intid.raw()) => {}
            _ => best = Some((prio, intid)),
        };
        for (i, s) in self.private[cpu].iter().enumerate() {
            if s.enabled && s.pending && !s.active {
                consider(s.priority, IntId::from_raw(i as u32));
            }
        }
        for (i, s) in self.spis.iter().enumerate() {
            if s.enabled && s.pending && !s.active && self.spi_target[i] == cpu {
                consider(s.priority, IntId::from_raw(i as u32 + 32));
            }
        }
        Ok(best.map(|(_, i)| i))
    }

    /// Acknowledges (GICC_IAR): takes the highest pending interrupt for
    /// `cpu`, marking it active and no longer pending. Returns `None`
    /// (a read of the spurious INTID 1023) when nothing is pending.
    ///
    /// # Errors
    ///
    /// [`GicError::BadCpu`] if `cpu` is out of range.
    pub fn acknowledge(&mut self, cpu: usize) -> Result<Option<IntId>, GicError> {
        let Some(intid) = self.highest_pending(cpu)? else {
            return Ok(None);
        };
        let s = self.state_mut(intid, cpu)?;
        s.pending = false;
        s.active = true;
        Ok(Some(intid))
    }

    /// Completes (GICC_EOIR): deactivates an interrupt previously
    /// acknowledged by `cpu`.
    ///
    /// # Errors
    ///
    /// [`GicError::NotActive`] if `intid` is not active.
    pub fn complete(&mut self, cpu: usize, intid: IntId) -> Result<(), GicError> {
        let s = self.state_mut(intid, cpu)?;
        if !s.active {
            return Err(GicError::NotActive { intid });
        }
        s.active = false;
        Ok(())
    }

    /// Emulated-register write, as performed by a trapped guest MMIO
    /// access. Returns the side effects the emulating hypervisor must
    /// enact (most importantly SGI fan-out from a `GICD_SGIR` write).
    ///
    /// # Errors
    ///
    /// [`GicError`] when the encoded INTID/CPU is out of range.
    pub fn mmio_write(
        &mut self,
        offset: u64,
        value: u64,
        from_cpu: usize,
    ) -> Result<MmioEffect, GicError> {
        use dist_reg::*;
        let mut effect = MmioEffect::default();
        match offset {
            GICD_CTLR => {
                self.enabled = value & 1 != 0;
            }
            o if (GICD_ISENABLER..GICD_ISENABLER + 0x80).contains(&o) => {
                let base = ((o - GICD_ISENABLER) / 4) as u32 * 32;
                for bit in 0..32 {
                    if value & (1 << bit) != 0 {
                        self.enable(IntId::from_raw(base + bit), from_cpu)?;
                    }
                }
            }
            o if (GICD_ICENABLER..GICD_ICENABLER + 0x80).contains(&o) => {
                let base = ((o - GICD_ICENABLER) / 4) as u32 * 32;
                for bit in 0..32 {
                    if value & (1 << bit) != 0 {
                        self.disable(IntId::from_raw(base + bit), from_cpu)?;
                    }
                }
            }
            o if (GICD_ISPENDR..GICD_ISPENDR + 0x80).contains(&o) => {
                let base = ((o - GICD_ISPENDR) / 4) as u32 * 32;
                for bit in 0..32 {
                    if value & (1 << bit) != 0 {
                        self.raise(IntId::from_raw(base + bit), from_cpu)?;
                    }
                }
            }
            o if (GICD_IPRIORITYR..GICD_IPRIORITYR + 0x400).contains(&o) => {
                let intid = (o - GICD_IPRIORITYR) as u32;
                self.set_priority(IntId::from_raw(intid), from_cpu, (value & 0xFF) as u8)?;
            }
            o if (GICD_ITARGETSR..GICD_ITARGETSR + 0x400).contains(&o) => {
                let intid = (o - GICD_ITARGETSR) as u32;
                if intid >= 32 {
                    // Byte value is a CPU mask; single-target model takes
                    // the lowest set bit.
                    let mask = (value & 0xFF) as u8;
                    if mask != 0 {
                        self.set_target(IntId::from_raw(intid), mask.trailing_zeros() as usize)?;
                    }
                }
            }
            GICD_SGIR => {
                // GICv2 GICD_SGIR: value[3:0] or [27:24] = SGI id (we use
                // [27:24]), value[23:16] = CPU target list,
                // value[25:24] = target list filter.
                // Note: real hardware packs the filter at [25:24] and the
                // SGI id at [3:0]; the model keeps the id at [27:24] for
                // readability and takes the filter from bits [29:28].
                let sgi = IntId::sgi(((value >> 24) & 0xF) as u32);
                let filter = match (value >> 28) & 0x3 {
                    0 => SgiFilter::TargetList,
                    1 => SgiFilter::AllOthers,
                    _ => SgiFilter::SelfOnly,
                };
                let mask = ((value >> 16) & 0xFF) as u8;
                for cpu in 0..self.num_cpus() {
                    let hit = match filter {
                        SgiFilter::TargetList => mask & (1 << cpu) != 0,
                        SgiFilter::AllOthers => cpu != from_cpu,
                        SgiFilter::SelfOnly => cpu == from_cpu,
                    };
                    if hit {
                        self.raise(sgi, cpu)?;
                        effect.sgi_targets.push((cpu, sgi));
                    }
                }
            }
            _ => { /* unmodelled register: write ignored, as RAZ/WI */ }
        }
        Ok(effect)
    }

    /// Emulated-register read for the modelled subset.
    ///
    /// # Errors
    ///
    /// [`GicError::BadCpu`] if `from_cpu` is out of range.
    pub fn mmio_read(&self, offset: u64, from_cpu: usize) -> Result<u64, GicError> {
        use dist_reg::*;
        if from_cpu >= self.private.len() {
            return Err(GicError::BadCpu { cpu: from_cpu });
        }
        Ok(match offset {
            GICD_CTLR => self.enabled as u64,
            o if (GICD_ISENABLER..GICD_ISENABLER + 0x80).contains(&o) => {
                let base = ((o - GICD_ISENABLER) / 4) as u32 * 32;
                let mut v = 0u64;
                for bit in 0..32u32 {
                    let intid = IntId::from_raw(base + bit);
                    if self.is_irq_enabled(intid, from_cpu) {
                        v |= 1 << bit;
                    }
                }
                v
            }
            o if (GICD_IPRIORITYR..GICD_IPRIORITYR + 0x400).contains(&o) => {
                let intid = IntId::from_raw((o - GICD_IPRIORITYR) as u32);
                self.state(intid, from_cpu).map(|s| s.priority as u64)?
            }
            _ => 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gic() -> Distributor {
        Distributor::new(4, 64)
    }

    #[test]
    fn disabled_irq_is_not_delivered() {
        let mut g = gic();
        let nic = IntId::spi(43);
        g.raise(nic, 0).unwrap();
        assert_eq!(g.highest_pending(0).unwrap(), None, "disabled -> invisible");
        g.enable(nic, 0).unwrap();
        assert_eq!(g.highest_pending(0).unwrap(), Some(nic));
    }

    #[test]
    fn ack_complete_lifecycle() {
        let mut g = gic();
        let irq = IntId::spi(1);
        g.enable(irq, 0).unwrap();
        g.raise(irq, 0).unwrap();
        let got = g.acknowledge(0).unwrap().unwrap();
        assert_eq!(got, irq);
        // Active interrupts are not re-delivered.
        assert_eq!(g.highest_pending(0).unwrap(), None);
        g.complete(0, irq).unwrap();
        // Re-raising after completion delivers again.
        g.raise(irq, 0).unwrap();
        assert_eq!(g.acknowledge(0).unwrap(), Some(irq));
    }

    #[test]
    fn complete_of_inactive_irq_is_error() {
        let mut g = gic();
        assert_eq!(
            g.complete(0, IntId::spi(1)),
            Err(GicError::NotActive {
                intid: IntId::spi(1)
            })
        );
    }

    #[test]
    fn priority_orders_delivery_then_intid_breaks_ties() {
        let mut g = gic();
        let (a, b, c) = (IntId::spi(1), IntId::spi(2), IntId::spi(3));
        for i in [a, b, c] {
            g.enable(i, 0).unwrap();
            g.raise(i, 0).unwrap();
        }
        g.set_priority(b, 0, 0x10).unwrap(); // highest priority
        g.set_priority(c, 0, 0x10).unwrap();
        assert_eq!(g.acknowledge(0).unwrap(), Some(b), "lower INTID wins ties");
        assert_eq!(g.acknowledge(0).unwrap(), Some(c));
        assert_eq!(g.acknowledge(0).unwrap(), Some(a));
    }

    #[test]
    fn spis_follow_their_target() {
        let mut g = gic();
        let nic = IntId::spi(43);
        g.enable(nic, 0).unwrap();
        g.set_target(nic, 2).unwrap();
        g.raise(nic, 0).unwrap();
        assert_eq!(g.highest_pending(0).unwrap(), None);
        assert_eq!(g.highest_pending(2).unwrap(), Some(nic));
        assert_eq!(g.destination(nic, 0), 2);
        assert_eq!(g.target_of(nic), Some(2));
    }

    #[test]
    fn private_interrupts_are_banked_per_cpu() {
        let mut g = gic();
        g.enable(IntId::VTIMER, 1).unwrap();
        g.raise(IntId::VTIMER, 1).unwrap();
        assert_eq!(g.highest_pending(1).unwrap(), Some(IntId::VTIMER));
        assert_eq!(g.highest_pending(0).unwrap(), None, "other bank unaffected");
        assert!(!g.is_irq_enabled(IntId::VTIMER, 0));
    }

    #[test]
    fn sgir_write_fans_out_to_target_mask() {
        let mut g = gic();
        for cpu in 0..4 {
            g.enable(IntId::sgi(5), cpu).unwrap();
        }
        // SGI 5 to CPUs 1 and 3.
        let effect = g
            .mmio_write(dist_reg::GICD_SGIR, (5 << 24) | (0b1010 << 16), 0)
            .unwrap();
        assert_eq!(
            effect.sgi_targets,
            vec![(1, IntId::sgi(5)), (3, IntId::sgi(5))]
        );
        assert_eq!(g.highest_pending(1).unwrap(), Some(IntId::sgi(5)));
        assert_eq!(g.highest_pending(3).unwrap(), Some(IntId::sgi(5)));
        assert_eq!(g.highest_pending(0).unwrap(), None);
    }

    #[test]
    fn sgir_all_others_filter_broadcasts_except_self() {
        let mut g = gic();
        for cpu in 0..4 {
            g.enable(IntId::sgi(1), cpu).unwrap();
        }
        let effect = g
            .mmio_write(
                dist_reg::GICD_SGIR,
                (1 << 24) | SgiFilter::AllOthers.encode(),
                2,
            )
            .unwrap();
        let targets: Vec<usize> = effect.sgi_targets.iter().map(|(c, _)| *c).collect();
        assert_eq!(targets, vec![0, 1, 3], "everyone but the sender");
    }

    #[test]
    fn sgir_self_filter_hits_only_the_sender() {
        let mut g = gic();
        g.enable(IntId::sgi(2), 1).unwrap();
        let effect = g
            .mmio_write(
                dist_reg::GICD_SGIR,
                (2 << 24) | SgiFilter::SelfOnly.encode(),
                1,
            )
            .unwrap();
        assert_eq!(effect.sgi_targets, vec![(1, IntId::sgi(2))]);
        assert_eq!(g.highest_pending(1).unwrap(), Some(IntId::sgi(2)));
    }

    #[test]
    fn mmio_enable_disable_round_trip() {
        let mut g = gic();
        // Enable INTIDs 32..64 via ISENABLER word 1.
        g.mmio_write(dist_reg::GICD_ISENABLER + 4, u32::MAX as u64, 0)
            .unwrap();
        assert!(g.is_irq_enabled(IntId::spi(0), 0));
        assert!(g.is_irq_enabled(IntId::spi(31), 0));
        assert_eq!(
            g.mmio_read(dist_reg::GICD_ISENABLER + 4, 0).unwrap(),
            u32::MAX as u64
        );
        g.mmio_write(dist_reg::GICD_ICENABLER + 4, 1, 0).unwrap();
        assert!(!g.is_irq_enabled(IntId::spi(0), 0));
    }

    #[test]
    fn mmio_priority_and_target() {
        let mut g = gic();
        let irq = IntId::spi(2); // INTID 34
        g.mmio_write(dist_reg::GICD_IPRIORITYR + 34, 0x20, 0)
            .unwrap();
        assert_eq!(
            g.mmio_read(dist_reg::GICD_IPRIORITYR + 34, 0).unwrap(),
            0x20
        );
        g.mmio_write(dist_reg::GICD_ITARGETSR + 34, 0b0100, 0)
            .unwrap();
        assert_eq!(g.target_of(irq), Some(2));
    }

    #[test]
    fn ctlr_gates_all_delivery() {
        let mut g = gic();
        let irq = IntId::spi(0);
        g.enable(irq, 0).unwrap();
        g.raise(irq, 0).unwrap();
        g.mmio_write(dist_reg::GICD_CTLR, 0, 0).unwrap();
        assert!(!g.is_enabled());
        assert_eq!(g.highest_pending(0).unwrap(), None);
        g.mmio_write(dist_reg::GICD_CTLR, 1, 0).unwrap();
        assert_eq!(g.highest_pending(0).unwrap(), Some(irq));
    }

    #[test]
    fn bad_cpu_and_intid_are_errors() {
        let mut g = gic();
        assert!(matches!(
            g.enable(IntId::spi(0), 9),
            Err(GicError::BadCpu { cpu: 9 })
        ));
        assert!(g.enable(IntId::spi(63), 0).is_ok(), "last configured SPI");
        assert!(matches!(
            g.enable(IntId::spi(64), 0),
            Err(GicError::BadIntId { .. })
        ));
        assert!(g.highest_pending(4).is_err());
        assert!(g.set_target(IntId::VTIMER, 0).is_err());
    }
}
