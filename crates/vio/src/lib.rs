//! # hvx-vio — paravirtual I/O substrate for the hvx simulator
//!
//! The two virtual I/O stacks whose contrast drives the application
//! results of *"ARM Virtualization: Performance and Architectural
//! Implications"* (ISCA 2016):
//!
//! * **Virtio/VHOST** (KVM): [`Virtqueue`] descriptor rings carrying IPA
//!   pointers, consumed by the in-kernel [`VhostNet`] backend which has
//!   the machine's full Stage-2 view of guest memory — the zero-copy
//!   path.
//! * **Xen PV**: [`EventChannels`] for notification, plus
//!   [`NetFront`]/[`NetBack`] shared-ring networking over grant tables —
//!   one mandatory data copy per packet in each direction, or a
//!   TLB-shootdown-per-packet mapped variant.
//!
//! Plus the hardware at the edges: [`Nic`] and the 10 GbE [`Wire`].
//! All state is functional; costs are charged by `hvx-core`.
//!
//! ## Observability
//!
//! Every substrate keeps lifetime counters — [`VhostNet::tx_packets`],
//! [`VhostNet::rx_packets`], [`EventChannels::notification_count`],
//! [`Disk::read_count`]/[`Disk::write_count`], [`Nic::tx_count`]/
//! [`Nic::rx_count`] — which the hypervisor models sample into the
//! metrics registry after a profiled run (as `vio.vhost_tx_packets`,
//! `vio.evtchn_notifications`, …), so `hvx-repro profile` reports the
//! I/O traffic alongside the cycle breakdown. Failures are typed
//! ([`VioError`], with `source()` chaining to the memory layer) and are
//! wrapped by `hvx_core::Error::Vio` at the public API boundary.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod blk;
mod error;
mod event_channel;
mod nic;
mod packet;
mod vhost;
mod virtqueue;
mod xen_net;

pub use blk::{
    BlkOp, BlkRequest, Disk, VirtioBlkBackend, XenBlkBackend, XenBlkRequest, SECTOR_SIZE,
};
pub use error::VioError;
pub use event_channel::{EventChannels, Port};
pub use nic::Nic;
pub use packet::{Packet, Wire};
pub use vhost::{translate_guest_buffer, VhostNet};
pub use virtqueue::{DescChain, Descriptor, Virtqueue};
pub use xen_net::{NetBack, NetFront, RxRequest, RxResponse, TxRequest, TxResponse, XenNetRing};
