//! Virtio virtqueues — the shared rings between a guest driver and the
//! KVM host's device backend.
//!
//! "KVM ... has full access to the VM's memory and maintains shared
//! memory buffers in the Virtio rings, such that the network device can
//! DMA the data directly into a guest-visible buffer, resulting in
//! significantly less overhead" (§V). The queue carries *IPA pointers*
//! into guest memory: the guest posts buffers by IPA, and the backend —
//! because it shares the machine's Stage-2 view — translates and touches
//! those bytes directly. No copy, no grant.
//!
//! The descriptor table / available ring / used ring structure follows
//! the Virtio 1.0 split-ring layout, stored as typed structures rather
//! than raw guest bytes (a documented simplification; the *pointer
//! indirection* and *ownership handoff* semantics are what the paper's
//! analysis needs, and those are exact).

use crate::VioError;
use hvx_mem::Ipa;
use std::collections::VecDeque;

/// One descriptor: a guest buffer by IPA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Guest-physical address of the buffer.
    pub addr: Ipa,
    /// Buffer length in bytes.
    pub len: u32,
    /// `true` if the *device* writes this buffer (RX); `false` if the
    /// device reads it (TX).
    pub device_writes: bool,
}

/// A chain of descriptors popped from the available ring, owned by the
/// device until pushed onto the used ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescChain {
    /// Head descriptor index (the token returned to the guest).
    pub head: u16,
    /// The buffers in chain order.
    pub buffers: Vec<Descriptor>,
}

impl DescChain {
    /// Total byte capacity of the chain.
    pub fn capacity(&self) -> u32 {
        self.buffers.iter().map(|d| d.len).sum()
    }
}

/// A split virtqueue.
///
/// # Examples
///
/// TX handoff: guest posts a buffer, device consumes it, guest reaps the
/// completion:
///
/// ```
/// use hvx_mem::Ipa;
/// use hvx_vio::{Descriptor, Virtqueue};
///
/// let mut vq = Virtqueue::new(256)?;
/// let head = vq.add_chain(&[Descriptor { addr: Ipa::new(0x9000), len: 64, device_writes: false }])?;
/// let chain = vq.pop_avail().expect("device sees the buffer");
/// assert_eq!(chain.head, head);
/// vq.push_used(chain, 0)?;
/// assert_eq!(vq.take_used()?.unwrap().0, head);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Virtqueue {
    size: u16,
    /// Descriptor table; `None` = free slot.
    table: Vec<Option<(Descriptor, Option<u16>)>>,
    free: Vec<u16>,
    avail: VecDeque<u16>,
    used: VecDeque<(u16, u32)>,
    /// Event suppression: when set, the guest asked not to be notified of
    /// used-ring updates (`VIRTQ_AVAIL_F_NO_INTERRUPT`).
    suppress_interrupts: bool,
    /// `VIRTIO_F_EVENT_IDX` negotiated: interrupt only when the used
    /// counter crosses the guest-programmed `used_event`.
    event_idx: bool,
    /// Monotonic count of completions pushed to the used ring.
    used_total: u64,
    /// The guest's interrupt threshold (absolute completion count): "tell
    /// me when completion number `used_event + 1` lands".
    used_event: u64,
    /// `used_total` at the last interrupt decision, for the crossing test.
    last_signaled: u64,
}

impl Virtqueue {
    /// Creates a queue with `size` descriptors.
    ///
    /// # Errors
    ///
    /// [`VioError::BadQueueSize`] unless `size` is a power of two in
    /// `1..=32768` (the Virtio spec's constraint).
    pub fn new(size: u16) -> Result<Self, VioError> {
        if size == 0 || !size.is_power_of_two() {
            return Err(VioError::BadQueueSize { size });
        }
        Ok(Virtqueue {
            size,
            table: vec![None; size as usize],
            free: (0..size).rev().collect(),
            avail: VecDeque::new(),
            used: VecDeque::new(),
            suppress_interrupts: false,
            event_idx: false,
            used_total: 0,
            used_event: 0,
            last_signaled: 0,
        })
    }

    /// Queue size in descriptors.
    pub fn size(&self) -> u16 {
        self.size
    }

    /// Free descriptors remaining.
    pub fn free_descriptors(&self) -> usize {
        self.free.len()
    }

    /// Guest-side: posts a chained buffer, returning the head index.
    ///
    /// # Errors
    ///
    /// [`VioError::QueueFull`] if the chain does not fit;
    /// [`VioError::EmptyChain`] for an empty chain.
    pub fn add_chain(&mut self, chain: &[Descriptor]) -> Result<u16, VioError> {
        if chain.is_empty() {
            return Err(VioError::EmptyChain);
        }
        if self.free.len() < chain.len() {
            return Err(VioError::QueueFull);
        }
        let indices: Vec<u16> = (0..chain.len()).map(|_| self.free.pop().unwrap()).collect();
        for (i, desc) in chain.iter().enumerate() {
            let next = indices.get(i + 1).copied();
            self.table[indices[i] as usize] = Some((*desc, next));
        }
        let head = indices[0];
        self.avail.push_back(head);
        Ok(head)
    }

    /// Device-side: takes the next available chain, transferring buffer
    /// ownership to the device.
    pub fn pop_avail(&mut self) -> Option<DescChain> {
        let head = self.avail.pop_front()?;
        let mut buffers = Vec::new();
        let mut cursor = Some(head);
        while let Some(idx) = cursor {
            let (desc, next) = self.table[idx as usize].expect("chained descriptor exists");
            buffers.push(desc);
            cursor = next;
        }
        Some(DescChain { head, buffers })
    }

    /// Number of chains the device has not yet consumed.
    pub fn avail_len(&self) -> usize {
        self.avail.len()
    }

    /// Device-side: returns a consumed chain with `written` bytes
    /// produced (0 for TX).
    ///
    /// # Errors
    ///
    /// [`VioError::BadDescriptor`] if the chain's head is not a live
    /// descriptor of this queue.
    pub fn push_used(&mut self, chain: DescChain, written: u32) -> Result<(), VioError> {
        // Free the chain's descriptors.
        let mut cursor = Some(chain.head);
        while let Some(idx) = cursor {
            let slot = self
                .table
                .get_mut(idx as usize)
                .ok_or(VioError::BadDescriptor { index: idx })?;
            let (_, next) = slot.take().ok_or(VioError::BadDescriptor { index: idx })?;
            self.free.push(idx);
            cursor = next;
        }
        self.used.push_back((chain.head, written));
        self.used_total += 1;
        Ok(())
    }

    /// Guest-side: reaps one completion `(head, written)`.
    ///
    /// # Errors
    ///
    /// None currently; the `Result` reserves room for ring-corruption
    /// checks.
    #[allow(clippy::type_complexity)]
    pub fn take_used(&mut self) -> Result<Option<(u16, u32)>, VioError> {
        Ok(self.used.pop_front())
    }

    /// Completions the guest has not reaped.
    pub fn used_len(&self) -> usize {
        self.used.len()
    }

    /// Guest-side: sets used-ring interrupt suppression.
    pub fn set_suppress_interrupts(&mut self, suppress: bool) {
        self.suppress_interrupts = suppress;
    }

    /// Negotiates `VIRTIO_F_EVENT_IDX`: interrupt decisions switch from
    /// the plain suppress flag to the `used_event` threshold — the
    /// mechanism that lets a virtio guest take one completion interrupt
    /// per batch instead of one per buffer (and what keeps KVM's
    /// completion-event count below Xen's in the request-server
    /// workloads).
    pub fn set_event_idx(&mut self, enabled: bool) {
        self.event_idx = enabled;
        self.last_signaled = self.used_total;
    }

    /// Guest-side (EVENT_IDX mode): request an interrupt when completion
    /// number `count + 1` is pushed (i.e. once `used_total > count`).
    pub fn set_used_event(&mut self, count: u64) {
        self.used_event = count;
    }

    /// Monotonic count of completions pushed so far.
    pub fn used_total(&self) -> u64 {
        self.used_total
    }

    /// Device-side: whether pushing used entries should raise a guest
    /// interrupt.
    pub fn interrupts_enabled(&self) -> bool {
        !self.suppress_interrupts
    }

    /// Device-side: evaluates (and consumes) the interrupt decision for
    /// the completions pushed since the last call. Plain mode follows the
    /// suppress flag; EVENT_IDX mode interrupts iff the `used_event`
    /// threshold was crossed in the window (the spec's `vring_need_event`
    /// test).
    pub fn take_interrupt_decision(&mut self) -> bool {
        let old = self.last_signaled;
        let new = self.used_total;
        self.last_signaled = new;
        if !self.event_idx {
            return !self.suppress_interrupts && new > old;
        }
        // need_event: event in [old, new)
        self.used_event >= old && self.used_event < new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(addr: u64, len: u32, w: bool) -> Descriptor {
        Descriptor {
            addr: Ipa::new(addr),
            len,
            device_writes: w,
        }
    }

    #[test]
    fn queue_size_must_be_power_of_two() {
        assert!(Virtqueue::new(256).is_ok());
        assert!(matches!(
            Virtqueue::new(0),
            Err(VioError::BadQueueSize { size: 0 })
        ));
        assert!(matches!(
            Virtqueue::new(100),
            Err(VioError::BadQueueSize { size: 100 })
        ));
    }

    #[test]
    fn chain_round_trip_preserves_order_and_buffers() {
        let mut vq = Virtqueue::new(8).unwrap();
        let chain_in = [desc(0x1000, 10, false), desc(0x2000, 20, false)];
        let head = vq.add_chain(&chain_in).unwrap();
        assert_eq!(vq.avail_len(), 1);
        assert_eq!(vq.free_descriptors(), 6);
        let chain = vq.pop_avail().unwrap();
        assert_eq!(chain.head, head);
        assert_eq!(chain.buffers, chain_in);
        assert_eq!(chain.capacity(), 30);
        vq.push_used(chain, 0).unwrap();
        assert_eq!(vq.take_used().unwrap(), Some((head, 0)));
        assert_eq!(vq.free_descriptors(), 8, "descriptors recycled");
    }

    #[test]
    fn multiple_chains_complete_fifo() {
        let mut vq = Virtqueue::new(8).unwrap();
        let h1 = vq.add_chain(&[desc(0x1000, 1, true)]).unwrap();
        let h2 = vq.add_chain(&[desc(0x2000, 1, true)]).unwrap();
        let c1 = vq.pop_avail().unwrap();
        let c2 = vq.pop_avail().unwrap();
        vq.push_used(c2, 5).unwrap();
        vq.push_used(c1, 7).unwrap();
        assert_eq!(vq.take_used().unwrap(), Some((h2, 5)));
        assert_eq!(vq.take_used().unwrap(), Some((h1, 7)));
        assert_eq!(vq.take_used().unwrap(), None);
    }

    #[test]
    fn exhaustion_and_refill() {
        let mut vq = Virtqueue::new(2).unwrap();
        vq.add_chain(&[desc(0x1000, 1, false), desc(0x2000, 1, false)])
            .unwrap();
        assert_eq!(
            vq.add_chain(&[desc(0x3000, 1, false)]),
            Err(VioError::QueueFull)
        );
        let chain = vq.pop_avail().unwrap();
        vq.push_used(chain, 0).unwrap();
        assert!(vq.add_chain(&[desc(0x3000, 1, false)]).is_ok());
    }

    #[test]
    fn empty_chain_rejected() {
        let mut vq = Virtqueue::new(2).unwrap();
        assert_eq!(vq.add_chain(&[]), Err(VioError::EmptyChain));
    }

    #[test]
    fn double_push_used_is_error() {
        let mut vq = Virtqueue::new(4).unwrap();
        vq.add_chain(&[desc(0x1000, 1, false)]).unwrap();
        let chain = vq.pop_avail().unwrap();
        vq.push_used(chain.clone(), 0).unwrap();
        assert!(matches!(
            vq.push_used(chain, 0),
            Err(VioError::BadDescriptor { .. })
        ));
    }

    #[test]
    fn event_idx_interrupts_once_per_batch() {
        let mut vq = Virtqueue::new(16).unwrap();
        vq.set_event_idx(true);
        // Guest: "interrupt me after the 4th completion" (count > 3).
        vq.set_used_event(3);
        for _ in 0..6 {
            vq.add_chain(&[desc(0x1000, 1, true)]).unwrap();
        }
        // Device completes 2 -> below threshold, no interrupt.
        for _ in 0..2 {
            let chain = vq.pop_avail().unwrap();
            vq.push_used(chain, 1).unwrap();
        }
        assert!(!vq.take_interrupt_decision());
        // Completes 3 more, crossing used_event=3 -> one interrupt.
        for _ in 0..3 {
            let chain = vq.pop_avail().unwrap();
            vq.push_used(chain, 1).unwrap();
        }
        assert!(vq.take_interrupt_decision());
        // Further completions past the threshold stay silent until the
        // guest re-arms.
        let chain = vq.pop_avail().unwrap();
        vq.push_used(chain, 1).unwrap();
        assert!(!vq.take_interrupt_decision());
        vq.set_used_event(vq.used_total()); // re-arm for the next one
        vq.add_chain(&[desc(0x2000, 1, true)]).unwrap();
        let chain = vq.pop_avail().unwrap();
        vq.push_used(chain, 1).unwrap();
        assert!(vq.take_interrupt_decision());
    }

    #[test]
    fn plain_mode_decision_follows_suppress_flag() {
        let mut vq = Virtqueue::new(4).unwrap();
        vq.add_chain(&[desc(0x1000, 1, true)]).unwrap();
        let chain = vq.pop_avail().unwrap();
        vq.push_used(chain, 1).unwrap();
        assert!(vq.take_interrupt_decision());
        assert!(!vq.take_interrupt_decision(), "no new completions");
        vq.set_suppress_interrupts(true);
        vq.add_chain(&[desc(0x1000, 1, true)]).unwrap();
        let chain = vq.pop_avail().unwrap();
        vq.push_used(chain, 1).unwrap();
        assert!(!vq.take_interrupt_decision());
    }

    #[test]
    fn interrupt_suppression_flag() {
        let mut vq = Virtqueue::new(2).unwrap();
        assert!(vq.interrupts_enabled());
        vq.set_suppress_interrupts(true);
        assert!(!vq.interrupts_enabled());
    }
}
