//! Xen PV networking: netfront (DomU) and netback (Dom0) over grant
//! tables and shared rings.
//!
//! This is the I/O model whose costs dominate Xen's application results
//! in §V: "Xen does not support zero-copy I/O, but instead must map a
//! shared page between Dom0 and the VM using the Xen grant mechanism,
//! and must copy data between the memory buffer used for DMA in Dom0 and
//! the granted memory buffer from the VM."
//!
//! Every TX and RX therefore moves bytes **twice** through physical
//! memory (DMA buffer ↔ granted frame), in contrast to the vhost path of
//! [`crate::VhostNet`]. The [`NetBack::process_tx_mapped`] variant models
//! the historical map-based zero-copy approach whose TLB-shootdown cost
//! led to its abandonment on x86 (§V) — the zero-copy ablation bench runs
//! both and prices them.

use crate::{Packet, VioError};
use hvx_mem::{
    Access, DomId, GrantRef, GrantTable, Ipa, Pa, PhysMemory, ShootdownPlan, Stage2Tables,
    TlbModel, PAGE_SIZE,
};
use std::collections::{HashMap, VecDeque};

/// A transmit request on the shared ring: "send the bytes in my granted
/// frame".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxRequest {
    /// Frontend-chosen request id.
    pub id: u16,
    /// Grant of the frame holding the payload.
    pub gref: GrantRef,
    /// Payload offset within the frame.
    pub offset: u16,
    /// Payload length.
    pub len: u32,
}

/// A receive request: "here is a granted frame you may fill".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxRequest {
    /// Frontend-chosen request id.
    pub id: u16,
    /// Writable grant of an empty frame.
    pub gref: GrantRef,
}

/// Completion of a transmit request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxResponse {
    /// The completed request id.
    pub id: u16,
}

/// Completion of a receive request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxResponse {
    /// The completed request id.
    pub id: u16,
    /// Bytes written into the granted frame.
    pub len: u32,
}

/// The shared request/response rings of one vif (TX and RX pair).
#[derive(Debug, Clone, Default)]
pub struct XenNetRing {
    /// TX requests, frontend → backend.
    pub tx_req: VecDeque<TxRequest>,
    /// TX responses, backend → frontend.
    pub tx_rsp: VecDeque<TxResponse>,
    /// RX buffer offers, frontend → backend.
    pub rx_req: VecDeque<RxRequest>,
    /// RX completions, backend → frontend.
    pub rx_rsp: VecDeque<RxResponse>,
}

impl XenNetRing {
    /// Creates empty rings.
    pub fn new() -> Self {
        XenNetRing::default()
    }
}

/// The DomU-side driver: owns a pool of guest frames it cycles through
/// grants.
#[derive(Debug, Clone)]
pub struct NetFront {
    dom: DomId,
    tx_bufs: Vec<Ipa>,
    tx_free: Vec<usize>,
    tx_inflight: HashMap<u16, (usize, GrantRef)>,
    rx_inflight: HashMap<u16, (Ipa, GrantRef)>,
    next_id: u16,
}

impl NetFront {
    /// Creates a frontend for domain `dom` with the given page-aligned
    /// guest TX buffer pool.
    ///
    /// # Panics
    ///
    /// Panics if any buffer is not page-aligned.
    pub fn new(dom: DomId, tx_bufs: Vec<Ipa>) -> Self {
        assert!(tx_bufs.iter().all(|b| b.is_page_aligned()));
        let tx_free = (0..tx_bufs.len()).rev().collect();
        NetFront {
            dom,
            tx_bufs,
            tx_free,
            tx_inflight: HashMap::new(),
            rx_inflight: HashMap::new(),
            next_id: 0,
        }
    }

    fn fresh_id(&mut self) -> u16 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    /// The owning domain.
    pub fn dom(&self) -> DomId {
        self.dom
    }

    /// Posts a payload for transmission: writes it into a pool frame
    /// (through the guest's own Stage-2 view), grants the frame read-only
    /// to Dom0, and pushes a TX request. Returns the request id. The
    /// caller then notifies the event channel.
    ///
    /// # Errors
    ///
    /// [`VioError::QueueFull`] when the pool is exhausted;
    /// [`VioError::BufferTooSmall`] for payloads over a page;
    /// translation/grant errors are propagated.
    pub fn post_tx(
        &mut self,
        ring: &mut XenNetRing,
        grants: &mut GrantTable,
        s2: &Stage2Tables,
        mem: &mut PhysMemory,
        payload: &[u8],
    ) -> Result<u16, VioError> {
        if payload.len() as u64 > PAGE_SIZE {
            return Err(VioError::BufferTooSmall {
                need: payload.len(),
                have: PAGE_SIZE as usize,
            });
        }
        let buf_idx = self.tx_free.pop().ok_or(VioError::QueueFull)?;
        let ipa = self.tx_bufs[buf_idx];
        let pa = s2.translate(ipa, Access::Write)?.pa;
        mem.write(pa, payload)?;
        let gref = grants.grant_access(DomId::DOM0, pa, true)?;
        let id = self.fresh_id();
        self.tx_inflight.insert(id, (buf_idx, gref));
        ring.tx_req.push_back(TxRequest {
            id,
            gref,
            offset: 0,
            len: payload.len() as u32,
        });
        Ok(id)
    }

    /// Reaps TX completions: ends each completed grant and recycles the
    /// frame. Returns the completed request ids.
    ///
    /// # Errors
    ///
    /// [`VioError::Grant`] if a grant is still mapped (backend bug).
    pub fn reap_tx(
        &mut self,
        ring: &mut XenNetRing,
        grants: &mut GrantTable,
    ) -> Result<Vec<u16>, VioError> {
        let mut done = Vec::new();
        while let Some(rsp) = ring.tx_rsp.pop_front() {
            if let Some((buf_idx, gref)) = self.tx_inflight.remove(&rsp.id) {
                grants.end_access(gref)?;
                self.tx_free.push(buf_idx);
            }
            done.push(rsp.id);
        }
        Ok(done)
    }

    /// Offers an empty guest frame as an RX buffer: grants it writable to
    /// Dom0 and pushes an RX request.
    ///
    /// # Errors
    ///
    /// Translation/grant errors are propagated.
    pub fn post_rx(
        &mut self,
        ring: &mut XenNetRing,
        grants: &mut GrantTable,
        s2: &Stage2Tables,
        buffer: Ipa,
    ) -> Result<u16, VioError> {
        let pa = s2.translate(buffer, Access::Write)?.pa;
        let gref = grants.grant_access(DomId::DOM0, pa, false)?;
        let id = self.fresh_id();
        self.rx_inflight.insert(id, (buffer, gref));
        ring.rx_req.push_back(RxRequest { id, gref });
        Ok(id)
    }

    /// Reaps RX completions: reads each filled frame through the guest's
    /// Stage-2 view and ends the grant. Returns the received payloads.
    ///
    /// # Errors
    ///
    /// Translation/grant/memory errors are propagated.
    pub fn reap_rx(
        &mut self,
        ring: &mut XenNetRing,
        grants: &mut GrantTable,
        s2: &Stage2Tables,
        mem: &mut PhysMemory,
    ) -> Result<Vec<Vec<u8>>, VioError> {
        let mut out = Vec::new();
        while let Some(rsp) = ring.rx_rsp.pop_front() {
            let (ipa, gref) = self
                .rx_inflight
                .remove(&rsp.id)
                .ok_or(VioError::BadDescriptor { index: rsp.id })?;
            let pa = s2.translate(ipa, Access::Read)?.pa;
            let mut data = vec![0u8; rsp.len as usize];
            mem.read(pa, &mut data)?;
            grants.end_access(gref)?;
            out.push(data);
        }
        Ok(out)
    }

    /// TX pool frames currently free.
    pub fn tx_free_count(&self) -> usize {
        self.tx_free.len()
    }

    /// RX buffers currently offered and unfilled.
    pub fn rx_posted_count(&self) -> usize {
        self.rx_inflight.len()
    }
}

/// The Dom0-side backend: bridges the shared rings to the physical NIC
/// through a bounce-buffer region in Dom0 memory.
#[derive(Debug, Clone)]
pub struct NetBack {
    /// Dom0 DMA bounce region (machine addresses).
    dma_base: Pa,
    dma_slots: usize,
    next_slot: usize,
    next_packet_id: u64,
}

impl NetBack {
    /// Creates a backend with `dma_slots` page-sized bounce buffers at
    /// `dma_base` in Dom0's machine memory.
    ///
    /// # Panics
    ///
    /// Panics if `dma_base` is not page-aligned or `dma_slots` is zero.
    pub fn new(dma_base: Pa, dma_slots: usize) -> Self {
        assert!(dma_base.is_page_aligned());
        assert!(dma_slots > 0);
        NetBack {
            dma_base,
            dma_slots,
            next_slot: 0,
            next_packet_id: 0,
        }
    }

    fn dma_slot(&mut self) -> Pa {
        let pa = Pa::new(self.dma_base.value() + (self.next_slot as u64) * PAGE_SIZE);
        self.next_slot = (self.next_slot + 1) % self.dma_slots;
        pa
    }

    /// Processes TX requests the standard (copying) way: for each
    /// request, **grant-copies** the payload from the granted DomU frame
    /// into a Dom0 DMA buffer, then hands the packet to the NIC. One copy
    /// per packet — the §V "more than 3 µs of additional latency" per
    /// copy.
    ///
    /// # Errors
    ///
    /// Grant/memory errors are propagated.
    pub fn process_tx(
        &mut self,
        ring: &mut XenNetRing,
        grants: &mut GrantTable,
        mem: &mut PhysMemory,
    ) -> Result<Vec<Packet>, VioError> {
        let mut out = Vec::new();
        while let Some(req) = ring.tx_req.pop_front() {
            let dma = self.dma_slot();
            grants.grant_copy(
                mem,
                req.gref,
                DomId::DOM0,
                req.offset as u64,
                dma,
                req.len as usize,
                false,
            )?;
            let mut data = vec![0u8; req.len as usize];
            mem.read(dma, &mut data)?;
            let id = self.next_packet_id;
            self.next_packet_id += 1;
            out.push(Packet::new(id, data));
            ring.tx_rsp.push_back(TxResponse { id: req.id });
        }
        Ok(out)
    }

    /// Processes TX requests the *mapped* (would-be zero-copy) way:
    /// maps each granted frame into Dom0, reads the payload directly,
    /// unmaps — and each unmap costs a TLB shootdown, returned alongside
    /// the packets so the cost model can price the trade the paper
    /// describes ("signaling all physical CPUs to locally invalidate
    /// TLBs ... proved more expensive than simply copying the data").
    ///
    /// # Errors
    ///
    /// Grant/memory errors are propagated.
    pub fn process_tx_mapped(
        &mut self,
        ring: &mut XenNetRing,
        grants: &mut GrantTable,
        mem: &mut PhysMemory,
        tlb: &mut TlbModel,
        dom0_cpu: usize,
    ) -> Result<(Vec<Packet>, Vec<ShootdownPlan>), VioError> {
        let mut out = Vec::new();
        let mut plans = Vec::new();
        while let Some(req) = ring.tx_req.pop_front() {
            let frame = grants.map(req.gref, DomId::DOM0)?;
            // Dom0 maps the frame at some VA; the TLB caches that
            // translation (modelled by the frame's address as key).
            let key = Ipa::new(frame.value());
            tlb.fill(dom0_cpu, key);
            let mut data = vec![0u8; req.len as usize];
            mem.read(Pa::new(frame.value() + req.offset as u64), &mut data)?;
            grants.unmap(req.gref, DomId::DOM0)?;
            plans.push(tlb.shootdown(dom0_cpu, key));
            let id = self.next_packet_id;
            self.next_packet_id += 1;
            out.push(Packet::new(id, data));
            ring.tx_rsp.push_back(TxResponse { id: req.id });
        }
        Ok((out, plans))
    }

    /// Delivers a received packet: the NIC has DMA'd it into a Dom0
    /// bounce buffer; netback grant-copies it into the next posted DomU
    /// RX frame and pushes a response. One copy per packet.
    ///
    /// # Errors
    ///
    /// [`VioError::NoRxBuffer`] when DomU posted no RX buffer;
    /// [`VioError::BufferTooSmall`] for over-page packets.
    pub fn deliver_rx(
        &mut self,
        ring: &mut XenNetRing,
        grants: &mut GrantTable,
        mem: &mut PhysMemory,
        packet: &Packet,
    ) -> Result<(), VioError> {
        if packet.len() as u64 > PAGE_SIZE {
            return Err(VioError::BufferTooSmall {
                need: packet.len(),
                have: PAGE_SIZE as usize,
            });
        }
        let req = ring.rx_req.pop_front().ok_or(VioError::NoRxBuffer)?;
        let dma = self.dma_slot();
        mem.write(dma, &packet.data)?; // NIC DMA into Dom0 buffer
        grants.grant_copy(mem, req.gref, DomId::DOM0, 0, dma, packet.len(), true)?;
        ring.rx_rsp.push_back(RxResponse {
            id: req.id,
            len: packet.len() as u32,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvx_mem::{S2Perms, ShootdownMethod};

    const DOMU: DomId = DomId(1);

    struct Rig {
        mem: PhysMemory,
        s2: Stage2Tables,
        grants: GrantTable,
        ring: XenNetRing,
        front: NetFront,
        back: NetBack,
    }

    fn rig() -> Rig {
        let mut s2 = Stage2Tables::new();
        // DomU RAM: IPA 0x8000_0000.. -> PA 0x10_0000.., 16 pages.
        s2.map_range(Ipa::new(0x8000_0000), Pa::new(0x10_0000), 16, S2Perms::RW)
            .unwrap();
        let tx_bufs = (0..4)
            .map(|i| Ipa::new(0x8000_0000 + i * PAGE_SIZE))
            .collect();
        Rig {
            mem: PhysMemory::new(1 << 22),
            s2,
            grants: GrantTable::new(64),
            ring: XenNetRing::new(),
            front: NetFront::new(DOMU, tx_bufs),
            back: NetBack::new(Pa::new(0x20_0000), 8),
        }
    }

    #[test]
    fn tx_path_copies_exactly_once_per_packet() {
        let mut r = rig();
        r.front
            .post_tx(&mut r.ring, &mut r.grants, &r.s2, &mut r.mem, b"xen-tx")
            .unwrap();
        assert_eq!(r.grants.copy_count(), 0);
        let pkts = r
            .back
            .process_tx(&mut r.ring, &mut r.grants, &mut r.mem)
            .unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(&pkts[0].data[..], b"xen-tx");
        assert_eq!(r.grants.copy_count(), 1, "one grant copy per TX packet");
        let done = r.front.reap_tx(&mut r.ring, &mut r.grants).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(r.front.tx_free_count(), 4, "frame recycled");
        assert_eq!(r.grants.live_entries(), 0, "grant revoked");
    }

    #[test]
    fn rx_path_copies_exactly_once_per_packet() {
        let mut r = rig();
        let rx_buf = Ipa::new(0x8000_0000 + 8 * PAGE_SIZE);
        r.front
            .post_rx(&mut r.ring, &mut r.grants, &r.s2, rx_buf)
            .unwrap();
        let pkt = Packet::new(0, &b"xen-rx-payload"[..]);
        r.back
            .deliver_rx(&mut r.ring, &mut r.grants, &mut r.mem, &pkt)
            .unwrap();
        assert_eq!(r.grants.copy_count(), 1);
        let got = r
            .front
            .reap_rx(&mut r.ring, &mut r.grants, &r.s2, &mut r.mem)
            .unwrap();
        assert_eq!(got, vec![b"xen-rx-payload".to_vec()]);
        assert_eq!(r.front.rx_posted_count(), 0);
    }

    #[test]
    fn rx_without_posted_buffer_is_an_error() {
        let mut r = rig();
        let pkt = Packet::new(0, &b"drop-me"[..]);
        assert_eq!(
            r.back
                .deliver_rx(&mut r.ring, &mut r.grants, &mut r.mem, &pkt),
            Err(VioError::NoRxBuffer)
        );
    }

    #[test]
    fn tx_pool_exhaustion_backpressures() {
        let mut r = rig();
        for i in 0..4 {
            r.front
                .post_tx(&mut r.ring, &mut r.grants, &r.s2, &mut r.mem, &[i as u8])
                .unwrap();
        }
        assert_eq!(
            r.front
                .post_tx(&mut r.ring, &mut r.grants, &r.s2, &mut r.mem, b"x"),
            Err(VioError::QueueFull)
        );
        // Backend progress frees the pool.
        r.back
            .process_tx(&mut r.ring, &mut r.grants, &mut r.mem)
            .unwrap();
        r.front.reap_tx(&mut r.ring, &mut r.grants).unwrap();
        assert!(r
            .front
            .post_tx(&mut r.ring, &mut r.grants, &r.s2, &mut r.mem, b"x")
            .is_ok());
    }

    #[test]
    fn mapped_tx_requires_shootdown_per_packet() {
        let mut r = rig();
        let mut tlb = TlbModel::new(8, ShootdownMethod::IpiFlush);
        for _ in 0..3 {
            r.front
                .post_tx(&mut r.ring, &mut r.grants, &r.s2, &mut r.mem, b"zc")
                .unwrap();
        }
        let (pkts, plans) = r
            .back
            .process_tx_mapped(&mut r.ring, &mut r.grants, &mut r.mem, &mut tlb, 4)
            .unwrap();
        assert_eq!(pkts.len(), 3);
        assert_eq!(plans.len(), 3, "one shootdown per unmapped grant");
        assert!(plans.iter().all(|p| p.ipis == 7));
        assert_eq!(r.grants.copy_count(), 0, "mapped path copies nothing");
        assert_eq!(r.grants.unmap_count(), 3);
        // Frontend can still end access because backend unmapped.
        r.front.reap_tx(&mut r.ring, &mut r.grants).unwrap();
    }

    #[test]
    fn oversized_payloads_rejected() {
        let mut r = rig();
        let big = vec![0u8; PAGE_SIZE as usize + 1];
        assert!(matches!(
            r.front
                .post_tx(&mut r.ring, &mut r.grants, &r.s2, &mut r.mem, &big),
            Err(VioError::BufferTooSmall { .. })
        ));
        let pkt = Packet::new(0, big);
        assert!(matches!(
            r.back
                .deliver_rx(&mut r.ring, &mut r.grants, &mut r.mem, &pkt),
            Err(VioError::BufferTooSmall { .. })
        ));
    }
}
