//! The VHOST in-kernel virtio-net backend — KVM's zero-copy I/O path.
//!
//! "KVM was configured with its standard VHOST networking feature,
//! allowing data handling to occur in the kernel instead of userspace"
//! (§III). The backend runs as a host-kernel thread with the machine's
//! full Stage-2 view of guest memory, so it reads TX payloads *out of*
//! and writes RX payloads *directly into* guest buffers — the zero-copy
//! property that §V credits for KVM's near-native TCP_STREAM result.
//!
//! The model enforces the real access path: every guest buffer address is
//! an IPA that must translate through the VM's Stage-2 tables before the
//! backend touches physical memory. A missing or read-only mapping faults
//! exactly as EPT/Stage-2 would.

use crate::{Packet, VioError, Virtqueue};
use hvx_mem::{Access, Pa, PhysMemory, Stage2Tables};

/// The vhost-net backend for one VM's TX/RX queue pair.
///
/// # Examples
///
/// ```
/// use hvx_mem::{Ipa, Pa, PhysMemory, S2Perms, Stage2Tables};
/// use hvx_vio::{Descriptor, VhostNet, Virtqueue};
///
/// let mut mem = PhysMemory::new(1 << 20);
/// let mut s2 = Stage2Tables::new();
/// s2.map_page(Ipa::new(0x8000), Pa::new(0x3000), S2Perms::RW)?;
///
/// // Guest writes a frame into its buffer and posts it for TX.
/// mem.write(Pa::new(0x3000), b"ping")?;
/// let mut tx = Virtqueue::new(64)?;
/// tx.add_chain(&[Descriptor { addr: Ipa::new(0x8000), len: 4, device_writes: false }])?;
///
/// let mut vhost = VhostNet::new();
/// let sent = vhost.process_tx(&mut tx, &s2, &mut mem)?;
/// assert_eq!(&sent[0].data[..], b"ping");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct VhostNet {
    next_packet_id: u64,
    tx_packets: u64,
    rx_packets: u64,
    tx_bytes: u64,
    rx_bytes: u64,
    kicks: u64,
}

impl VhostNet {
    /// Creates an idle backend.
    pub fn new() -> Self {
        VhostNet::default()
    }

    /// Drains the TX queue: for each posted chain, translates the guest
    /// buffers through Stage-2 and reads the payload straight out of
    /// machine memory (the DMA-from-guest-buffer path). Returns the
    /// packets handed to the NIC.
    ///
    /// # Errors
    ///
    /// [`VioError::Translation`] if a guest buffer is unmapped or
    /// unreadable; [`VioError::Mem`] on a physical access failure.
    pub fn process_tx(
        &mut self,
        vq: &mut Virtqueue,
        s2: &Stage2Tables,
        mem: &mut PhysMemory,
    ) -> Result<Vec<Packet>, VioError> {
        let mut out = Vec::new();
        while let Some(chain) = vq.pop_avail() {
            let mut payload = Vec::with_capacity(chain.capacity() as usize);
            for buf in &chain.buffers {
                let t = s2.translate(buf.addr, Access::Read)?;
                let mut bytes = vec![0u8; buf.len as usize];
                mem.read(t.pa, &mut bytes)?;
                payload.extend_from_slice(&bytes);
            }
            vq.push_used(chain, 0)?;
            let id = self.next_packet_id;
            self.next_packet_id += 1;
            self.tx_packets += 1;
            self.tx_bytes += payload.len() as u64;
            out.push(Packet::new(id, payload));
        }
        Ok(out)
    }

    /// Delivers one received packet: takes the guest's next posted RX
    /// buffer, translates it, and writes the payload directly into guest
    /// memory. Returns `true` if the guest should be interrupted (the
    /// queue's interrupt suppression is honoured).
    ///
    /// # Errors
    ///
    /// [`VioError::NoRxBuffer`] if the guest posted nothing;
    /// [`VioError::BufferTooSmall`] if the packet does not fit;
    /// [`VioError::Translation`] if the buffer is unmapped or read-only.
    pub fn deliver_rx(
        &mut self,
        vq: &mut Virtqueue,
        s2: &Stage2Tables,
        mem: &mut PhysMemory,
        packet: &Packet,
    ) -> Result<bool, VioError> {
        let chain = vq.pop_avail().ok_or(VioError::NoRxBuffer)?;
        if (chain.capacity() as usize) < packet.len() {
            let cap = chain.capacity() as usize;
            // Return the buffer so the guest does not leak it.
            vq.push_used(chain, 0)?;
            return Err(VioError::BufferTooSmall {
                need: packet.len(),
                have: cap,
            });
        }
        let mut remaining = &packet.data[..];
        for buf in &chain.buffers {
            if remaining.is_empty() {
                break;
            }
            let t = s2.translate(buf.addr, Access::Write)?;
            let n = remaining.len().min(buf.len as usize);
            mem.write(t.pa, &remaining[..n])?;
            remaining = &remaining[n..];
        }
        vq.push_used(chain, packet.len() as u32)?;
        self.rx_packets += 1;
        self.rx_bytes += packet.len() as u64;
        Ok(vq.interrupts_enabled())
    }

    /// Packets transmitted so far.
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }

    /// Packets delivered so far.
    pub fn rx_packets(&self) -> u64 {
        self.rx_packets
    }

    /// Records one guest doorbell (ioeventfd wakeup) and returns its
    /// sequence number (1-based). Event tracers use this as the
    /// correlation id that opens a virtio-kick flow chain.
    pub fn note_kick(&mut self) -> u64 {
        self.kicks += 1;
        self.kicks
    }

    /// Lifetime doorbells recorded via [`VhostNet::note_kick`].
    pub fn kick_count(&self) -> u64 {
        self.kicks
    }

    /// Payload bytes transmitted so far.
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Payload bytes delivered so far.
    pub fn rx_bytes(&self) -> u64 {
        self.rx_bytes
    }
}

/// Convenience: translate-and-check a guest buffer, returning its PA.
///
/// # Errors
///
/// [`VioError::Translation`] when Stage-2 rejects the access.
pub fn translate_guest_buffer(
    s2: &Stage2Tables,
    addr: hvx_mem::Ipa,
    access: Access,
) -> Result<Pa, VioError> {
    Ok(s2.translate(addr, access)?.pa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Descriptor;
    use hvx_mem::{Ipa, S2Perms};

    fn setup() -> (PhysMemory, Stage2Tables, Virtqueue, VhostNet) {
        let mut s2 = Stage2Tables::new();
        // Guest RAM: IPA 0x8000_0000.. maps to PA 0x10_0000..
        s2.map_range(Ipa::new(0x8000_0000), Pa::new(0x10_0000), 16, S2Perms::RW)
            .unwrap();
        (
            PhysMemory::new(1 << 22),
            s2,
            Virtqueue::new(64).unwrap(),
            VhostNet::new(),
        )
    }

    #[test]
    fn tx_reads_guest_bytes_without_intermediate_copy() {
        let (mut mem, s2, mut vq, mut vhost) = setup();
        mem.write(Pa::new(0x10_0000), b"hello-wire").unwrap();
        vq.add_chain(&[Descriptor {
            addr: Ipa::new(0x8000_0000),
            len: 10,
            device_writes: false,
        }])
        .unwrap();
        let before = mem.bytes_written();
        let pkts = vhost.process_tx(&mut vq, &s2, &mut mem).unwrap();
        assert_eq!(&pkts[0].data[..], b"hello-wire");
        assert_eq!(vhost.tx_packets(), 1);
        assert_eq!(vhost.tx_bytes(), 10);
        assert_eq!(
            mem.bytes_written(),
            before,
            "zero-copy TX writes nothing back to memory"
        );
        assert_eq!(vq.take_used().unwrap().map(|(h, _)| h), Some(0));
    }

    #[test]
    fn tx_concatenates_chained_buffers() {
        let (mut mem, s2, mut vq, mut vhost) = setup();
        mem.write(Pa::new(0x10_0000), b"AAAA").unwrap();
        mem.write(Pa::new(0x10_1000), b"BB").unwrap();
        vq.add_chain(&[
            Descriptor {
                addr: Ipa::new(0x8000_0000),
                len: 4,
                device_writes: false,
            },
            Descriptor {
                addr: Ipa::new(0x8000_1000),
                len: 2,
                device_writes: false,
            },
        ])
        .unwrap();
        let pkts = vhost.process_tx(&mut vq, &s2, &mut mem).unwrap();
        assert_eq!(&pkts[0].data[..], b"AAAABB");
    }

    #[test]
    fn rx_writes_directly_into_guest_buffer() {
        let (mut mem, s2, mut vq, mut vhost) = setup();
        vq.add_chain(&[Descriptor {
            addr: Ipa::new(0x8000_2000),
            len: 64,
            device_writes: true,
        }])
        .unwrap();
        let pkt = Packet::new(1, &b"incoming"[..]);
        let irq = vhost.deliver_rx(&mut vq, &s2, &mut mem, &pkt).unwrap();
        assert!(irq);
        let mut buf = [0u8; 8];
        mem.read(Pa::new(0x10_2000), &mut buf).unwrap();
        assert_eq!(&buf, b"incoming", "payload landed in the guest page");
        assert_eq!(vq.take_used().unwrap(), Some((0, 8)));
    }

    #[test]
    fn rx_without_posted_buffer_fails() {
        let (mut mem, s2, mut vq, mut vhost) = setup();
        let pkt = Packet::new(1, &b"x"[..]);
        assert_eq!(
            vhost.deliver_rx(&mut vq, &s2, &mut mem, &pkt),
            Err(VioError::NoRxBuffer)
        );
    }

    #[test]
    fn rx_buffer_too_small_is_reported_and_buffer_returned() {
        let (mut mem, s2, mut vq, mut vhost) = setup();
        vq.add_chain(&[Descriptor {
            addr: Ipa::new(0x8000_0000),
            len: 2,
            device_writes: true,
        }])
        .unwrap();
        let pkt = Packet::new(1, &b"too-big"[..]);
        assert_eq!(
            vhost.deliver_rx(&mut vq, &s2, &mut mem, &pkt),
            Err(VioError::BufferTooSmall { need: 7, have: 2 })
        );
        assert_eq!(vq.take_used().unwrap(), Some((0, 0)), "buffer handed back");
    }

    #[test]
    fn unmapped_guest_buffer_faults() {
        let (mut mem, s2, mut vq, mut vhost) = setup();
        vq.add_chain(&[Descriptor {
            addr: Ipa::new(0xDEAD_0000),
            len: 4,
            device_writes: false,
        }])
        .unwrap();
        assert!(matches!(
            vhost.process_tx(&mut vq, &s2, &mut mem),
            Err(VioError::Translation(_))
        ));
    }

    #[test]
    fn suppressed_interrupts_reported_to_caller() {
        let (mut mem, s2, mut vq, mut vhost) = setup();
        vq.set_suppress_interrupts(true);
        vq.add_chain(&[Descriptor {
            addr: Ipa::new(0x8000_0000),
            len: 16,
            device_writes: true,
        }])
        .unwrap();
        let pkt = Packet::new(1, &b"quiet"[..]);
        let irq = vhost.deliver_rx(&mut vq, &s2, &mut mem, &pkt).unwrap();
        assert!(!irq);
    }
}
