//! The physical NIC model.
//!
//! A dual-port Mellanox 10 GbE adapter in the paper; here, a queue pair
//! with an SPI interrupt line. The NIC is deliberately dumb: DMA and
//! interrupt *costs* are charged by the hypervisor models, and the wire
//! itself is [`crate::Wire`].

use crate::Packet;
use hvx_gic::IntId;
use std::collections::VecDeque;

/// A physical network interface.
///
/// # Examples
///
/// ```
/// use hvx_gic::IntId;
/// use hvx_vio::{Nic, Packet};
///
/// let mut nic = Nic::new(IntId::spi(43));
/// nic.receive_from_wire(Packet::new(0, &b"hi"[..]));
/// assert!(nic.has_rx());
/// assert_eq!(nic.take_rx().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Nic {
    irq: IntId,
    rx_queue: VecDeque<Packet>,
    tx_count: u64,
    rx_count: u64,
    stall_count: u64,
    rekick_count: u64,
    irq_seq: u64,
}

impl Nic {
    /// Creates a NIC raising `irq` on packet reception.
    pub fn new(irq: IntId) -> Self {
        Nic {
            irq,
            rx_queue: VecDeque::new(),
            tx_count: 0,
            rx_count: 0,
            stall_count: 0,
            rekick_count: 0,
            irq_seq: 0,
        }
    }

    /// Records one assertion of [`Nic::irq`] and returns its sequence
    /// number (1-based). Event tracers use this as the correlation id
    /// that opens an interrupt-delivery flow chain.
    pub fn note_irq(&mut self) -> u64 {
        self.irq_seq += 1;
        self.irq_seq
    }

    /// Lifetime interrupt assertions recorded via [`Nic::note_irq`].
    pub fn irq_count(&self) -> u64 {
        self.irq_seq
    }

    /// The SPI this NIC asserts.
    pub fn irq(&self) -> IntId {
        self.irq
    }

    /// Transmits a packet onto the wire (returns it for the wire model to
    /// carry; the NIC just counts).
    pub fn transmit(&mut self, packet: Packet) -> Packet {
        self.tx_count += 1;
        packet
    }

    /// A packet arrived from the wire; it queues until the driver reads
    /// it. The caller should raise [`Nic::irq`] on the machine's
    /// interrupt controller.
    pub fn receive_from_wire(&mut self, packet: Packet) {
        self.rx_count += 1;
        self.rx_queue.push_back(packet);
    }

    /// Returns `true` if received packets await the driver.
    pub fn has_rx(&self) -> bool {
        !self.rx_queue.is_empty()
    }

    /// Driver-side: takes the next received packet.
    pub fn take_rx(&mut self) -> Option<Packet> {
        self.rx_queue.pop_front()
    }

    /// Packets transmitted.
    pub fn tx_count(&self) -> u64 {
        self.tx_count
    }

    /// Packets received.
    pub fn rx_count(&self) -> u64 {
        self.rx_count
    }

    /// Records a DMA stall: the NIC missed a doorbell and the driver's
    /// TX watchdog had to re-kick the ring. Counts both events so the
    /// recovery invariant (`rekicks == stalls`) is checkable.
    pub fn record_stall_and_rekick(&mut self) {
        self.stall_count += 1;
        self.rekick_count += 1;
    }

    /// DMA stalls observed (fault injection).
    pub fn stall_count(&self) -> u64 {
        self.stall_count
    }

    /// Driver re-kicks issued to recover from stalls.
    pub fn rekick_count(&self) -> u64 {
        self.rekick_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_queue_is_fifo() {
        let mut nic = Nic::new(IntId::spi(43));
        nic.receive_from_wire(Packet::new(1, &b"a"[..]));
        nic.receive_from_wire(Packet::new(2, &b"b"[..]));
        assert_eq!(nic.take_rx().unwrap().id, 1);
        assert_eq!(nic.take_rx().unwrap().id, 2);
        assert!(nic.take_rx().is_none());
        assert_eq!(nic.rx_count(), 2);
    }

    #[test]
    fn transmit_counts() {
        let mut nic = Nic::new(IntId::spi(43));
        nic.transmit(Packet::new(0, &b"x"[..]));
        assert_eq!(nic.tx_count(), 1);
        assert_eq!(nic.irq(), IntId::spi(43));
    }
}
