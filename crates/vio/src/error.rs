//! Error type for the paravirtual I/O substrate.

use core::fmt;
use hvx_mem::{GrantError, MemError, Stage2Fault};

/// Errors from virtqueue, vhost, event-channel, and Xen PV operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VioError {
    /// Virtqueue size must be a nonzero power of two.
    BadQueueSize {
        /// The rejected size.
        size: u16,
    },
    /// No free descriptors for the requested chain.
    QueueFull,
    /// A descriptor chain must contain at least one buffer.
    EmptyChain,
    /// A descriptor index did not name a live descriptor.
    BadDescriptor {
        /// The offending index.
        index: u16,
    },
    /// No receive buffer was posted — the packet is dropped (§V's
    /// netback must wait for DomU to replenish RX grants).
    NoRxBuffer,
    /// The posted buffer is too small for the packet.
    BufferTooSmall {
        /// Packet length.
        need: usize,
        /// Buffer capacity.
        have: usize,
    },
    /// Stage-2 translation of a guest buffer failed.
    Translation(Stage2Fault),
    /// Physical memory access failed.
    Mem(MemError),
    /// Grant-table operation failed.
    Grant(GrantError),
    /// Event-channel port does not exist or is unbound.
    BadPort {
        /// The offending port number.
        port: u32,
    },
    /// The notifying domain is not an endpoint of the channel.
    NotEndpoint,
}

impl fmt::Display for VioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VioError::BadQueueSize { size } => {
                write!(f, "virtqueue size {size} is not a nonzero power of two")
            }
            VioError::QueueFull => write!(f, "virtqueue has no free descriptors"),
            VioError::EmptyChain => write!(f, "descriptor chain is empty"),
            VioError::BadDescriptor { index } => write!(f, "descriptor {index} is not live"),
            VioError::NoRxBuffer => write!(f, "no receive buffer posted"),
            VioError::BufferTooSmall { need, have } => {
                write!(f, "buffer too small: need {need}, have {have}")
            }
            VioError::Translation(e) => write!(f, "guest buffer translation failed: {e}"),
            VioError::Mem(e) => write!(f, "memory access failed: {e}"),
            VioError::Grant(e) => write!(f, "grant operation failed: {e}"),
            VioError::BadPort { port } => write!(f, "event channel port {port} is not bound"),
            VioError::NotEndpoint => write!(f, "domain is not an endpoint of the channel"),
        }
    }
}

impl std::error::Error for VioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VioError::Translation(e) => Some(e),
            VioError::Mem(e) => Some(e),
            VioError::Grant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Stage2Fault> for VioError {
    fn from(e: Stage2Fault) -> Self {
        VioError::Translation(e)
    }
}

impl From<MemError> for VioError {
    fn from(e: MemError) -> Self {
        VioError::Mem(e)
    }
}

impl From<GrantError> for VioError {
    fn from(e: GrantError) -> Self {
        VioError::Grant(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvx_mem::Ipa;

    #[test]
    fn displays_are_informative() {
        assert!(VioError::QueueFull.to_string().contains("free"));
        assert!(VioError::BadPort { port: 5 }.to_string().contains('5'));
        let t = VioError::from(Stage2Fault::Translation {
            ipa: Ipa::new(0x1000),
            level: 3,
        });
        assert!(t.to_string().contains("0x1000"));
    }

    #[test]
    fn source_chains_to_inner_errors() {
        use std::error::Error;
        let e = VioError::from(MemError::OutOfRange {
            pa: hvx_mem::Pa::new(1),
        });
        assert!(e.source().is_some());
        assert!(VioError::QueueFull.source().is_none());
    }
}
