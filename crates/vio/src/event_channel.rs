//! Xen event channels — the asynchronous notification fabric between
//! domains.
//!
//! When a Xen VM performs I/O "it involves trapping to the hypervisor,
//! signaling Dom0, scheduling Dom0, and handling the I/O request in Dom0"
//! (§II). The "signaling" step is an event channel: a port pair bound
//! between two domains; notifying one end sets a pending bit for the
//! peer, which Xen turns into a virtual interrupt (and, if the peer runs
//! on another PCPU, a physical IPI — the cost §IV charges to I/O Latency
//! Out).

use crate::VioError;
use hvx_mem::DomId;
use std::collections::BTreeSet;

/// An event-channel port number (global in this model; real Xen ports
/// are per-domain, a bookkeeping difference only).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Port(pub u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Channel {
    a: DomId,
    b: DomId,
}

/// The hypervisor's event-channel table plus per-domain pending/mask
/// state.
///
/// # Examples
///
/// ```
/// use hvx_mem::DomId;
/// use hvx_vio::EventChannels;
///
/// let mut ec = EventChannels::new();
/// let port = ec.bind_interdomain(DomId(1), DomId::DOM0)?;
/// // DomU kicks its TX ring:
/// let peer = ec.notify(port, DomId(1))?;
/// assert_eq!(peer, DomId::DOM0);
/// assert_eq!(ec.pending_ports(DomId::DOM0), vec![port]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventChannels {
    channels: Vec<Option<Channel>>,
    /// Pending ports per domain id (sparse).
    pending: Vec<BTreeSet<Port>>,
    masked: Vec<BTreeSet<Port>>,
    notifications: u64,
    last_signal: Option<Port>,
}

impl EventChannels {
    /// Creates an empty table.
    pub fn new() -> Self {
        EventChannels::default()
    }

    fn dom_slot(&mut self, dom: DomId) -> usize {
        let idx = dom.0 as usize;
        while self.pending.len() <= idx {
            self.pending.push(BTreeSet::new());
            self.masked.push(BTreeSet::new());
        }
        idx
    }

    /// Binds a new channel between two domains, returning its port.
    ///
    /// # Errors
    ///
    /// None currently; `Result` reserved for per-domain port quotas.
    pub fn bind_interdomain(&mut self, a: DomId, b: DomId) -> Result<Port, VioError> {
        self.dom_slot(a);
        self.dom_slot(b);
        let port = Port(self.channels.len() as u32);
        self.channels.push(Some(Channel { a, b }));
        Ok(port)
    }

    /// Closes a channel.
    ///
    /// # Errors
    ///
    /// [`VioError::BadPort`] for an unknown or already-closed port.
    pub fn close(&mut self, port: Port) -> Result<(), VioError> {
        let slot = self
            .channels
            .get_mut(port.0 as usize)
            .ok_or(VioError::BadPort { port: port.0 })?;
        if slot.take().is_none() {
            return Err(VioError::BadPort { port: port.0 });
        }
        for p in &mut self.pending {
            p.remove(&port);
        }
        for m in &mut self.masked {
            m.remove(&port);
        }
        Ok(())
    }

    fn channel(&self, port: Port) -> Result<Channel, VioError> {
        self.channels
            .get(port.0 as usize)
            .copied()
            .flatten()
            .ok_or(VioError::BadPort { port: port.0 })
    }

    /// Notifies the channel from `sender`'s side; the peer's pending bit
    /// is set (unless masked) and the peer domain is returned so the
    /// hypervisor can raise its event virtual interrupt.
    ///
    /// # Errors
    ///
    /// [`VioError::BadPort`] / [`VioError::NotEndpoint`].
    pub fn notify(&mut self, port: Port, sender: DomId) -> Result<DomId, VioError> {
        let ch = self.channel(port)?;
        let peer = if ch.a == sender {
            ch.b
        } else if ch.b == sender {
            ch.a
        } else {
            return Err(VioError::NotEndpoint);
        };
        let slot = self.dom_slot(peer);
        if !self.masked[slot].contains(&port) {
            self.pending[slot].insert(port);
        }
        self.notifications += 1;
        self.last_signal = Some(port);
        Ok(peer)
    }

    /// The port most recently notified (masked or not), if any. Event
    /// tracers use this to tie an event-channel flow chain's signal hop
    /// to the port that carried it.
    pub fn last_signal(&self) -> Option<Port> {
        self.last_signal
    }

    /// Ports pending for `dom`, in ascending order.
    pub fn pending_ports(&self, dom: DomId) -> Vec<Port> {
        self.pending
            .get(dom.0 as usize)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Returns `true` if `dom` has any pending port.
    pub fn has_pending(&self, dom: DomId) -> bool {
        self.pending
            .get(dom.0 as usize)
            .is_some_and(|s| !s.is_empty())
    }

    /// Clears a pending port (the domain's event handler consumed it).
    /// Returns whether it was pending.
    pub fn clear_pending(&mut self, dom: DomId, port: Port) -> bool {
        let slot = self.dom_slot(dom);
        self.pending[slot].remove(&port)
    }

    /// Masks a port for `dom` — notifications are dropped while masked.
    pub fn mask(&mut self, dom: DomId, port: Port) {
        let slot = self.dom_slot(dom);
        self.masked[slot].insert(port);
    }

    /// Unmasks a port for `dom`.
    pub fn unmask(&mut self, dom: DomId, port: Port) {
        let slot = self.dom_slot(dom);
        self.masked[slot].remove(&port);
    }

    /// Total notifications delivered (for trace assertions).
    pub fn notification_count(&self) -> u64 {
        self.notifications
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMU: DomId = DomId(1);

    #[test]
    fn notify_sets_peer_pending_bidirectionally() {
        let mut ec = EventChannels::new();
        let port = ec.bind_interdomain(DOMU, DomId::DOM0).unwrap();
        assert_eq!(ec.notify(port, DOMU).unwrap(), DomId::DOM0);
        assert!(ec.has_pending(DomId::DOM0));
        assert!(!ec.has_pending(DOMU));
        assert!(ec.clear_pending(DomId::DOM0, port));
        // Reverse direction.
        assert_eq!(ec.notify(port, DomId::DOM0).unwrap(), DOMU);
        assert_eq!(ec.pending_ports(DOMU), vec![port]);
    }

    #[test]
    fn non_endpoint_cannot_notify() {
        let mut ec = EventChannels::new();
        let port = ec.bind_interdomain(DOMU, DomId::DOM0).unwrap();
        assert_eq!(ec.notify(port, DomId(9)), Err(VioError::NotEndpoint));
    }

    #[test]
    fn masked_port_drops_notifications() {
        let mut ec = EventChannels::new();
        let port = ec.bind_interdomain(DOMU, DomId::DOM0).unwrap();
        ec.mask(DomId::DOM0, port);
        ec.notify(port, DOMU).unwrap();
        assert!(!ec.has_pending(DomId::DOM0), "masked: bit not set");
        ec.unmask(DomId::DOM0, port);
        ec.notify(port, DOMU).unwrap();
        assert!(ec.has_pending(DomId::DOM0));
    }

    #[test]
    fn close_invalidates_port() {
        let mut ec = EventChannels::new();
        let port = ec.bind_interdomain(DOMU, DomId::DOM0).unwrap();
        ec.notify(port, DOMU).unwrap();
        ec.close(port).unwrap();
        assert!(!ec.has_pending(DomId::DOM0), "pending cleared on close");
        assert_eq!(ec.notify(port, DOMU), Err(VioError::BadPort { port: 0 }));
        assert_eq!(ec.close(port), Err(VioError::BadPort { port: 0 }));
    }

    #[test]
    fn multiple_channels_have_distinct_ports() {
        let mut ec = EventChannels::new();
        let p1 = ec.bind_interdomain(DOMU, DomId::DOM0).unwrap();
        let p2 = ec.bind_interdomain(DomId(2), DomId::DOM0).unwrap();
        assert_ne!(p1, p2);
        ec.notify(p1, DOMU).unwrap();
        ec.notify(p2, DomId(2)).unwrap();
        assert_eq!(ec.pending_ports(DomId::DOM0), vec![p1, p2]);
        assert_eq!(ec.notification_count(), 2);
    }

    #[test]
    fn clear_of_clean_port_returns_false() {
        let mut ec = EventChannels::new();
        let port = ec.bind_interdomain(DOMU, DomId::DOM0).unwrap();
        assert!(!ec.clear_pending(DomId::DOM0, port));
    }
}
