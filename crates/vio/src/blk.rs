//! Paravirtual block I/O: virtio-blk and Xen blkfront/blkback.
//!
//! The paper's configuration (§III): KVM "with `cache=none` for its
//! block storage devices", Xen "with its in-kernel block and network
//! backend drivers". The quantified experiments are network-centric, but
//! the block stacks exercise the same structural difference — direct
//! guest-memory access for the KVM backend versus grant-mediated access
//! for Xen — so hvx models them over the same substrate: a virtio
//! request queue carrying IPA buffers, and a Xen ring carrying grant
//! references, both ending at a [`Disk`].

use crate::{VioError, Virtqueue};
use hvx_engine::Cycles;
use hvx_mem::{Access, DomId, GrantRef, GrantTable, Ipa, PhysMemory, Stage2Tables, PAGE_SIZE};
use std::collections::VecDeque;

/// Bytes per disk sector.
pub const SECTOR_SIZE: usize = 512;

/// A block-device operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlkOp {
    /// Read `sectors` starting at `sector` into the request's buffer.
    Read,
    /// Write the request's buffer to `sectors` starting at `sector`.
    Write,
    /// Barrier/flush (no data).
    Flush,
}

/// A virtio-blk request header, as the guest driver lays it out ahead of
/// the data buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkRequest {
    /// Operation.
    pub op: BlkOp,
    /// Starting sector.
    pub sector: u64,
    /// Number of sectors.
    pub sectors: u32,
    /// Guest buffer (IPA, page-aligned for Xen).
    pub buffer: Ipa,
}

/// The disk backing a VM: a sparse sector store with a simple service
/// time model (seek + per-sector transfer).
///
/// # Examples
///
/// ```
/// use hvx_vio::{Disk, BlkOp};
///
/// let mut disk = Disk::ssd_m400(1 << 20);
/// disk.write_sectors(8, b"hello-disk")?;
/// let got = disk.read_sectors(8, 10)?;
/// assert_eq!(&got, b"hello-disk");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Disk {
    size_bytes: u64,
    sectors: std::collections::HashMap<u64, Box<[u8]>>,
    /// Fixed per-request service latency (controller + seek).
    pub seek: Cycles,
    /// Transfer cost per sector.
    pub per_sector: Cycles,
    reads: u64,
    writes: u64,
}

impl Disk {
    /// The HP m400's 120 GB SATA3 SSD class device: ~60 µs access at
    /// 2.4 GHz.
    pub fn ssd_m400(size_bytes: u64) -> Self {
        Disk::new(size_bytes, Cycles::new(144_000), Cycles::new(1_200))
    }

    /// The Dell r320's 7200 RPM RAID5 array: ~4 ms seek at 2.1 GHz.
    pub fn raid5_r320(size_bytes: u64) -> Self {
        Disk::new(size_bytes, Cycles::new(8_400_000), Cycles::new(900))
    }

    /// Creates a disk with explicit timing.
    pub fn new(size_bytes: u64, seek: Cycles, per_sector: Cycles) -> Self {
        Disk {
            size_bytes,
            sectors: std::collections::HashMap::new(),
            seek,
            per_sector,
            reads: 0,
            writes: 0,
        }
    }

    /// The device capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// The device capacity in whole sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.size_bytes / SECTOR_SIZE as u64
    }

    fn check(&self, sector: u64, len: usize) -> Result<(), VioError> {
        let end = sector * SECTOR_SIZE as u64 + len as u64;
        if end > self.size_bytes {
            return Err(VioError::BufferTooSmall {
                need: end as usize,
                have: self.size_bytes as usize,
            });
        }
        Ok(())
    }

    /// Writes raw bytes starting at `sector` (lengths need not be
    /// sector-multiples; the tail of the last sector is zero-filled).
    ///
    /// # Errors
    ///
    /// [`VioError::BufferTooSmall`] past the end of the device.
    pub fn write_sectors(&mut self, sector: u64, data: &[u8]) -> Result<(), VioError> {
        self.check(sector, data.len())?;
        for (i, chunk) in data.chunks(SECTOR_SIZE).enumerate() {
            let mut s = vec![0u8; SECTOR_SIZE].into_boxed_slice();
            s[..chunk.len()].copy_from_slice(chunk);
            self.sectors.insert(sector + i as u64, s);
        }
        self.writes += 1;
        Ok(())
    }

    /// Reads `len` bytes starting at `sector`; unwritten sectors read as
    /// zeros.
    ///
    /// # Errors
    ///
    /// [`VioError::BufferTooSmall`] past the end of the device.
    pub fn read_sectors(&mut self, sector: u64, len: usize) -> Result<Vec<u8>, VioError> {
        self.check(sector, len)?;
        let mut out = vec![0u8; len];
        for (i, chunk) in out.chunks_mut(SECTOR_SIZE).enumerate() {
            if let Some(s) = self.sectors.get(&(sector + i as u64)) {
                chunk.copy_from_slice(&s[..chunk.len()]);
            }
        }
        self.reads += 1;
        Ok(out)
    }

    /// Service time for a request of `sectors` sectors.
    pub fn service_time(&self, sectors: u32) -> Cycles {
        self.seek + self.per_sector * u64::from(sectors)
    }

    /// Completed read requests.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Completed write requests.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

/// The KVM virtio-blk backend: like vhost-net, it resolves guest buffers
/// through Stage-2 and moves data directly between guest memory and the
/// disk — `cache=none` means no host page-cache copy either.
#[derive(Debug, Default)]
pub struct VirtioBlkBackend {
    completed: u64,
}

impl VirtioBlkBackend {
    /// Creates an idle backend.
    pub fn new() -> Self {
        VirtioBlkBackend::default()
    }

    /// Drains the request queue against `disk`. Returns the serviced
    /// requests' total disk time (the caller charges it on the I/O
    /// core).
    ///
    /// # Errors
    ///
    /// Translation/memory/disk errors propagate; the queue position of a
    /// failed request is lost (as a real backend would report an I/O
    /// error completion).
    pub fn process(
        &mut self,
        vq: &mut Virtqueue,
        requests: &mut VecDeque<BlkRequest>,
        s2: &Stage2Tables,
        mem: &mut PhysMemory,
        disk: &mut Disk,
    ) -> Result<Cycles, VioError> {
        let mut disk_time = Cycles::ZERO;
        while let Some(chain) = vq.pop_avail() {
            let req = requests.pop_front().ok_or(VioError::EmptyChain)?;
            let len = req.sectors as usize * SECTOR_SIZE;
            match req.op {
                BlkOp::Read => {
                    let data = disk.read_sectors(req.sector, len)?;
                    let pa = s2.translate(req.buffer, Access::Write)?.pa;
                    mem.write(pa, &data)?;
                }
                BlkOp::Write => {
                    let pa = s2.translate(req.buffer, Access::Read)?.pa;
                    let mut data = vec![0u8; len];
                    mem.read(pa, &mut data)?;
                    disk.write_sectors(req.sector, &data)?;
                }
                BlkOp::Flush => {}
            }
            disk_time += disk.service_time(req.sectors);
            vq.push_used(chain, 0)?;
            self.completed += 1;
        }
        Ok(disk_time)
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

/// A Xen block-ring request: the buffer arrives as a grant, not an
/// address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XenBlkRequest {
    /// Operation.
    pub op: BlkOp,
    /// Starting sector.
    pub sector: u64,
    /// Number of sectors (at most a page's worth per request, as in the
    /// classic blkif protocol).
    pub sectors: u32,
    /// Grant of the data frame.
    pub gref: GrantRef,
}

/// The Dom0 blkback: every data transfer crosses the grant table.
/// (blkback historically *maps* grants; hvx models the persistent-grant
/// copy variant the measured Xen 4.5 used by default.)
#[derive(Debug)]
pub struct XenBlkBackend {
    /// Dom0 bounce buffer for grant copies.
    bounce: hvx_mem::Pa,
    completed: u64,
}

impl XenBlkBackend {
    /// Creates a backend with a page-aligned Dom0 bounce buffer.
    ///
    /// # Panics
    ///
    /// Panics if `bounce` is not page-aligned.
    pub fn new(bounce: hvx_mem::Pa) -> Self {
        assert!(bounce.is_page_aligned());
        XenBlkBackend {
            bounce,
            completed: 0,
        }
    }

    /// Services one request: grant-copies between the DomU frame and the
    /// Dom0 bounce buffer, then between the bounce buffer and the disk.
    /// Returns the disk service time.
    ///
    /// # Errors
    ///
    /// Grant/memory/disk errors propagate.
    pub fn process_one(
        &mut self,
        req: XenBlkRequest,
        grants: &mut GrantTable,
        mem: &mut PhysMemory,
        disk: &mut Disk,
    ) -> Result<Cycles, VioError> {
        let len = (req.sectors as usize * SECTOR_SIZE).min(PAGE_SIZE as usize);
        match req.op {
            BlkOp::Read => {
                let data = disk.read_sectors(req.sector, len)?;
                mem.write(self.bounce, &data)?;
                grants.grant_copy(mem, req.gref, DomId::DOM0, 0, self.bounce, len, true)?;
            }
            BlkOp::Write => {
                grants.grant_copy(mem, req.gref, DomId::DOM0, 0, self.bounce, len, false)?;
                let mut data = vec![0u8; len];
                mem.read(self.bounce, &mut data)?;
                disk.write_sectors(req.sector, &data)?;
            }
            BlkOp::Flush => {}
        }
        self.completed += 1;
        Ok(disk.service_time(req.sectors))
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Descriptor;
    use hvx_mem::{Pa, S2Perms};

    fn setup() -> (PhysMemory, Stage2Tables) {
        let mut s2 = Stage2Tables::new();
        s2.map_range(Ipa::new(0x8000_0000), Pa::new(0x10_0000), 16, S2Perms::RW)
            .unwrap();
        (PhysMemory::new(8 << 20), s2)
    }

    #[test]
    fn disk_round_trip_and_zero_fill() {
        let mut d = Disk::ssd_m400(1 << 20);
        d.write_sectors(4, b"abc").unwrap();
        assert_eq!(d.read_sectors(4, 3).unwrap(), b"abc");
        // The tail of the sector is zero.
        assert_eq!(d.read_sectors(4, 6).unwrap(), b"abc\0\0\0");
        // Unwritten sectors read as zero.
        assert_eq!(d.read_sectors(100, 4).unwrap(), vec![0; 4]);
        assert!(d.read_sectors(1 << 20, 1).is_err(), "past the end");
    }

    #[test]
    fn disk_timing_models_differ() {
        let ssd = Disk::ssd_m400(1 << 20);
        let hdd = Disk::raid5_r320(1 << 20);
        assert!(hdd.service_time(8) > ssd.service_time(8) * 10);
        // Transfer term grows with size.
        assert!(ssd.service_time(64) > ssd.service_time(8));
    }

    #[test]
    fn virtio_blk_write_then_read_through_guest_memory() {
        let (mut mem, s2) = setup();
        let mut vq = Virtqueue::new(16).unwrap();
        let mut reqs = VecDeque::new();
        let mut disk = Disk::ssd_m400(1 << 20);
        let mut backend = VirtioBlkBackend::new();

        // Guest writes data into its buffer and posts a WRITE.
        let buf = Ipa::new(0x8000_0000);
        let pa = s2.translate(buf, Access::Write).unwrap().pa;
        mem.write(pa, b"filesystem-block").unwrap();
        vq.add_chain(&[Descriptor {
            addr: buf,
            len: 512,
            device_writes: false,
        }])
        .unwrap();
        reqs.push_back(BlkRequest {
            op: BlkOp::Write,
            sector: 10,
            sectors: 1,
            buffer: buf,
        });
        backend
            .process(&mut vq, &mut reqs, &s2, &mut mem, &mut disk)
            .unwrap();
        assert_eq!(disk.write_count(), 1);

        // Then a READ into a different buffer.
        let rbuf = Ipa::new(0x8000_1000);
        vq.add_chain(&[Descriptor {
            addr: rbuf,
            len: 512,
            device_writes: true,
        }])
        .unwrap();
        reqs.push_back(BlkRequest {
            op: BlkOp::Read,
            sector: 10,
            sectors: 1,
            buffer: rbuf,
        });
        let t = backend
            .process(&mut vq, &mut reqs, &s2, &mut mem, &mut disk)
            .unwrap();
        assert!(t >= disk.seek);
        let rpa = s2.translate(rbuf, Access::Read).unwrap().pa;
        let mut got = [0u8; 16];
        mem.read(rpa, &mut got).unwrap();
        assert_eq!(&got, b"filesystem-block");
        assert_eq!(backend.completed(), 2);
    }

    #[test]
    fn xen_blk_pays_grant_copies_both_directions() {
        let (mut mem, s2) = setup();
        let mut grants = GrantTable::new(16);
        let mut disk = Disk::ssd_m400(1 << 20);
        let mut backend = XenBlkBackend::new(Pa::new(0x40_0000));

        // DomU grants its data frame for a WRITE.
        let frame = s2
            .translate(Ipa::new(0x8000_0000), Access::Read)
            .unwrap()
            .pa;
        mem.write(frame, b"xen-block-data").unwrap();
        let gref = grants.grant_access(DomId::DOM0, frame, false).unwrap();
        backend
            .process_one(
                XenBlkRequest {
                    op: BlkOp::Write,
                    sector: 3,
                    sectors: 1,
                    gref,
                },
                &mut grants,
                &mut mem,
                &mut disk,
            )
            .unwrap();
        assert_eq!(grants.copy_count(), 1);
        assert_eq!(disk.read_sectors(3, 14).unwrap(), b"xen-block-data");

        // READ back into a granted frame: second copy.
        backend
            .process_one(
                XenBlkRequest {
                    op: BlkOp::Read,
                    sector: 3,
                    sectors: 1,
                    gref,
                },
                &mut grants,
                &mut mem,
                &mut disk,
            )
            .unwrap();
        assert_eq!(grants.copy_count(), 2);
        assert_eq!(backend.completed(), 2);
    }

    #[test]
    fn flush_moves_no_data() {
        let (mut mem, s2) = setup();
        let mut vq = Virtqueue::new(8).unwrap();
        let mut reqs = VecDeque::new();
        let mut disk = Disk::ssd_m400(1 << 20);
        let mut backend = VirtioBlkBackend::new();
        vq.add_chain(&[Descriptor {
            addr: Ipa::new(0x8000_0000),
            len: 0,
            device_writes: false,
        }])
        .unwrap();
        reqs.push_back(BlkRequest {
            op: BlkOp::Flush,
            sector: 0,
            sectors: 0,
            buffer: Ipa::new(0x8000_0000),
        });
        let before = mem.bytes_written();
        backend
            .process(&mut vq, &mut reqs, &s2, &mut mem, &mut disk)
            .unwrap();
        assert_eq!(mem.bytes_written(), before);
        assert_eq!(disk.read_count() + disk.write_count(), 0);
    }
}
