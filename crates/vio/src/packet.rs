//! Network packets and the physical wire.
//!
//! The study's I/O experiments run over 10 GbE between two machines
//! (§III: "using 10 Gb Ethernet was important, as many benchmarks were
//! unaffected by virtualization when run over 1 Gb Ethernet, because the
//! network itself became the bottleneck"). [`Wire`] models exactly that:
//! a configurable per-packet latency plus per-byte serialization cost, so
//! workloads can be run against both a 10 GbE wire (hypervisor-bound) and
//! a 1 GbE wire (network-bound) to reproduce that observation.

use bytes::Bytes;
use hvx_engine::{Cycles, Frequency};

/// A network packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Payload bytes.
    pub data: Bytes,
    /// Monotonic id for latency tracking across the simulated stack.
    pub id: u64,
}

impl Packet {
    /// Creates a packet with the given payload and id.
    pub fn new(id: u64, data: impl Into<Bytes>) -> Self {
        Packet {
            data: data.into(),
            id,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for a zero-length payload.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A point-to-point Ethernet link between the server under test and the
/// (native) client machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wire {
    /// Fixed one-way latency (propagation + switch + client NIC).
    pub latency: Cycles,
    /// Serialization cost per payload byte, in cycles (derived from link
    /// bandwidth and CPU frequency).
    pub cycles_per_byte: f64,
}

impl Wire {
    /// Builds a wire from link bandwidth and one-way latency in
    /// microseconds, at the observing CPU's frequency.
    ///
    /// # Examples
    ///
    /// ```
    /// use hvx_engine::Frequency;
    /// use hvx_vio::Wire;
    ///
    /// let w = Wire::from_link(10_000, 10.0, Frequency::ARM_M400);
    /// // 10 GbE at 2.4 GHz: 2400/1250 = 1.92 cycles per byte.
    /// assert!((w.cycles_per_byte - 1.92).abs() < 1e-9);
    /// ```
    pub fn from_link(mbit_per_s: u64, latency_us: f64, freq: Frequency) -> Self {
        let bytes_per_us = mbit_per_s as f64 / 8.0; // Mbit/s == bytes/us
        Wire {
            latency: Cycles::from_micros(latency_us, freq),
            cycles_per_byte: freq.cycles_per_micro() / bytes_per_us,
        }
    }

    /// The paper's 10 GbE testbed link, seen from the ARM server.
    pub fn ten_gbe_arm() -> Self {
        Wire::from_link(10_000, 10.0, Frequency::ARM_M400)
    }

    /// One-way transfer time for a packet of `len` payload bytes.
    pub fn transfer_time(&self, len: usize) -> Cycles {
        self.latency + Cycles::new((len as f64 * self.cycles_per_byte).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_basics() {
        let p = Packet::new(7, &b"x"[..]);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert_eq!(p.id, 7);
        assert!(Packet::new(0, Bytes::new()).is_empty());
    }

    #[test]
    fn wire_transfer_scales_with_size() {
        let w = Wire::from_link(10_000, 10.0, Frequency::ARM_M400);
        let one = w.transfer_time(1);
        let big = w.transfer_time(1500);
        assert!(big > one);
        // Latency floor: 10 us = 24,000 cycles at 2.4 GHz.
        assert_eq!(w.latency, Cycles::new(24_000));
        assert_eq!(one, Cycles::new(24_000 + 2));
    }

    #[test]
    fn slower_link_costs_more_per_byte() {
        let g10 = Wire::from_link(10_000, 10.0, Frequency::ARM_M400);
        let g1 = Wire::from_link(1_000, 10.0, Frequency::ARM_M400);
        assert!(g1.cycles_per_byte > 9.0 * g10.cycles_per_byte);
    }
}
