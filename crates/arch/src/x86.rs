//! The x86 hardware-virtualization model (VMX), the paper's baseline.
//!
//! x86 "support provides a mode switch, root vs. non-root mode, completely
//! orthogonal from the CPU privilege rings" (§II). Transitions are
//! "implemented with a VM Control Structure (VMCS) residing in normal
//! memory, to and from which hardware state is automatically saved and
//! restored when switching to and from root mode". The key contrasts with
//! ARM that the model must preserve:
//!
//! * Root mode banks **no** extra register state — every VM exit bulk-moves
//!   the full CPU state to the VMCS in memory and loads the host state,
//!   and every VM entry does the reverse. Fast (done in hardware), but
//!   never as fast as ARM's "switch a mode, keep your registers" EL2 entry.
//! * The same mechanism serves Type 1 and Type 2 hypervisors identically,
//!   which is why KVM x86 and Xen x86 have near-identical Hypercall costs
//!   (Table II) while their ARM counterparts differ by 17×.
//! * Interrupt completion (APIC EOI) traps to the hypervisor unless the
//!   hardware has vAPIC support (§IV, Virtual IRQ Completion).

use core::fmt;

/// VMX operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum VmxMode {
    /// Root mode — the hypervisor (and for KVM, the whole host OS).
    Root,
    /// Non-root mode — a VM.
    NonRoot,
}

/// x86 privilege ring (orthogonal to [`VmxMode`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize, Default,
)]
pub enum Ring {
    /// Kernel privilege.
    #[default]
    Ring0,
    /// User privilege.
    Ring3,
}

/// The architectural state a VMCS transfer moves. One instance lives in
/// the CPU ([`X86Cpu::live`]); the VMCS holds a guest copy and a host copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct X86State {
    /// `rax`–`r15`.
    pub gp: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags register.
    pub rflags: u64,
    /// Control register 0 (PE/PG bits etc.).
    pub cr0: u64,
    /// Page-table base.
    pub cr3: u64,
    /// Control register 4 (VMXE etc.).
    pub cr4: u64,
    /// Extended feature enable MSR.
    pub efer: u64,
    /// Segment selectors/bases, collapsed to one word per segment
    /// (cs, ss, ds, es, fs, gs).
    pub segs: [u64; 6],
    /// Descriptor-table bases (GDTR, IDTR).
    pub dtrs: [u64; 2],
    /// SYSENTER/SYSCALL MSRs (cs, esp, eip, star, lstar, sfmask).
    pub sys_msrs: [u64; 6],
    /// Current privilege ring.
    pub ring: Ring,
}

impl X86State {
    /// Fills the state with values derived from `seed` for round-trip
    /// tests.
    pub fn fill_pattern(seed: u64) -> Self {
        use crate::regs::mix;
        let mut s = X86State::default();
        for (i, r) in s.gp.iter_mut().enumerate() {
            *r = mix(seed, 800 + i as u64);
        }
        s.rip = mix(seed, 820);
        s.rflags = mix(seed, 821);
        s.cr0 = mix(seed, 822);
        s.cr3 = mix(seed, 823);
        s.cr4 = mix(seed, 824);
        s.efer = mix(seed, 825);
        for (i, r) in s.segs.iter_mut().enumerate() {
            *r = mix(seed, 830 + i as u64);
        }
        for (i, r) in s.dtrs.iter_mut().enumerate() {
            *r = mix(seed, 840 + i as u64);
        }
        for (i, r) in s.sys_msrs.iter_mut().enumerate() {
            *r = mix(seed, 850 + i as u64);
        }
        s
    }
}

/// Why a VM exit occurred (the modelled subset of VMX exit reasons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ExitReason {
    /// `VMCALL` — the hypercall instruction.
    Vmcall,
    /// External (physical) interrupt arrived while the VM ran.
    ExternalInterrupt,
    /// EPT violation (the x86 analog of an ARM Stage-2 abort).
    EptViolation {
        /// Faulting guest-physical address.
        gpa: u64,
    },
    /// Access to the virtual APIC page (interrupt-controller emulation).
    ApicAccess {
        /// Offset within the APIC page.
        offset: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// `HLT` executed.
    Hlt,
    /// I/O instruction executed.
    IoInstruction,
    /// MSR write (e.g. x2APIC ICR for IPIs).
    MsrWrite {
        /// MSR index.
        msr: u32,
    },
}

/// Per-VMCS execution controls (the modelled subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct VmcsControls {
    /// Hardware vAPIC: interrupt completion (EOI) in the VM without a VM
    /// exit — "more recently, vAPIC support has been added to x86 with
    /// similar functionality" to ARM's no-trap virtual IRQ completion (§IV).
    pub vapic: bool,
    /// EPT enabled (always true for the modelled hypervisors).
    pub ept: bool,
}

/// A VM Control Structure: lives in ordinary memory, owned by the
/// hypervisor, one per VCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct Vmcs {
    /// Saved guest state (hardware-written on exit, hardware-read on entry).
    pub guest: X86State,
    /// Host state loaded on every exit (hypervisor-written at setup).
    pub host: X86State,
    /// Exit reason recorded by the last VM exit.
    pub exit_reason: Option<ExitReason>,
    /// Execution controls.
    pub controls: VmcsControls,
}

/// Error from VMX operations used out of protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmxError {
    /// `vmentry` attempted while already in non-root mode.
    AlreadyNonRoot,
    /// `vmexit` signalled while in root mode.
    NotInNonRoot,
}

impl fmt::Display for VmxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmxError::AlreadyNonRoot => write!(f, "vmentry while already in non-root mode"),
            VmxError::NotInNonRoot => write!(f, "vmexit while not in non-root mode"),
        }
    }
}

impl std::error::Error for VmxError {}

/// A functional x86 CPU with VMX.
///
/// # Examples
///
/// A hypercall (VMCALL) round trip:
///
/// ```
/// use hvx_arch::{ExitReason, Vmcs, X86Cpu, X86State, VmxMode};
///
/// let mut cpu = X86Cpu::new();
/// let mut vmcs = Vmcs::default();
/// vmcs.guest = X86State::fill_pattern(1);
/// vmcs.host = X86State::fill_pattern(2);
///
/// cpu.vmentry(&mut vmcs).unwrap();
/// assert_eq!(cpu.mode(), VmxMode::NonRoot);
/// cpu.vmexit(&mut vmcs, ExitReason::Vmcall).unwrap();
/// assert_eq!(cpu.mode(), VmxMode::Root);
/// assert_eq!(vmcs.exit_reason, Some(ExitReason::Vmcall));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct X86Cpu {
    /// The live architectural state.
    pub live: X86State,
    mode: VmxMode,
}

impl X86Cpu {
    /// Creates a CPU in root mode (pre-`vmentry`), zeroed state.
    pub fn new() -> Self {
        X86Cpu {
            live: X86State::default(),
            mode: VmxMode::Root,
        }
    }

    /// Current VMX mode.
    pub fn mode(&self) -> VmxMode {
        self.mode
    }

    /// Current privilege ring of the live context.
    pub fn ring(&self) -> Ring {
        self.live.ring
    }

    /// VM entry: hardware loads the guest state from the VMCS into the
    /// CPU and switches to non-root mode. The live (host) state is *not*
    /// implicitly saved — the host fields of the VMCS were programmed at
    /// setup, exactly as on real hardware.
    ///
    /// # Errors
    ///
    /// [`VmxError::AlreadyNonRoot`] if executed from non-root mode.
    pub fn vmentry(&mut self, vmcs: &mut Vmcs) -> Result<(), VmxError> {
        if self.mode == VmxMode::NonRoot {
            return Err(VmxError::AlreadyNonRoot);
        }
        self.live = vmcs.guest;
        self.mode = VmxMode::NonRoot;
        vmcs.exit_reason = None;
        Ok(())
    }

    /// VM exit: hardware saves the full live state to the VMCS guest
    /// area, records the exit reason, loads the host state, and switches
    /// to root mode — "switching between the two modes involves switching
    /// a substantial portion of the CPU register state to the VMCS in
    /// memory" (§IV).
    ///
    /// # Errors
    ///
    /// [`VmxError::NotInNonRoot`] if executed from root mode.
    pub fn vmexit(&mut self, vmcs: &mut Vmcs, reason: ExitReason) -> Result<(), VmxError> {
        if self.mode != VmxMode::NonRoot {
            return Err(VmxError::NotInNonRoot);
        }
        vmcs.guest = self.live;
        vmcs.exit_reason = Some(reason);
        self.live = vmcs.host;
        self.mode = VmxMode::Root;
        Ok(())
    }
}

impl Default for X86Cpu {
    fn default() -> Self {
        X86Cpu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_exit_round_trip_preserves_guest_state() {
        let mut cpu = X86Cpu::new();
        let mut vmcs = Vmcs {
            guest: X86State::fill_pattern(11),
            host: X86State::fill_pattern(22),
            ..Vmcs::default()
        };
        let guest_snapshot = vmcs.guest;
        cpu.vmentry(&mut vmcs).unwrap();
        assert_eq!(cpu.live, guest_snapshot);
        // Guest computes: live state diverges.
        cpu.live.gp[0] = 0xDEAD;
        cpu.vmexit(&mut vmcs, ExitReason::Vmcall).unwrap();
        assert_eq!(cpu.live, vmcs.host, "host state loaded on exit");
        assert_eq!(vmcs.guest.gp[0], 0xDEAD, "guest progress captured");
        // Re-entry resumes exactly where the guest left off.
        cpu.vmentry(&mut vmcs).unwrap();
        assert_eq!(cpu.live.gp[0], 0xDEAD);
    }

    #[test]
    fn exit_records_reason_and_entry_clears_it() {
        let mut cpu = X86Cpu::new();
        let mut vmcs = Vmcs::default();
        cpu.vmentry(&mut vmcs).unwrap();
        cpu.vmexit(&mut vmcs, ExitReason::EptViolation { gpa: 0x1000 })
            .unwrap();
        assert_eq!(
            vmcs.exit_reason,
            Some(ExitReason::EptViolation { gpa: 0x1000 })
        );
        cpu.vmentry(&mut vmcs).unwrap();
        assert_eq!(vmcs.exit_reason, None);
    }

    #[test]
    fn protocol_violations_are_errors() {
        let mut cpu = X86Cpu::new();
        let mut vmcs = Vmcs::default();
        assert_eq!(
            cpu.vmexit(&mut vmcs, ExitReason::Hlt),
            Err(VmxError::NotInNonRoot)
        );
        cpu.vmentry(&mut vmcs).unwrap();
        assert_eq!(cpu.vmentry(&mut vmcs), Err(VmxError::AlreadyNonRoot));
    }

    #[test]
    fn root_mode_supports_both_rings() {
        // "x86 root mode supports the same full range of user and kernel
        // mode functionality as its non-root mode" (§II) — the host OS
        // runs user processes in root mode ring 3.
        let mut cpu = X86Cpu::new();
        cpu.live.ring = Ring::Ring3;
        assert_eq!(cpu.mode(), VmxMode::Root);
        assert_eq!(cpu.ring(), Ring::Ring3);
    }

    #[test]
    fn pattern_states_differ_by_seed() {
        assert_ne!(X86State::fill_pattern(1), X86State::fill_pattern(2));
    }
}
