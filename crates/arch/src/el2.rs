//! EL2 control state: the hypervisor configuration registers.
//!
//! `HCR_EL2` is where a hypervisor "enables the virtualization features in
//! EL2 before switching to a VM" (§II). KVM ARM toggles these bits on
//! *every* transition (disable traps and Stage-2 translation when running
//! the host, enable them when running the VM) — overhead source #3 in the
//! paper's hypercall analysis — while Xen ARM leaves them on permanently.

use core::fmt;

/// The Hypervisor Configuration Register, `HCR_EL2`.
///
/// Only the bits the paper's analysis depends on are modelled; they use
/// their architected positions so the value reads like the real register.
///
/// # Examples
///
/// ```
/// use hvx_arch::HcrEl2;
/// let mut hcr = HcrEl2::new();
/// hcr.insert(HcrEl2::VM | HcrEl2::IMO | HcrEl2::FMO | HcrEl2::AMO);
/// assert!(hcr.contains(HcrEl2::VM));
/// assert!(!hcr.contains(HcrEl2::E2H));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Default, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct HcrEl2(u64);

impl HcrEl2 {
    /// Virtualization enable: Stage-2 translation for EL1/EL0.
    pub const VM: HcrEl2 = HcrEl2(1 << 0);
    /// Set/Way invalidation override.
    pub const SWIO: HcrEl2 = HcrEl2(1 << 1);
    /// Physical FIQ routing to EL2.
    pub const FMO: HcrEl2 = HcrEl2(1 << 3);
    /// Physical IRQ routing to EL2 ("all physical interrupts are taken to
    /// EL2 when running in a VM", §II).
    pub const IMO: HcrEl2 = HcrEl2(1 << 4);
    /// Physical SError routing to EL2.
    pub const AMO: HcrEl2 = HcrEl2(1 << 5);
    /// Virtual IRQ pending (legacy signalling; the GIC list registers are
    /// the mechanism actually modelled).
    pub const VI: HcrEl2 = HcrEl2(1 << 7);
    /// Trap WFI instructions to EL2.
    pub const TWI: HcrEl2 = HcrEl2(1 << 13);
    /// Trap WFE instructions to EL2.
    pub const TWE: HcrEl2 = HcrEl2(1 << 14);
    /// Trap general exceptions: EL0 exceptions route to EL2 (used with
    /// VHE so host userspace syscalls land in the EL2 host kernel, §VI).
    pub const TGE: HcrEl2 = HcrEl2(1 << 27);
    /// EL2 Host: the ARMv8.1 VHE bit. "VHE is provided through the
    /// addition of a new control bit, the E2H bit, which is set at system
    /// boot when installing a Type 2 hypervisor that uses VHE" (§VI).
    pub const E2H: HcrEl2 = HcrEl2(1 << 34);

    /// An all-clear HCR: virtualization disabled, "software running in EL1
    /// and EL0 works just like on a system without the virtualization
    /// extensions" (§II).
    pub const fn new() -> Self {
        HcrEl2(0)
    }

    /// The bit set a hypervisor programs while a VM runs: Stage-2 enabled,
    /// physical interrupts routed to EL2, WFI trapping on.
    pub const fn guest_running() -> Self {
        HcrEl2(Self::VM.0 | Self::SWIO.0 | Self::FMO.0 | Self::IMO.0 | Self::AMO.0 | Self::TWI.0)
    }

    /// Raw register value.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Builds from a raw value (unknown bits are preserved, as hardware
    /// would RES0/RES1 them; the model keeps them verbatim).
    pub const fn from_bits(bits: u64) -> Self {
        HcrEl2(bits)
    }

    /// Returns `true` if every bit of `flags` is set.
    pub const fn contains(self, flags: HcrEl2) -> bool {
        self.0 & flags.0 == flags.0
    }

    /// Sets the bits of `flags`.
    pub fn insert(&mut self, flags: HcrEl2) {
        self.0 |= flags.0;
    }

    /// Clears the bits of `flags`.
    pub fn remove(&mut self, flags: HcrEl2) {
        self.0 &= !flags.0;
    }

    /// Returns `true` if Stage-2 translation is enabled for EL1/EL0.
    pub const fn stage2_enabled(self) -> bool {
        self.contains(HcrEl2::VM)
    }

    /// Returns `true` if VHE redirection is active.
    pub const fn vhe_enabled(self) -> bool {
        self.contains(HcrEl2::E2H)
    }
}

impl core::ops::BitOr for HcrEl2 {
    type Output = HcrEl2;
    fn bitor(self, rhs: HcrEl2) -> HcrEl2 {
        HcrEl2(self.0 | rhs.0)
    }
}

impl fmt::Display for HcrEl2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HCR_EL2({:#x})", self.0)
    }
}

/// The remaining EL2 state the KVM ARM world switch moves: Table III's
/// "EL2 Config Regs" and "EL2 Virtual Memory Regs" rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct El2Regs {
    /// Hypervisor configuration (trap enables, Stage-2 enable, E2H).
    pub hcr_el2: HcrEl2,
    /// Trap control for coprocessor/FP accesses from lower ELs.
    pub cptr_el2: u64,
    /// Trap control for system register accesses from lower ELs.
    pub hstr_el2: u64,
    /// Counter-timer hypervisor control.
    pub cnthctl_el2: u64,
    /// Exception syndrome for exceptions taken to EL2.
    pub esr_el2: u64,
    /// Exception link register for EL2 (return address of a trap).
    pub elr_el2: u64,
    /// Saved program status for EL2 (pre-trap PSTATE + source EL).
    pub spsr_el2: u64,
    /// Fault address register for EL2.
    pub far_el2: u64,
    /// Hypervisor IPA fault address register (Stage-2 faults).
    pub hpfar_el2: u64,
    /// EL2 software thread ID.
    pub tpidr_el2: u64,
    /// EL2 stack pointer.
    pub sp_el2: u64,
    /// Vector base for EL2.
    pub vbar_el2: u64,
    /// Stage-2 translation table base (+ VMID in the top bits).
    pub vttbr_el2: u64,
    /// Stage-2 translation control.
    pub vtcr_el2: u64,
    /// EL2 stage-1 translation table base (lower range).
    pub ttbr0_el2: u64,
    /// EL2 stage-1 translation table base, upper range. **ARMv8.1 VHE
    /// only** — "with VHE, EL2 gets a second page table base register,
    /// TTBR1_EL2, making it possible to support split VA space in EL2"
    /// (§VI). Pre-VHE hardware treats accesses to it as UNDEFINED; the
    /// model enforces that in [`crate::ArmCpu`].
    pub ttbr1_el2: u64,
    /// EL2 stage-1 translation control.
    pub tcr_el2: u64,
    /// EL2 system control register.
    pub sctlr_el2: u64,
    /// EL2 memory attribute indirection.
    pub mair_el2: u64,
    /// EL2 vector/FP access control (VHE alias of CPACR).
    pub cpacr_el2: u64,
}

impl El2Regs {
    /// Fills every register with a value derived from `seed`.
    pub fn fill_pattern(seed: u64) -> Self {
        use crate::regs::mix;
        El2Regs {
            hcr_el2: HcrEl2::from_bits(mix(seed, 700)),
            cptr_el2: mix(seed, 701),
            hstr_el2: mix(seed, 702),
            cnthctl_el2: mix(seed, 703),
            esr_el2: mix(seed, 704),
            elr_el2: mix(seed, 705),
            spsr_el2: mix(seed, 706),
            far_el2: mix(seed, 707),
            hpfar_el2: mix(seed, 708),
            tpidr_el2: mix(seed, 709),
            sp_el2: mix(seed, 710),
            vbar_el2: mix(seed, 711),
            vttbr_el2: mix(seed, 712),
            vtcr_el2: mix(seed, 713),
            ttbr0_el2: mix(seed, 714),
            ttbr1_el2: mix(seed, 715),
            tcr_el2: mix(seed, 716),
            sctlr_el2: mix(seed, 717),
            mair_el2: mix(seed, 718),
            cpacr_el2: mix(seed, 719),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hcr_bit_positions_are_architected() {
        assert_eq!(HcrEl2::VM.bits(), 1);
        assert_eq!(HcrEl2::IMO.bits(), 1 << 4);
        assert_eq!(HcrEl2::TGE.bits(), 1 << 27);
        assert_eq!(HcrEl2::E2H.bits(), 1 << 34);
    }

    #[test]
    fn guest_running_enables_stage2_and_irq_routing() {
        let hcr = HcrEl2::guest_running();
        assert!(hcr.stage2_enabled());
        assert!(hcr.contains(HcrEl2::IMO));
        assert!(hcr.contains(HcrEl2::FMO));
        assert!(hcr.contains(HcrEl2::TWI));
        assert!(!hcr.vhe_enabled());
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut hcr = HcrEl2::new();
        hcr.insert(HcrEl2::VM | HcrEl2::E2H);
        assert!(hcr.contains(HcrEl2::VM));
        assert!(hcr.vhe_enabled());
        hcr.remove(HcrEl2::VM);
        assert!(!hcr.stage2_enabled());
        assert!(hcr.vhe_enabled());
    }

    #[test]
    fn contains_requires_all_bits() {
        let hcr = HcrEl2::VM;
        assert!(!hcr.contains(HcrEl2::VM | HcrEl2::IMO));
    }

    #[test]
    fn display_shows_hex() {
        assert_eq!(HcrEl2::VM.to_string(), "HCR_EL2(0x1)");
    }

    #[test]
    fn el2_pattern_differs_by_seed() {
        assert_ne!(El2Regs::fill_pattern(1), El2Regs::fill_pattern(2));
    }
}
