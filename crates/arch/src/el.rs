//! ARMv8 exception levels.
//!
//! The ARM virtualization extensions are "centered around a new CPU
//! privilege level (also known as exception level), EL2, added to the
//! existing user and kernel levels, EL0 and EL1" (§II). Unlike x86's
//! root/non-root split, EL2 is *strictly more privileged* and a *different
//! mode* with its own register bank — that asymmetry is the root of every
//! Type-1 vs Type-2 difference the paper measures.

use core::fmt;

/// An ARMv8-A exception level.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum ExceptionLevel {
    /// EL0 — user mode (applications; VM userspace).
    El0,
    /// EL1 — kernel mode (guest OS kernels; for non-VHE KVM, also the host
    /// kernel and the KVM "highvisor").
    El1,
    /// EL2 — hypervisor mode (Xen; the KVM "lowvisor"; with VHE, the whole
    /// host kernel).
    El2,
}

impl ExceptionLevel {
    /// Returns `true` if `self` is at least as privileged as `other`.
    ///
    /// ```
    /// use hvx_arch::ExceptionLevel::*;
    /// assert!(El2.is_at_least(El1));
    /// assert!(El1.is_at_least(El1));
    /// assert!(!El0.is_at_least(El1));
    /// ```
    pub fn is_at_least(self, other: ExceptionLevel) -> bool {
        self.rank() >= other.rank()
    }

    /// Numeric rank: EL0 = 0, EL1 = 1, EL2 = 2.
    pub fn rank(self) -> u8 {
        match self {
            ExceptionLevel::El0 => 0,
            ExceptionLevel::El1 => 1,
            ExceptionLevel::El2 => 2,
        }
    }
}

impl fmt::Display for ExceptionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExceptionLevel::El0 => "EL0",
            ExceptionLevel::El1 => "EL1",
            ExceptionLevel::El2 => "EL2",
        };
        f.pad(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ExceptionLevel::*;

    #[test]
    fn privilege_ordering() {
        assert!(El2 > El1);
        assert!(El1 > El0);
        assert!(El2.is_at_least(El0));
        assert!(!El1.is_at_least(El2));
        assert_eq!(El0.rank(), 0);
        assert_eq!(El1.rank(), 1);
        assert_eq!(El2.rank(), 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(El0.to_string(), "EL0");
        assert_eq!(El1.to_string(), "EL1");
        assert_eq!(El2.to_string(), "EL2");
    }
}
