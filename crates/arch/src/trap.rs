//! Exception causes and syndrome encoding.
//!
//! When "the hardware traps into EL2 giving control to the hypervisor"
//! (§II), the trap's cause is reported in `ESR_EL2` as an exception class
//! plus instruction-specific syndrome. The hypervisor models dispatch on
//! this value exactly as KVM's and Xen's trap handlers do.

use core::fmt;

/// Why an exception was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TrapCause {
    /// Synchronous exception described by a [`Syndrome`] (HVC, trapped
    /// instruction, stage-2 abort, ...).
    Sync(Syndrome),
    /// Asynchronous physical IRQ. With `HCR_EL2.IMO` set this is taken to
    /// EL2 even while the VM runs — "all physical interrupts are taken to
    /// EL2 when running in a VM" (§II).
    Irq,
    /// Asynchronous physical FIQ.
    Fiq,
}

impl TrapCause {
    /// The hypercall cause used by the Hypercall microbenchmark: `HVC #0`.
    pub const HYPERCALL: TrapCause = TrapCause::Sync(Syndrome::Hvc { imm: 0 });
}

/// Synchronous exception syndrome — the modelled subset of `ESR_ELx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Syndrome {
    /// `HVC` instruction executed (hypercall from EL1).
    Hvc {
        /// The 16-bit immediate of the HVC instruction.
        imm: u16,
    },
    /// `SVC` instruction executed (system call from EL0).
    Svc {
        /// The 16-bit immediate of the SVC instruction.
        imm: u16,
    },
    /// `WFI`/`WFE` trapped because `HCR_EL2.TWI`/`TWE` is set.
    WfiWfe,
    /// Trapped `MRS`/`MSR` system-register access.
    SysRegTrap {
        /// `true` for a write (`MSR`), `false` for a read (`MRS`).
        write: bool,
    },
    /// Stage-2 data abort: the VM touched an IPA with no (or insufficient)
    /// Stage-2 mapping. MMIO emulation (e.g. GIC distributor access) and
    /// demand paging both arrive this way.
    DataAbort {
        /// Faulting intermediate physical address.
        ipa: u64,
        /// `true` if the access was a write.
        write: bool,
    },
    /// Stage-2 instruction abort.
    InstrAbort {
        /// Faulting intermediate physical address.
        ipa: u64,
    },
    /// SIMD/FP access trapped by `CPTR_EL2` (lazy FP switching).
    FpAccess,
}

impl Syndrome {
    /// The architected exception-class (EC) value, ESR bits \[31:26\].
    pub fn exception_class(self) -> u8 {
        match self {
            Syndrome::WfiWfe => 0b000001,
            Syndrome::FpAccess => 0b000111,
            Syndrome::Svc { .. } => 0b010101,
            Syndrome::Hvc { .. } => 0b010110,
            Syndrome::SysRegTrap { .. } => 0b011000,
            Syndrome::InstrAbort { .. } => 0b100000,
            Syndrome::DataAbort { .. } => 0b100100,
        }
    }

    /// Encodes into an `ESR_ELx`-shaped value: EC in bits \[31:26\], IL set,
    /// and a model-defined ISS in the low 25 bits.
    pub fn encode(self) -> u64 {
        let ec = (self.exception_class() as u64) << 26;
        let il = 1 << 25;
        let iss: u64 = match self {
            Syndrome::Hvc { imm } | Syndrome::Svc { imm } => imm as u64,
            Syndrome::SysRegTrap { write } => write as u64,
            Syndrome::DataAbort { write, .. } => (write as u64) << 6,
            _ => 0,
        };
        ec | il | iss
    }

    /// Decodes the exception class from an `ESR_ELx` value.
    pub fn class_of(esr: u64) -> u8 {
        ((esr >> 26) & 0x3f) as u8
    }
}

impl fmt::Display for Syndrome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Syndrome::Hvc { imm } => write!(f, "HVC #{imm}"),
            Syndrome::Svc { imm } => write!(f, "SVC #{imm}"),
            Syndrome::WfiWfe => write!(f, "WFI/WFE trap"),
            Syndrome::SysRegTrap { write: true } => write!(f, "MSR trap"),
            Syndrome::SysRegTrap { write: false } => write!(f, "MRS trap"),
            Syndrome::DataAbort { ipa, write } => {
                write!(
                    f,
                    "stage-2 data abort @{ipa:#x} ({})",
                    if *write { "W" } else { "R" }
                )
            }
            Syndrome::InstrAbort { ipa } => write!(f, "stage-2 instr abort @{ipa:#x}"),
            Syndrome::FpAccess => write!(f, "FP/SIMD access trap"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exception_classes_are_architected() {
        assert_eq!(Syndrome::Hvc { imm: 0 }.exception_class(), 0x16);
        assert_eq!(Syndrome::Svc { imm: 0 }.exception_class(), 0x15);
        assert_eq!(
            Syndrome::DataAbort {
                ipa: 0,
                write: false
            }
            .exception_class(),
            0x24
        );
        assert_eq!(Syndrome::WfiWfe.exception_class(), 0x01);
        assert_eq!(Syndrome::SysRegTrap { write: true }.exception_class(), 0x18);
        assert_eq!(Syndrome::InstrAbort { ipa: 0 }.exception_class(), 0x20);
        assert_eq!(Syndrome::FpAccess.exception_class(), 0x07);
    }

    #[test]
    fn encode_decode_class_round_trip() {
        for s in [
            Syndrome::Hvc { imm: 42 },
            Syndrome::WfiWfe,
            Syndrome::DataAbort {
                ipa: 0x800_0000,
                write: true,
            },
        ] {
            let esr = s.encode();
            assert_eq!(Syndrome::class_of(esr), s.exception_class());
            assert_ne!(esr & (1 << 25), 0, "IL bit must be set");
        }
    }

    #[test]
    fn hvc_immediate_lands_in_iss() {
        let esr = Syndrome::Hvc { imm: 0xBEEF }.encode();
        assert_eq!(esr & 0xFFFF, 0xBEEF);
    }

    #[test]
    fn hypercall_constant_is_hvc_zero() {
        assert_eq!(
            TrapCause::HYPERCALL,
            TrapCause::Sync(Syndrome::Hvc { imm: 0 })
        );
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Syndrome::Hvc { imm: 3 }.to_string(), "HVC #3");
        assert!(Syndrome::DataAbort {
            ipa: 0x1000,
            write: true
        }
        .to_string()
        .contains("0x1000"));
    }
}
