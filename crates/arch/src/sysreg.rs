//! System-register encodings and VHE redirection.
//!
//! This module models the ARMv8.1 VHE access-redirection rules of §VI
//! mechanically: a [`SysReg`] is the *encoding* an instruction names
//! (`mrs x1, ttbr1_el1`), and [`resolve`] maps it to the *physical*
//! register storage ([`PhysReg`]) it reaches given the current exception
//! level and the `HCR_EL2.E2H` bit:
//!
//! * E2H clear (classic ARMv8): EL1 encodings reach EL1 registers
//!   everywhere; EL2 encodings are only legal at EL2.
//! * E2H set, executing at EL2: EL1 encodings are **transparently
//!   rewritten** to the corresponding EL2 registers ("the software still
//!   executes the same instruction, but the hardware actually accesses the
//!   TTBR1_EL2 register"), and the new `*_EL12` encodings reach the guest's
//!   EL1 registers.
//! * `TTBR1_EL2` physically exists only on ARMv8.1 (VHE-capable) parts.

use crate::ExceptionLevel;
use core::fmt;

/// A system-register *encoding* as named by an `MRS`/`MSR` instruction.
///
/// The modelled subset covers the registers the paper's analysis turns on:
/// the twelve EL1/EL2 redirectable pairs plus the EL2-only virtualization
/// controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)] // variants are architected register names
pub enum SysReg {
    // --- EL1-encoded registers (redirected to EL2 under E2H at EL2) ---
    SctlrEl1,
    Ttbr0El1,
    Ttbr1El1,
    TcrEl1,
    MairEl1,
    VbarEl1,
    CpacrEl1,
    EsrEl1,
    FarEl1,
    ElrEl1,
    SpsrEl1,
    CntkctlEl1,
    // --- `_EL12` aliases (ARMv8.1): guest EL1 state, from E2H EL2 ---
    SctlrEl12,
    Ttbr0El12,
    Ttbr1El12,
    TcrEl12,
    MairEl12,
    VbarEl12,
    CpacrEl12,
    EsrEl12,
    FarEl12,
    ElrEl12,
    SpsrEl12,
    CntkctlEl12,
    // --- EL2-encoded registers ---
    HcrEl2,
    VttbrEl2,
    VtcrEl2,
    SctlrEl2,
    Ttbr0El2,
    Ttbr1El2,
    TcrEl2,
    MairEl2,
    VbarEl2,
    CptrEl2,
    EsrEl2,
    ElrEl2,
    SpsrEl2,
    FarEl2,
    TpidrEl2,
    CnthctlEl2,
}

/// Physical register storage reached by an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum PhysReg {
    SctlrEl1,
    Ttbr0El1,
    Ttbr1El1,
    TcrEl1,
    MairEl1,
    VbarEl1,
    CpacrEl1,
    EsrEl1,
    FarEl1,
    ElrEl1,
    SpsrEl1,
    CntkctlEl1,
    HcrEl2,
    VttbrEl2,
    VtcrEl2,
    SctlrEl2,
    Ttbr0El2,
    Ttbr1El2,
    TcrEl2,
    MairEl2,
    VbarEl2,
    CptrEl2,
    EsrEl2,
    ElrEl2,
    SpsrEl2,
    FarEl2,
    TpidrEl2,
    CnthctlEl2,
}

/// Why a system-register access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SysRegError {
    /// The encoding is UNDEFINED at the executing exception level (e.g. an
    /// `*_EL2` access from EL1, or any system register from EL0).
    UndefinedAtEl {
        /// The encoding that faulted.
        reg: SysReg,
        /// The level the access executed at.
        el: ExceptionLevel,
    },
    /// An `*_EL12` encoding was used without `HCR_EL2.E2H` set.
    RequiresE2h {
        /// The encoding that faulted.
        reg: SysReg,
    },
    /// The register does not exist on this silicon revision
    /// (`TTBR1_EL2` on pre-VHE ARMv8.0).
    NotImplemented {
        /// The encoding that faulted.
        reg: SysReg,
    },
}

impl fmt::Display for SysRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysRegError::UndefinedAtEl { reg, el } => {
                write!(f, "access to {reg:?} is UNDEFINED at {el}")
            }
            SysRegError::RequiresE2h { reg } => {
                write!(f, "access to {reg:?} requires HCR_EL2.E2H")
            }
            SysRegError::NotImplemented { reg } => {
                write!(
                    f,
                    "{reg:?} is not implemented on this architecture revision"
                )
            }
        }
    }
}

impl std::error::Error for SysRegError {}

impl SysReg {
    /// For an EL1-encoded register, the EL1 physical storage.
    fn el1_phys(self) -> Option<PhysReg> {
        Some(match self {
            SysReg::SctlrEl1 | SysReg::SctlrEl12 => PhysReg::SctlrEl1,
            SysReg::Ttbr0El1 | SysReg::Ttbr0El12 => PhysReg::Ttbr0El1,
            SysReg::Ttbr1El1 | SysReg::Ttbr1El12 => PhysReg::Ttbr1El1,
            SysReg::TcrEl1 | SysReg::TcrEl12 => PhysReg::TcrEl1,
            SysReg::MairEl1 | SysReg::MairEl12 => PhysReg::MairEl1,
            SysReg::VbarEl1 | SysReg::VbarEl12 => PhysReg::VbarEl1,
            SysReg::CpacrEl1 | SysReg::CpacrEl12 => PhysReg::CpacrEl1,
            SysReg::EsrEl1 | SysReg::EsrEl12 => PhysReg::EsrEl1,
            SysReg::FarEl1 | SysReg::FarEl12 => PhysReg::FarEl1,
            SysReg::ElrEl1 | SysReg::ElrEl12 => PhysReg::ElrEl1,
            SysReg::SpsrEl1 | SysReg::SpsrEl12 => PhysReg::SpsrEl1,
            SysReg::CntkctlEl1 | SysReg::CntkctlEl12 => PhysReg::CntkctlEl1,
            _ => return None,
        })
    }

    /// For an EL1-encoded register, the EL2 register it redirects to under
    /// E2H (the architected pairing of §VI).
    fn e2h_redirect(self) -> Option<PhysReg> {
        Some(match self {
            SysReg::SctlrEl1 => PhysReg::SctlrEl2,
            SysReg::Ttbr0El1 => PhysReg::Ttbr0El2,
            SysReg::Ttbr1El1 => PhysReg::Ttbr1El2,
            SysReg::TcrEl1 => PhysReg::TcrEl2,
            SysReg::MairEl1 => PhysReg::MairEl2,
            SysReg::VbarEl1 => PhysReg::VbarEl2,
            SysReg::CpacrEl1 => PhysReg::CptrEl2,
            SysReg::EsrEl1 => PhysReg::EsrEl2,
            SysReg::FarEl1 => PhysReg::FarEl2,
            SysReg::ElrEl1 => PhysReg::ElrEl2,
            SysReg::SpsrEl1 => PhysReg::SpsrEl2,
            SysReg::CntkctlEl1 => PhysReg::CnthctlEl2,
            _ => return None,
        })
    }

    /// `true` for the plain `*_EL1` encodings.
    pub fn is_el1_encoded(self) -> bool {
        self.e2h_redirect().is_some()
    }

    /// `true` for the ARMv8.1 `*_EL12` alias encodings.
    pub fn is_el12(self) -> bool {
        !self.is_el1_encoded() && self.el1_phys().is_some()
    }

    /// For an EL2-encoded register, the physical EL2 storage.
    fn el2_phys(self) -> Option<PhysReg> {
        Some(match self {
            SysReg::HcrEl2 => PhysReg::HcrEl2,
            SysReg::VttbrEl2 => PhysReg::VttbrEl2,
            SysReg::VtcrEl2 => PhysReg::VtcrEl2,
            SysReg::SctlrEl2 => PhysReg::SctlrEl2,
            SysReg::Ttbr0El2 => PhysReg::Ttbr0El2,
            SysReg::Ttbr1El2 => PhysReg::Ttbr1El2,
            SysReg::TcrEl2 => PhysReg::TcrEl2,
            SysReg::MairEl2 => PhysReg::MairEl2,
            SysReg::VbarEl2 => PhysReg::VbarEl2,
            SysReg::CptrEl2 => PhysReg::CptrEl2,
            SysReg::EsrEl2 => PhysReg::EsrEl2,
            SysReg::ElrEl2 => PhysReg::ElrEl2,
            SysReg::SpsrEl2 => PhysReg::SpsrEl2,
            SysReg::FarEl2 => PhysReg::FarEl2,
            SysReg::TpidrEl2 => PhysReg::TpidrEl2,
            SysReg::CnthctlEl2 => PhysReg::CnthctlEl2,
            _ => return None,
        })
    }

    /// `true` for `*_EL2` encodings.
    pub fn is_el2_encoded(self) -> bool {
        self.el2_phys().is_some()
    }
}

/// Resolves an encoding to physical storage under the given execution
/// state.
///
/// # Errors
///
/// Returns [`SysRegError`] when the access would be UNDEFINED on real
/// hardware: system-register access from EL0, `*_EL2` access below EL2,
/// `*_EL12` without E2H (or below EL2), or `TTBR1_EL2` on a non-VHE part.
///
/// # Examples
///
/// The §VI example — at E2H EL2, `mrs x1, ttbr1_el1` reaches `TTBR1_EL2`:
///
/// ```
/// use hvx_arch::{resolve, ExceptionLevel, PhysReg, SysReg};
/// let phys = resolve(SysReg::Ttbr1El1, ExceptionLevel::El2, true, true).unwrap();
/// assert_eq!(phys, PhysReg::Ttbr1El2);
/// ```
pub fn resolve(
    reg: SysReg,
    el: ExceptionLevel,
    e2h: bool,
    vhe_capable: bool,
) -> Result<PhysReg, SysRegError> {
    if el == ExceptionLevel::El0 {
        return Err(SysRegError::UndefinedAtEl { reg, el });
    }
    let phys = if let Some(el2_phys) = reg.el2_phys() {
        // *_EL2 encodings: EL2 only.
        if el != ExceptionLevel::El2 {
            return Err(SysRegError::UndefinedAtEl { reg, el });
        }
        el2_phys
    } else if reg.is_el12() {
        // *_EL12 aliases: EL2 only, E2H only, v8.1 only.
        if !vhe_capable {
            return Err(SysRegError::NotImplemented { reg });
        }
        if el != ExceptionLevel::El2 {
            return Err(SysRegError::UndefinedAtEl { reg, el });
        }
        if !e2h {
            return Err(SysRegError::RequiresE2h { reg });
        }
        reg.el1_phys().expect("EL12 register has EL1 storage")
    } else {
        // Plain *_EL1 encodings.
        if el == ExceptionLevel::El2 && e2h {
            reg.e2h_redirect().expect("EL1 register has redirect")
        } else {
            reg.el1_phys().expect("EL1 register has EL1 storage")
        }
    };
    if phys == PhysReg::Ttbr1El2 && !vhe_capable {
        return Err(SysRegError::NotImplemented { reg });
    }
    Ok(phys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ExceptionLevel::*;

    #[test]
    fn el1_encodings_reach_el1_without_e2h() {
        for el in [El1, El2] {
            assert_eq!(
                resolve(SysReg::Ttbr1El1, el, false, true).unwrap(),
                PhysReg::Ttbr1El1
            );
        }
    }

    #[test]
    fn e2h_redirects_all_twelve_pairs_at_el2() {
        let pairs = [
            (SysReg::SctlrEl1, PhysReg::SctlrEl2),
            (SysReg::Ttbr0El1, PhysReg::Ttbr0El2),
            (SysReg::Ttbr1El1, PhysReg::Ttbr1El2),
            (SysReg::TcrEl1, PhysReg::TcrEl2),
            (SysReg::MairEl1, PhysReg::MairEl2),
            (SysReg::VbarEl1, PhysReg::VbarEl2),
            (SysReg::CpacrEl1, PhysReg::CptrEl2),
            (SysReg::EsrEl1, PhysReg::EsrEl2),
            (SysReg::FarEl1, PhysReg::FarEl2),
            (SysReg::ElrEl1, PhysReg::ElrEl2),
            (SysReg::SpsrEl1, PhysReg::SpsrEl2),
            (SysReg::CntkctlEl1, PhysReg::CnthctlEl2),
        ];
        for (enc, phys) in pairs {
            assert_eq!(resolve(enc, El2, true, true).unwrap(), phys);
        }
    }

    #[test]
    fn e2h_redirection_does_not_apply_at_el1() {
        // A guest at EL1 with a VHE host still reaches its own EL1 regs.
        assert_eq!(
            resolve(SysReg::Ttbr1El1, El1, true, true).unwrap(),
            PhysReg::Ttbr1El1
        );
    }

    #[test]
    fn el12_aliases_reach_guest_el1_state() {
        assert_eq!(
            resolve(SysReg::Ttbr1El12, El2, true, true).unwrap(),
            PhysReg::Ttbr1El1
        );
        assert_eq!(
            resolve(SysReg::SpsrEl12, El2, true, true).unwrap(),
            PhysReg::SpsrEl1
        );
    }

    #[test]
    fn el12_requires_e2h_el2_and_vhe() {
        assert_eq!(
            resolve(SysReg::Ttbr1El12, El2, false, true),
            Err(SysRegError::RequiresE2h {
                reg: SysReg::Ttbr1El12
            })
        );
        assert_eq!(
            resolve(SysReg::Ttbr1El12, El1, true, true),
            Err(SysRegError::UndefinedAtEl {
                reg: SysReg::Ttbr1El12,
                el: El1
            })
        );
        assert_eq!(
            resolve(SysReg::Ttbr1El12, El2, true, false),
            Err(SysRegError::NotImplemented {
                reg: SysReg::Ttbr1El12
            })
        );
    }

    #[test]
    fn el2_encodings_undefined_below_el2() {
        assert_eq!(
            resolve(SysReg::HcrEl2, El1, false, true),
            Err(SysRegError::UndefinedAtEl {
                reg: SysReg::HcrEl2,
                el: El1
            })
        );
        assert_eq!(
            resolve(SysReg::VttbrEl2, El2, false, false).unwrap(),
            PhysReg::VttbrEl2
        );
    }

    #[test]
    fn ttbr1_el2_does_not_exist_pre_vhe() {
        // "without VHE, EL2 only has one page table base register,
        // TTBR0_EL2" (§VI).
        assert_eq!(
            resolve(SysReg::Ttbr1El2, El2, false, false),
            Err(SysRegError::NotImplemented {
                reg: SysReg::Ttbr1El2
            })
        );
        assert!(resolve(SysReg::Ttbr0El2, El2, false, false).is_ok());
        assert!(resolve(SysReg::Ttbr1El2, El2, false, true).is_ok());
    }

    #[test]
    fn everything_undefined_at_el0() {
        for reg in [SysReg::SctlrEl1, SysReg::HcrEl2, SysReg::Ttbr1El12] {
            assert!(matches!(
                resolve(reg, El0, true, true),
                Err(SysRegError::UndefinedAtEl { el: El0, .. })
            ));
        }
    }

    #[test]
    fn classification_predicates() {
        assert!(SysReg::Ttbr1El1.is_el1_encoded());
        assert!(!SysReg::Ttbr1El1.is_el12());
        assert!(SysReg::Ttbr1El12.is_el12());
        assert!(!SysReg::Ttbr1El12.is_el2_encoded());
        assert!(SysReg::HcrEl2.is_el2_encoded());
        assert!(!SysReg::HcrEl2.is_el1_encoded());
    }

    #[test]
    fn error_display() {
        let e = SysRegError::RequiresE2h {
            reg: SysReg::Ttbr1El12,
        };
        assert!(e.to_string().contains("E2H"));
    }
}
