//! The ARMv8 CPU model: exception entry/return and system-register access.
//!
//! [`ArmCpu`] is a *functional* model — it owns the register files of
//! [`crate::regs`]/[`crate::el2`] and implements the transition semantics
//! the paper's analysis is built on (trap to EL2, ERET, exception routing,
//! VHE redirection). It deliberately charges no cycles: timing lives in
//! `hvx-core`'s cost model, so that correctness of the mechanism and
//! calibration of its cost are independently testable.

use crate::{
    resolve, El1SysRegs, El2Regs, ExceptionLevel, FpRegs, GpRegs, HcrEl2, PhysReg, Syndrome,
    SysReg, SysRegError, TimerRegs, TrapCause,
};
use core::fmt;

/// Architecture revision of the modelled part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ArchVersion {
    /// ARMv8.0 — the paper's Applied Micro Atlas class hardware.
    V8_0,
    /// ARMv8.1 — adds the Virtualization Host Extensions (§VI).
    V8_1,
}

impl ArchVersion {
    /// Returns `true` if this revision implements VHE.
    pub fn has_vhe(self) -> bool {
        matches!(self, ArchVersion::V8_1)
    }
}

/// Error returned by [`ArmCpu::eret`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EretError {
    /// ERET executed at EL0, which has no exception-return state.
    EretFromEl0,
    /// The SPSR names a target at or above the current level — an illegal
    /// exception return.
    IllegalReturn {
        /// Level the ERET executed at.
        from: ExceptionLevel,
        /// Level the SPSR named.
        to: ExceptionLevel,
    },
}

impl fmt::Display for EretError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EretError::EretFromEl0 => write!(f, "ERET executed at EL0"),
            EretError::IllegalReturn { from, to } => {
                write!(f, "illegal exception return from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for EretError {}

/// Error returned by [`ArmCpu::enable_vhe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VheError {
    /// The part is ARMv8.0 and has no E2H bit.
    NotSupported,
    /// E2H may only be programmed from EL2.
    NotAtEl2,
}

impl fmt::Display for VheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VheError::NotSupported => write!(f, "VHE requires ARMv8.1"),
            VheError::NotAtEl2 => write!(f, "E2H can only be set from EL2"),
        }
    }
}

impl std::error::Error for VheError {}

/// PSTATE.I — the IRQ mask bit.
pub const PSTATE_I: u64 = 1 << 7;

/// PSTATE `M[3:0]` mode encoding for an exception level (handler-SP forms).
fn mode_bits(el: ExceptionLevel) -> u64 {
    match el {
        ExceptionLevel::El0 => 0b0000, // EL0t
        ExceptionLevel::El1 => 0b0101, // EL1h
        ExceptionLevel::El2 => 0b1001, // EL2h
    }
}

/// Decodes the target EL from SPSR `M[3:0]`.
fn el_of_mode(m: u64) -> ExceptionLevel {
    match m & 0b1100 {
        0b0000 => ExceptionLevel::El0,
        0b0100 => ExceptionLevel::El1,
        _ => ExceptionLevel::El2,
    }
}

/// Vector-table offset for a synchronous exception from a lower EL.
pub const VECTOR_LOWER_SYNC: u64 = 0x400;
/// Vector-table offset for an IRQ from a lower EL.
pub const VECTOR_LOWER_IRQ: u64 = 0x480;
/// Vector-table offset for a synchronous exception from the current EL.
pub const VECTOR_CURRENT_SYNC: u64 = 0x200;
/// Vector-table offset for an IRQ from the current EL.
pub const VECTOR_CURRENT_IRQ: u64 = 0x280;

/// A functional ARMv8-A CPU with virtualization extensions.
///
/// # Examples
///
/// A hypercall round trip:
///
/// ```
/// use hvx_arch::{ArchVersion, ArmCpu, ExceptionLevel, TrapCause};
///
/// let mut cpu = ArmCpu::new(ArchVersion::V8_0);
/// cpu.start_at(ExceptionLevel::El1); // guest kernel running
/// let taken_to = cpu.take_exception(TrapCause::HYPERCALL);
/// assert_eq!(taken_to, ExceptionLevel::El2);
/// assert_eq!(cpu.current_el(), ExceptionLevel::El2);
/// let back = cpu.eret().unwrap();
/// assert_eq!(back, ExceptionLevel::El1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmCpu {
    /// General-purpose registers.
    pub gp: GpRegs,
    /// SIMD/FP registers.
    pub fp: FpRegs,
    /// EL1 system registers.
    pub el1: El1SysRegs,
    /// EL2 system and control registers.
    pub el2: El2Regs,
    /// Virtual timer registers.
    pub timer: TimerRegs,
    current_el: ExceptionLevel,
    version: ArchVersion,
}

impl ArmCpu {
    /// Creates a CPU booted at EL2 (where ARMv8 server firmware hands off)
    /// with all registers zeroed and virtualization features disabled.
    pub fn new(version: ArchVersion) -> Self {
        let mut cpu = ArmCpu {
            gp: GpRegs::default(),
            fp: FpRegs::default(),
            el1: El1SysRegs::default(),
            el2: El2Regs::default(),
            timer: TimerRegs::default(),
            current_el: ExceptionLevel::El2,
            version,
        };
        cpu.gp.pstate = mode_bits(ExceptionLevel::El2);
        cpu
    }

    /// The architecture revision.
    pub fn version(&self) -> ArchVersion {
        self.version
    }

    /// The exception level currently executing.
    pub fn current_el(&self) -> ExceptionLevel {
        self.current_el
    }

    /// Returns `true` if `HCR_EL2.E2H` is set.
    pub fn e2h(&self) -> bool {
        self.el2.hcr_el2.vhe_enabled()
    }

    /// Returns `true` if PSTATE.I masks IRQs at the current level.
    pub fn irqs_masked(&self) -> bool {
        self.gp.pstate & PSTATE_I != 0
    }

    /// Sets PSTATE.I (the guest/host kernel masking interrupts).
    pub fn mask_irqs(&mut self) {
        self.gp.pstate |= PSTATE_I;
    }

    /// Clears PSTATE.I.
    pub fn unmask_irqs(&mut self) {
        self.gp.pstate &= !PSTATE_I;
    }

    /// Whether a physical IRQ would be taken right now: an IRQ routed to
    /// a *higher* exception level is taken regardless of PSTATE.I (this
    /// is how the hypervisor stays in control of "all physical
    /// interrupts ... when running in a VM", §II, even when the guest
    /// masks); an IRQ handled at the current level honours the mask.
    pub fn should_take_irq(&self) -> bool {
        let target = self.route_exception(TrapCause::Irq);
        target > self.current_el || !self.irqs_masked()
    }

    /// Places execution at `el`, modelling boot-time hand-off (firmware
    /// dropping into a kernel, or a hypervisor model installing a guest
    /// context). PSTATE mode bits are kept consistent.
    pub fn start_at(&mut self, el: ExceptionLevel) {
        self.current_el = el;
        self.gp.pstate = (self.gp.pstate & !0xF) | mode_bits(el);
    }

    /// Sets `HCR_EL2.E2H`, turning the part into a VHE host (§VI).
    ///
    /// # Errors
    ///
    /// [`VheError::NotSupported`] on ARMv8.0; [`VheError::NotAtEl2`] if not
    /// executing at EL2.
    pub fn enable_vhe(&mut self) -> Result<(), VheError> {
        if !self.version.has_vhe() {
            return Err(VheError::NotSupported);
        }
        if self.current_el != ExceptionLevel::El2 {
            return Err(VheError::NotAtEl2);
        }
        self.el2.hcr_el2.insert(HcrEl2::E2H);
        Ok(())
    }

    /// Computes where an exception raised at the current level routes,
    /// without taking it.
    ///
    /// Routing rules modelled (ARM ARM D1.13, restricted to the cases the
    /// paper exercises):
    ///
    /// * `HVC` always targets EL2.
    /// * Stage-2 aborts, trapped `WFI`, trapped sysreg and FP accesses
    ///   target EL2.
    /// * Physical IRQ/FIQ target EL2 iff `HCR_EL2.IMO`/`FMO` is set and
    ///   execution is below EL2 (or at EL2 already — then handled there);
    ///   otherwise EL1.
    /// * `SVC` from EL0 targets EL1, or EL2 when `E2H && TGE` (the VHE
    ///   host-syscall fast path of §VI).
    pub fn route_exception(&self, cause: TrapCause) -> ExceptionLevel {
        let hcr = self.el2.hcr_el2;
        match cause {
            TrapCause::Sync(Syndrome::Hvc { .. }) => ExceptionLevel::El2,
            TrapCause::Sync(Syndrome::Svc { .. }) => {
                if hcr.vhe_enabled() && hcr.contains(HcrEl2::TGE) {
                    ExceptionLevel::El2
                } else {
                    ExceptionLevel::El1
                }
            }
            TrapCause::Sync(_) => ExceptionLevel::El2,
            TrapCause::Irq => {
                if hcr.contains(HcrEl2::IMO) || self.current_el == ExceptionLevel::El2 {
                    ExceptionLevel::El2
                } else {
                    ExceptionLevel::El1
                }
            }
            TrapCause::Fiq => {
                if hcr.contains(HcrEl2::FMO) || self.current_el == ExceptionLevel::El2 {
                    ExceptionLevel::El2
                } else {
                    ExceptionLevel::El1
                }
            }
        }
    }

    /// Takes an exception: saves return state into the target level's
    /// `ELR`/`SPSR`/`ESR`/`FAR`, switches to the target level, and vectors
    /// the PC. Returns the level the exception was taken to.
    ///
    /// # Panics
    ///
    /// Panics if the exception would route to a level below the current
    /// one (architecturally impossible).
    pub fn take_exception(&mut self, cause: TrapCause) -> ExceptionLevel {
        let target = self.route_exception(cause);
        assert!(
            target.is_at_least(self.current_el),
            "exception cannot route downward ({} -> {})",
            self.current_el,
            target
        );
        let ret_pc = self.gp.pc;
        let ret_pstate = self.gp.pstate;
        let (esr, far) = match cause {
            TrapCause::Sync(s) => {
                let far = match s {
                    Syndrome::DataAbort { ipa, .. } | Syndrome::InstrAbort { ipa } => ipa,
                    _ => 0,
                };
                (s.encode(), far)
            }
            TrapCause::Irq | TrapCause::Fiq => (0, 0),
        };
        let from_lower = target > self.current_el;
        let sync = matches!(cause, TrapCause::Sync(_));
        let offset = match (from_lower, sync) {
            (true, true) => VECTOR_LOWER_SYNC,
            (true, false) => VECTOR_LOWER_IRQ,
            (false, true) => VECTOR_CURRENT_SYNC,
            (false, false) => VECTOR_CURRENT_IRQ,
        };
        match target {
            ExceptionLevel::El2 => {
                self.el2.elr_el2 = ret_pc;
                self.el2.spsr_el2 = ret_pstate;
                if sync {
                    self.el2.esr_el2 = esr;
                    self.el2.far_el2 = far;
                    if let TrapCause::Sync(Syndrome::DataAbort { ipa, .. }) = cause {
                        self.el2.hpfar_el2 = ipa >> 8; // architected: IPA[47:12] in HPFAR[39:4]
                    }
                }
                self.gp.pc = self.el2.vbar_el2.wrapping_add(offset);
            }
            ExceptionLevel::El1 => {
                self.el1.elr_el1 = ret_pc;
                self.el1.spsr_el1 = ret_pstate;
                if sync {
                    self.el1.esr_el1 = esr;
                    self.el1.far_el1 = far;
                }
                self.gp.pc = self.el1.vbar_el1.wrapping_add(offset);
            }
            ExceptionLevel::El0 => unreachable!("exceptions never target EL0"),
        }
        self.current_el = target;
        // Hardware masks IRQs and switches the mode bits on entry; the
        // pre-exception PSTATE (with its own I bit) sits in the SPSR.
        self.gp.pstate = (self.gp.pstate & !0xF) | mode_bits(target) | PSTATE_I;
        target
    }

    /// Executes `ERET`: restores PC and PSTATE from the current level's
    /// `ELR`/`SPSR` and drops to the level the SPSR names.
    ///
    /// # Errors
    ///
    /// [`EretError`] if executed at EL0 or if the SPSR names a level at or
    /// above the current one.
    pub fn eret(&mut self) -> Result<ExceptionLevel, EretError> {
        let (elr, spsr) = match self.current_el {
            ExceptionLevel::El2 => (self.el2.elr_el2, self.el2.spsr_el2),
            ExceptionLevel::El1 => (self.el1.elr_el1, self.el1.spsr_el1),
            ExceptionLevel::El0 => return Err(EretError::EretFromEl0),
        };
        let target = el_of_mode(spsr & 0xF);
        if target >= self.current_el {
            return Err(EretError::IllegalReturn {
                from: self.current_el,
                to: target,
            });
        }
        self.gp.pc = elr;
        self.gp.pstate = spsr;
        self.current_el = target;
        Ok(target)
    }

    /// Reads a system register by encoding, applying VHE redirection.
    ///
    /// # Errors
    ///
    /// See [`resolve`] for the UNDEFINED cases.
    pub fn read_sysreg(&self, reg: SysReg) -> Result<u64, SysRegError> {
        let phys = resolve(reg, self.current_el, self.e2h(), self.version.has_vhe())?;
        Ok(self.phys_read(phys))
    }

    /// Writes a system register by encoding, applying VHE redirection.
    ///
    /// # Errors
    ///
    /// See [`resolve`] for the UNDEFINED cases.
    pub fn write_sysreg(&mut self, reg: SysReg, value: u64) -> Result<(), SysRegError> {
        let phys = resolve(reg, self.current_el, self.e2h(), self.version.has_vhe())?;
        self.phys_write(phys, value);
        Ok(())
    }

    fn phys_read(&self, phys: PhysReg) -> u64 {
        match phys {
            PhysReg::SctlrEl1 => self.el1.sctlr_el1,
            PhysReg::Ttbr0El1 => self.el1.ttbr0_el1,
            PhysReg::Ttbr1El1 => self.el1.ttbr1_el1,
            PhysReg::TcrEl1 => self.el1.tcr_el1,
            PhysReg::MairEl1 => self.el1.mair_el1,
            PhysReg::VbarEl1 => self.el1.vbar_el1,
            PhysReg::CpacrEl1 => self.el1.cpacr_el1,
            PhysReg::EsrEl1 => self.el1.esr_el1,
            PhysReg::FarEl1 => self.el1.far_el1,
            PhysReg::ElrEl1 => self.el1.elr_el1,
            PhysReg::SpsrEl1 => self.el1.spsr_el1,
            PhysReg::CntkctlEl1 => self.el1.cntkctl_el1,
            PhysReg::HcrEl2 => self.el2.hcr_el2.bits(),
            PhysReg::VttbrEl2 => self.el2.vttbr_el2,
            PhysReg::VtcrEl2 => self.el2.vtcr_el2,
            PhysReg::SctlrEl2 => self.el2.sctlr_el2,
            PhysReg::Ttbr0El2 => self.el2.ttbr0_el2,
            PhysReg::Ttbr1El2 => self.el2.ttbr1_el2,
            PhysReg::TcrEl2 => self.el2.tcr_el2,
            PhysReg::MairEl2 => self.el2.mair_el2,
            PhysReg::VbarEl2 => self.el2.vbar_el2,
            PhysReg::CptrEl2 => self.el2.cpacr_el2,
            PhysReg::EsrEl2 => self.el2.esr_el2,
            PhysReg::ElrEl2 => self.el2.elr_el2,
            PhysReg::SpsrEl2 => self.el2.spsr_el2,
            PhysReg::FarEl2 => self.el2.far_el2,
            PhysReg::TpidrEl2 => self.el2.tpidr_el2,
            PhysReg::CnthctlEl2 => self.el2.cnthctl_el2,
        }
    }

    fn phys_write(&mut self, phys: PhysReg, v: u64) {
        match phys {
            PhysReg::SctlrEl1 => self.el1.sctlr_el1 = v,
            PhysReg::Ttbr0El1 => self.el1.ttbr0_el1 = v,
            PhysReg::Ttbr1El1 => self.el1.ttbr1_el1 = v,
            PhysReg::TcrEl1 => self.el1.tcr_el1 = v,
            PhysReg::MairEl1 => self.el1.mair_el1 = v,
            PhysReg::VbarEl1 => self.el1.vbar_el1 = v,
            PhysReg::CpacrEl1 => self.el1.cpacr_el1 = v,
            PhysReg::EsrEl1 => self.el1.esr_el1 = v,
            PhysReg::FarEl1 => self.el1.far_el1 = v,
            PhysReg::ElrEl1 => self.el1.elr_el1 = v,
            PhysReg::SpsrEl1 => self.el1.spsr_el1 = v,
            PhysReg::CntkctlEl1 => self.el1.cntkctl_el1 = v,
            PhysReg::HcrEl2 => self.el2.hcr_el2 = HcrEl2::from_bits(v),
            PhysReg::VttbrEl2 => self.el2.vttbr_el2 = v,
            PhysReg::VtcrEl2 => self.el2.vtcr_el2 = v,
            PhysReg::SctlrEl2 => self.el2.sctlr_el2 = v,
            PhysReg::Ttbr0El2 => self.el2.ttbr0_el2 = v,
            PhysReg::Ttbr1El2 => self.el2.ttbr1_el2 = v,
            PhysReg::TcrEl2 => self.el2.tcr_el2 = v,
            PhysReg::MairEl2 => self.el2.mair_el2 = v,
            PhysReg::VbarEl2 => self.el2.vbar_el2 = v,
            PhysReg::CptrEl2 => self.el2.cpacr_el2 = v,
            PhysReg::EsrEl2 => self.el2.esr_el2 = v,
            PhysReg::ElrEl2 => self.el2.elr_el2 = v,
            PhysReg::SpsrEl2 => self.el2.spsr_el2 = v,
            PhysReg::FarEl2 => self.el2.far_el2 = v,
            PhysReg::TpidrEl2 => self.el2.tpidr_el2 = v,
            PhysReg::CnthctlEl2 => self.el2.cnthctl_el2 = v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ExceptionLevel::*;

    fn guest_cpu() -> ArmCpu {
        let mut cpu = ArmCpu::new(ArchVersion::V8_0);
        cpu.el2.hcr_el2 = HcrEl2::guest_running();
        cpu.el2.vbar_el2 = 0x8000_0000;
        cpu.el1.vbar_el1 = 0x4000_0000;
        cpu.start_at(El1);
        cpu
    }

    #[test]
    fn boots_at_el2() {
        let cpu = ArmCpu::new(ArchVersion::V8_0);
        assert_eq!(cpu.current_el(), El2);
        assert!(!cpu.e2h());
    }

    #[test]
    fn hypercall_traps_to_el2_and_saves_return_state() {
        let mut cpu = guest_cpu();
        cpu.gp.pc = 0x1234;
        let target = cpu.take_exception(TrapCause::HYPERCALL);
        assert_eq!(target, El2);
        assert_eq!(cpu.el2.elr_el2, 0x1234);
        assert_eq!(Syndrome::class_of(cpu.el2.esr_el2), 0x16);
        assert_eq!(cpu.gp.pc, 0x8000_0000 + VECTOR_LOWER_SYNC);
        // SPSR remembers the interrupted mode (EL1h).
        assert_eq!(cpu.el2.spsr_el2 & 0xF, 0b0101);
    }

    #[test]
    fn eret_returns_to_interrupted_context() {
        let mut cpu = guest_cpu();
        cpu.gp.pc = 0xCAFE;
        cpu.take_exception(TrapCause::HYPERCALL);
        let back = cpu.eret().unwrap();
        assert_eq!(back, El1);
        assert_eq!(cpu.current_el(), El1);
        assert_eq!(cpu.gp.pc, 0xCAFE);
    }

    #[test]
    fn irq_routes_to_el2_when_imo_set() {
        let mut cpu = guest_cpu();
        assert_eq!(cpu.route_exception(TrapCause::Irq), El2);
        let t = cpu.take_exception(TrapCause::Irq);
        assert_eq!(t, El2);
        assert_eq!(cpu.gp.pc, 0x8000_0000 + VECTOR_LOWER_IRQ);
    }

    #[test]
    fn irq_routes_to_el1_when_virtualization_disabled() {
        let mut cpu = guest_cpu();
        cpu.el2.hcr_el2 = HcrEl2::new(); // host running, traps disabled
        assert_eq!(cpu.route_exception(TrapCause::Irq), El1);
        cpu.take_exception(TrapCause::Irq);
        assert_eq!(cpu.current_el(), El1);
        assert_eq!(cpu.gp.pc, 0x4000_0000 + VECTOR_CURRENT_IRQ);
    }

    #[test]
    fn svc_from_el0_routes_to_el1_normally_el2_with_vhe_tge() {
        let mut cpu = ArmCpu::new(ArchVersion::V8_1);
        cpu.enable_vhe().unwrap();
        cpu.el2.hcr_el2.insert(HcrEl2::TGE);
        cpu.start_at(El0);
        assert_eq!(
            cpu.route_exception(TrapCause::Sync(Syndrome::Svc { imm: 0 })),
            El2,
            "VHE host syscalls go straight from EL0 to EL2 (Figure 5)"
        );
        let mut classic = ArmCpu::new(ArchVersion::V8_0);
        classic.start_at(El0);
        assert_eq!(
            classic.route_exception(TrapCause::Sync(Syndrome::Svc { imm: 0 })),
            El1
        );
    }

    #[test]
    fn stage2_abort_records_ipa_in_hpfar() {
        let mut cpu = guest_cpu();
        cpu.take_exception(TrapCause::Sync(Syndrome::DataAbort {
            ipa: 0x0800_1000,
            write: true,
        }));
        assert_eq!(cpu.el2.far_el2, 0x0800_1000);
        assert_eq!(cpu.el2.hpfar_el2, 0x0800_1000 >> 8);
    }

    #[test]
    fn eret_from_el0_is_an_error() {
        let mut cpu = ArmCpu::new(ArchVersion::V8_0);
        cpu.start_at(El0);
        assert_eq!(cpu.eret(), Err(EretError::EretFromEl0));
    }

    #[test]
    fn illegal_return_to_same_or_higher_level() {
        let mut cpu = ArmCpu::new(ArchVersion::V8_0);
        cpu.el2.spsr_el2 = 0b1001; // names EL2h
        assert_eq!(
            cpu.eret(),
            Err(EretError::IllegalReturn { from: El2, to: El2 })
        );
    }

    #[test]
    fn enable_vhe_requires_v8_1_and_el2() {
        let mut v80 = ArmCpu::new(ArchVersion::V8_0);
        assert_eq!(v80.enable_vhe(), Err(VheError::NotSupported));
        let mut v81 = ArmCpu::new(ArchVersion::V8_1);
        v81.start_at(El1);
        assert_eq!(v81.enable_vhe(), Err(VheError::NotAtEl2));
        v81.start_at(El2);
        assert!(v81.enable_vhe().is_ok());
        assert!(v81.e2h());
    }

    #[test]
    fn sysreg_access_routes_through_vhe_redirection() {
        // The §VI worked example, end to end on the CPU.
        let mut cpu = ArmCpu::new(ArchVersion::V8_1);
        cpu.enable_vhe().unwrap();
        cpu.el2.ttbr1_el2 = 0;
        cpu.el1.ttbr1_el1 = 0xAAAA;
        // Host kernel at EL2 executes `msr ttbr1_el1, 0xBBBB` — lands in EL2.
        cpu.write_sysreg(SysReg::Ttbr1El1, 0xBBBB).unwrap();
        assert_eq!(cpu.el2.ttbr1_el2, 0xBBBB);
        assert_eq!(cpu.el1.ttbr1_el1, 0xAAAA, "guest state untouched");
        // `mrs x1, ttbr1_el12` reaches the guest's register.
        assert_eq!(cpu.read_sysreg(SysReg::Ttbr1El12).unwrap(), 0xAAAA);
    }

    #[test]
    fn sysreg_access_is_direct_without_vhe() {
        let mut cpu = ArmCpu::new(ArchVersion::V8_0);
        cpu.write_sysreg(SysReg::Ttbr1El1, 0x77).unwrap();
        assert_eq!(cpu.el1.ttbr1_el1, 0x77);
        assert_eq!(cpu.el2.ttbr1_el2, 0);
        assert!(cpu.read_sysreg(SysReg::Ttbr1El12).is_err());
    }

    #[test]
    fn guest_el1_sysreg_access_unaffected_by_host_e2h() {
        let mut cpu = ArmCpu::new(ArchVersion::V8_1);
        cpu.enable_vhe().unwrap();
        cpu.start_at(El1); // guest running
        cpu.write_sysreg(SysReg::SctlrEl1, 0x1).unwrap();
        assert_eq!(cpu.el1.sctlr_el1, 0x1);
        assert_ne!(cpu.el2.sctlr_el2, 0x1);
    }

    #[test]
    fn hcr_accessible_as_sysreg() {
        let mut cpu = ArmCpu::new(ArchVersion::V8_0);
        cpu.write_sysreg(SysReg::HcrEl2, HcrEl2::guest_running().bits())
            .unwrap();
        assert!(cpu.el2.hcr_el2.stage2_enabled());
        assert_eq!(
            cpu.read_sysreg(SysReg::HcrEl2).unwrap(),
            HcrEl2::guest_running().bits()
        );
    }

    #[test]
    fn nested_trap_and_return_preserves_pstate_mode() {
        let mut cpu = guest_cpu();
        cpu.start_at(El0);
        assert_eq!(cpu.gp.pstate & 0xF, 0b0000);
        cpu.take_exception(TrapCause::Sync(Syndrome::Svc { imm: 0 }));
        assert_eq!(cpu.current_el(), El1);
        assert_eq!(cpu.gp.pstate & 0xF, 0b0101);
        cpu.eret().unwrap();
        assert_eq!(cpu.current_el(), El0);
        assert_eq!(cpu.gp.pstate & 0xF, 0b0000);
    }

    #[test]
    fn exception_entry_masks_irqs_and_eret_restores_the_mask() {
        let mut cpu = guest_cpu();
        assert!(!cpu.irqs_masked());
        cpu.take_exception(TrapCause::HYPERCALL);
        assert!(cpu.irqs_masked(), "hardware sets PSTATE.I on entry");
        cpu.eret().unwrap();
        assert!(!cpu.irqs_masked(), "SPSR restore clears it");
    }

    #[test]
    fn guest_irq_mask_cannot_block_the_hypervisor() {
        // §II: "all physical interrupts are taken to EL2 when running in
        // a VM" — even a guest running with IRQs masked.
        let mut cpu = guest_cpu();
        cpu.mask_irqs();
        assert!(cpu.irqs_masked());
        assert!(cpu.should_take_irq(), "EL2-routed IRQ ignores guest mask");
        // Natively (no IMO), the mask works.
        let mut native = ArmCpu::new(ArchVersion::V8_0);
        native.start_at(El1);
        native.mask_irqs();
        assert!(!native.should_take_irq());
        native.unmask_irqs();
        assert!(native.should_take_irq());
    }

    #[test]
    fn exception_from_el2_to_el2_uses_current_vectors() {
        let mut cpu = ArmCpu::new(ArchVersion::V8_0);
        cpu.el2.vbar_el2 = 0x9000_0000;
        cpu.take_exception(TrapCause::Irq);
        assert_eq!(cpu.current_el(), El2);
        assert_eq!(cpu.gp.pc, 0x9000_0000 + VECTOR_CURRENT_IRQ);
    }
}
