//! ARMv8 register files.
//!
//! These are the register classes of the paper's Table III — the exact
//! state a split-mode Type 2 hypervisor must move to and from memory on
//! every VM↔hypervisor transition, and which a Type 1 hypervisor mostly
//! avoids touching. They are modelled as real storage (every named system
//! register Linux's `__save_sysregs`/`__restore_sysregs` world-switch code
//! moves has a field here), so context-switch correctness is testable as
//! bit-identity, not merely as a cycle charge.

/// The general-purpose register file: `x0`–`x30`, `sp`, `pc`, and `pstate`.
///
/// This is the *only* state Xen ARM needs to switch on a hypercall (§IV:
/// "Xen ARM which only incurs the relatively small cost of saving and
/// restoring the general-purpose registers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct GpRegs {
    /// `x0`–`x30`.
    pub x: [u64; 31],
    /// Stack pointer selected at the current exception level.
    pub sp: u64,
    /// Program counter.
    pub pc: u64,
    /// Processor state (NZCV, DAIF, current EL, SP selection).
    pub pstate: u64,
}

impl GpRegs {
    /// Fills every register with a value derived from `seed`, for
    /// round-trip tests. Each field receives a distinct value.
    pub fn fill_pattern(seed: u64) -> Self {
        let mut r = GpRegs::default();
        for (i, x) in r.x.iter_mut().enumerate() {
            *x = mix(seed, i as u64);
        }
        r.sp = mix(seed, 100);
        r.pc = mix(seed, 101);
        r.pstate = mix(seed, 102);
        r
    }
}

/// The SIMD/floating-point register file: `v0`–`v31` plus control/status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize, Default)]
pub struct FpRegs {
    /// `v0`–`v31`, 128 bits each.
    pub v: [u128; 32],
    /// Floating-point control register.
    pub fpcr: u64,
    /// Floating-point status register.
    pub fpsr: u64,
}

impl FpRegs {
    /// Fills every register with a value derived from `seed`.
    pub fn fill_pattern(seed: u64) -> Self {
        let mut r = FpRegs::default();
        for (i, v) in r.v.iter_mut().enumerate() {
            *v = (mix(seed, 200 + i as u64) as u128) << 64 | mix(seed, 300 + i as u64) as u128;
        }
        r.fpcr = mix(seed, 400);
        r.fpsr = mix(seed, 401);
        r
    }
}

/// The EL1 system registers a world switch must move when host and guest
/// share EL1 (§IV: "software running in EL2 must context switch all the EL1
/// system register state between the VM guest OS and the Type 2 hypervisor
/// host OS").
///
/// Field set mirrors the KVM/ARM `sysreg` save/restore list for Linux 4.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct El1SysRegs {
    /// System control register (MMU enable, caches, alignment).
    pub sctlr_el1: u64,
    /// Translation table base 0 — lower VA range (userspace).
    pub ttbr0_el1: u64,
    /// Translation table base 1 — upper VA range (kernel). The split VA
    /// support whose absence in pre-VHE EL2 blocked running Linux there (§VI).
    pub ttbr1_el1: u64,
    /// Translation control register.
    pub tcr_el1: u64,
    /// Memory attribute indirection register.
    pub mair_el1: u64,
    /// Auxiliary memory attribute indirection register.
    pub amair_el1: u64,
    /// Vector base address register.
    pub vbar_el1: u64,
    /// EL0 read/write software thread ID register.
    pub tpidr_el0: u64,
    /// EL0 read-only software thread ID register.
    pub tpidrro_el0: u64,
    /// EL1 software thread ID register.
    pub tpidr_el1: u64,
    /// Context ID register (ASID tagging for debug/trace).
    pub contextidr_el1: u64,
    /// Architectural feature access control (FP/SIMD trapping).
    pub cpacr_el1: u64,
    /// Exception syndrome register for exceptions taken to EL1.
    pub esr_el1: u64,
    /// Fault address register.
    pub far_el1: u64,
    /// Auxiliary fault status register 0.
    pub afsr0_el1: u64,
    /// Auxiliary fault status register 1.
    pub afsr1_el1: u64,
    /// Physical address register (AT instruction results).
    pub par_el1: u64,
    /// Exception link register for EL1.
    pub elr_el1: u64,
    /// Saved program status register for EL1.
    pub spsr_el1: u64,
    /// Stack pointer for EL0.
    pub sp_el0: u64,
    /// Stack pointer for EL1.
    pub sp_el1: u64,
    /// Monitor debug system control register.
    pub mdscr_el1: u64,
    /// Counter-timer kernel control register.
    pub cntkctl_el1: u64,
}

impl El1SysRegs {
    /// Number of architected registers in this class (used by docs/tests to
    /// convey how much state a split-mode switch moves).
    pub const COUNT: usize = 23;

    /// Fills every register with a value derived from `seed`.
    pub fn fill_pattern(seed: u64) -> Self {
        El1SysRegs {
            sctlr_el1: mix(seed, 500),
            ttbr0_el1: mix(seed, 501),
            ttbr1_el1: mix(seed, 502),
            tcr_el1: mix(seed, 503),
            mair_el1: mix(seed, 504),
            amair_el1: mix(seed, 505),
            vbar_el1: mix(seed, 506),
            tpidr_el0: mix(seed, 507),
            tpidrro_el0: mix(seed, 508),
            tpidr_el1: mix(seed, 509),
            contextidr_el1: mix(seed, 510),
            cpacr_el1: mix(seed, 511),
            esr_el1: mix(seed, 512),
            far_el1: mix(seed, 513),
            afsr0_el1: mix(seed, 514),
            afsr1_el1: mix(seed, 515),
            par_el1: mix(seed, 516),
            elr_el1: mix(seed, 517),
            spsr_el1: mix(seed, 518),
            sp_el0: mix(seed, 519),
            sp_el1: mix(seed, 520),
            mdscr_el1: mix(seed, 521),
            cntkctl_el1: mix(seed, 522),
        }
    }
}

/// The virtual-timer registers a world switch moves (Table III "Timer
/// Regs"). The VM programs these without trapping; the hypervisor switches
/// them between VMs and translates firings into virtual interrupts (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct TimerRegs {
    /// Virtual timer control (enable, mask, istatus).
    pub cntv_ctl: u64,
    /// Virtual timer compare value.
    pub cntv_cval: u64,
    /// Virtual counter offset (hypervisor-programmed, read at EL2).
    pub cntvoff: u64,
}

impl TimerRegs {
    /// Fills every register with a value derived from `seed`.
    pub fn fill_pattern(seed: u64) -> Self {
        TimerRegs {
            cntv_ctl: mix(seed, 600),
            cntv_cval: mix(seed, 601),
            cntvoff: mix(seed, 602),
        }
    }
}

/// SplitMix64 finalizer — gives every (seed, salt) pair a distinct,
/// well-scrambled 64-bit value for register-pattern tests.
pub(crate) fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_pattern_is_distinct_per_register() {
        let r = GpRegs::fill_pattern(7);
        let mut vals: Vec<u64> = r.x.to_vec();
        vals.extend([r.sp, r.pc, r.pstate]);
        let n = vals.len();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), n, "pattern collided");
    }

    #[test]
    fn patterns_differ_by_seed() {
        assert_ne!(GpRegs::fill_pattern(1), GpRegs::fill_pattern(2));
        assert_ne!(FpRegs::fill_pattern(1), FpRegs::fill_pattern(2));
        assert_ne!(El1SysRegs::fill_pattern(1), El1SysRegs::fill_pattern(2));
        assert_ne!(TimerRegs::fill_pattern(1), TimerRegs::fill_pattern(2));
    }

    #[test]
    fn copy_semantics_give_bit_identical_context() {
        let a = El1SysRegs::fill_pattern(42);
        let saved = a; // context save
        let restored = saved; // context restore
        assert_eq!(a, restored);
    }

    #[test]
    fn fp_regs_are_128_bit() {
        let r = FpRegs::fill_pattern(3);
        assert!(r.v.iter().any(|v| *v > u128::from(u64::MAX)));
    }

    #[test]
    fn el1_count_matches_field_count() {
        // 23 named EL1 system registers, per the KVM 4.0 world switch.
        assert_eq!(El1SysRegs::COUNT, 23);
    }

    #[test]
    fn defaults_are_zeroed() {
        assert_eq!(GpRegs::default().x, [0; 31]);
        assert_eq!(FpRegs::default().v, [0; 32]);
        assert_eq!(TimerRegs::default().cntvoff, 0);
    }
}
