//! # hvx-arch — architectural CPU models for the hvx simulator
//!
//! Functional (cost-free) models of the two hardware-virtualization
//! architectures compared by *"ARM Virtualization: Performance and
//! Architectural Implications"* (ISCA 2016):
//!
//! * **ARMv8** ([`ArmCpu`]): exception levels EL0/EL1/EL2, the register
//!   classes of the paper's Table III ([`GpRegs`], [`FpRegs`],
//!   [`El1SysRegs`], [`TimerRegs`], [`El2Regs`]), trap and ERET semantics
//!   ([`TrapCause`], [`Syndrome`]), and the ARMv8.1 **VHE** extension:
//!   the `E2H` bit with transparent EL1→EL2 system-register redirection
//!   and `*_EL12` aliases ([`SysReg`], [`resolve`]).
//! * **x86 VMX** ([`X86Cpu`]): root/non-root modes orthogonal to the
//!   privilege rings, with every transition bulk-moving state through an
//!   in-memory [`Vmcs`].
//!
//! The asymmetry between these two models — ARM banks hypervisor state in
//! hardware and lets software choose what else to switch, x86 switches
//! everything through memory on every transition — is the architectural
//! root of every result in the paper.
//!
//! Timing is deliberately absent here: `hvx-core` charges calibrated
//! cycle costs for these operations through `hvx-engine`.
//!
//! # Example
//!
//! ```
//! use hvx_arch::{ArchVersion, ArmCpu, ExceptionLevel, TrapCause, HcrEl2};
//!
//! // A guest kernel runs at EL1 with virtualization enabled ...
//! let mut cpu = ArmCpu::new(ArchVersion::V8_0);
//! cpu.el2.hcr_el2 = HcrEl2::guest_running();
//! cpu.start_at(ExceptionLevel::El1);
//!
//! // ... and a hypercall traps to EL2.
//! assert_eq!(cpu.take_exception(TrapCause::HYPERCALL), ExceptionLevel::El2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cpu;
mod el;
mod el2;
pub(crate) mod regs;
mod sysreg;
mod trap;
mod x86;

pub use cpu::{
    ArchVersion, ArmCpu, EretError, VheError, PSTATE_I, VECTOR_CURRENT_IRQ, VECTOR_CURRENT_SYNC,
    VECTOR_LOWER_IRQ, VECTOR_LOWER_SYNC,
};
pub use el::ExceptionLevel;
pub use el2::{El2Regs, HcrEl2};
pub use regs::{El1SysRegs, FpRegs, GpRegs, TimerRegs};
pub use sysreg::{resolve, PhysReg, SysReg, SysRegError};
pub use trap::{Syndrome, TrapCause};
pub use x86::{ExitReason, Ring, Vmcs, VmcsControls, VmxError, VmxMode, X86Cpu, X86State};
