//! The paper's ablations and the §VI architectural projection.
//!
//! * [`irq_distribution`] — §V: "we verified this by distributing
//!   virtual interrupts across multiple VCPUs", Apache 35→14 % (KVM) and
//!   84→16 % (Xen); Memcached 26→8 % and 32→9 %.
//! * [`vhe`] — §VI: VHE lets KVM ARM run its host in EL2, collapsing
//!   transition costs and projecting 10–20 % improvements on real I/O
//!   workloads, "yielding superior performance to a Type 1 hypervisor
//!   such as Xen".
//! * [`zero_copy`] — §V: why Xen copies instead of mapping (x86 TLB
//!   shootdowns beat the copy), and the open ARM question (hardware
//!   broadcast TLBI could make mapping cheap).

use crate::netperf::{self, RrFaultStats};
use crate::workloads::{self, DiskDevice, Mix};
use hvx_core::{Error, HvKind, Hypervisor, KvmArm, Native, SimBuilder, VirqPolicy, XenArm};
use hvx_engine::{Cycles, FaultPlan, FaultPoint, Frequency, TransitionId};
use hvx_mem::{Ipa, ShootdownMethod, TlbModel};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// Interrupt distribution
// ---------------------------------------------------------------------

/// One row of the interrupt-distribution ablation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IrqDistributionRow {
    /// Workload name.
    pub workload: &'static str,
    /// Configuration.
    pub hv: HvKind,
    /// Overhead (fraction above native) with all virqs on VCPU0.
    pub concentrated: f64,
    /// Overhead with virqs distributed over all VCPUs.
    pub distributed: f64,
    /// The paper's pair.
    pub paper: (f64, f64),
}

/// Runs the §V interrupt-distribution ablation for Apache and Memcached
/// on both ARM hypervisors.
pub fn irq_distribution() -> Result<Vec<IrqDistributionRow>, Error> {
    let mut rows = Vec::new();
    for (workload, hv_kind, before, after) in crate::paper::IRQ_DISTRIBUTION {
        let mix = workloads::catalog()
            .into_iter()
            .find(|w| w.name == workload)
            .ok_or_else(|| Error::UnknownWorkload {
                name: workload.to_string(),
            })?
            .mix;
        let run = |policy: VirqPolicy| -> Result<f64, Error> {
            let mut native = Native::new();
            Ok(match hv_kind {
                HvKind::KvmArm => {
                    workloads::overhead(&mut KvmArm::new(), &mut native, mix, policy)? - 1.0
                }
                HvKind::XenArm => {
                    workloads::overhead(&mut XenArm::new(), &mut native, mix, policy)? - 1.0
                }
                _ => unreachable!("ablation is ARM-only"),
            })
        };
        rows.push(IrqDistributionRow {
            workload,
            hv: hv_kind,
            concentrated: run(VirqPolicy::Vcpu0)?,
            distributed: run(VirqPolicy::RoundRobin)?,
            paper: (before, after),
        });
    }
    Ok(rows)
}

/// Renders the ablation table.
pub fn render_irq_distribution(rows: &[IrqDistributionRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12}{:<10}{:>18}{:>18}{:>22}\n",
        "Workload", "HV", "vcpu0-only", "distributed", "paper (before/after)"
    ));
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:<10}{:>17.0}%{:>17.0}%{:>15.0}% /{:>3.0}%\n",
            r.workload,
            r.hv.to_string(),
            r.concentrated * 100.0,
            r.distributed * 100.0,
            r.paper.0 * 100.0,
            r.paper.1 * 100.0
        ));
    }
    out
}

// ---------------------------------------------------------------------
// VHE projection
// ---------------------------------------------------------------------

/// The §VI projection measured on the models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VheProjection {
    /// (microbenchmark name, classic KVM ARM cycles, VHE cycles, Xen ARM
    /// cycles) for the transition-bound microbenchmarks.
    pub micro: Vec<(&'static str, u64, u64, u64)>,
    /// (workload name, classic overhead, VHE overhead, Xen overhead) for
    /// the I/O workloads.
    pub workloads: Vec<(&'static str, f64, f64, f64)>,
}

/// Measures the VHE projection: microbenchmark transition costs and the
/// I/O-bound application overheads under classic KVM ARM, KVM ARM + VHE,
/// and Xen ARM.
pub fn vhe() -> Result<VheProjection, Error> {
    use crate::micro::Micro;
    let micro_set = [
        Micro::Hypercall,
        Micro::InterruptControllerTrap,
        Micro::IoLatencyOut,
        Micro::IoLatencyIn,
        Micro::VirtualIpi,
    ];
    let mut micro = Vec::new();
    for m in micro_set {
        let classic = m.run(&mut KvmArm::new(), 3).as_u64();
        let vhe = m.run(&mut KvmArm::new_vhe(), 3).as_u64();
        let xen = m.run(&mut XenArm::new(), 3).as_u64();
        let name = match m {
            Micro::Hypercall => "Hypercall",
            Micro::InterruptControllerTrap => "Interrupt Controller Trap",
            Micro::IoLatencyOut => "I/O Latency Out",
            Micro::IoLatencyIn => "I/O Latency In",
            Micro::VirtualIpi => "Virtual IPI",
            _ => unreachable!(),
        };
        micro.push((name, classic, vhe, xen));
    }
    let io_workloads = ["TCP_RR", "Apache", "Memcached", "TCP_STREAM"];
    let mut wl = Vec::new();
    for name in io_workloads {
        let mix = workloads::catalog()
            .into_iter()
            .find(|w| w.name == name)
            .ok_or_else(|| Error::UnknownWorkload { name: name.into() })?
            .mix;
        let classic = workloads::overhead(
            &mut KvmArm::new(),
            &mut Native::new(),
            mix,
            VirqPolicy::Vcpu0,
        )?;
        let vhe = workloads::overhead(
            &mut KvmArm::new_vhe(),
            &mut Native::new(),
            mix,
            VirqPolicy::Vcpu0,
        )?;
        let xen = workloads::overhead(
            &mut XenArm::new(),
            &mut Native::new(),
            mix,
            VirqPolicy::Vcpu0,
        )?;
        wl.push((name, classic, vhe, xen));
    }
    Ok(VheProjection {
        micro,
        workloads: wl,
    })
}

/// Renders the VHE projection.
pub fn render_vhe(p: &VheProjection) -> String {
    let mut out = String::new();
    out.push_str("Microbenchmarks (cycles):\n");
    out.push_str(&format!(
        "{:<28}{:>12}{:>12}{:>12}{:>10}\n",
        "", "KVM ARM", "KVM+VHE", "Xen ARM", "speedup"
    ));
    for (name, classic, vhe, xen) in &p.micro {
        out.push_str(&format!(
            "{:<28}{:>12}{:>12}{:>12}{:>9.1}x\n",
            name,
            classic,
            vhe,
            xen,
            *classic as f64 / *vhe as f64
        ));
    }
    out.push_str("\nI/O application workloads (normalized overhead):\n");
    out.push_str(&format!(
        "{:<28}{:>12}{:>12}{:>12}\n",
        "", "KVM ARM", "KVM+VHE", "Xen ARM"
    ));
    for (name, classic, vhe, xen) in &p.workloads {
        out.push_str(&format!(
            "{name:<28}{classic:>12.2}{vhe:>12.2}{xen:>12.2}\n"
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Zero copy
// ---------------------------------------------------------------------

/// Per-packet cost comparison of Xen's three possible netback designs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ZeroCopyAnalysis {
    /// Grant-copy cost per packet (what Xen ships), cycles.
    pub copy: u64,
    /// Map + access + unmap with IPI-based shootdown (the abandoned x86
    /// zero-copy design), cycles.
    pub map_ipi_shootdown: u64,
    /// Map + access + unmap with ARM broadcast TLBI (the paper's open
    /// question), cycles.
    pub map_broadcast_tlbi: u64,
    /// TCP_STREAM overhead with copies (measured on the Xen ARM model).
    pub stream_overhead_copy: f64,
    /// Projected TCP_STREAM overhead if per-packet copy cost were
    /// replaced by the broadcast-TLBI mapping cost.
    pub stream_overhead_mapped_arm: f64,
}

/// Prices the §V zero-copy trade mechanically: grant-table map/unmap
/// against [`TlbModel`] shootdown plans on both architectures, and its
/// projected effect on TCP_STREAM.
pub fn zero_copy() -> Result<ZeroCopyAnalysis, Error> {
    let cost = *XenArm::new().cost();
    let cores = 8;
    // Mapping path: grant map + unmap bookkeeping plus the TLB
    // maintenance the unmap requires.
    let map_unmap = Cycles::new(900); // hypercall + grant-table updates
    let mut ipi_tlb = TlbModel::new(cores, ShootdownMethod::IpiFlush);
    let plan = ipi_tlb.shootdown(0, Ipa::new(0x1000));
    let ipi_cost = map_unmap
        + Cycles::new(plan.ipis as u64 * (cost.ipi_wire.as_u64() + 500))
        + Cycles::new(150);
    let mut bcast_tlb = TlbModel::new(cores, ShootdownMethod::BroadcastTlbi);
    let plan_b = bcast_tlb.shootdown(0, Ipa::new(0x1000));
    debug_assert_eq!(plan_b.ipis, 0);
    let bcast_cost = map_unmap + Cycles::new(150);

    // Project TCP_STREAM with the cheaper maintenance.
    let mix = Mix::StreamRx {
        chunks: 44,
        chunk_len: 1_490,
        bursts: 24,
        link_mbit: 10_000,
    };
    let stream_copy = workloads::overhead(
        &mut XenArm::new(),
        &mut Native::new(),
        mix,
        VirqPolicy::Vcpu0,
    )?;
    let mut mapped_cost = cost;
    mapped_cost.xen_grant_copy = bcast_cost;
    let mut mapped_xen = XenArm::with_cost(mapped_cost);
    let stream_mapped =
        workloads::overhead(&mut mapped_xen, &mut Native::new(), mix, VirqPolicy::Vcpu0)?;

    Ok(ZeroCopyAnalysis {
        copy: cost.xen_grant_copy.as_u64(),
        map_ipi_shootdown: ipi_cost.as_u64(),
        map_broadcast_tlbi: bcast_cost.as_u64(),
        stream_overhead_copy: stream_copy,
        stream_overhead_mapped_arm: stream_mapped,
    })
}

/// Renders the zero-copy analysis.
pub fn render_zero_copy(z: &ZeroCopyAnalysis) -> String {
    format!(
        "Per-packet Xen I/O data-movement cost (cycles):\n\
           grant copy (shipped design):            {:>8}\n\
           map/unmap + IPI shootdown (x86 design): {:>8}\n\
           map/unmap + broadcast TLBI (ARM HW):    {:>8}\n\
         On x86 the mapped path {} the copy -> zero copy was abandoned (§V).\n\
         On ARM broadcast TLBI would make mapping {:.1}x cheaper than copying.\n\n\
         Projected TCP_STREAM overhead on Xen ARM:\n\
           with grant copies:     {:.2}x native\n\
           with mapped zero-copy: {:.2}x native\n",
        z.copy,
        z.map_ipi_shootdown,
        z.map_broadcast_tlbi,
        if z.map_ipi_shootdown as f64 > 0.9 * z.copy as f64 {
            "roughly matches or exceeds"
        } else {
            "beats"
        },
        z.copy as f64 / z.map_broadcast_tlbi as f64,
        z.stream_overhead_copy,
        z.stream_overhead_mapped_arm,
    )
}

// ---------------------------------------------------------------------
// Link speed
// ---------------------------------------------------------------------

/// TCP_STREAM overhead at two link speeds — §III's methodological
/// observation, reproduced.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkSpeedAblation {
    /// Overheads at 10 GbE: (KVM ARM, Xen ARM).
    pub ten_gbe: (f64, f64),
    /// Overheads at 1 GbE: (KVM ARM, Xen ARM).
    pub one_gbe: (f64, f64),
}

/// Runs TCP_STREAM at 10 GbE and 1 GbE. At 1 GbE "the network itself
/// became the bottleneck" (§III): even Xen's per-packet grant copies
/// hide behind the slow wire and every overhead collapses toward 1.0.
pub fn link_speed() -> Result<LinkSpeedAblation, Error> {
    let run = |link_mbit: u64| -> Result<(f64, f64), Error> {
        let mix = Mix::StreamRx {
            chunks: 44,
            chunk_len: 1_490,
            bursts: 24,
            link_mbit,
        };
        Ok((
            workloads::overhead(
                &mut KvmArm::new(),
                &mut Native::new(),
                mix,
                VirqPolicy::Vcpu0,
            )?,
            workloads::overhead(
                &mut XenArm::new(),
                &mut Native::new(),
                mix,
                VirqPolicy::Vcpu0,
            )?,
        ))
    };
    Ok(LinkSpeedAblation {
        ten_gbe: run(10_000)?,
        one_gbe: run(1_000)?,
    })
}

/// Renders the link-speed ablation.
pub fn render_link_speed(l: &LinkSpeedAblation) -> String {
    format!(
        "TCP_STREAM overhead vs link speed (1.0 = native):\n\
         {:<10}{:>10}{:>10}\n\
         {:<10}{:>10.2}{:>10.2}\n\
         {:<10}{:>10.2}{:>10.2}\n\
         At 1 GbE the wire hides the hypervisors entirely (S III: 'many\n\
         benchmarks were unaffected by virtualization when run over 1 Gb\n\
         Ethernet, because the network itself became the bottleneck').\n",
        "",
        "KVM ARM",
        "Xen ARM",
        "10 GbE",
        l.ten_gbe.0,
        l.ten_gbe.1,
        "1 GbE",
        l.one_gbe.0,
        l.one_gbe.1
    )
}

// ---------------------------------------------------------------------
// vAPIC
// ---------------------------------------------------------------------

/// x86 interrupt-completion costs with and without hardware vAPIC.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VapicAblation {
    /// Virtual IRQ Completion, pre-vAPIC KVM x86 (cycles).
    pub x86_classic: u64,
    /// Virtual IRQ Completion with vAPIC (cycles).
    pub x86_vapic: u64,
    /// The ARM value (71 cycles) for comparison.
    pub arm: u64,
}

/// Measures §IV's forward-looking note: "vAPIC support has been added to
/// x86 with similar functionality to avoid the need to trap ... so that
/// newer x86 hardware with vAPIC support should perform more comparably
/// to ARM".
pub fn vapic() -> VapicAblation {
    use hvx_core::KvmX86;
    VapicAblation {
        x86_classic: KvmX86::new().virq_complete(0).as_u64(),
        x86_vapic: KvmX86::new_with_vapic().virq_complete(0).as_u64(),
        arm: KvmArm::new().virq_complete(0).as_u64(),
    }
}

/// Renders the vAPIC ablation.
pub fn render_vapic(v: &VapicAblation) -> String {
    format!(
        "Virtual IRQ Completion (cycles):\n\
           KVM x86, trapping EOI:   {:>6}\n\
           KVM x86, hardware vAPIC: {:>6}\n\
           KVM ARM (GIC vIF):       {:>6}\n\
         vAPIC removes the EOI exit, closing most of the {}x gap to ARM.\n",
        v.x86_classic,
        v.x86_vapic,
        v.arm,
        v.x86_classic / v.arm
    )
}

// ---------------------------------------------------------------------
// Oversubscription
// ---------------------------------------------------------------------

/// VM-switch overhead when physical CPUs are oversubscribed, priced at
/// each hypervisor's Table II VM Switch cost over a credit-scheduler
/// simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OversubscriptionAblation {
    /// (vms per core, timeslice µs, KVM ARM overhead, Xen ARM overhead,
    /// KVM x86 overhead, Xen x86 overhead).
    pub points: Vec<(u32, f64, f64, f64, f64, f64)>,
}

/// Sweeps oversubscription ratio and timeslice, pricing switches at the
/// four hypervisors' measured VM Switch costs — the "central cost when
/// oversubscribing physical CPUs" of Table I made concrete.
pub fn oversubscription() -> OversubscriptionAblation {
    use hvx_core::sched::oversubscription_point;
    let costs = [
        Cycles::new(10_387), // KVM ARM (Table II)
        Cycles::new(8_799),  // Xen ARM
        Cycles::new(4_812),  // KVM x86
        Cycles::new(10_534), // Xen x86
    ];
    let mut points = Vec::new();
    for (vms, ts_us) in [(2u32, 1_000.0f64), (2, 100.0), (4, 1_000.0), (4, 100.0)] {
        let ts = Cycles::new((ts_us * 2_400.0) as u64);
        let ov: Vec<f64> = costs
            .iter()
            .map(|c| oversubscription_point(vms, ts, *c).switch_overhead)
            .collect();
        points.push((vms, ts_us, ov[0], ov[1], ov[2], ov[3]));
    }
    OversubscriptionAblation { points }
}

/// Renders the oversubscription sweep.
pub fn render_oversubscription(o: &OversubscriptionAblation) -> String {
    let mut out = String::new();
    out.push_str("VM-switch overhead under oversubscription (fraction of CPU time):\n");
    out.push_str(&format!(
        "{:<10}{:<14}{:>10}{:>10}{:>10}{:>10}\n",
        "VMs/core", "timeslice us", "KVM ARM", "Xen ARM", "KVM x86", "Xen x86"
    ));
    for (vms, ts, a, b, c, d) in &o.points {
        out.push_str(&format!(
            "{:<10}{:<14}{:>9.2}%{:>9.2}%{:>9.2}%{:>9.2}%\n",
            vms,
            ts,
            a * 100.0,
            b * 100.0,
            c * 100.0,
            d * 100.0
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------

/// Block-I/O overhead across the paper's two storage devices.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StorageAblation {
    /// Overheads on the m400's SSD: (KVM ARM, Xen ARM).
    pub ssd: (f64, f64),
    /// Overheads on the r320's RAID5 array: (KVM ARM, Xen ARM).
    pub raid5: (f64, f64),
}

/// Runs the fio-style block benchmark over both §III storage devices:
/// the storage analog of the 1 GbE observation — a slow device hides
/// the paravirtual block stack, a fast SSD exposes it (and Xen's extra
/// grant copy).
pub fn storage() -> Result<StorageAblation, Error> {
    let run = |device: DiskDevice, requests: u32| -> Result<(f64, f64), Error> {
        let mix = Mix::DiskIo {
            requests,
            sectors: 8,
            device,
        };
        Ok((
            workloads::overhead(
                &mut KvmArm::new(),
                &mut Native::new(),
                mix,
                VirqPolicy::Vcpu0,
            )?,
            workloads::overhead(
                &mut XenArm::new(),
                &mut Native::new(),
                mix,
                VirqPolicy::Vcpu0,
            )?,
        ))
    };
    Ok(StorageAblation {
        ssd: run(DiskDevice::Ssd, 32)?,
        raid5: run(DiskDevice::Raid5, 8)?,
    })
}

/// Renders the storage ablation.
pub fn render_storage(st: &StorageAblation) -> String {
    format!(
        "Random-read block I/O overhead (1.0 = native):\n\
         {:<16}{:>10}{:>10}\n\
         {:<16}{:>10.2}{:>10.2}\n\
         {:<16}{:>10.2}{:>10.2}\n\
         The slow RAID5 array hides the paravirtual block stack the same\n\
         way 1 GbE hid the network stack; the SSD exposes it, and Xen's\n\
         per-request grant copy on top.\n",
        "",
        "KVM ARM",
        "Xen ARM",
        "SSD (m400)",
        st.ssd.0,
        st.ssd.1,
        "RAID5 (r320)",
        st.raid5.0,
        st.raid5.1
    )
}

// ---------------------------------------------------------------------
// Fault recovery
// ---------------------------------------------------------------------

/// Seed for the fault-recovery sweep; fixed so the artifact is
/// reproducible byte-for-byte.
pub const FAULT_RECOVERY_SEED: u64 = 42;

/// TCP_RR transactions per fault-recovery cell.
pub const FAULT_RECOVERY_TRANSACTIONS: usize = 40;

/// One (hypervisor, loss-rate) cell of the fault-recovery sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultRecoveryCell {
    /// Configuration.
    pub hv: HvKind,
    /// Wire loss probability applied to the response path.
    pub loss: f64,
    /// Resulting µs per transaction.
    pub time_per_trans: f64,
    /// Total faults the machine injected (all fault points).
    pub faults_injected: u64,
    /// TCP retransmissions the guest issued.
    pub retransmits: u64,
    /// Busy cycles attributed to recovery spans ([`TransitionId`]s
    /// `VirtioRekick`, `EvtchnRedeliver`, `GrantRetry`, `TcpRetransmit`).
    pub recovery_span_cycles: u64,
    /// Idle µs spent waiting on retransmit timers (recovery latency).
    pub rto_idle_us: f64,
}

/// The fault-recovery ablation: TCP_RR under a wire-loss sweep on all
/// four measured hypervisors, with the recovery work visible as
/// attributed spans rather than folded into unattributed time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultRecoveryAblation {
    /// The deterministic seed every plan used.
    pub seed: u64,
    /// 4 hypervisors × 4 loss rates, hypervisor-major.
    pub cells: Vec<FaultRecoveryCell>,
}

/// The loss rates swept (fraction of response segments lost).
pub const FAULT_RECOVERY_LOSSES: [f64; 4] = [0.0, 0.02, 0.05, 0.10];

/// The four [`TransitionId`]s that attribute recovery work.
pub const RECOVERY_SPANS: [TransitionId; 4] = [
    TransitionId::VirtioRekick,
    TransitionId::EvtchnRedeliver,
    TransitionId::GrantRetry,
    TransitionId::TcpRetransmit,
];

fn fault_recovery_plan(loss: f64) -> FaultPlan {
    // Wire loss is the swept variable; the infrastructure fault points
    // ride along at lower rates so every recovery mechanism exercises
    // (vIRQ redelivery, grant retries, NIC re-kicks, vhost delays).
    FaultPlan::new(FAULT_RECOVERY_SEED)
        .with_rate(FaultPoint::WireDrop, loss)
        .with_rate(FaultPoint::WireCorrupt, loss / 2.0)
        .with_rate(FaultPoint::VirqDrop, loss / 4.0)
        .with_rate(FaultPoint::GrantCopyFail, loss / 2.0)
        .with_rate(FaultPoint::NicStall, loss / 8.0)
        .with_rate(FaultPoint::VhostDelay, loss / 8.0)
}

/// Runs the TCP_RR loss sweep. With `loss == 0` the plan is empty, the
/// machine carries no fault state, and the cell reproduces the plain
/// Table V path exactly.
pub fn fault_recovery() -> Result<FaultRecoveryAblation, Error> {
    let freq = Frequency::ARM_M400;
    let mut cells = Vec::new();
    for kind in HvKind::MEASURED {
        for loss in FAULT_RECOVERY_LOSSES {
            let mut sim = SimBuilder::new(kind)
                .workload(hvx_core::Workload::Netperf)
                .profiling(true)
                .fault_plan(fault_recovery_plan(loss))
                .build()?;
            let (col, stats): (netperf::RrColumn, RrFaultStats) =
                netperf::run_rr_lossy(sim.as_dyn_mut(), FAULT_RECOVERY_TRANSACTIONS, freq);
            sim.sample_metrics();
            let machine = sim.machine();
            let spans = machine.spans().expect("profiling enabled");
            let recovery_span_cycles: u64 = RECOVERY_SPANS
                .into_iter()
                .map(|id| spans.exclusive(id))
                .sum();
            cells.push(FaultRecoveryCell {
                hv: kind,
                loss,
                time_per_trans: col.time_per_trans,
                faults_injected: machine.total_faults_injected(),
                retransmits: stats.retransmits,
                recovery_span_cycles,
                rto_idle_us: stats.rto_idle_cycles as f64 / freq.cycles_per_micro(),
            });
        }
    }
    Ok(FaultRecoveryAblation {
        seed: FAULT_RECOVERY_SEED,
        cells,
    })
}

/// Renders the fault-recovery sweep.
pub fn render_fault_recovery(f: &FaultRecoveryAblation) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "netperf TCP_RR under wire loss (seed {}): recovery work is charged\n\
         through the span tracer, so every retry shows up in profiles and\n\
         conservation still holds.\n\n",
        f.seed
    ));
    out.push_str(&format!(
        "{:<10}{:>7}{:>14}{:>10}{:>9}{:>16}{:>14}\n",
        "HV", "loss", "us/trans", "faults", "retx", "recovery cyc", "RTO idle us"
    ));
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for c in &f.cells {
        out.push_str(&format!(
            "{:<10}{:>6.0}%{:>14.1}{:>10}{:>9}{:>16}{:>14.1}\n",
            c.hv.to_string(),
            c.loss * 100.0,
            c.time_per_trans,
            c.faults_injected,
            c.retransmits,
            c.recovery_span_cycles,
            c.rto_idle_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vhe_collapses_transition_costs() {
        let p = vhe().unwrap();
        let hypercall = p.micro.iter().find(|m| m.0 == "Hypercall").unwrap();
        assert!(
            hypercall.1 > 9 * hypercall.2,
            "§VI: order-of-magnitude hypercall improvement: {} -> {}",
            hypercall.1,
            hypercall.2
        );
        // VHE approaches (within 2x of) Xen's Type 1 transition cost.
        assert!(hypercall.2 < 2 * hypercall.3);
        // And I/O Latency Out improves by several-fold. (The paper says
        // "potentially ... more than an order of magnitude"; the model's
        // path keeps the physical IPI and vhost wake-up, which bound the
        // achievable gain near 3x — recorded in EXPERIMENTS.md.)
        let out = p.micro.iter().find(|m| m.0 == "I/O Latency Out").unwrap();
        assert!(out.1 as f64 > 2.5 * out.2 as f64, "{} -> {}", out.1, out.2);
    }

    #[test]
    fn vhe_beats_xen_on_io_workloads() {
        // §VI: "yielding superior performance to a Type 1 hypervisor
        // such as Xen which must still rely on Dom0".
        let p = vhe().unwrap();
        for (name, classic, vhe_oh, xen) in &p.workloads {
            assert!(vhe_oh < classic, "{name}: VHE should improve on classic");
            assert!(vhe_oh < xen, "{name}: VHE should beat Xen");
        }
    }

    #[test]
    fn vhe_improves_io_workloads_by_percents_not_magnitudes() {
        // §VI: "improving more realistic I/O workloads by 10% to 20%".
        let p = vhe().unwrap();
        let rr = p.workloads.iter().find(|w| w.0 == "TCP_RR").unwrap();
        let gain = (rr.1 - rr.2) / rr.1;
        assert!(
            (0.03..0.4).contains(&gain),
            "workload gain is percents, not magnitudes: {gain}"
        );
    }

    #[test]
    fn one_gbe_hides_all_virtualization_overhead() {
        let l = link_speed().unwrap();
        assert!(l.ten_gbe.1 > 2.0, "Xen visible at 10 GbE: {:?}", l.ten_gbe);
        assert!(l.one_gbe.0 < 1.05, "KVM hidden at 1 GbE: {:?}", l.one_gbe);
        assert!(l.one_gbe.1 < 1.05, "Xen hidden at 1 GbE: {:?}", l.one_gbe);
    }

    #[test]
    fn vapic_brings_x86_near_arm() {
        let v = vapic();
        assert!(v.x86_classic > 20 * v.arm);
        assert!(v.x86_vapic < 3 * v.arm, "{} vs {}", v.x86_vapic, v.arm);
    }

    #[test]
    fn oversubscription_sweep_is_monotone() {
        let o = oversubscription();
        // Finer timeslices cost more; KVM ARM switches cost more than
        // Xen ARM's at every point (Table II ordering preserved).
        for (_, _, kvm_arm, xen_arm, kvm_x86, _) in &o.points {
            assert!(kvm_arm > xen_arm);
            assert!(kvm_x86 < xen_arm);
        }
        let coarse = o.points[0].2;
        let fine = o.points[1].2;
        assert!(fine > 5.0 * coarse);
    }

    #[test]
    fn storage_mirrors_the_link_speed_story() {
        let st = storage().unwrap();
        assert!(st.ssd.1 > st.ssd.0, "Xen pays more on SSD: {:?}", st.ssd);
        assert!(
            st.raid5.0 < 1.02 && st.raid5.1 < 1.05,
            "RAID5 hides: {:?}",
            st.raid5
        );
    }

    #[test]
    fn fault_recovery_sweep_degrades_monotonically() {
        let f = fault_recovery().unwrap();
        assert_eq!(f.cells.len(), 16);
        for kind in HvKind::MEASURED {
            let per_hv: Vec<&FaultRecoveryCell> = f.cells.iter().filter(|c| c.hv == kind).collect();
            assert_eq!(per_hv.len(), 4);
            let clean = per_hv[0];
            assert_eq!(clean.loss, 0.0);
            assert_eq!(
                clean.faults_injected, 0,
                "{kind}: clean cell injects nothing"
            );
            assert_eq!(clean.recovery_span_cycles, 0);
            let lossy = per_hv[3];
            assert!(lossy.faults_injected > 0, "{kind}: 10% loss injects faults");
            assert!(lossy.retransmits > 0, "{kind}: loss forces retransmits");
            assert!(
                lossy.recovery_span_cycles > 0,
                "{kind}: recovery is span-attributed"
            );
            assert!(
                lossy.time_per_trans > clean.time_per_trans,
                "{kind}: loss slows transactions: {} vs {}",
                lossy.time_per_trans,
                clean.time_per_trans
            );
        }
    }

    #[test]
    fn fault_recovery_is_deterministic() {
        let a = fault_recovery().unwrap();
        let b = fault_recovery().unwrap();
        assert_eq!(render_fault_recovery(&a), render_fault_recovery(&b));
    }

    #[test]
    fn zero_copy_trade_matches_section_v() {
        let z = zero_copy().unwrap();
        // x86: shootdown cost is in the same league as (or worse than)
        // the copy — "proved more expensive than simply copying".
        assert!(z.map_ipi_shootdown as f64 > 0.9 * z.copy as f64);
        // ARM broadcast: mapping is much cheaper than copying.
        assert!(z.map_broadcast_tlbi * 4 < z.copy);
        // And it would visibly improve TCP_STREAM.
        assert!(z.stream_overhead_mapped_arm < z.stream_overhead_copy - 0.3);
    }
}
