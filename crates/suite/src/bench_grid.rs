//! The iteration-scaled benchmark grid: the Figure 4 matrix grown until
//! the loop compiler's throughput — and the parallel runner's speedup —
//! are measurable.
//!
//! The paper-default suite is deliberately small (it reproduces tables,
//! not load), so per-scenario setup dominates and neither the compiled
//! replay path nor `--jobs` fan-out has anything to chew on. This grid
//! runs the same nine workloads on the four measured hypervisors with
//! every mix's iteration count multiplied by [`DEFAULT_SCALE`]
//! ([`Mix::scaled`]): identical steady-state loops, run long enough
//! that the interpreter would take minutes while compiled replay
//! finishes in under a second.
//!
//! [`run`] measures two passes over the 36 cells — serial, then a
//! work-stealing parallel pass — and asserts cycle-exact identity
//! between them, so the benchmark doubles as a determinism check.
//! `transitions_per_sec` (simulated [`Machine::charge`] calls per
//! serial wall-second) is the headline number the perf-smoke gate
//! tracks.
//!
//! [`Machine::charge`]: hvx_engine::Machine::charge
//! [`Mix::scaled`]: crate::workloads::Mix::scaled

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use hvx_core::{SimBuilder, VirqPolicy};
use serde::Serialize;

use crate::consolidation;
use crate::paper;
use crate::rack;
use crate::workloads::{self, catalog};
use hvx_core::SchedPolicy;

/// Default iteration multiplier. Chosen so the serial pass simulates
/// well past 10^8 transitions in roughly a second of host time: small
/// enough for CI, large enough that setup cost vanishes and the
/// parallel pass has real work per cell.
pub const DEFAULT_SCALE: u32 = 2_000;

/// One grid cell: a (workload, hypervisor) pair at the grid scale.
#[derive(Debug, Clone, Serialize)]
pub struct GridCell {
    /// Figure 4 workload name.
    pub workload: &'static str,
    /// Hypervisor column, as printed in Figure 4.
    pub column: String,
    /// Makespan in simulated cycles; `None` if the mix was rejected
    /// (kept as a marked cell so both passes must reject identically).
    pub makespan_cycles: Option<u64>,
    /// Simulated transitions this cell charged.
    pub transitions: u64,
}

/// The measured grid: cells, totals, and the serial/parallel split.
#[derive(Debug, Clone, Serialize)]
pub struct GridReport {
    /// Iteration multiplier applied to every mix.
    pub scale: u32,
    /// Worker threads requested (`--jobs`).
    pub requested_jobs: usize,
    /// Worker threads the parallel pass actually used, after clamping
    /// to hardware parallelism and the cell count. On a 1-core box
    /// this is 1 even when `--jobs 4` was requested — and then
    /// [`GridReport::parallel_speedup`] is `None`, because serial-vs-
    /// serial noise is not a speedup.
    pub jobs: usize,
    /// All cells — the Figure 4 block in catalog × column order, then
    /// the consolidation block in column × ratio order (from the serial
    /// pass; the parallel pass is asserted identical).
    pub cells: Vec<GridCell>,
    /// Total simulated transitions across the grid (one pass).
    pub transitions: u64,
    /// Wall-clock of the serial pass, seconds.
    pub serial_seconds: f64,
    /// Wall-clock of the parallel pass, seconds. Equal to
    /// `serial_seconds` when `jobs == 1` (the pass is skipped).
    pub parallel_seconds: f64,
    /// Figure 4 transitions per serial wall-second — the headline
    /// throughput the perf-smoke gate tracks.
    pub grid_transitions_per_sec: f64,
    /// `serial_seconds / parallel_seconds`, or `None` when the
    /// parallel pass ran with one worker (nothing was parallel, so the
    /// ratio would be measurement noise polluting the perf trajectory).
    pub parallel_speedup: Option<f64>,
    /// Transitions charged by the consolidation-sweep segment alone.
    pub consolidation_transitions: u64,
    /// Serial wall-clock of the consolidation segment, seconds.
    pub consolidation_serial_seconds: f64,
    /// Consolidation-sweep transitions per serial wall-second — the
    /// scheduler/SMP path's own throughput number.
    pub sweep_transitions_per_sec: f64,
    /// Hosts in the rack bench scenario.
    pub rack_hosts: u32,
    /// VMs per host in the rack bench scenario.
    pub rack_vms_per_host: u32,
    /// Shard workers the rack's parallel execution used (clamped like
    /// [`GridReport::jobs`], additionally to the host count).
    pub rack_jobs: usize,
    /// Transitions charged by the rack scenario (serial execution).
    pub rack_transitions: u64,
    /// Wall-clock of the rack scenario's serial execution, seconds.
    pub rack_serial_seconds: f64,
    /// Wall-clock of the same scenario on the sharded parallel
    /// executor, seconds (equal to serial when `rack_jobs == 1`).
    pub rack_parallel_seconds: f64,
    /// Rack serial/parallel ratio — the single-scenario speedup the
    /// conservative-PDES sharding buys. `None` when `rack_jobs == 1`.
    pub rack_parallel_speedup: Option<f64>,
    /// Rack transitions per serial wall-second.
    pub rack_transitions_per_sec: f64,
    /// Conservative windows the rack scenario executed.
    pub rack_windows: u64,
    /// Host-shards found stalled (no event inside the lookahead
    /// horizon) summed over all windows — the sharding's idle tax.
    pub rack_lookahead_stalls: u64,
    /// Median events per window (power-of-two bucket upper bound).
    pub rack_window_events_p50: u64,
    /// 99th-percentile events per window.
    pub rack_window_events_p99: u64,
    /// 95th-percentile per-window spread between the busiest and
    /// idlest host — how unevenly work lands across shards.
    pub rack_imbalance_p95: u64,
}

/// One measured cell: makespan in cycles (`None` if rejected) and
/// transitions charged.
type CellMeasure = (Option<u64>, u64);

/// One unit of grid work: a Figure 4 cell or a consolidation cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GridItem {
    /// `catalog()[workload]` on `paper::COLUMNS[column]`, scaled.
    Fig4 { workload: usize, column: usize },
    /// `paper::COLUMNS[column]` at `ratio`:1 under the credit
    /// scheduler, transaction count scaled.
    Consol { column: usize, ratio: u32 },
}

/// Consolidation ratios the grid samples (the endpoints plus the knee;
/// the full [`consolidation::RATIOS`] sweep belongs to the artifact).
const GRID_RATIOS: [u32; 3] = [1, 4, 16];

/// Runs one cell on a fresh machine and returns `(makespan,
/// transitions charged)`. Honors the ambient `HVX_COMPILE` toggle, so
/// `HVX_COMPILE=off hvx-repro bench` measures the interpreter.
fn run_cell(item: GridItem, scale: u32) -> CellMeasure {
    let before = hvx_engine::thread_transitions();
    let makespan = match item {
        GridItem::Fig4 { workload, column } => {
            let mix = catalog()[workload].mix.scaled(scale);
            let kind = paper::COLUMNS[column];
            SimBuilder::new(kind)
                .build()
                .ok()
                .map(|sim| sim.into_inner())
                .and_then(|mut hv| {
                    workloads::run(hv.as_mut(), mix, VirqPolicy::Vcpu0)
                        .ok()
                        .map(|c| c.as_u64())
                })
        }
        GridItem::Consol { column, ratio } => consolidation::run_cell(
            paper::COLUMNS[column],
            ratio,
            SchedPolicy::Credit,
            consol_txns(scale),
            workloads::compile_enabled(),
        )
        .ok()
        .map(|c| c.makespan_cycles),
    };
    (makespan, hvx_engine::thread_transitions() - before)
}

/// Transactions per VM for grid consolidation cells, scaled like the
/// Figure 4 iteration counts.
fn consol_txns(scale: u32) -> u32 {
    (scale * 2).max(consolidation::TRANSACTIONS_PER_VM)
}

/// Hosts in the rack bench scenario — wide enough that `--jobs 4`
/// leaves every shard worker two hosts per window.
const RACK_BENCH_HOSTS: u32 = 8;

/// VMs per host in the rack bench scenario. Far past the artifact's
/// [`rack::VMS_PER_HOST`]: each conservative window must carry enough
/// events per host to amortize the per-window thread fan-out, or the
/// sharded executor measures spawn overhead instead of simulation.
const RACK_BENCH_VMS: u32 = 192;

/// Ring laps for the rack bench scenario, scaled like the grid.
fn rack_rounds(scale: u32) -> u32 {
    (scale / 40).max(4)
}

fn rack_bench_config(scale: u32, jobs: usize) -> rack::CellConfig {
    rack::CellConfig {
        composition: rack::Composition::Mixed,
        hosts: RACK_BENCH_HOSTS,
        vms_per_host: RACK_BENCH_VMS,
        rounds: rack_rounds(scale),
        jobs,
        fault: None,
    }
}

/// Measures the grid: serial pass, parallel pass (when `jobs > 1`),
/// identity check, report.
///
/// # Panics
///
/// Panics if the parallel pass produces any cell whose makespan or
/// transition count differs from the serial pass — that would mean the
/// simulation is not deterministic, and no benchmark number from such
/// a build can be trusted.
pub fn run(jobs: usize, scale: u32) -> GridReport {
    run_inner(jobs, scale, true)
}

/// [`run`] with the hardware-parallelism clamp optional, so tests can
/// force the worker pool (and its identity check) on any host.
fn run_inner(jobs: usize, scale: u32, clamp_to_hw: bool) -> GridReport {
    let mut items: Vec<GridItem> = (0..catalog().len())
        .flat_map(|w| {
            (0..paper::COLUMNS.len()).map(move |c| GridItem::Fig4 {
                workload: w,
                column: c,
            })
        })
        .collect();
    let fig4_items = items.len();
    for column in 0..paper::COLUMNS.len() {
        for ratio in GRID_RATIOS {
            items.push(GridItem::Consol { column, ratio });
        }
    }

    // Serial pass: the Figure 4 segment and the consolidation segment
    // are timed separately so each path gets its own throughput number.
    let serial_start = Instant::now();
    let mut serial: Vec<CellMeasure> = items[..fig4_items]
        .iter()
        .map(|&item| run_cell(item, scale))
        .collect();
    let fig4_seconds = serial_start.elapsed().as_secs_f64();
    let consol_start = Instant::now();
    serial.extend(
        items[fig4_items..]
            .iter()
            .map(|&item| run_cell(item, scale)),
    );
    let consolidation_serial_seconds = consol_start.elapsed().as_secs_f64();
    let serial_seconds = serial_start.elapsed().as_secs_f64();

    // More workers than hardware threads is pure oversubscription —
    // context switches with zero extra throughput — so `--jobs 4` on a
    // small box degrades to break-even instead of a slowdown.
    let hw = if clamp_to_hw {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        usize::MAX
    };
    let workers = jobs.min(items.len()).min(hw);
    let (parallel_seconds, parallel) = if workers > 1 {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CellMeasure>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&item) = items.get(idx) else { break };
                    let cell = run_cell(item, scale);
                    *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) = Some(cell);
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        let results: Vec<CellMeasure> = slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("scoped workers drain every slot")
            })
            .collect();
        (elapsed, Some(results))
    } else {
        (serial_seconds, None)
    };

    if let Some(parallel) = &parallel {
        for (i, (s, p)) in serial.iter().zip(parallel).enumerate() {
            assert_eq!(
                s, p,
                "grid cell {:?} diverged between serial and parallel passes",
                items[i]
            );
        }
    }

    let cells: Vec<GridCell> = items
        .iter()
        .zip(&serial)
        .map(|(&item, &(makespan_cycles, transitions))| match item {
            GridItem::Fig4 { workload, column } => GridCell {
                workload: catalog()[workload].name,
                column: paper::COLUMNS[column].to_string(),
                makespan_cycles,
                transitions,
            },
            GridItem::Consol { column, ratio } => GridCell {
                workload: "Consolidation",
                column: format!("{} {ratio}:1", paper::COLUMNS[column]),
                makespan_cycles,
                transitions,
            },
        })
        .collect();
    // Rack segment: one ≥8-host scenario run twice on the sharded
    // executor — serial reference, then window-parallel — timing both
    // and asserting the results are byte-identical. This is the
    // single-scenario speedup the PDES sharding exists for; the grid
    // passes above only parallelize *across* scenarios.
    let rack_start = Instant::now();
    let before = hvx_engine::thread_transitions();
    let rack_serial = rack::run_cell_with(&rack_bench_config(scale, 1))
        .expect("rack bench cell runs on measured hypervisors");
    let rack_transitions = hvx_engine::thread_transitions() - before;
    let rack_serial_seconds = rack_start.elapsed().as_secs_f64();
    let rack_jobs = jobs.min(RACK_BENCH_HOSTS as usize).min(hw);
    let (rack_parallel_seconds, rack_parallel_speedup) = if rack_jobs > 1 {
        let start = Instant::now();
        let rack_parallel = rack::run_cell_with(&rack_bench_config(scale, rack_jobs))
            .expect("rack bench cell runs on measured hypervisors");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            rack_serial, rack_parallel,
            "rack scenario diverged between serial and sharded-parallel execution"
        );
        (secs, Some(rack_serial_seconds / secs.max(1e-9)))
    } else {
        (rack_serial_seconds, None)
    };

    let transitions: u64 = cells.iter().map(|c| c.transitions).sum();
    let consolidation_transitions: u64 = cells[fig4_items..].iter().map(|c| c.transitions).sum();
    let fig4_transitions = transitions - consolidation_transitions;
    GridReport {
        scale,
        requested_jobs: jobs,
        jobs: workers,
        cells,
        transitions,
        serial_seconds,
        parallel_seconds,
        grid_transitions_per_sec: fig4_transitions as f64 / fig4_seconds.max(1e-9),
        parallel_speedup: (workers > 1).then(|| serial_seconds / parallel_seconds.max(1e-9)),
        consolidation_transitions,
        consolidation_serial_seconds,
        sweep_transitions_per_sec: consolidation_transitions as f64
            / consolidation_serial_seconds.max(1e-9),
        rack_hosts: RACK_BENCH_HOSTS,
        rack_vms_per_host: RACK_BENCH_VMS,
        rack_jobs,
        rack_transitions,
        rack_serial_seconds,
        rack_parallel_seconds,
        rack_parallel_speedup,
        rack_transitions_per_sec: rack_transitions as f64 / rack_serial_seconds.max(1e-9),
        rack_windows: rack_serial.windows,
        rack_lookahead_stalls: rack_serial.lookahead_stalls,
        rack_window_events_p50: rack_serial.window_events_p50,
        rack_window_events_p99: rack_serial.window_events_p99,
        rack_imbalance_p95: rack_serial.imbalance_p95,
    }
}

/// Renders the report as the `hvx-repro bench` grid section.
pub fn render(r: &GridReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "benchmark grid: {} cells at scale {} ({} transitions)\n",
        r.cells.len(),
        r.scale,
        r.transitions
    ));
    out.push_str(&format!(
        "  serial   {:>8.3}s  {:>12.0} transitions/sec\n",
        r.serial_seconds, r.grid_transitions_per_sec
    ));
    match r.parallel_speedup {
        Some(speedup) => out.push_str(&format!(
            "  parallel {:>8.3}s  {:.2}x with {} jobs\n",
            r.parallel_seconds, speedup, r.jobs
        )),
        None => out.push_str(&format!(
            "  parallel       skipped (1 effective worker, {} requested)\n",
            r.requested_jobs
        )),
    }
    out.push_str(&format!(
        "  sweep    {:>8.3}s  {:>12.0} transitions/sec ({} consolidation transitions)\n",
        r.consolidation_serial_seconds, r.sweep_transitions_per_sec, r.consolidation_transitions
    ));
    match r.rack_parallel_speedup {
        Some(speedup) => out.push_str(&format!(
            "  rack     {:>8.3}s  {:>12.0} transitions/sec, {:.2}x sharded with {} workers\n",
            r.rack_serial_seconds, r.rack_transitions_per_sec, speedup, r.rack_jobs
        )),
        None => out.push_str(&format!(
            "  rack     {:>8.3}s  {:>12.0} transitions/sec (sharded pass skipped: 1 worker)\n",
            r.rack_serial_seconds, r.rack_transitions_per_sec
        )),
    }
    out.push_str(&format!(
        "  rack windows: {} ({} stalls), events/window p50 {} p99 {}, imbalance p95 {}\n",
        r.rack_windows,
        r.rack_lookahead_stalls,
        r.rack_window_events_p50,
        r.rack_window_events_p99,
        r.rack_imbalance_p95
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scale small enough for tests while still compiling every loop.
    const TEST_SCALE: u32 = 20;

    #[test]
    fn grid_cells_are_deterministic_and_nonempty() {
        let a = run(1, TEST_SCALE);
        let b = run(1, TEST_SCALE);
        assert_eq!(
            a.cells.len(),
            catalog().len() * paper::COLUMNS.len() + GRID_RATIOS.len() * paper::COLUMNS.len()
        );
        assert!(a.transitions > 0);
        assert!(a.consolidation_transitions > 0);
        assert!(a.transitions > a.consolidation_transitions);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(
                x.makespan_cycles, y.makespan_cycles,
                "{} {}",
                x.workload, x.column
            );
            assert_eq!(x.transitions, y.transitions, "{} {}", x.workload, x.column);
        }
    }

    #[test]
    fn parallel_pass_matches_serial_pass() {
        // run_inner() itself asserts per-cell identity between the
        // passes; bypass the hardware clamp so the pool actually spins
        // up even on a single-core CI box.
        let r = run_inner(4, TEST_SCALE, false);
        assert_eq!(r.jobs, 4);
        assert!(r.parallel_seconds > 0.0);
        assert!(r.grid_transitions_per_sec > 0.0);
        assert!(r.sweep_transitions_per_sec > 0.0);
        assert!(render(&r).contains("benchmark grid"));
    }

    #[test]
    fn scaled_cells_charge_proportionally_more() {
        let small = run(1, 5);
        let big = run(1, 50);
        // 10x iterations => ~10x transitions (setup amortizes away).
        // Compare the Figure 4 segment: consolidation transaction
        // counts clamp to the artifact floor at these tiny scales.
        let small_fig4 = small.transitions - small.consolidation_transitions;
        let big_fig4 = big.transitions - big.consolidation_transitions;
        assert!(big_fig4 > small_fig4 * 5);
    }
}
