//! The Table I microbenchmark suite and the Table II runner.

use crate::paper;
use hvx_core::{Error, HvKind, Hypervisor, HypervisorExt, SimBuilder};
use hvx_engine::Cycles;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven microbenchmarks of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Micro {
    /// Transition from VM to hypervisor and return without doing any
    /// work — the bidirectional base transition cost.
    Hypercall,
    /// Trap from VM to the emulated interrupt controller and return.
    InterruptControllerTrap,
    /// Virtual IPI from one VCPU to another on a different PCPU.
    VirtualIpi,
    /// VM acknowledging and completing a virtual interrupt.
    VirtualIrqCompletion,
    /// Switch from one VM to another on the same physical core.
    VmSwitch,
    /// VM driver signal → virtual I/O device receives it.
    IoLatencyOut,
    /// Virtual I/O device signal → VM receives the virtual interrupt.
    IoLatencyIn,
}

impl Micro {
    /// All seven, in Table I/II row order.
    pub const ALL: [Micro; 7] = [
        Micro::Hypercall,
        Micro::InterruptControllerTrap,
        Micro::VirtualIpi,
        Micro::VirtualIrqCompletion,
        Micro::VmSwitch,
        Micro::IoLatencyOut,
        Micro::IoLatencyIn,
    ];

    /// The Table I description of this microbenchmark.
    pub fn description(self) -> &'static str {
        match self {
            Micro::Hypercall => {
                "Transition from VM to hypervisor and return to VM without doing \
                 any work in the hypervisor. Measures bidirectional base \
                 transition cost of hypervisor operations."
            }
            Micro::InterruptControllerTrap => {
                "Trap from VM to emulated interrupt controller then return to VM. \
                 Measures a frequent operation for many device drivers and \
                 baseline for accessing I/O devices emulated in the hypervisor."
            }
            Micro::VirtualIpi => {
                "Issue a virtual IPI from a VCPU to another VCPU running on a \
                 different PCPU, both PCPUs executing VM code. Measures time \
                 between sending the virtual IPI until the receiving VCPU \
                 handles it, a frequent operation in multi-core OSes."
            }
            Micro::VirtualIrqCompletion => {
                "VM acknowledging and completing a virtual interrupt. Measures a \
                 frequent operation that happens for every injected virtual \
                 interrupt."
            }
            Micro::VmSwitch => {
                "Switch from one VM to another on the same physical core. \
                 Measures a central cost when oversubscribing physical CPUs."
            }
            Micro::IoLatencyOut => {
                "Measures latency between a driver in the VM signaling the \
                 virtual I/O device in the hypervisor and the virtual I/O \
                 device receiving the signal."
            }
            Micro::IoLatencyIn => {
                "Measures latency between the virtual I/O device in the \
                 hypervisor signaling the VM and the VM receiving the \
                 corresponding virtual interrupt."
            }
        }
    }

    /// Runs this microbenchmark once on `hv` and returns the measured
    /// cycles.
    pub fn run_once(self, hv: &mut dyn Hypervisor) -> Cycles {
        match self {
            Micro::Hypercall => hv.hypercall(0),
            Micro::InterruptControllerTrap => hv.gicd_trap(0),
            Micro::VirtualIpi => hv.virtual_ipi(0, 1),
            Micro::VirtualIrqCompletion => hv.virq_complete(0),
            Micro::VmSwitch => hv.vm_switch(),
            Micro::IoLatencyOut => hv.io_latency_out(0),
            Micro::IoLatencyIn => hv.io_latency_in(0),
        }
    }

    /// Runs `iters` iterations with barriers between them and returns the
    /// mean (the framework of §IV). Iterations fold into a streaming
    /// accumulator — no per-sample storage — and the streaming mean is
    /// bit-identical to the stored-samples mean.
    pub fn run(self, hv: &mut dyn Hypervisor, iters: usize) -> Cycles {
        hv.sample_streaming(iters, |h| self.run_once(h))
            .summary()
            .mean_cycles()
    }
}

impl fmt::Display for Micro {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Micro::Hypercall => "Hypercall",
            Micro::InterruptControllerTrap => "Interrupt Controller Trap",
            Micro::VirtualIpi => "Virtual IPI",
            Micro::VirtualIrqCompletion => "Virtual IRQ Completion",
            Micro::VmSwitch => "VM Switch",
            Micro::IoLatencyOut => "I/O Latency Out",
            Micro::IoLatencyIn => "I/O Latency In",
        };
        f.pad(s)
    }
}

/// One reproduced cell of Table II.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Cell {
    /// Configuration measured.
    pub hv: HvKind,
    /// Our measured cycles.
    pub measured: u64,
    /// The paper's published cycles.
    pub paper: u64,
    /// Relative error, `(measured - paper) / paper`.
    pub error: f64,
}

/// The reproduced Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// One row per microbenchmark, 4 cells each.
    pub rows: Vec<(Micro, [Cell; 4])>,
}

impl Table2 {
    /// Runs the full microbenchmark suite on all four measured
    /// configurations.
    ///
    /// # Errors
    ///
    /// Propagates configuration failures (e.g. a rejected cost
    /// perturbation) so the runner can degrade the artifact.
    pub fn measure(iters: usize) -> Result<Table2, Error> {
        // Thousands of iterations × dozens of charged steps each: keep
        // only (kind, label) totals instead of storing every TraceEvent.
        // Breakdown queries stay exact; the charge hot path stops
        // allocating.
        let mut hvs: Vec<Box<dyn Hypervisor>> = Vec::with_capacity(paper::COLUMNS.len());
        for kind in paper::COLUMNS {
            hvs.push(
                SimBuilder::new(kind)
                    .tracing(hvx_engine::TraceMode::Aggregate)
                    .build()?
                    .into_inner(),
            );
        }
        let mut rows = Vec::new();
        for (mi, micro) in Micro::ALL.into_iter().enumerate() {
            let paper_row = paper::TABLE2[mi].1;
            let mut cells = Vec::new();
            for (ci, hv) in hvs.iter_mut().enumerate() {
                let measured = micro.run(hv.as_mut(), iters).as_u64();
                let paper = paper_row[ci];
                cells.push(Cell {
                    hv: paper::COLUMNS[ci],
                    measured,
                    paper,
                    error: (measured as f64 - paper as f64) / paper as f64,
                });
            }
            // Static invariant: `paper::COLUMNS` has exactly four
            // entries, so the per-row cell vector always converts.
            rows.push((micro, cells.try_into().expect("four columns")));
        }
        Ok(Table2 { rows })
    }

    /// Largest absolute relative error across all 28 cells.
    pub fn worst_error(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|(_, cells)| cells.iter())
            .map(|c| c.error.abs())
            .fold(0.0, f64::max)
    }

    /// Renders the table in the paper's layout, with per-cell residuals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28}{:>14}{:>14}{:>14}{:>14}\n",
            "Microbenchmark", "KVM ARM", "Xen ARM", "KVM x86", "Xen x86"
        ));
        out.push_str(&"-".repeat(28 + 4 * 14));
        out.push('\n');
        for (micro, cells) in &self.rows {
            out.push_str(&format!("{:<28}", micro.to_string()));
            for c in cells {
                out.push_str(&format!("{:>14}", Cycles::new(c.measured).to_string()));
            }
            out.push('\n');
            out.push_str(&format!("{:<28}", "  (paper / error)"));
            for c in cells {
                out.push_str(&format!(
                    "{:>14}",
                    format!("{} {:+.1}%", Cycles::new(c.paper), c.error * 100.0)
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_table_i() {
        assert_eq!(Micro::ALL.len(), 7);
        for m in Micro::ALL {
            assert!(!m.description().is_empty());
            assert!(!m.to_string().is_empty());
        }
    }

    #[test]
    fn table2_reproduces_within_five_percent() {
        let t = Table2::measure(3).unwrap();
        assert_eq!(t.rows.len(), 7);
        assert!(
            t.worst_error() < 0.05,
            "worst Table II residual {:.1}% exceeds 5%:\n{}",
            t.worst_error() * 100.0,
            t.render()
        );
    }

    #[test]
    fn measurements_are_deterministic_across_iterations() {
        let a = Table2::measure(2).unwrap();
        let b = Table2::measure(5).unwrap();
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            for (ca, cb) in ra.1.iter().zip(&rb.1) {
                assert_eq!(ca.measured, cb.measured);
            }
        }
    }

    #[test]
    fn render_contains_all_rows_and_columns() {
        let t = Table2::measure(1).unwrap();
        let s = t.render();
        for (m, _) in &t.rows {
            assert!(s.contains(&m.to_string()));
        }
        assert!(s.contains("KVM ARM"));
        assert!(s.contains("Xen x86"));
    }
}
