//! Running a scenario straight from a [`ScenarioSpec`] file.
//!
//! `hvx-repro run --spec FILE` deserializes a JSON [`ScenarioSpec`],
//! validates its topology shape, and dispatches it to the engine that
//! implements that shape:
//!
//! * **Paper** shape → [`SimBuilder::from_spec`] plus the Figure 4
//!   workload engine ([`workloads::run`]) — exactly the path a
//!   builder-constructed run takes, so the output is byte-identical to
//!   the equivalent fluent-API invocation.
//! * **Consolidation** shape → [`consolidation::run_cell`], the SMP
//!   oversubscription cell with the spec's vCPU scheduler.
//!
//! The rendered report deliberately omits loop-compiler internals
//! (`iters_replayed`), so output is byte-identical whether the engine
//! compiled the steady state or interpreted it — the differential tests
//! already pin the numbers themselves together.

use crate::consolidation::{self, TRANSACTIONS_PER_VM};
use crate::profile::mix_for;
use crate::rack;
use crate::workloads;
use hvx_core::report::CellReport;
use hvx_core::{Error, ScenarioSpec, SimBuilder, SpecShape, Workload};
use std::path::Path;

/// Reads and deserializes a spec file.
///
/// # Errors
///
/// [`Error::InvalidSpec`] when the file cannot be read or does not
/// parse as a [`ScenarioSpec`].
pub fn load(path: &Path) -> Result<ScenarioSpec, Error> {
    let text = std::fs::read_to_string(path).map_err(|e| Error::InvalidSpec {
        detail: format!("{}: {e}", path.display()),
    })?;
    parse(&text).map_err(|e| match e {
        Error::InvalidSpec { detail } => Error::InvalidSpec {
            detail: format!("{}: {detail}", path.display()),
        },
        other => other,
    })
}

/// Deserializes a spec from JSON text.
///
/// # Errors
///
/// [`Error::InvalidSpec`] on malformed JSON or a JSON shape that does
/// not match the spec's data model.
pub fn parse(text: &str) -> Result<ScenarioSpec, Error> {
    serde_json::from_str::<ScenarioSpec>(text).map_err(|e| Error::InvalidSpec {
        detail: format!("spec does not parse: {e}"),
    })
}

/// Serializes a spec as pretty-printed JSON (the format [`load`]
/// reads back; the round trip is lossless).
pub fn to_json(spec: &ScenarioSpec) -> String {
    let mut s = serde_json::to_string_pretty(spec).expect("a spec always serializes");
    s.push('\n');
    s
}

/// Runs the scenario a spec describes and renders its report.
///
/// # Errors
///
/// [`Error::InvalidSpec`] for topologies no model implements or knob
/// combinations a shape does not support; engine errors pass through.
pub fn run_spec(spec: &ScenarioSpec) -> Result<String, Error> {
    match spec.shape()? {
        SpecShape::Paper => run_paper(spec),
        SpecShape::Consolidation { ratio } => run_consolidation(spec, ratio),
        SpecShape::Rack {
            hosts,
            vms_per_host,
        } => run_rack(spec, hosts, vms_per_host),
    }
}

/// A spec run's two faces: the rendered report (what `run --spec`
/// prints) and the machine-readable per-cell record the sweep server
/// and `--out json` put on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecRun {
    /// The rendered report text, byte-identical to [`run_spec`].
    pub report: String,
    /// The structured record: label, content fingerprint, failure.
    pub cell: CellReport,
}

/// A short human-readable label for a spec (`"KVM ARM consolidation
/// 8:1"`), used by job listings and structured reports.
pub fn label(spec: &ScenarioSpec) -> String {
    match spec.shape() {
        Ok(SpecShape::Paper) => format!("{} paper", spec.hypervisor),
        Ok(SpecShape::Consolidation { ratio }) => {
            format!("{} consolidation {ratio}:1", spec.hypervisor)
        }
        Ok(SpecShape::Rack {
            hosts,
            vms_per_host,
        }) => format!("{} rack {hosts}x{vms_per_host}", spec.hypervisor),
        Err(_) => format!("{} (invalid shape)", spec.hypervisor),
    }
}

/// [`run_spec`] with a structured result: the rendered report plus a
/// [`CellReport`] carrying the spec's content fingerprint.
///
/// # Errors
///
/// Same as [`run_spec`].
pub fn run_spec_report(spec: &ScenarioSpec) -> Result<SpecRun, Error> {
    let report = run_spec(spec)?;
    Ok(SpecRun {
        report,
        cell: CellReport {
            scenario: label(spec),
            fingerprint: Some(crate::cache::spec_fingerprint(spec).to_hex()),
            retries: 0,
            cached: false,
            failure: None,
        },
    })
}

fn run_paper(spec: &ScenarioSpec) -> Result<String, Error> {
    let workload = spec.workload.unwrap_or(Workload::Netperf);
    let mix = mix_for(workload)?;
    let mut sim = SimBuilder::from_spec(spec.clone()).build()?;
    let makespan = workloads::run(sim.as_dyn_mut(), mix, spec.virq_policy)?;
    let mut out = String::new();
    out.push_str("== scenario spec run ==\n");
    out.push_str(&format!("hypervisor:   {}\n", spec.hypervisor));
    out.push_str("shape:        paper (1 VM, 4 vCPUs on 4 pCPUs, pinned)\n");
    out.push_str(&format!("workload:     {workload}\n"));
    out.push_str(&format!("makespan:     {} cycles\n", makespan.as_u64()));
    Ok(out)
}

fn run_consolidation(spec: &ScenarioSpec, ratio: u32) -> Result<String, Error> {
    // The consolidation cell models its own TCP_RR-style transaction
    // loop; knobs that only the paper-shape machine implements are
    // rejected rather than silently dropped.
    if let Some(w) = spec.workload {
        if w != Workload::TcpRr && w != Workload::Netperf {
            return Err(Error::InvalidSpec {
                detail: format!("consolidation cells run TCP_RR; got workload '{w}'"),
            });
        }
    }
    let txns = spec.transactions.unwrap_or(TRANSACTIONS_PER_VM);
    let fault = spec.fault_plan()?;
    let cell = consolidation::run_cell_with(consolidation::CellConfig {
        kind: spec.hypervisor,
        ratio,
        policy: spec.scheduler,
        txns_per_vm: txns,
        // Fault-armed cells always interpret (loop_begin declines a
        // machine with faults installed); clean cells keep the
        // ambient compile toggle.
        compile: workloads::compile_enabled(),
        profiling: false,
        fault: fault.clone(),
    })?;
    let mut out = String::new();
    out.push_str("== scenario spec run ==\n");
    out.push_str(&format!("hypervisor:   {}\n", spec.hypervisor));
    out.push_str(&format!(
        "shape:        consolidation ({ratio} VMs x 2 vCPUs on 2 pCPUs, {}:1)\n",
        ratio
    ));
    out.push_str(&format!("scheduler:    {}\n", cell.sched));
    out.push_str(&format!(
        "transactions: {} ({} per VM)\n",
        cell.transactions, cell.txns_per_vm
    ));
    out.push_str(&format!("mean TCP_RR:  {:.2} us\n", cell.mean_latency_us()));
    out.push_str(&format!(
        "steal:        {} cycles ({:.2}% of 2 pCPUs)\n",
        cell.steal_cycles,
        cell.steal_pct()
    ));
    out.push_str(&format!("lock spin:    {} cycles\n", cell.lock_spin_cycles));
    out.push_str(&format!(
        "vm switches:  {} ({} preemptions, {} timer fires)\n",
        cell.vm_switches, cell.preemptions, cell.timer_fires
    ));
    out.push_str(&format!(
        "virtual IPIs: {} sent, {} coalesced\n",
        cell.ipis_sent, cell.ipis_coalesced
    ));
    // Fault lines appear only for fault-armed specs, so clean-spec
    // output stays byte-identical to what it was before fault support
    // (the smoke scripts and baselines compare those bytes).
    if fault.is_some() {
        out.push_str(&format!(
            "faults:       {} kicks dropped, {} resent after timeout\n",
            cell.ipis_dropped, cell.ipis_resent
        ));
    }
    out.push_str(&format!("makespan:     {} cycles\n", cell.makespan_cycles));
    Ok(out)
}

fn run_rack(spec: &ScenarioSpec, hosts: u32, vms_per_host: u32) -> Result<String, Error> {
    // The rack ring is a TCP_RR workload by construction.
    if let Some(w) = spec.workload {
        if w != Workload::TcpRr && w != Workload::Netperf {
            return Err(Error::InvalidSpec {
                detail: format!("rack cells run TCP_RR; got workload '{w}'"),
            });
        }
    }
    let composition = match spec.hypervisor {
        hvx_core::HvKind::KvmArm => rack::Composition::AllKvm,
        hvx_core::HvKind::XenArm => rack::Composition::AllXen,
        other => {
            return Err(Error::InvalidSpec {
                detail: format!("rack cells model ARM hypervisors; got '{other}'"),
            })
        }
    };
    let rounds = spec.transactions.unwrap_or(rack::ROUNDS);
    let fault = spec.fault_plan()?;
    let cell = rack::run_cell_with(&rack::CellConfig {
        composition,
        hosts,
        vms_per_host,
        rounds,
        jobs: 1,
        fault: fault.clone(),
    })?;
    let mut out = String::new();
    out.push_str("== scenario spec run ==\n");
    out.push_str(&format!("hypervisor:   {}\n", spec.hypervisor));
    out.push_str(&format!(
        "shape:        rack ({hosts} hosts x {vms_per_host} VMs, TCP_RR ring, {rounds} rounds)\n"
    ));
    out.push_str(&format!(
        "requests:     {} ({} wire hops, {} windows)\n",
        cell.requests, cell.wire_hops, cell.windows
    ));
    out.push_str(&format!("mean service: {:.2} us\n", cell.mean_service_us()));
    if fault.is_some() {
        out.push_str(&format!(
            "faults:       {} tokens dropped\n",
            cell.wire_drops
        ));
    }
    out.push_str(&format!("makespan:     {} cycles\n", cell.makespan_cycles));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvx_core::{HvKind, SchedPolicy, VirqPolicy};

    #[test]
    fn spec_json_round_trips_losslessly() {
        let mut spec = ScenarioSpec::consolidation(HvKind::XenArm, 8, SchedPolicy::Cfs);
        spec.transactions = Some(24);
        let text = to_json(&spec);
        let back = parse(&text).unwrap();
        assert_eq!(back, spec);
        // And the re-rendered JSON is byte-identical.
        assert_eq!(to_json(&back), text);
    }

    #[test]
    fn paper_spec_matches_the_builder_path_byte_for_byte() {
        let spec = ScenarioSpec::paper(HvKind::KvmArm).with_workload(Workload::TcpRr);
        let via_spec = run_spec(&spec).unwrap();
        // The "equivalent builder run": fluent construction, same engine.
        let mut sim = SimBuilder::new(HvKind::KvmArm)
            .workload(Workload::TcpRr)
            .build()
            .unwrap();
        let makespan = workloads::run(
            sim.as_dyn_mut(),
            mix_for(Workload::TcpRr).unwrap(),
            VirqPolicy::Vcpu0,
        )
        .unwrap();
        assert!(via_spec.contains(&format!("makespan:     {} cycles", makespan.as_u64())));
        // Re-running the spec reproduces the exact bytes.
        assert_eq!(run_spec(&spec).unwrap(), via_spec);
    }

    #[test]
    fn consolidation_spec_runs_a_cell() {
        let mut spec = ScenarioSpec::consolidation(HvKind::KvmArm, 4, SchedPolicy::Credit);
        spec.transactions = Some(8);
        let out = run_spec(&spec).unwrap();
        assert!(out.contains("consolidation (4 VMs"), "{out}");
        assert!(out.contains("scheduler:    credit"), "{out}");
        assert!(out.contains("transactions: 32 (8 per VM)"), "{out}");
    }

    #[test]
    fn unsupported_knobs_are_rejected_not_dropped() {
        let mut wl = ScenarioSpec::consolidation(HvKind::KvmArm, 2, SchedPolicy::Credit);
        wl.workload = Some(Workload::Mysql);
        assert!(matches!(run_spec(&wl), Err(Error::InvalidSpec { .. })));
        // A malformed fault plan is a spec error, not a panic.
        let mut bad = ScenarioSpec::consolidation(HvKind::KvmArm, 2, SchedPolicy::Credit);
        bad.fault = Some(hvx_core::FaultSpec {
            plan: "not-a-plan".into(),
            seed: 1,
        });
        assert!(matches!(run_spec(&bad), Err(Error::InvalidSpec { .. })));
    }

    #[test]
    fn consolidation_specs_accept_fault_plans_and_report_them() {
        let mut spec = ScenarioSpec::consolidation(HvKind::KvmArm, 4, SchedPolicy::Credit);
        spec.transactions = Some(8);
        let clean = run_spec(&spec).unwrap();
        assert!(!clean.contains("faults:"), "clean specs stay byte-stable");
        spec.fault = Some(hvx_core::FaultSpec {
            plan: "virq_drop=300000e-6".into(),
            seed: 11,
        });
        let faulted = run_spec(&spec).unwrap();
        assert!(faulted.contains("faults:"), "{faulted}");
        assert!(faulted.contains("kicks dropped"), "{faulted}");
        // Dropped kicks stall transactions: the reports must differ in
        // more than the fault line.
        assert_ne!(
            clean.lines().last(),
            faulted.lines().last(),
            "makespan must stretch under drops"
        );
        // Determinism: same spec, same bytes.
        assert_eq!(run_spec(&spec).unwrap(), faulted);
    }

    #[test]
    fn rack_spec_runs_a_ring() {
        let mut spec = ScenarioSpec::rack(HvKind::KvmArm, 4, 2);
        spec.transactions = Some(2);
        let out = run_spec(&spec).unwrap();
        assert!(out.contains("rack (4 hosts x 2 VMs"), "{out}");
        assert!(out.contains("requests:"), "{out}");
        assert_eq!(run_spec(&spec).unwrap(), out, "rack runs are deterministic");
        assert_eq!(label(&spec), "KVM ARM rack 4x2");
        // x86 kinds have no place in the ARM rack sweep.
        let x86 = ScenarioSpec::rack(HvKind::KvmX86, 4, 2);
        assert!(matches!(run_spec(&x86), Err(Error::InvalidSpec { .. })));
    }

    #[test]
    fn structured_reports_carry_the_spec_fingerprint() {
        let mut spec = ScenarioSpec::consolidation(HvKind::KvmArm, 2, SchedPolicy::Credit);
        spec.transactions = Some(4);
        let run = run_spec_report(&spec).unwrap();
        assert_eq!(run.report, run_spec(&spec).unwrap());
        assert_eq!(run.cell.scenario, "KVM ARM consolidation 2:1");
        assert_eq!(
            run.cell.fingerprint.as_deref(),
            Some(crate::cache::spec_fingerprint(&spec).to_hex().as_str())
        );
        assert!(run.cell.ok());
    }

    #[test]
    fn malformed_spec_text_reports_invalid_spec() {
        assert!(matches!(parse("{"), Err(Error::InvalidSpec { .. })));
        assert!(matches!(
            parse("{\"hypervisor\": \"KvmArm\"}"),
            Err(Error::InvalidSpec { .. })
        ));
    }
}
