//! The rack sweep: H hosts × N VMs serving TCP_RR traffic over the
//! sharded conservative-PDES executor.
//!
//! The paper's multi-VM results (Figs. 9–10, §VI) measure contention
//! *within* one server; this artifact scales the same TCP_RR
//! transaction shape *across* servers. Each host in the rack runs its
//! own hypervisor ([`Composition`] picks Xen vs KVM per host index) on
//! its own [`Machine`], and every VM owns a request token that
//! circulates the ring of hosts: each hop is one RR transaction
//! (virtual-interrupt delivery, guest request processing, EOI, then an
//! IPI-kicked NIC send onto the wire to the next host).
//!
//! The inter-host wire latency [`RACK_WIRE`] is the **lookahead bound**
//! handed to [`ShardSim`]: hosts simulate independently inside each
//! conservative window and only synchronize at wire granularity, which
//! is what finally lets `--jobs` parallelize a single scenario rather
//! than just the scenario matrix. All result fields are integers and
//! every per-host quantity is machine-owned (never the thread-local
//! transition counter), so serial and parallel execution serialize to
//! byte-identical JSON — `tests/rack_diff.rs` pins that across the
//! composition × host-count × fault-plan grid.

use hvx_core::{Error, HvKind, SimBuilder};
use hvx_engine::shard::{HostCtx, HostModel, ShardSim};
use hvx_engine::{Cycles, FaultPlan, FaultPoint, Machine, Topology, TraceKind};

use serde::{Deserialize, Serialize};

/// Inter-host wire latency in cycles (~42 µs at 2.4 GHz): an
/// in-rack round-trip-scale figure, and the conservative lookahead
/// bound — no message may travel faster, so a host may run this far
/// past the global virtual-time floor without synchronizing.
pub const RACK_WIRE: u64 = 100_000;

/// Default laps each VM's token makes around the ring.
pub const ROUNDS: u32 = 6;

/// Host counts the artifact sweep visits.
pub const HOST_COUNTS: [u32; 3] = [2, 4, 8];

/// Default VMs per host for artifact cells.
pub const VMS_PER_HOST: u32 = 4;

/// Guest cycles to process one RR request (same shape as the
/// consolidation cell's per-transaction work).
const RR_WORK: u64 = 40_000;

/// Stagger between successive VM token launches on one host, so
/// arrivals don't all collide at instant zero.
const LAUNCH_STAGGER: u64 = 7_500;

/// How each rack host picks its hypervisor — the sweep's composition
/// axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Composition {
    /// Every host runs KVM ARM.
    AllKvm,
    /// Every host runs Xen ARM.
    AllXen,
    /// Even hosts run KVM ARM, odd hosts Xen ARM.
    Mixed,
}

impl Composition {
    /// Every composition, in sweep order.
    pub const ALL: [Composition; 3] =
        [Composition::AllKvm, Composition::AllXen, Composition::Mixed];

    /// Stable short name (JSON keys, fingerprints, CLI).
    pub fn name(self) -> &'static str {
        match self {
            Composition::AllKvm => "kvm",
            Composition::AllXen => "xen",
            Composition::Mixed => "mixed",
        }
    }

    /// The hypervisor host `host` runs under this composition.
    pub fn kind_for(self, host: usize) -> HvKind {
        match self {
            Composition::AllKvm => HvKind::KvmArm,
            Composition::AllXen => HvKind::XenArm,
            Composition::Mixed => {
                if host.is_multiple_of(2) {
                    HvKind::KvmArm
                } else {
                    HvKind::XenArm
                }
            }
        }
    }

    /// Parses a [`Composition::name`] back.
    pub fn parse(s: &str) -> Option<Composition> {
        Composition::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// One rack cell's configuration.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Per-host hypervisor assignment.
    pub composition: Composition,
    /// Hosts in the ring.
    pub hosts: u32,
    /// Token-owning VMs per host.
    pub vms_per_host: u32,
    /// Laps each token makes around the ring.
    pub rounds: u32,
    /// Worker threads for the shard executor; `<= 1` runs the serial
    /// reference execution (the artifact path, so the thread-local
    /// transition accounting the runner relies on stays intact).
    pub jobs: usize,
    /// Explicit fault plan for every host machine. `None` inherits the
    /// thread's ambient plan at machine construction, which is how the
    /// runner's `--faults` sweep reaches rack cells.
    pub fault: Option<FaultPlan>,
}

impl CellConfig {
    /// The artifact-path configuration: serial shard execution,
    /// ambient faults.
    pub fn artifact(composition: Composition, hosts: u32) -> CellConfig {
        CellConfig {
            composition,
            hosts,
            vms_per_host: VMS_PER_HOST,
            rounds: ROUNDS,
            jobs: 1,
            fault: None,
        }
    }
}

/// One rack cell's results. All fields are integers so cached JSON is
/// byte-stable and serial/parallel runs compare exactly; derived rates
/// are computed at render time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellResult {
    /// Composition name (`kvm` / `xen` / `mixed`).
    pub composition: String,
    /// Hosts in the ring.
    pub hosts: u32,
    /// VMs per host.
    pub vms_per_host: u32,
    /// Laps each token was asked to run.
    pub rounds: u32,
    /// RR requests served across the rack.
    pub requests: u64,
    /// Σ per-request service cycles (dequeue → response on the wire).
    pub sum_service_cycles: u64,
    /// Wire messages delivered between hosts.
    pub wire_hops: u64,
    /// Tokens lost to [`FaultPoint::WireDrop`] (no retransmit: the
    /// drop kills the token and the loss is the measurement).
    pub wire_drops: u64,
    /// Conservative windows the executor ran.
    pub windows: u64,
    /// Events handled across all shards.
    pub events: u64,
    /// Host-windows stalled on the lookahead bound: a shard woke at the
    /// barrier holding only events at or beyond the horizon.
    pub lookahead_stalls: u64,
    /// Median events per window (power-of-two bucket upper bound).
    pub window_events_p50: u64,
    /// 95th-percentile events per window (bucket upper bound).
    pub window_events_p95: u64,
    /// 99th-percentile events per window (bucket upper bound).
    pub window_events_p99: u64,
    /// Largest single-window event count.
    pub window_events_max: u64,
    /// 95th-percentile per-window host event spread (`max - min`
    /// events across hosts; bucket upper bound).
    pub imbalance_p95: u64,
    /// Largest per-window host event spread.
    pub imbalance_max: u64,
    /// Final virtual clock per host, cycles (index = host).
    pub per_host_now: Vec<u64>,
    /// Rack-wide makespan: the maximum per-host clock, cycles.
    pub makespan_cycles: u64,
}

impl CellResult {
    /// Mean per-request service latency in microseconds (2.4 GHz).
    pub fn mean_service_us(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.sum_service_cycles as f64 / self.requests as f64 / 2_400.0
    }

    /// Requests per simulated second (2.4 GHz clock).
    pub fn requests_per_sec(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.requests as f64 * 2.4e9 / self.makespan_cycles as f64
    }
}

/// Per-hypervisor costs, probed once per cell from the real model so
/// they track the calibrated cost model (including `HVX_COST_PERTURB`).
#[derive(Clone, Copy)]
struct Costs {
    ipi_send: u64,
    virq_recv: u64,
    eoi: u64,
}

fn probe_costs(kind: HvKind) -> Result<Costs, Error> {
    let mut sim = SimBuilder::new(kind).without_tracing().build()?;
    Ok(Costs {
        ipi_send: sim.virtual_ipi(0, 1).as_u64(),
        virq_recv: sim.deliver_virq(1).as_u64(),
        eoi: sim.virq_complete(1).as_u64(),
    })
}

/// A request token in flight: which VM owns it and how many ring hops
/// remain.
#[derive(Debug, Clone, Copy)]
struct Token {
    vm: u32,
    hops: u32,
}

/// One rack host: its machine, hypervisor costs, and counters. All
/// state is owned — nothing thread-local — so the shard executor can
/// hand hosts to worker threads without changing any result byte.
struct RackHost {
    machine: Machine,
    costs: Costs,
    requests: u64,
    sum_service: u64,
    drops: u64,
}

impl HostModel for RackHost {
    type Event = Token;

    fn handle(&mut self, when: Cycles, token: Token, ctx: &mut HostCtx<'_, Token>) {
        let guests = self.machine.topology().guest_cores().len();
        let core = self
            .machine
            .topology()
            .guest_core(token.vm as usize % guests);
        // The serving core picks the request up when it arrives — or
        // when it finishes its previous request, whichever is later.
        let start = self.machine.wait_until(core, when);
        self.machine.charge(
            core,
            "rack:virq-recv",
            TraceKind::Host,
            Cycles::new(self.costs.virq_recv),
        );
        self.machine
            .charge(core, "rack:rr-work", TraceKind::Guest, Cycles::new(RR_WORK));
        self.machine.charge(
            core,
            "rack:eoi",
            TraceKind::Host,
            Cycles::new(self.costs.eoi),
        );
        self.requests += 1;
        if token.hops == 0 {
            self.sum_service += (self.machine.now(core) - start).as_u64();
            return;
        }
        if self.machine.fault(FaultPoint::WireDrop) {
            // The response vanishes on the wire; the token dies and
            // the loss is the measurement (no retransmit path).
            self.drops += 1;
            self.sum_service += (self.machine.now(core) - start).as_u64();
            return;
        }
        self.machine.charge(
            core,
            "rack:ipi-kick",
            TraceKind::Ipi,
            Cycles::new(self.costs.ipi_send),
        );
        let depart = self.machine.now(core);
        self.sum_service += (depart - start).as_u64();
        let to = (ctx.host() + 1) % ctx.hosts();
        ctx.send(
            to,
            depart,
            Cycles::new(RACK_WIRE),
            Token {
                vm: token.vm,
                hops: token.hops - 1,
            },
        );
    }
}

/// Runs one rack cell. `cfg.jobs <= 1` is the serial reference
/// execution; any larger value fans each conservative window across
/// worker threads — with byte-identical results, which
/// `tests/rack_diff.rs` pins.
pub fn run_cell_with(cfg: &CellConfig) -> Result<CellResult, Error> {
    assert!(cfg.hosts >= 1, "a rack needs at least one host");
    let kvm = probe_costs(HvKind::KvmArm)?;
    let xen = probe_costs(HvKind::XenArm)?;

    let mut sim = ShardSim::new(Cycles::new(RACK_WIRE));
    for h in 0..cfg.hosts as usize {
        let mut machine = Machine::without_tracing(Topology::paper_default());
        if let Some(plan) = &cfg.fault {
            machine.set_fault_plan(plan.clone());
        }
        let costs = match cfg.composition.kind_for(h) {
            HvKind::XenArm => xen,
            _ => kvm,
        };
        sim.add_host(RackHost {
            machine,
            costs,
            requests: 0,
            sum_service: 0,
            drops: 0,
        });
    }

    // Every VM launches one token that laps the ring `rounds` times;
    // `hops` counts forwards, so each token is served hops + 1 times
    // unless a wire drop kills it early.
    let hops = cfg.rounds * cfg.hosts;
    for h in 0..cfg.hosts as usize {
        for vm in 0..cfg.vms_per_host {
            sim.schedule(
                h,
                Cycles::new(u64::from(vm) * LAUNCH_STAGGER),
                Token { vm, hops },
            );
        }
    }

    let stats = if cfg.jobs <= 1 {
        sim.run()
    } else {
        sim.run_parallel(cfg.jobs)
    };

    let models = sim.into_models();
    let per_host_now: Vec<u64> = models
        .iter()
        .map(|m| m.machine.global_now().as_u64())
        .collect();
    Ok(CellResult {
        composition: cfg.composition.name().to_string(),
        hosts: cfg.hosts,
        vms_per_host: cfg.vms_per_host,
        rounds: cfg.rounds,
        requests: models.iter().map(|m| m.requests).sum(),
        sum_service_cycles: models.iter().map(|m| m.sum_service).sum(),
        wire_hops: stats.wires,
        wire_drops: models.iter().map(|m| m.drops).sum(),
        windows: stats.windows,
        events: stats.events,
        lookahead_stalls: stats.lookahead_stalls,
        window_events_p50: stats.window_events.approx_quantile(0.5).unwrap_or(0),
        window_events_p95: stats.window_events.approx_quantile(0.95).unwrap_or(0),
        window_events_p99: stats.window_events.approx_quantile(0.99).unwrap_or(0),
        window_events_max: stats.window_events.max().unwrap_or(0),
        imbalance_p95: stats.host_imbalance.approx_quantile(0.95).unwrap_or(0),
        imbalance_max: stats.host_imbalance.max().unwrap_or(0),
        makespan_cycles: per_host_now.iter().copied().max().unwrap_or(0),
        per_host_now,
    })
}

/// Runs the artifact cell for `(composition, hosts)`: serial shard
/// execution with ambient faults.
pub fn run_cell(composition: Composition, hosts: u32) -> Result<CellResult, Error> {
    run_cell_with(&CellConfig::artifact(composition, hosts))
}

/// Renders the rack sweep as an aligned text table, one row per
/// (hosts, composition) cell.
pub fn render_sweep(cells: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "hosts  comp    vms  requests  drops    mean-svc-us   req/sec     windows     stalls\n",
    );
    for c in cells {
        out.push_str(&format!(
            "{:>5}  {:<6}  {:>3}  {:>8}  {:>5}  {:>12.2}  {:>9.0}  {:>9}  {:>9}\n",
            c.hosts,
            c.composition,
            c.vms_per_host,
            c.requests,
            c.wire_drops,
            c.mean_service_us(),
            c.requests_per_sec(),
            c.windows,
            c.lookahead_stalls,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_serves_every_request_without_faults() {
        let cfg = CellConfig {
            composition: Composition::AllKvm,
            hosts: 3,
            vms_per_host: 2,
            rounds: 2,
            jobs: 1,
            fault: None,
        };
        let r = run_cell_with(&cfg).unwrap();
        // 3 hosts × 2 VMs, each token served hops + 1 = 7 times.
        assert_eq!(r.requests, 6 * 7);
        assert_eq!(r.wire_drops, 0);
        assert_eq!(r.events, r.requests);
        assert_eq!(r.per_host_now.len(), 3);
        assert!(r.makespan_cycles > 0);
        // Window telemetry is populated and internally consistent.
        assert!(r.window_events_max >= 1);
        assert!(r.window_events_p50 <= r.window_events_p95);
        assert!(r.window_events_p95 <= r.window_events_p99);
        assert!(r.lookahead_stalls <= r.windows * u64::from(r.hosts));
    }

    #[test]
    fn xen_and_kvm_compositions_differ() {
        let kvm = run_cell(Composition::AllKvm, 2).unwrap();
        let xen = run_cell(Composition::AllXen, 2).unwrap();
        assert_eq!(kvm.requests, xen.requests);
        assert_ne!(
            kvm.sum_service_cycles, xen.sum_service_cycles,
            "probed per-hypervisor costs must show up in service time"
        );
    }

    #[test]
    fn wire_drops_kill_tokens() {
        let cfg = CellConfig {
            composition: Composition::Mixed,
            hosts: 4,
            vms_per_host: 4,
            rounds: 4,
            jobs: 1,
            fault: Some(FaultPlan::new(7).with_rate(FaultPoint::WireDrop, 0.2)),
        };
        let faulty = run_cell_with(&cfg).unwrap();
        let clean = run_cell_with(&CellConfig { fault: None, ..cfg }).unwrap();
        assert!(faulty.wire_drops > 0, "20% drop rate must fire");
        assert!(faulty.requests < clean.requests);
    }

    #[test]
    fn composition_names_round_trip() {
        for c in Composition::ALL {
            assert_eq!(Composition::parse(c.name()), Some(c));
        }
        assert_eq!(Composition::parse("nope"), None);
    }
}
