//! The suite side of the sweep server: a [`JobExecutor`] over the spec
//! runner and the content-addressed cache.
//!
//! `hvx-serve` is domain-agnostic — it admits, queues, retries, and
//! journals opaque job bodies. [`SuiteExecutor`] supplies the domain:
//!
//! * **prepare** parses a body as either a [`ScenarioSpec`] or a chaos
//!   probe (`{"chaos": "panic"}`), validates it, and derives the
//!   admission metadata (label, content fingerprint, weight);
//! * **lookup** consults the [`ResultCache`] by spec fingerprint, so
//!   warm submissions are answered at admission time without touching
//!   the worker pool;
//! * **run** executes one attempt through the same `catch_unwind` +
//!   ambient-watchdog isolation the parallel runner uses, classifying
//!   panics with [`runner::classify_panic`] so a poisoned spec becomes
//!   a typed [`JobFailure`] instead of a dead worker;
//! * **expand** turns a sweep template into individual spec bodies for
//!   all-or-nothing batched admission.
//!
//! [`ScenarioSpec`]: hvx_core::ScenarioSpec

use crate::cache::{self, ResultCache};
use crate::runner::{self, ChaosKind, RunnerConfig, Scenario};
use crate::spec_run;
use crate::trace::{ParsedTrace, TraceScenario};
use hvx_core::report::CellReport;
use hvx_core::Workload;
use hvx_core::{Error, ScenarioFailureKind, ScenarioSpec, SchedPolicy, SpecShape, TopologySpec};
use hvx_engine::{fault, Watchdog};
use hvx_serve::{client, JobExecutor, JobFailure, JobOutput, PreparedJob, Server, ServerConfig};
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cache entry tag for spec-run results (`{"report", "cell"}` payloads).
const SPEC_RESULT_KIND: &str = "spec-result";

/// Cache entry tag for stored trace queries (ranked critical chains).
const TRACE_RESULT_KIND: &str = "trace-query";

/// Ranked chains kept per stored trace. Bounds the cache entry; the
/// server truncates further per request (`?top=K`).
const MAX_STORED_CHAINS: usize = 64;

/// Derived cache key for a fingerprint's stored trace: the spec result
/// lives at `<fp>.json`, its trace at `<fp>-trace.json`.
fn trace_key(fingerprint: &str) -> String {
    format!("{fingerprint}-trace")
}

/// Admission weight of a paper-shape spec (a full Figure-4-style
/// workload run), on the same scale as the runner's scenario weights.
const PAPER_WEIGHT: u64 = 25;

/// Watchdog for chaos probes: spin/livelock probes must trip a limit
/// instead of wedging a worker, whatever the probe body says.
const CHAOS_WATCHDOG: Watchdog = Watchdog {
    cycle_budget: Some(200_000_000),
    livelock_threshold: Some(10_000),
};

/// The production [`JobExecutor`]: spec runner + result cache.
#[derive(Debug, Default)]
pub struct SuiteExecutor {
    cache: Option<Arc<ResultCache>>,
}

impl SuiteExecutor {
    /// An executor serving warm results from (and storing clean runs
    /// to) `cache`; `None` disables caching entirely.
    pub fn new(cache: Option<Arc<ResultCache>>) -> SuiteExecutor {
        SuiteExecutor { cache }
    }

    /// Stores ranked critical chains for a just-completed cold
    /// paper-shape run, so `GET /trace/<fp>` answers from the warm
    /// cache without re-running anything. Best-effort: a trace that
    /// fails to run or parse simply leaves no stored trace (the
    /// endpoint 404s), never failing the job itself.
    fn store_trace(&self, fingerprint: &str, spec: &ScenarioSpec) {
        let Some(cache) = &self.cache else { return };
        if spec.shape().ok() != Some(SpecShape::Paper) {
            return;
        }
        let scenario = TraceScenario {
            workload: spec.workload.unwrap_or(Workload::Netperf),
            kind: spec.hypervisor,
            ring: None,
        };
        let Ok(report) = crate::trace::run_trace(scenario) else {
            return;
        };
        let Ok(parsed) = ParsedTrace::parse(&report.json) else {
            return;
        };
        let mut chains = parsed.chains();
        // The query ranking: longest end-to-end latency first, chain id
        // as the deterministic tiebreak.
        chains.sort_by(|a, b| b.latency.cmp(&a.latency).then(a.id.cmp(&b.id)));
        chains.truncate(MAX_STORED_CHAINS);
        let chains_json: Vec<Value> = chains
            .iter()
            .map(|c| {
                Value::Object(vec![
                    ("kind".into(), Value::Str(c.kind.clone())),
                    ("id".into(), Value::U64(c.id)),
                    ("complete".into(), Value::Bool(c.complete)),
                    ("latency_cycles".into(), Value::U64(c.latency)),
                    (
                        "hops".into(),
                        Value::Array(
                            c.hops
                                .iter()
                                .map(|h| {
                                    Value::Object(vec![
                                        ("ph".into(), Value::Str(h.ph.clone())),
                                        ("ts".into(), Value::U64(h.ts)),
                                        ("tid".into(), Value::U64(h.tid)),
                                        ("hop".into(), Value::Str(h.hop.clone())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        cache.store_raw(
            &trace_key(fingerprint),
            TRACE_RESULT_KIND,
            Value::Object(vec![
                ("scenario".into(), Value::Str(scenario.name())),
                ("fingerprint".into(), Value::Str(fingerprint.to_string())),
                ("chains".into(), Value::Array(chains_json)),
            ]),
        );
    }
}

/// Parses a chaos probe body (`{"chaos": "panic" | "spin" |
/// "livelock"}`), or `None` when the body is not a chaos object.
fn parse_chaos(body: &str) -> Option<Result<ChaosKind, String>> {
    let v = serde_json::parse_value(body.trim()).ok()?;
    let name = v.get("chaos")?;
    let Some(name) = name.as_str() else {
        return Some(Err("\"chaos\" must be a string".into()));
    };
    Some(
        ChaosKind::parse(name)
            .ok_or_else(|| format!("unknown chaos kind '{name}' (panic, spin, livelock)")),
    )
}

fn spec_weight(shape: SpecShape) -> u64 {
    match shape {
        SpecShape::Paper => PAPER_WEIGHT,
        SpecShape::Consolidation { ratio } => 5 + u64::from(ratio) / 2,
        SpecShape::Rack {
            hosts,
            vms_per_host,
        } => 5 + u64::from(hosts) * u64::from(vms_per_host),
    }
}

impl JobExecutor for SuiteExecutor {
    fn prepare(&self, body: &str) -> Result<PreparedJob, String> {
        if let Some(chaos) = parse_chaos(body) {
            let kind = chaos?;
            return Ok(PreparedJob {
                label: format!("chaos-{}", kind.name()),
                // A synthetic stable fingerprint: chaos probes are
                // uncacheable but the circuit breaker still groups
                // their failures by kind.
                fingerprint: format!("chaos-{}", kind.name()),
                cacheable: false,
                weight: 1,
                body: body.to_string(),
            });
        }
        let spec = spec_run::parse(body).map_err(|e| e.to_string())?;
        let shape = spec.shape().map_err(|e| e.to_string())?;
        // Reject malformed fault plans at admission, not on a worker.
        spec.fault_plan().map_err(|e| e.to_string())?;
        Ok(PreparedJob {
            label: spec_run::label(&spec),
            fingerprint: cache::spec_fingerprint(&spec).to_hex(),
            cacheable: true,
            weight: spec_weight(shape),
            body: body.to_string(),
        })
    }

    fn lookup(&self, job: &PreparedJob) -> Option<JobOutput> {
        if !job.cacheable {
            return None;
        }
        let cache = self.cache.as_ref()?;
        let payload = cache.lookup_raw(&job.fingerprint, SPEC_RESULT_KIND)?;
        let report = payload.get("report")?.as_str()?.to_string();
        let mut cell: CellReport = Deserialize::deserialize(payload.get("cell")?).ok()?;
        cell.cached = true;
        Some(JobOutput { report, cell })
    }

    fn run(&self, job: &PreparedJob) -> Result<JobOutput, JobFailure> {
        if let Some(chaos) = parse_chaos(&job.body) {
            return run_chaos(chaos.map_err(|detail| JobFailure {
                kind: ScenarioFailureKind::Failed,
                detail,
                transient: false,
            })?);
        }
        let spec = spec_run::parse(&job.body).map_err(|e| JobFailure {
            kind: ScenarioFailureKind::Failed,
            detail: e.to_string(),
            transient: false,
        })?;
        let outcome = {
            // The spec's own watchdog guards the run; the ambient fault
            // plan stays empty because spec faults are applied by the
            // engine the spec dispatches to (run_consolidation installs
            // them on the cell machine directly).
            let _ambient = fault::install_ambient(None, spec.watchdog);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                spec_run::run_spec_report(&spec)
            }))
        };
        match outcome {
            Err(payload) => {
                let f = runner::classify_panic(payload.as_ref());
                Err(JobFailure {
                    // Panics are plausibly transient (a host-side
                    // resource blip); watchdog trips are deterministic
                    // under a fixed spec and must fail fast.
                    transient: f.kind == ScenarioFailureKind::Panicked,
                    kind: f.kind,
                    detail: f.detail,
                })
            }
            Ok(Err(e)) => Err(JobFailure {
                kind: ScenarioFailureKind::Failed,
                detail: e.to_string(),
                transient: false,
            }),
            Ok(Ok(run)) => {
                if job.cacheable {
                    if let Some(cache) = &self.cache {
                        cache.store_raw(
                            &job.fingerprint,
                            SPEC_RESULT_KIND,
                            Value::Object(vec![
                                ("report".into(), Value::Str(run.report.clone())),
                                ("cell".into(), Serialize::serialize(&run.cell)),
                            ]),
                        );
                    }
                    self.store_trace(&job.fingerprint, &spec);
                }
                Ok(JobOutput {
                    report: run.report,
                    cell: run.cell,
                })
            }
        }
    }

    fn trace(&self, fingerprint: &str) -> Option<String> {
        let cache = self.cache.as_ref()?;
        let payload = cache.lookup_raw(&trace_key(fingerprint), TRACE_RESULT_KIND)?;
        serde_json::to_string(&payload).ok()
    }

    fn expand(&self, body: &str) -> Result<Vec<String>, String> {
        let v = serde_json::parse_value(body.trim()).map_err(|e| format!("sweep: {e}"))?;
        let Some(sweep) = v.get("sweep") else {
            return Err("sweep template must carry a \"sweep\" key".into());
        };
        // Explicit form: {"sweep": [body, body, ...]}.
        if let Some(items) = sweep.as_array() {
            return items
                .iter()
                .map(|item| serde_json::to_string(item).map_err(|e| format!("sweep item: {e}")))
                .collect();
        }
        // Template form: {"sweep": {"base": SPEC, "ratios": [..],
        // "schedulers": [..]}} — the cross product over a consolidation
        // base spec.
        let Some(base) = sweep.get("base") else {
            return Err("sweep template needs \"base\" (a spec) or an array of bodies".into());
        };
        let base: ScenarioSpec =
            Deserialize::deserialize(base).map_err(|e| format!("sweep base: {e}"))?;
        let ratios: Vec<u32> = match sweep.get("ratios") {
            None => vec![base.topology.vms],
            Some(r) => r
                .as_array()
                .ok_or("\"ratios\" must be an array")?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(|n| n as u32)
                        .ok_or("ratios must be integers")
                })
                .collect::<Result<_, _>>()?,
        };
        let scheds: Vec<SchedPolicy> = match sweep.get("schedulers") {
            None => vec![base.scheduler],
            Some(s) => s
                .as_array()
                .ok_or("\"schedulers\" must be an array")?
                .iter()
                .map(|v| {
                    let name = v.as_str().ok_or("schedulers must be strings")?;
                    SchedPolicy::parse(name).map_err(|e| e.to_string())
                })
                .collect::<Result<_, _>>()?,
        };
        let mut out = Vec::with_capacity(ratios.len() * scheds.len());
        for &sched in &scheds {
            for &ratio in &ratios {
                let mut spec = base.clone();
                spec.topology = TopologySpec::consolidation(ratio);
                spec.scheduler = sched;
                spec.shape().map_err(|e| format!("sweep cell: {e}"))?;
                out.push(
                    serde_json::to_string(Serialize::serialize(&spec))
                        .map_err(|e| format!("sweep cell: {e}"))?,
                );
            }
        }
        Ok(out)
    }
}

/// Runs one chaos probe through the hardened runner (which owns the
/// `catch_unwind`) and maps the classified outcome to a job result.
fn run_chaos(kind: ChaosKind) -> Result<JobOutput, JobFailure> {
    let cfg = RunnerConfig {
        watchdog: CHAOS_WATCHDOG,
        ..RunnerConfig::default()
    };
    let results = runner::run_scenarios_with(&[Scenario::Chaos(kind)], 1, &cfg)
        .expect("one job is a valid job count");
    let result = &results[0];
    match &result.outcome {
        Ok(_) => Ok(JobOutput {
            report: format!("chaos-{} survived its run\n", kind.name()),
            cell: result.cell_report(),
        }),
        Err(f) => Err(JobFailure {
            transient: f.kind == ScenarioFailureKind::Panicked,
            kind: f.kind,
            detail: f.detail.clone(),
        }),
    }
}

/// What `hvx-repro serve bench` measured: admission-path latencies and
/// the shed threshold of a default-tuned in-process server.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBench {
    /// Cold submit→done latency (the cell actually simulated), in
    /// microseconds of host wall clock.
    pub cold_us: u64,
    /// Warm submit latency for the same spec (answered from the cache
    /// at admission, no worker involved), in microseconds.
    pub warm_us: u64,
    /// Cold/warm speedup (×).
    pub warm_speedup: f64,
    /// Jobs accepted before the first 429 shed under a burst of
    /// distinct heavy submissions.
    pub accepted_before_shed: u64,
    /// The queue-weight bound the shed fired against.
    pub max_queue_weight: u64,
    /// Mean `GET /metrics` scrape latency, microseconds.
    pub scrape_us: u64,
    /// Mean warm-submit latency with no scraper running, microseconds.
    pub warm_plain_us: u64,
    /// Mean warm-submit latency while a concurrent scraper hammers
    /// `/metrics` in a loop, microseconds.
    pub warm_scraped_us: u64,
    /// Relative slowdown the scraper imposed on the serving path,
    /// percent (0 when scraping measured faster — noise floor).
    pub scrape_overhead_pct: f64,
}

/// Benchmarks the serving path end to end: binds an in-process server
/// on an ephemeral port over a temporary cache, measures a cold and a
/// warm round trip for the same consolidation spec, then bursts
/// distinct submissions until admission sheds.
///
/// # Errors
///
/// [`Error::Serve`] for server/transport failures during the bench.
pub fn bench() -> Result<ServeBench, Error> {
    let dir = std::env::temp_dir().join(format!("hvx-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(ResultCache::open(&dir.join("cache"))?);
    let cfg = ServerConfig {
        workers: 2,
        max_queue_weight: 60,
        client_inflight_cap: 64,
        journal: Some(dir.join("journal.jsonl")),
        ..ServerConfig::default()
    };
    let max_queue_weight = cfg.max_queue_weight;
    let server = Server::bind(cfg, Arc::new(SuiteExecutor::new(Some(cache))))?;
    let addr = server.local_addr().to_string();
    let running = std::thread::spawn(move || server.run());

    let serve_err = |detail: String| Error::Serve { detail };
    // Heavy enough that the worker run dominates the cold round trip;
    // the warm resubmission skips it entirely at admission.
    let mut spec = ScenarioSpec::consolidation(hvx_core::HvKind::KvmArm, 16, SchedPolicy::Credit);
    spec.transactions = Some(4_000);
    let body = serde_json::to_string(Serialize::serialize(&spec)).expect("spec serializes");

    let round_trip = |tag: &str| -> Result<u64, Error> {
        let start = Instant::now();
        let (status, v) = client::submit(&addr, "bench", &body).map_err(serve_err)?;
        if status != 200 && status != 202 {
            return Err(serve_err(format!("{tag} submit: status {status}")));
        }
        let id = v
            .get("job")
            .and_then(Value::as_u64)
            .ok_or_else(|| serve_err(format!("{tag} submit: no job id")))?;
        client::wait(&addr, id, Duration::from_secs(60)).map_err(serve_err)?;
        Ok(start.elapsed().as_micros() as u64)
    };
    let cold_us = round_trip("cold")?;
    let warm_us = round_trip("warm")?.max(1);

    // Scrape cost and scrape-on overhead: mean warm-submit latency with
    // and without a concurrent scraper looping over /metrics. Warm
    // submissions never touch a worker, so this isolates the admission
    // path — the lock the scraper contends on.
    let scrape_us = {
        let reps = 20u32;
        let start = Instant::now();
        for _ in 0..reps {
            client::metrics(&addr).map_err(serve_err)?;
        }
        (start.elapsed().as_micros() as u64 / u64::from(reps)).max(1)
    };
    let warm_burst = |reps: u32| -> Result<u64, Error> {
        let start = Instant::now();
        for _ in 0..reps {
            let (status, _) = client::submit(&addr, "bench", &body).map_err(serve_err)?;
            if status != 200 {
                return Err(serve_err(format!("warm burst: status {status}")));
            }
        }
        Ok((start.elapsed().as_micros() as u64 / u64::from(reps)).max(1))
    };
    let reps = 30u32;
    let warm_plain_us = warm_burst(reps)?;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        let addr = addr.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = client::metrics(&addr);
            }
        })
    };
    let warm_scraped_us = warm_burst(reps)?;
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = scraper.join();
    let scrape_overhead_pct =
        ((warm_scraped_us as f64 - warm_plain_us as f64) / warm_plain_us as f64 * 100.0).max(0.0);

    // Burst: distinct heavy cells (transaction counts never repeat, so
    // nothing dedupes) until the weight bound sheds.
    let mut accepted_before_shed = 0u64;
    for txns in 0..200u32 {
        let mut s = spec.clone();
        s.topology = TopologySpec::consolidation(16);
        s.transactions = Some(1_000 + txns);
        let b = serde_json::to_string(Serialize::serialize(&s)).expect("spec serializes");
        let (status, _) = client::submit(&addr, "bench", &b).map_err(serve_err)?;
        match status {
            202 => accepted_before_shed += 1,
            429 => break,
            other => return Err(serve_err(format!("burst: unexpected status {other}"))),
        }
    }

    client::drain(&addr).map_err(serve_err)?;
    running
        .join()
        .map_err(|_| serve_err("server thread panicked".into()))??;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(ServeBench {
        cold_us,
        warm_us,
        warm_speedup: cold_us as f64 / warm_us as f64,
        accepted_before_shed,
        max_queue_weight,
        scrape_us,
        warm_plain_us,
        warm_scraped_us,
        scrape_overhead_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvx_core::HvKind;

    fn spec_body(ratio: u32, txns: u32) -> String {
        let mut spec = ScenarioSpec::consolidation(HvKind::KvmArm, ratio, SchedPolicy::Credit);
        spec.transactions = Some(txns);
        serde_json::to_string(Serialize::serialize(&spec)).unwrap()
    }

    #[test]
    fn prepare_classifies_specs_and_chaos_and_rejects_garbage() {
        let exec = SuiteExecutor::new(None);
        let spec = exec.prepare(&spec_body(8, 8)).unwrap();
        assert_eq!(spec.label, "KVM ARM consolidation 8:1");
        assert_eq!(spec.weight, 9);
        assert!(spec.cacheable);
        assert_eq!(spec.fingerprint.len(), 32);

        let chaos = exec.prepare("{\"chaos\": \"panic\"}").unwrap();
        assert_eq!(chaos.label, "chaos-panic");
        assert!(!chaos.cacheable);
        assert_eq!(chaos.weight, 1);

        assert!(exec.prepare("{\"chaos\": \"explode\"}").is_err());
        assert!(exec.prepare("not json").is_err());
        // A structurally valid spec with an impossible topology.
        let mut bad = ScenarioSpec::paper(HvKind::KvmArm);
        bad.topology.vcpus_per_vm = 3;
        let body = serde_json::to_string(Serialize::serialize(&bad)).unwrap();
        assert!(exec.prepare(&body).is_err());
    }

    #[test]
    fn run_matches_direct_spec_run_and_caches() {
        let dir = std::env::temp_dir().join(format!(
            "hvx-service-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Arc::new(ResultCache::open(&dir).unwrap());
        let exec = SuiteExecutor::new(Some(Arc::clone(&cache)));

        let body = spec_body(4, 8);
        let job = exec.prepare(&body).unwrap();
        assert!(exec.lookup(&job).is_none(), "cold cache");
        let out = exec.run(&job).unwrap();
        let direct = spec_run::run_spec(&spec_run::parse(&body).unwrap()).unwrap();
        assert_eq!(out.report, direct, "server path is byte-identical");
        assert!(!out.cell.cached);

        // The run stored the result: lookup now serves it, marked
        // cached, with the identical report bytes.
        let warm = exec.lookup(&job).expect("stored after run");
        assert_eq!(warm.report, direct);
        assert!(warm.cell.cached);
        assert_eq!(
            warm.cell.fingerprint.as_deref(),
            Some(job.fingerprint.as_str())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_probes_fail_typed_without_killing_the_caller() {
        let exec = SuiteExecutor::new(None);
        let job = exec.prepare("{\"chaos\": \"panic\"}").unwrap();
        let failure = exec.run(&job).unwrap_err();
        assert_eq!(failure.kind, ScenarioFailureKind::Panicked);
        assert!(failure.transient, "panics retry before quarantine");
        assert!(exec.lookup(&job).is_none(), "chaos is never cached");
    }

    #[test]
    fn sweeps_expand_both_forms_and_validate_cells() {
        let exec = SuiteExecutor::new(None);
        // Explicit list form.
        let body = format!(
            "{{\"sweep\": [{}, {}]}}",
            spec_body(2, 4),
            "{\"chaos\": \"panic\"}"
        );
        let items = exec.expand(&body).unwrap();
        assert_eq!(items.len(), 2);
        assert!(exec.prepare(&items[0]).unwrap().cacheable);
        assert!(!exec.prepare(&items[1]).unwrap().cacheable);

        // Cross-product template form.
        let body = format!(
            "{{\"sweep\": {{\"base\": {}, \"ratios\": [2, 4, 8], \
             \"schedulers\": [\"credit\", \"cfs\"]}}}}",
            spec_body(2, 4)
        );
        let items = exec.expand(&body).unwrap();
        assert_eq!(items.len(), 6);
        let labels: Vec<String> = items
            .iter()
            .map(|b| exec.prepare(b).unwrap().label)
            .collect();
        assert!(labels.contains(&"KVM ARM consolidation 8:1".to_string()));
        // All six cells are distinct fingerprints (no accidental dupes).
        let mut fps: Vec<String> = items
            .iter()
            .map(|b| exec.prepare(b).unwrap().fingerprint)
            .collect();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), 6);

        assert!(exec.expand("{\"nope\": 1}").is_err());
        assert!(exec
            .expand("{\"sweep\": {\"base\": {\"hypervisor\": \"KvmArm\"}}}")
            .is_err());
    }
}
