//! Parallel scenario runner for the full artifact matrix.
//!
//! Every artifact `hvx-repro` regenerates decomposes into independent
//! **scenarios**: each Figure 4 workload×hypervisor cell is one scenario
//! (36 of them), and each table/ablation is one more. Scenarios share no
//! state — every one constructs its own hypervisor models and machine —
//! so they can fan out across OS threads, and because each scenario is
//! individually deterministic, the assembled artifacts are **byte-for-
//! byte identical** no matter how many workers ran them. The runner
//! guarantees this structurally: results land in per-scenario slots
//! indexed by plan position, and assembly reads the slots in plan order.
//!
//! ```
//! use hvx_suite::runner::{self, ArtifactId};
//!
//! let plan = runner::plan(&[ArtifactId::Table3]);
//! let serial = runner::assemble(&[ArtifactId::Table3], &runner::run_scenarios(&plan, 1)?)?;
//! let parallel = runner::assemble(&[ArtifactId::Table3], &runner::run_scenarios(&plan, 4)?)?;
//! assert_eq!(serial[0].json, parallel[0].json);
//! # Ok::<(), hvx_core::Error>(())
//! ```

use crate::{ablations, fig4, micro, netperf, paper, table3, workloads};
use hvx_core::{Error, VirqPolicy};
use hvx_engine::{Cycles, EventQueue};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Iterations used for the Table II microbenchmark sweep.
pub const TABLE2_ITERS: usize = 10;
/// Transactions used for the Table V netperf decomposition.
pub const TABLE5_TRANSACTIONS: usize = 50;

/// One reproducible artifact of the paper, in `hvx-repro` output order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArtifactId {
    /// Table II: microbenchmark cycle counts.
    Table2,
    /// Table III: KVM ARM hypercall breakdown.
    Table3,
    /// Table V: netperf TCP_RR decomposition.
    Table5,
    /// Figure 4: application benchmark overheads.
    Fig4,
    /// §V interrupt-distribution ablation.
    Irq,
    /// §VI VHE projection.
    Vhe,
    /// §V zero-copy trade.
    ZeroCopy,
    /// §III link-speed observation.
    Link,
    /// §IV vAPIC note.
    Vapic,
    /// §III devices: storage ablation.
    Storage,
    /// Table I motivation: oversubscription sweep.
    Oversub,
}

impl ArtifactId {
    /// Every artifact, in the order `hvx-repro` prints them.
    pub const ALL: [ArtifactId; 11] = [
        ArtifactId::Table2,
        ArtifactId::Table3,
        ArtifactId::Table5,
        ArtifactId::Fig4,
        ArtifactId::Irq,
        ArtifactId::Vhe,
        ArtifactId::ZeroCopy,
        ArtifactId::Link,
        ArtifactId::Vapic,
        ArtifactId::Storage,
        ArtifactId::Oversub,
    ];

    /// The CLI name (`hvx-repro [ARTIFACT...]`).
    pub fn cli_name(self) -> &'static str {
        match self {
            ArtifactId::Table2 => "table2",
            ArtifactId::Table3 => "table3",
            ArtifactId::Table5 => "table5",
            ArtifactId::Fig4 => "fig4",
            ArtifactId::Irq => "irq",
            ArtifactId::Vhe => "vhe",
            ArtifactId::ZeroCopy => "zerocopy",
            ArtifactId::Link => "link",
            ArtifactId::Vapic => "vapic",
            ArtifactId::Storage => "storage",
            ArtifactId::Oversub => "oversub",
        }
    }

    /// The JSON export file stem (`<stem>.json`).
    pub fn json_name(self) -> &'static str {
        match self {
            ArtifactId::Table2 => "table2",
            ArtifactId::Table3 => "table3",
            ArtifactId::Table5 => "table5",
            ArtifactId::Fig4 => "fig4",
            ArtifactId::Irq => "irq_distribution",
            ArtifactId::Vhe => "vhe",
            ArtifactId::ZeroCopy => "zero_copy",
            ArtifactId::Link => "link_speed",
            ArtifactId::Vapic => "vapic",
            ArtifactId::Storage => "storage",
            ArtifactId::Oversub => "oversubscription",
        }
    }

    /// Parses a CLI artifact name.
    pub fn parse(s: &str) -> Option<ArtifactId> {
        ArtifactId::ALL.into_iter().find(|a| a.cli_name() == s)
    }
}

/// One independent unit of measurement work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// The whole Table II microbenchmark sweep.
    Table2 {
        /// Iterations per microbenchmark.
        iters: usize,
    },
    /// The Table III breakdown extraction.
    Table3,
    /// The Table V netperf decomposition.
    Table5 {
        /// TCP_RR transactions to simulate.
        transactions: usize,
    },
    /// One Figure 4 cell: `workloads::catalog()[workload]` on
    /// `paper::COLUMNS[column]`.
    Fig4Cell {
        /// Workload index into [`workloads::catalog`].
        workload: usize,
        /// Column index into [`paper::COLUMNS`].
        column: usize,
    },
    /// One ablation study.
    Ablation(ArtifactId),
}

impl Scenario {
    /// Rough relative cost, used to schedule heavier scenarios first so
    /// stragglers don't serialize the tail of a parallel run.
    fn weight(self) -> u64 {
        match self {
            Scenario::Table2 { iters } => 40 + iters as u64,
            Scenario::Table3 => 5,
            Scenario::Table5 { transactions } => 10 + transactions as u64 / 5,
            Scenario::Fig4Cell { .. } => 25,
            Scenario::Ablation(ArtifactId::Oversub) => 15,
            Scenario::Ablation(_) => 5,
        }
    }

    /// Executes the scenario. Self-contained and deterministic: all
    /// state is constructed here, so concurrent executions cannot
    /// interact.
    pub fn execute(self) -> Output {
        match self {
            Scenario::Table2 { iters } => Output::Table2(micro::Table2::measure(iters)),
            Scenario::Table3 => Output::Table3(table3::Table3::measure()),
            Scenario::Table5 { transactions } => {
                Output::Table5(netperf::Table5::measure(transactions))
            }
            Scenario::Fig4Cell { workload, column } => {
                let cat = workloads::catalog();
                Output::Fig4Cell(fig4::measure_bar(
                    &cat[workload],
                    paper::COLUMNS[column],
                    VirqPolicy::Vcpu0,
                ))
            }
            Scenario::Ablation(ArtifactId::Irq) => Output::Irq(ablations::irq_distribution()),
            Scenario::Ablation(ArtifactId::Vhe) => Output::Vhe(ablations::vhe()),
            Scenario::Ablation(ArtifactId::ZeroCopy) => Output::ZeroCopy(ablations::zero_copy()),
            Scenario::Ablation(ArtifactId::Link) => Output::Link(ablations::link_speed()),
            Scenario::Ablation(ArtifactId::Vapic) => Output::Vapic(ablations::vapic()),
            Scenario::Ablation(ArtifactId::Storage) => Output::Storage(ablations::storage()),
            Scenario::Ablation(ArtifactId::Oversub) => {
                Output::Oversub(ablations::oversubscription())
            }
            Scenario::Ablation(other) => unreachable!("{other:?} is not an ablation"),
        }
    }
}

/// What a [`Scenario`] produced.
#[derive(Debug, Clone)]
pub enum Output {
    /// Table II result.
    Table2(micro::Table2),
    /// Table III result.
    Table3(table3::Table3),
    /// Table V result.
    Table5(netperf::Table5),
    /// One Figure 4 cell (`None` = unrunnable combination).
    Fig4Cell(Option<f64>),
    /// Interrupt-distribution rows.
    Irq(Vec<ablations::IrqDistributionRow>),
    /// VHE projection.
    Vhe(ablations::VheProjection),
    /// Zero-copy analysis.
    ZeroCopy(ablations::ZeroCopyAnalysis),
    /// Link-speed ablation.
    Link(ablations::LinkSpeedAblation),
    /// vAPIC ablation.
    Vapic(ablations::VapicAblation),
    /// Storage ablation.
    Storage(ablations::StorageAblation),
    /// Oversubscription sweep.
    Oversub(ablations::OversubscriptionAblation),
}

/// A completed scenario with its wall-clock cost.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// What ran.
    pub scenario: Scenario,
    /// What it produced.
    pub output: Output,
    /// How long it took on the host.
    pub wall: Duration,
}

/// Expands the requested artifacts (in the given order) into the flat
/// scenario plan: tables and ablations are one scenario each, Figure 4
/// fans out into one scenario per cell.
pub fn plan(artifacts: &[ArtifactId]) -> Vec<Scenario> {
    let mut out = Vec::new();
    for a in artifacts {
        match a {
            ArtifactId::Table2 => out.push(Scenario::Table2 {
                iters: TABLE2_ITERS,
            }),
            ArtifactId::Table3 => out.push(Scenario::Table3),
            ArtifactId::Table5 => out.push(Scenario::Table5 {
                transactions: TABLE5_TRANSACTIONS,
            }),
            ArtifactId::Fig4 => {
                let workloads = workloads::catalog().len();
                for workload in 0..workloads {
                    for column in 0..paper::COLUMNS.len() {
                        out.push(Scenario::Fig4Cell { workload, column });
                    }
                }
            }
            ablation => out.push(Scenario::Ablation(*ablation)),
        }
    }
    out
}

fn run_one(scenario: Scenario) -> ScenarioResult {
    let start = Instant::now();
    let output = scenario.execute();
    ScenarioResult {
        scenario,
        output,
        wall: start.elapsed(),
    }
}

/// Runs every scenario in `plan` on up to `jobs` OS threads and returns
/// the results **in plan order**.
///
/// `jobs == 1` runs inline on the caller's thread (no pool, no locks).
/// With more jobs, workers pull from a shared heaviest-first queue and
/// write into the slot matching the scenario's plan index, so the
/// returned vector — and everything assembled from it — is identical to
/// a serial run regardless of completion order.
///
/// # Errors
///
/// [`Error::InvalidJobs`] if `jobs == 0`.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_scenarios(plan: &[Scenario], jobs: usize) -> Result<Vec<ScenarioResult>, Error> {
    if jobs == 0 {
        return Err(Error::InvalidJobs { jobs });
    }
    if jobs == 1 || plan.len() <= 1 {
        return Ok(plan.iter().map(|s| run_one(*s)).collect());
    }

    // The work queue is the engine's own EventQueue: it pops the smallest
    // (when, seq) key, so scheduling at `MAX - weight` makes heavier
    // scenarios come out first, FIFO among equals.
    let mut queue = EventQueue::with_capacity(plan.len());
    for (idx, s) in plan.iter().enumerate() {
        queue.schedule(Cycles::new(u64::MAX - s.weight()), idx);
    }
    let queue = Mutex::new(queue);
    let slots: Vec<Mutex<Option<ScenarioResult>>> = plan.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(plan.len()) {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop();
                let Some((_, idx)) = next else { break };
                let result = run_one(plan[idx]);
                *slots[idx].lock().expect("slot lock") = Some(result);
            });
        }
    });

    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every scheduled scenario ran")
        })
        .collect())
}

/// One assembled artifact: the exact text `hvx-repro` prints and the
/// exact JSON it exports, plus the summed wall-clock of its scenarios.
#[derive(Debug, Clone)]
pub struct ArtifactReport {
    /// Which artifact this is.
    pub id: ArtifactId,
    /// The full stdout block for this artifact (header included),
    /// byte-identical to what the pre-runner `hvx-repro` printed.
    pub text: String,
    /// Pretty-printed JSON export.
    pub json: String,
    /// Sum of the artifact's scenario wall-clocks.
    pub wall: Duration,
}

fn to_json<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    serde_json::to_string_pretty(value).map_err(|e| Error::Serialize {
        what: "artifact report",
        detail: e.to_string(),
    })
}

/// Folds scenario results back into per-artifact reports. `artifacts`
/// must be the same list (same order) that produced the plan; results
/// must be in plan order, as returned by [`run_scenarios`].
///
/// # Errors
///
/// [`Error::PlanMismatch`] if `results` does not line up with the plan
/// of `artifacts`; [`Error::Serialize`] if a report fails to export.
pub fn assemble(
    artifacts: &[ArtifactId],
    results: &[ScenarioResult],
) -> Result<Vec<ArtifactReport>, Error> {
    let expected = plan(artifacts).len();
    if results.len() != expected {
        return Err(Error::PlanMismatch {
            expected,
            got: results.len(),
        });
    }
    let mut reports = Vec::new();
    let mut it = results.iter();
    let mut next = || it.next().expect("length checked against the plan");
    for id in artifacts {
        let report = match id {
            ArtifactId::Fig4 => {
                let n_cells = workloads::catalog().len() * paper::COLUMNS.len();
                let mut cells = Vec::with_capacity(n_cells);
                let mut wall = Duration::ZERO;
                for _ in 0..n_cells {
                    let r = next();
                    let Output::Fig4Cell(cell) = &r.output else {
                        return Err(Error::PlanMismatch {
                            expected: n_cells,
                            got: cells.len(),
                        });
                    };
                    cells.push(*cell);
                    wall += r.wall;
                }
                let f = fig4::Figure4::from_cells(&cells);
                ArtifactReport {
                    id: *id,
                    text: format!(
                        "{}\n== Figure 4: application benchmarks ==\n\n{}\n",
                        workloads::render_table4(),
                        f.render()
                    ),
                    json: to_json(&f)?,
                    wall,
                }
            }
            _ => {
                let r = next();
                let (text, json) = match &r.output {
                    Output::Table2(t) => (
                        format!(
                            "== Table II: microbenchmark cycle counts ==\n\n{}\nworst residual: {:.1}%\n\n",
                            t.render(),
                            t.worst_error() * 100.0
                        ),
                        to_json(t)?,
                    ),
                    Output::Table3(t) => (
                        format!("== Table III: KVM ARM hypercall breakdown ==\n\n{}\n", t.render()),
                        to_json(t)?,
                    ),
                    Output::Table5(t) => (
                        format!("== Table V: netperf TCP_RR decomposition ==\n\n{}\n", t.render()),
                        to_json(t)?,
                    ),
                    Output::Irq(rows) => (
                        format!(
                            "== Section V: interrupt-distribution ablation ==\n\n{}\n",
                            ablations::render_irq_distribution(rows)
                        ),
                        to_json(rows)?,
                    ),
                    Output::Vhe(p) => (
                        format!("== Section VI: VHE projection ==\n\n{}\n", ablations::render_vhe(p)),
                        to_json(p)?,
                    ),
                    Output::ZeroCopy(z) => (
                        format!(
                            "== Section V: zero-copy trade ==\n\n{}\n",
                            ablations::render_zero_copy(z)
                        ),
                        to_json(z)?,
                    ),
                    Output::Link(l) => (
                        format!(
                            "== Section III: link-speed observation ==\n\n{}\n",
                            ablations::render_link_speed(l)
                        ),
                        to_json(l)?,
                    ),
                    Output::Vapic(v) => (
                        format!("== Section IV: vAPIC note ==\n\n{}\n", ablations::render_vapic(v)),
                        to_json(v)?,
                    ),
                    Output::Storage(s) => (
                        format!(
                            "== Section III devices: storage ablation ==\n\n{}\n",
                            ablations::render_storage(s)
                        ),
                        to_json(s)?,
                    ),
                    Output::Oversub(o) => (
                        format!(
                            "== Table I motivation: oversubscription sweep ==\n\n{}\n",
                            ablations::render_oversubscription(o)
                        ),
                        to_json(o)?,
                    ),
                    Output::Fig4Cell(_) => {
                        return Err(Error::PlanMismatch {
                            expected: 1,
                            got: 0,
                        });
                    }
                };
                ArtifactReport {
                    id: *id,
                    text,
                    json,
                    wall: r.wall,
                }
            }
        };
        reports.push(report);
    }
    debug_assert!(it.next().is_none(), "length checked against the plan");
    Ok(reports)
}

/// Convenience wrapper: plan, run with `jobs` workers, assemble.
///
/// # Errors
///
/// As for [`run_scenarios`] and [`assemble`].
pub fn run_artifacts(artifacts: &[ArtifactId], jobs: usize) -> Result<Vec<ArtifactReport>, Error> {
    let plan = plan(artifacts);
    let results = run_scenarios(&plan, jobs)?;
    assemble(artifacts, &results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fans_fig4_into_cells() {
        let p = plan(&[ArtifactId::Fig4]);
        assert_eq!(p.len(), 36);
        assert!(matches!(
            p[0],
            Scenario::Fig4Cell {
                workload: 0,
                column: 0
            }
        ));
        let p = plan(&[ArtifactId::Table2, ArtifactId::Vhe]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn artifact_names_round_trip() {
        for a in ArtifactId::ALL {
            assert_eq!(ArtifactId::parse(a.cli_name()), Some(a));
            assert!(!a.json_name().is_empty());
        }
        assert_eq!(ArtifactId::parse("nope"), None);
    }

    #[test]
    fn parallel_ablations_match_serial() {
        let artifacts = [ArtifactId::Table3, ArtifactId::Vhe, ArtifactId::Link];
        let p = plan(&artifacts);
        let serial = assemble(&artifacts, &run_scenarios(&p, 1).unwrap()).unwrap();
        let parallel = assemble(&artifacts, &run_scenarios(&p, 3).unwrap()).unwrap();
        for (s, q) in serial.iter().zip(&parallel) {
            assert_eq!(s.json, q.json, "{:?} diverged", s.id);
            assert_eq!(s.text, q.text, "{:?} text diverged", s.id);
        }
    }

    #[test]
    fn fig4_cells_assemble_to_measure() {
        let artifacts = [ArtifactId::Fig4];
        let p = plan(&artifacts);
        let reports = assemble(&artifacts, &run_scenarios(&p, 4).unwrap()).unwrap();
        let direct = fig4::Figure4::measure();
        assert_eq!(reports[0].json, super::to_json(&direct).unwrap());
    }

    #[test]
    fn zero_jobs_is_an_error_not_a_panic() {
        assert!(matches!(
            run_scenarios(&[], 0),
            Err(Error::InvalidJobs { jobs: 0 })
        ));
    }

    #[test]
    fn short_results_are_a_plan_mismatch() {
        let artifacts = [ArtifactId::Fig4];
        let err = assemble(&artifacts, &[]).unwrap_err();
        assert!(matches!(
            err,
            Error::PlanMismatch {
                expected: 36,
                got: 0
            }
        ));
    }
}
