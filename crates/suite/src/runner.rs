//! Parallel scenario runner for the full artifact matrix.
//!
//! Every artifact `hvx-repro` regenerates decomposes into independent
//! **scenarios**: each Figure 4 workload×hypervisor cell is one scenario
//! (36 of them), and each table/ablation is one more. Scenarios share no
//! state — every one constructs its own hypervisor models and machine —
//! so they can fan out across OS threads, and because each scenario is
//! individually deterministic, the assembled artifacts are **byte-for-
//! byte identical** no matter how many workers ran them. The runner
//! guarantees this structurally: results land in per-scenario slots
//! indexed by plan position, and assembly reads the slots in plan order.
//!
//! ```
//! use hvx_suite::runner::{self, ArtifactId};
//!
//! let plan = runner::plan(&[ArtifactId::Table3]);
//! let serial = runner::assemble(&[ArtifactId::Table3], &runner::run_scenarios(&plan, 1)?)?;
//! let parallel = runner::assemble(&[ArtifactId::Table3], &runner::run_scenarios(&plan, 4)?)?;
//! assert_eq!(serial[0].json, parallel[0].json);
//! # Ok::<(), hvx_core::Error>(())
//! ```

use crate::{ablations, consolidation, fig4, micro, netperf, paper, rack, table3, workloads};
use hvx_core::{Error, Hypervisor, KvmArm, ScenarioFailureKind, SchedPolicy, VirqPolicy};
use hvx_engine::{fault, Cycles, EventQueue, FaultPlan, TraceKind, Watchdog};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Iterations used for the Table II microbenchmark sweep.
pub const TABLE2_ITERS: usize = 10;
/// Transactions used for the Table V netperf decomposition.
pub const TABLE5_TRANSACTIONS: usize = 50;

/// One reproducible artifact of the paper, in `hvx-repro` output order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArtifactId {
    /// Table II: microbenchmark cycle counts.
    Table2,
    /// Table III: KVM ARM hypercall breakdown.
    Table3,
    /// Table V: netperf TCP_RR decomposition.
    Table5,
    /// Figure 4: application benchmark overheads.
    Fig4,
    /// §V interrupt-distribution ablation.
    Irq,
    /// §VI VHE projection.
    Vhe,
    /// §V zero-copy trade.
    ZeroCopy,
    /// §III link-speed observation.
    Link,
    /// §IV vAPIC note.
    Vapic,
    /// §III devices: storage ablation.
    Storage,
    /// Table I motivation: oversubscription sweep.
    Oversub,
    /// Fault-injection & recovery loss sweep.
    FaultRec,
    /// Rack-scale TCP_RR over the sharded multi-host engine.
    Rack,
}

impl ArtifactId {
    /// Every artifact, in the order `hvx-repro` prints them.
    pub const ALL: [ArtifactId; 13] = [
        ArtifactId::Table2,
        ArtifactId::Table3,
        ArtifactId::Table5,
        ArtifactId::Fig4,
        ArtifactId::Irq,
        ArtifactId::Vhe,
        ArtifactId::ZeroCopy,
        ArtifactId::Link,
        ArtifactId::Vapic,
        ArtifactId::Storage,
        ArtifactId::Oversub,
        ArtifactId::FaultRec,
        ArtifactId::Rack,
    ];

    /// The CLI name (`hvx-repro [ARTIFACT...]`).
    pub fn cli_name(self) -> &'static str {
        match self {
            ArtifactId::Table2 => "table2",
            ArtifactId::Table3 => "table3",
            ArtifactId::Table5 => "table5",
            ArtifactId::Fig4 => "fig4",
            ArtifactId::Irq => "irq",
            ArtifactId::Vhe => "vhe",
            ArtifactId::ZeroCopy => "zerocopy",
            ArtifactId::Link => "link",
            ArtifactId::Vapic => "vapic",
            ArtifactId::Storage => "storage",
            ArtifactId::Oversub => "oversub",
            ArtifactId::FaultRec => "faultrec",
            ArtifactId::Rack => "rack",
        }
    }

    /// The JSON export file stem (`<stem>.json`).
    pub fn json_name(self) -> &'static str {
        match self {
            ArtifactId::Table2 => "table2",
            ArtifactId::Table3 => "table3",
            ArtifactId::Table5 => "table5",
            ArtifactId::Fig4 => "fig4",
            ArtifactId::Irq => "irq_distribution",
            ArtifactId::Vhe => "vhe",
            ArtifactId::ZeroCopy => "zero_copy",
            ArtifactId::Link => "link_speed",
            ArtifactId::Vapic => "vapic",
            ArtifactId::Storage => "storage",
            ArtifactId::Oversub => "oversubscription",
            ArtifactId::FaultRec => "fault_recovery",
            ArtifactId::Rack => "rack",
        }
    }

    /// Parses a CLI artifact name.
    pub fn parse(s: &str) -> Option<ArtifactId> {
        ArtifactId::ALL.into_iter().find(|a| a.cli_name() == s)
    }
}

/// One independent unit of measurement work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// The whole Table II microbenchmark sweep.
    Table2 {
        /// Iterations per microbenchmark.
        iters: usize,
    },
    /// The Table III breakdown extraction.
    Table3,
    /// The Table V netperf decomposition.
    Table5 {
        /// TCP_RR transactions to simulate.
        transactions: usize,
    },
    /// One Figure 4 cell: `workloads::catalog()[workload]` on
    /// `paper::COLUMNS[column]`.
    Fig4Cell {
        /// Workload index into [`workloads::catalog`].
        workload: usize,
        /// Column index into [`paper::COLUMNS`].
        column: usize,
    },
    /// One consolidation-sweep cell: `paper::COLUMNS[column]` at
    /// `ratio`:1 vCPU:pCPU oversubscription under `sched`.
    ConsolidationCell {
        /// Column index into [`paper::COLUMNS`].
        column: usize,
        /// vCPU:pCPU ratio (= VMs sharing the pCPU pair).
        ratio: u32,
        /// The hypervisor vCPU scheduler.
        sched: SchedPolicy,
    },
    /// One rack cell: `hosts` servers in a TCP_RR ring under the given
    /// per-host hypervisor composition, run on the sharded engine.
    RackCell {
        /// Hosts in the ring.
        hosts: u32,
        /// Per-host hypervisor assignment.
        composition: rack::Composition,
    },
    /// One ablation study.
    Ablation(ArtifactId),
    /// A deliberately misbehaving scenario for exercising the runner's
    /// isolation machinery. Never emitted by [`plan`]; injected only via
    /// [`RunnerConfig::chaos`] (the CLI's `--chaos`) and tests.
    Chaos(ChaosKind),
}

/// How a [`Scenario::Chaos`] scenario misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Panics outright.
    Panic,
    /// Charges ~2×10¹² simulated cycles while burning ~0.1 s of wall
    /// clock — trips cycle budgets and wall-clock timeouts.
    Spin,
    /// Issues a long run of zero-cost charges that advance no clock —
    /// trips the livelock detector.
    Livelock,
}

impl ChaosKind {
    /// The CLI name (`--chaos NAME`).
    pub fn name(self) -> &'static str {
        match self {
            ChaosKind::Panic => "panic",
            ChaosKind::Spin => "spin",
            ChaosKind::Livelock => "livelock",
        }
    }

    /// Parses a `--chaos` argument.
    pub fn parse(s: &str) -> Option<ChaosKind> {
        [ChaosKind::Panic, ChaosKind::Spin, ChaosKind::Livelock]
            .into_iter()
            .find(|k| k.name() == s)
    }
}

impl Scenario {
    /// Rough relative cost, used to schedule heavier scenarios first so
    /// stragglers don't serialize the tail of a parallel run.
    fn weight(self) -> u64 {
        match self {
            Scenario::Table2 { iters } => 40 + iters as u64,
            Scenario::Table3 => 5,
            Scenario::Table5 { transactions } => 10 + transactions as u64 / 5,
            Scenario::Fig4Cell { .. } => 25,
            // Contended cells interpret 2×ratio vCPUs; cost scales
            // roughly with the ratio.
            Scenario::ConsolidationCell { ratio, .. } => 5 + u64::from(ratio) / 2,
            // Work grows with hosts² (each of H×N tokens laps H hosts).
            Scenario::RackCell { hosts, .. } => 10 + u64::from(hosts) * u64::from(hosts),
            Scenario::Ablation(ArtifactId::Oversub) => 15,
            Scenario::Ablation(ArtifactId::FaultRec) => 20,
            Scenario::Ablation(_) => 5,
            Scenario::Chaos(_) => 1,
        }
    }

    /// A short human-readable name for failure reports.
    pub fn label(self) -> String {
        match self {
            Scenario::Table2 { .. } => "table2".to_string(),
            Scenario::Table3 => "table3".to_string(),
            Scenario::Table5 { .. } => "table5".to_string(),
            Scenario::Fig4Cell { workload, column } => {
                let cat = workloads::catalog();
                let w = cat.get(workload).map_or("?", |w| w.name);
                let hv = paper::COLUMNS
                    .get(column)
                    .map_or_else(|| "?".to_string(), |k| k.to_string());
                format!("fig4[{w}/{hv}]")
            }
            Scenario::ConsolidationCell {
                column,
                ratio,
                sched,
            } => {
                let hv = paper::COLUMNS
                    .get(column)
                    .map_or_else(|| "?".to_string(), |k| k.to_string());
                format!("oversub[{hv}/{ratio}:1/{sched}]")
            }
            Scenario::RackCell { hosts, composition } => {
                format!("rack[{hosts}h/{}]", composition.name())
            }
            Scenario::Ablation(a) => a.cli_name().to_string(),
            Scenario::Chaos(k) => format!("chaos-{}", k.name()),
        }
    }

    /// Executes the scenario. Self-contained and deterministic: all
    /// state is constructed here, so concurrent executions cannot
    /// interact.
    ///
    /// # Errors
    ///
    /// A malformed configuration or workload surfaces as a typed
    /// [`Error`] instead of a panic; [`run_scenarios`] degrades it to a
    /// marked failed cell.
    pub fn execute(self) -> Result<Output, Error> {
        Ok(match self {
            Scenario::Table2 { iters } => Output::Table2(micro::Table2::measure(iters)?),
            Scenario::Table3 => Output::Table3(table3::Table3::measure()?),
            Scenario::Table5 { transactions } => {
                Output::Table5(Box::new(netperf::Table5::measure(transactions)?))
            }
            Scenario::Fig4Cell { workload, column } => {
                let cat = workloads::catalog();
                Output::Fig4Cell(fig4::measure_bar(
                    &cat[workload],
                    paper::COLUMNS[column],
                    VirqPolicy::Vcpu0,
                )?)
            }
            Scenario::ConsolidationCell {
                column,
                ratio,
                sched,
            } => Output::Consolidation(consolidation::run_cell(
                paper::COLUMNS[column],
                ratio,
                sched,
                consolidation::TRANSACTIONS_PER_VM,
                workloads::compile_enabled(),
            )?),
            Scenario::RackCell { hosts, composition } => {
                Output::Rack(rack::run_cell(composition, hosts)?)
            }
            Scenario::Ablation(ArtifactId::Irq) => Output::Irq(ablations::irq_distribution()?),
            Scenario::Ablation(ArtifactId::Vhe) => Output::Vhe(ablations::vhe()?),
            Scenario::Ablation(ArtifactId::ZeroCopy) => Output::ZeroCopy(ablations::zero_copy()?),
            Scenario::Ablation(ArtifactId::Link) => Output::Link(ablations::link_speed()?),
            Scenario::Ablation(ArtifactId::Vapic) => Output::Vapic(ablations::vapic()),
            Scenario::Ablation(ArtifactId::Storage) => Output::Storage(ablations::storage()?),
            Scenario::Ablation(ArtifactId::Oversub) => {
                Output::Oversub(ablations::oversubscription())
            }
            Scenario::Ablation(ArtifactId::FaultRec) => {
                Output::FaultRec(ablations::fault_recovery()?)
            }
            Scenario::Ablation(other) => unreachable!("{other:?} is not an ablation"),
            Scenario::Chaos(ChaosKind::Panic) => {
                panic!("chaos: deliberate panic for isolation testing")
            }
            Scenario::Chaos(ChaosKind::Spin) => {
                let mut hv = KvmArm::new();
                for _ in 0..200 {
                    hv.guest_compute(0, Cycles::new(10_000_000_000));
                    std::thread::sleep(Duration::from_micros(500));
                }
                Output::Chaos
            }
            Scenario::Chaos(ChaosKind::Livelock) => {
                let mut hv = KvmArm::new();
                let core = hv.machine().topology().guest_core(0);
                for _ in 0..200_000 {
                    hv.machine_mut()
                        .charge(core, "chaos:livelock", TraceKind::Guest, Cycles::ZERO);
                }
                Output::Chaos
            }
        })
    }
}

/// What a [`Scenario`] produced.
#[derive(Debug, Clone)]
pub enum Output {
    /// Table II result.
    Table2(micro::Table2),
    /// Table III result.
    Table3(table3::Table3),
    /// Table V result (boxed: by far the largest payload).
    Table5(Box<netperf::Table5>),
    /// One Figure 4 cell (`None` = unrunnable combination).
    Fig4Cell(Option<f64>),
    /// Interrupt-distribution rows.
    Irq(Vec<ablations::IrqDistributionRow>),
    /// VHE projection.
    Vhe(ablations::VheProjection),
    /// Zero-copy analysis.
    ZeroCopy(ablations::ZeroCopyAnalysis),
    /// Link-speed ablation.
    Link(ablations::LinkSpeedAblation),
    /// vAPIC ablation.
    Vapic(ablations::VapicAblation),
    /// Storage ablation.
    Storage(ablations::StorageAblation),
    /// Oversubscription sweep (the analytic credit-scheduler model).
    Oversub(ablations::OversubscriptionAblation),
    /// One simulated consolidation cell.
    Consolidation(consolidation::CellResult),
    /// One simulated rack cell.
    Rack(rack::CellResult),
    /// Fault-recovery sweep.
    FaultRec(ablations::FaultRecoveryAblation),
    /// A chaos scenario that (unexpectedly) survived.
    Chaos,
}

/// Why a scenario failed instead of producing an [`Output`].
#[derive(Debug, Clone)]
pub struct ScenarioFailure {
    /// The failure class (panic, timeout, livelock).
    pub kind: ScenarioFailureKind,
    /// Human-readable detail (panic message, tripped budget, ...).
    pub detail: String,
}

impl std::fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// A completed scenario with its wall-clock cost.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// What ran.
    pub scenario: Scenario,
    /// What it produced — or why it failed. A failed scenario never
    /// poisons the run: its siblings complete and the artifact renders
    /// with the failed cell marked.
    pub outcome: Result<Output, ScenarioFailure>,
    /// How long it took on the host.
    pub wall: Duration,
    /// Simulated transitions this scenario charged (every
    /// [`Machine::charge`] call, whether interpreted or bulk-replayed
    /// by the loop compiler). Zero for cache hits — nothing simulated.
    ///
    /// [`Machine::charge`]: hvx_engine::Machine::charge
    pub transitions: u64,
    /// Transient-failure retries spent before this outcome settled
    /// (0 = the first attempt stood). Only panicking scenarios are
    /// retried, and only when [`RunnerConfig::retry`] allows it.
    pub retries: u32,
    /// Content fingerprint of the scenario's full input closure, or
    /// `None` for uncacheable scenarios (chaos injections).
    pub fingerprint: Option<hvx_engine::Fingerprint>,
    /// Whether the outcome was served from the content-addressed cache
    /// instead of being simulated.
    pub cached: bool,
}

impl ScenarioResult {
    /// The structured per-cell record for this result — what the sweep
    /// server and `hvx-repro run --out json` put on the wire.
    pub fn cell_report(&self) -> hvx_core::report::CellReport {
        hvx_core::report::CellReport {
            scenario: self.scenario.label(),
            fingerprint: self.fingerprint.map(hvx_engine::Fingerprint::to_hex),
            retries: self.retries,
            cached: self.cached,
            failure: self
                .outcome
                .as_ref()
                .err()
                .map(|f| hvx_core::report::FailureReport {
                    kind: f.kind,
                    detail: f.detail.clone(),
                }),
        }
    }
}

/// Bounded retry-with-backoff for panicking scenarios. The default is
/// zero retries — identical behaviour to the pre-retry runner. Retry
/// policy never enters a scenario's cache [`Fingerprint`]: retrying
/// changes how hard the runner tries, not what the scenario computes.
///
/// Only [`ScenarioFailureKind::Panicked`] failures are retried:
/// timeouts and livelocks are deterministic under a fixed plan (the
/// same budget trips at the same simulated cycle), and typed `Failed`
/// errors are graceful rejections that will not change on a rerun.
///
/// [`Fingerprint`]: hvx_engine::Fingerprint
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = never retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry, capped at
    /// one second.
    pub backoff: Duration,
}

/// Shared configuration for one runner invocation: the fault plan and
/// watchdog installed around every scenario, an optional wall-clock
/// budget, and any chaos scenarios to inject. The default is inert —
/// no faults, no limits — and leaves every artifact byte-identical.
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Deterministic fault plan ambient during every scenario.
    pub fault_plan: Option<FaultPlan>,
    /// Simulated-cycle budget and livelock detector.
    pub watchdog: Watchdog,
    /// Host wall-clock budget per scenario. The simulation itself is
    /// aborted by the (in-band) cycle budget; this classifies scenarios
    /// that exceeded the wall allowance as timed out after the fact.
    pub wall_timeout: Option<Duration>,
    /// Chaos scenarios appended to the plan (isolation smoke tests).
    pub chaos: Vec<ChaosKind>,
    /// Content-addressed result cache. When set, every cacheable
    /// scenario is looked up by its input [`Fingerprint`] before
    /// running and stored after a clean run, so warm reruns skip
    /// unchanged cells entirely (see [`crate::cache`]).
    ///
    /// [`Fingerprint`]: hvx_engine::Fingerprint
    pub cache: Option<std::sync::Arc<crate::cache::ResultCache>>,
    /// Retry-with-backoff for panicking scenarios (default: none).
    pub retry: RetryPolicy,
}

/// Expands the requested artifacts (in the given order) into the flat
/// scenario plan: tables and ablations are one scenario each, Figure 4
/// fans out into one scenario per cell.
pub fn plan(artifacts: &[ArtifactId]) -> Vec<Scenario> {
    let mut out = Vec::new();
    for a in artifacts {
        match a {
            ArtifactId::Table2 => out.push(Scenario::Table2 {
                iters: TABLE2_ITERS,
            }),
            ArtifactId::Table3 => out.push(Scenario::Table3),
            ArtifactId::Table5 => out.push(Scenario::Table5 {
                transactions: TABLE5_TRANSACTIONS,
            }),
            ArtifactId::Fig4 => {
                let workloads = workloads::catalog().len();
                for workload in 0..workloads {
                    for column in 0..paper::COLUMNS.len() {
                        out.push(Scenario::Fig4Cell { workload, column });
                    }
                }
            }
            ArtifactId::Oversub => {
                // The analytic sweep first, then the simulated
                // consolidation grid: scheduler × hypervisor × ratio,
                // in render order.
                out.push(Scenario::Ablation(ArtifactId::Oversub));
                for sched in SchedPolicy::ALL {
                    for column in 0..paper::COLUMNS.len() {
                        for ratio in consolidation::RATIOS {
                            out.push(Scenario::ConsolidationCell {
                                column,
                                ratio,
                                sched,
                            });
                        }
                    }
                }
            }
            ArtifactId::Rack => {
                // Hosts × composition, in render order.
                for hosts in rack::HOST_COUNTS {
                    for composition in rack::Composition::ALL {
                        out.push(Scenario::RackCell { hosts, composition });
                    }
                }
            }
            ablation => out.push(Scenario::Ablation(*ablation)),
        }
    }
    out
}

/// Maps a caught panic payload to a typed failure: the watchdog's
/// typed payloads classify as timeouts/livelocks, everything else as a
/// panic with its message. Public so every `catch_unwind` boundary in
/// the workspace (this runner, the sweep server's job executor)
/// classifies identically.
pub fn classify_panic(payload: &(dyn std::any::Any + Send)) -> ScenarioFailure {
    if let Some(e) = payload.downcast_ref::<fault::CycleBudgetExceeded>() {
        ScenarioFailure {
            kind: ScenarioFailureKind::TimedOut,
            detail: e.to_string(),
        }
    } else if let Some(e) = payload.downcast_ref::<fault::Livelocked>() {
        ScenarioFailure {
            kind: ScenarioFailureKind::Livelocked,
            detail: e.to_string(),
        }
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        ScenarioFailure {
            kind: ScenarioFailureKind::Panicked,
            detail: (*s).to_string(),
        }
    } else if let Some(s) = payload.downcast_ref::<String>() {
        ScenarioFailure {
            kind: ScenarioFailureKind::Panicked,
            detail: s.clone(),
        }
    } else {
        ScenarioFailure {
            kind: ScenarioFailureKind::Panicked,
            detail: "non-string panic payload".to_string(),
        }
    }
}

fn run_one(scenario: Scenario, cfg: &RunnerConfig) -> ScenarioResult {
    let start = Instant::now();
    let fingerprint = crate::cache::scenario_fingerprint(scenario, cfg);
    if let Some(cache) = &cfg.cache {
        if let Some(output) = cache.lookup(scenario, cfg) {
            return ScenarioResult {
                scenario,
                outcome: Ok(output),
                wall: start.elapsed(),
                transitions: 0,
                retries: 0,
                fingerprint,
                cached: true,
            };
        }
    }
    let mut retries = 0u32;
    loop {
        let before = hvx_engine::thread_transitions();
        let outcome = {
            // Ambient so machines built deep inside scenario code pick the
            // plan and watchdog up; the guard restores on unwind, so a
            // tripped scenario cannot leak its plan into the next one this
            // worker runs.
            let _ambient = fault::install_ambient(cfg.fault_plan.clone(), cfg.watchdog);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scenario.execute()))
                .map_err(|payload| classify_panic(payload.as_ref()))
        };
        // Wall is cumulative across attempts (backoff included): it
        // answers "what did this cell cost the run", not "how fast was
        // the last attempt".
        let wall = start.elapsed();
        let transitions = hvx_engine::thread_transitions() - before;
        let outcome = match (outcome, cfg.wall_timeout) {
            (Ok(_), Some(limit)) if wall > limit => Err(ScenarioFailure {
                kind: ScenarioFailureKind::TimedOut,
                detail: format!(
                    "wall clock {:.3}s exceeded the {:.3}s budget",
                    wall.as_secs_f64(),
                    limit.as_secs_f64()
                ),
            }),
            // A typed error from inside the scenario degrades to a failed
            // cell, exactly like a caught panic — siblings keep running.
            (Ok(Err(e)), _) => Err(ScenarioFailure {
                kind: ScenarioFailureKind::Failed,
                detail: e.to_string(),
            }),
            (Ok(Ok(output)), _) => Ok(output),
            (Err(failure), _) => Err(failure),
        };
        if let Err(failure) = &outcome {
            if matches!(
                failure.kind,
                ScenarioFailureKind::TimedOut | ScenarioFailureKind::Livelocked
            ) {
                // Watchdog trips are deterministic under a fixed config:
                // worth a structured record even though they never retry.
                hvx_obs::log::error(
                    "runner",
                    "watchdog_tripped",
                    &[
                        ("scenario", hvx_obs::LogValue::from(scenario.label())),
                        ("kind", hvx_obs::LogValue::from(failure.kind.to_string())),
                        ("detail", hvx_obs::LogValue::from(failure.detail.as_str())),
                    ],
                );
            }
            if failure.kind == ScenarioFailureKind::Panicked && retries < cfg.retry.max_retries {
                let delay = cfg
                    .retry
                    .backoff
                    .saturating_mul(1u32 << retries.min(10))
                    .min(Duration::from_secs(1));
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                retries += 1;
                hvx_obs::log::info(
                    "runner",
                    "scenario_retry",
                    &[
                        ("scenario", hvx_obs::LogValue::from(scenario.label())),
                        ("attempt", hvx_obs::LogValue::from(u64::from(retries))),
                        ("detail", hvx_obs::LogValue::from(failure.detail.as_str())),
                    ],
                );
                continue;
            }
        }
        if let (Some(cache), Ok(output)) = (&cfg.cache, &outcome) {
            cache.store(scenario, cfg, output);
        }
        return ScenarioResult {
            scenario,
            outcome,
            wall,
            transitions,
            retries,
            fingerprint,
            cached: false,
        };
    }
}

/// Runs every scenario in `plan` on up to `jobs` OS threads and returns
/// the results **in plan order**, with the default (inert) config.
///
/// `jobs == 1` runs inline on the caller's thread (no pool, no locks).
/// With more jobs, workers pull from a shared heaviest-first queue and
/// write into the slot matching the scenario's plan index, so the
/// returned vector — and everything assembled from it — is identical to
/// a serial run regardless of completion order.
///
/// # Errors
///
/// [`Error::InvalidJobs`] if `jobs == 0`. A panicking, over-budget, or
/// livelocked scenario is **not** an error here: it lands in its slot
/// as a failed [`ScenarioResult`] and every other scenario completes.
pub fn run_scenarios(plan: &[Scenario], jobs: usize) -> Result<Vec<ScenarioResult>, Error> {
    run_scenarios_with(plan, jobs, &RunnerConfig::default())
}

/// [`run_scenarios`] with an explicit [`RunnerConfig`].
///
/// # Errors
///
/// [`Error::InvalidJobs`] if `jobs == 0`.
pub fn run_scenarios_with(
    plan: &[Scenario],
    jobs: usize,
    cfg: &RunnerConfig,
) -> Result<Vec<ScenarioResult>, Error> {
    if jobs == 0 {
        return Err(Error::InvalidJobs { jobs });
    }
    // Thread spawn + queue/slot locking costs real time; a plan lighter
    // than this runs faster inline than fanned out, so `--jobs N` on a
    // small plan is break-even instead of a regression. The full paper
    // suite weighs ~1k; the iteration-scaled benchmark grid (which is
    // where parallelism pays) weighs well past this cutoff.
    const PARALLEL_MIN_WEIGHT: u64 = 4_000;
    let total_weight: u64 = plan.iter().map(|s| s.weight()).sum();
    if jobs == 1 || plan.len() <= 1 || total_weight < PARALLEL_MIN_WEIGHT {
        return Ok(plan.iter().map(|s| run_one(*s, cfg)).collect());
    }
    Ok(run_scenarios_pooled(plan, jobs, cfg))
}

/// The worker-pool path of [`run_scenarios_with`], with no serial
/// short-circuit: always spawns up to `jobs` threads. Tests target this
/// directly so small plans still exercise the pool machinery.
fn run_scenarios_pooled(plan: &[Scenario], jobs: usize, cfg: &RunnerConfig) -> Vec<ScenarioResult> {
    // The work queue is the engine's own EventQueue: it pops the smallest
    // (when, seq) key, so scheduling at `MAX - weight` makes heavier
    // scenarios come out first, FIFO among equals.
    let mut queue = EventQueue::with_capacity(plan.len());
    for (idx, s) in plan.iter().enumerate() {
        queue.schedule(Cycles::new(u64::MAX - s.weight()), idx);
    }
    let queue = Mutex::new(queue);
    let slots: Vec<Mutex<Option<ScenarioResult>>> = plan.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(plan.len()) {
            scope.spawn(|| loop {
                // Scenario panics are caught inside run_one, but a
                // poisoned lock (from a defect in the runner itself)
                // must not cascade: the queue and slots hold plain
                // data that is valid at every instant, so recover the
                // guard and keep draining.
                let next = queue.lock().unwrap_or_else(PoisonError::into_inner).pop();
                let Some((_, idx)) = next else { break };
                let result = run_one(plan[idx], cfg);
                *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| ScenarioResult {
                    scenario: plan[idx],
                    outcome: Err(ScenarioFailure {
                        kind: ScenarioFailureKind::Panicked,
                        detail: "worker thread died before recording a result".to_string(),
                    }),
                    wall: Duration::ZERO,
                    transitions: 0,
                    retries: 0,
                    fingerprint: None,
                    cached: false,
                })
        })
        .collect()
}

/// One assembled artifact: the exact text `hvx-repro` prints and the
/// exact JSON it exports, plus the summed wall-clock of its scenarios.
#[derive(Debug, Clone)]
pub struct ArtifactReport {
    /// Which artifact this is.
    pub id: ArtifactId,
    /// The full stdout block for this artifact (header included),
    /// byte-identical to what the pre-runner `hvx-repro` printed. When
    /// scenarios failed, the affected cells are marked and `!!` warning
    /// lines are appended — a fault-free run never carries them.
    pub text: String,
    /// Pretty-printed JSON export.
    pub json: String,
    /// Sum of the artifact's scenario wall-clocks.
    pub wall: Duration,
    /// Sum of the artifact's simulated transitions (zero when every
    /// scenario was a cache hit).
    pub transitions: u64,
    /// Scenarios of this artifact that failed: `(label, failure)`.
    /// Empty on a clean run.
    pub failures: Vec<(String, ScenarioFailure)>,
}

fn to_json<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    serde_json::to_string_pretty(value).map_err(|e| Error::Serialize {
        what: "artifact report",
        detail: e.to_string(),
    })
}

/// JSON shape exported for an artifact whose only scenario failed.
#[derive(Debug, serde::Serialize)]
struct FailedArtifact {
    scenario: String,
    failed: String,
    error: String,
}

/// JSON shape of the assembled rack artifact (`None` entries are
/// degraded cells).
#[derive(Debug, serde::Serialize)]
struct RackArtifact {
    cells: Vec<Option<rack::CellResult>>,
}

/// JSON shape of the assembled oversubscription artifact: the analytic
/// credit-scheduler model plus the simulated consolidation grid
/// (`None` entries are degraded cells).
#[derive(Debug, serde::Serialize)]
struct OversubArtifact {
    analytic: Option<ablations::OversubscriptionAblation>,
    cells: Vec<Option<consolidation::CellResult>>,
}

/// The artifact's `== ... ==` banner, used when the artifact cannot
/// render because its scenario failed. Must match the success-path
/// headers byte-for-byte.
fn artifact_header(id: ArtifactId) -> &'static str {
    match id {
        ArtifactId::Table2 => "== Table II: microbenchmark cycle counts ==",
        ArtifactId::Table3 => "== Table III: KVM ARM hypercall breakdown ==",
        ArtifactId::Table5 => "== Table V: netperf TCP_RR decomposition ==",
        ArtifactId::Fig4 => "== Figure 4: application benchmarks ==",
        ArtifactId::Irq => "== Section V: interrupt-distribution ablation ==",
        ArtifactId::Vhe => "== Section VI: VHE projection ==",
        ArtifactId::ZeroCopy => "== Section V: zero-copy trade ==",
        ArtifactId::Link => "== Section III: link-speed observation ==",
        ArtifactId::Vapic => "== Section IV: vAPIC note ==",
        ArtifactId::Storage => "== Section III devices: storage ablation ==",
        ArtifactId::Oversub => "== Table I motivation: oversubscription sweep ==",
        ArtifactId::FaultRec => "== Ablation: fault injection & recovery ==",
        ArtifactId::Rack => "== Rack: multi-host TCP_RR on the sharded engine ==",
    }
}

/// Folds scenario results back into per-artifact reports. `artifacts`
/// must be the same list (same order) that produced the plan; results
/// must be in plan order, as returned by [`run_scenarios`].
///
/// # Errors
///
/// [`Error::PlanMismatch`] if `results` does not line up with the plan
/// of `artifacts`; [`Error::Serialize`] if a report fails to export.
pub fn assemble(
    artifacts: &[ArtifactId],
    results: &[ScenarioResult],
) -> Result<Vec<ArtifactReport>, Error> {
    let expected = plan(artifacts).len();
    if results.len() != expected {
        return Err(Error::PlanMismatch {
            expected,
            got: results.len(),
        });
    }
    let mut reports = Vec::new();
    let mut it = results.iter();
    let mut next = || it.next().expect("length checked against the plan");
    for id in artifacts {
        let report = match id {
            ArtifactId::Fig4 => {
                let n_cells = workloads::catalog().len() * paper::COLUMNS.len();
                let mut cells = Vec::with_capacity(n_cells);
                let mut wall = Duration::ZERO;
                let mut transitions = 0u64;
                let mut failures = Vec::new();
                for _ in 0..n_cells {
                    let r = next();
                    match &r.outcome {
                        Ok(Output::Fig4Cell(cell)) => cells.push(*cell),
                        Ok(_) => {
                            return Err(Error::PlanMismatch {
                                expected: n_cells,
                                got: cells.len(),
                            });
                        }
                        // Degrade, don't abort: the failed cell renders
                        // as the same n/a marker the paper's missing
                        // Apache/Xen-x86 bar uses, and the warning
                        // lines below say why.
                        Err(f) => {
                            cells.push(None);
                            failures.push((r.scenario.label(), f.clone()));
                        }
                    }
                    wall += r.wall;
                    transitions += r.transitions;
                }
                let f = fig4::Figure4::from_cells(&cells);
                let mut text = format!(
                    "{}\n== Figure 4: application benchmarks ==\n\n{}\n",
                    workloads::render_table4(),
                    f.render()
                );
                if !failures.is_empty() {
                    text.push_str(&format!(
                        "!! {} of {n_cells} cells failed and render as n/a:\n",
                        failures.len()
                    ));
                    for (label, failure) in &failures {
                        text.push_str(&format!("!!   {label}: {failure}\n"));
                    }
                    text.push('\n');
                }
                ArtifactReport {
                    id: *id,
                    text,
                    json: to_json(&f)?,
                    wall,
                    transitions,
                    failures,
                }
            }
            ArtifactId::Oversub => {
                // Fan-in: the analytic sweep plus the simulated
                // consolidation grid, all degradable per-cell.
                let n_cells =
                    SchedPolicy::ALL.len() * paper::COLUMNS.len() * consolidation::RATIOS.len();
                let mut wall = Duration::ZERO;
                let mut transitions = 0u64;
                let mut failures = Vec::new();
                let r = next();
                let analytic = match &r.outcome {
                    Ok(Output::Oversub(o)) => Some(o.clone()),
                    Ok(_) => {
                        return Err(Error::PlanMismatch {
                            expected: n_cells + 1,
                            got: 0,
                        });
                    }
                    Err(f) => {
                        failures.push((r.scenario.label(), f.clone()));
                        None
                    }
                };
                wall += r.wall;
                transitions += r.transitions;
                let mut cells: Vec<Option<consolidation::CellResult>> = Vec::with_capacity(n_cells);
                for _ in 0..n_cells {
                    let r = next();
                    match &r.outcome {
                        Ok(Output::Consolidation(c)) => cells.push(Some(c.clone())),
                        Ok(_) => {
                            return Err(Error::PlanMismatch {
                                expected: n_cells + 1,
                                got: cells.len() + 1,
                            });
                        }
                        Err(f) => {
                            cells.push(None);
                            failures.push((r.scenario.label(), f.clone()));
                        }
                    }
                    wall += r.wall;
                    transitions += r.transitions;
                }
                let mut text = String::from("== Table I motivation: oversubscription sweep ==\n\n");
                match &analytic {
                    Some(o) => {
                        text.push_str(&ablations::render_oversubscription(o));
                        text.push('\n');
                    }
                    None => text.push_str("!! analytic sweep unavailable this run\n\n"),
                }
                text.push_str(&format!(
                    "-- simulated consolidation: 2 pCPUs, N two-vCPU VMs, TCP_RR \
                     ({} txns/VM) --\n\n",
                    consolidation::TRANSACTIONS_PER_VM
                ));
                let per_sched = paper::COLUMNS.len() * consolidation::RATIOS.len();
                for (i, sched) in SchedPolicy::ALL.iter().enumerate() {
                    let slice = &cells[i * per_sched..(i + 1) * per_sched];
                    text.push_str(&consolidation::render_sweep(sched.name(), slice));
                    text.push('\n');
                }
                if !failures.is_empty() {
                    text.push_str(&format!(
                        "!! {} of {} scenarios failed and render as n/a:\n",
                        failures.len(),
                        n_cells + 1
                    ));
                    for (label, failure) in &failures {
                        text.push_str(&format!("!!   {label}: {failure}\n"));
                    }
                    text.push('\n');
                }
                let artifact = OversubArtifact { analytic, cells };
                ArtifactReport {
                    id: *id,
                    text,
                    json: to_json(&artifact)?,
                    wall,
                    transitions,
                    failures,
                }
            }
            ArtifactId::Rack => {
                let n_cells = rack::HOST_COUNTS.len() * rack::Composition::ALL.len();
                let mut cells: Vec<Option<rack::CellResult>> = Vec::with_capacity(n_cells);
                let mut wall = Duration::ZERO;
                let mut transitions = 0u64;
                let mut failures = Vec::new();
                for _ in 0..n_cells {
                    let r = next();
                    match &r.outcome {
                        Ok(Output::Rack(c)) => cells.push(Some(c.clone())),
                        Ok(_) => {
                            return Err(Error::PlanMismatch {
                                expected: n_cells,
                                got: cells.len(),
                            });
                        }
                        Err(f) => {
                            cells.push(None);
                            failures.push((r.scenario.label(), f.clone()));
                        }
                    }
                    wall += r.wall;
                    transitions += r.transitions;
                }
                let mut text =
                    String::from("== Rack: multi-host TCP_RR on the sharded engine ==\n\n");
                let ok: Vec<rack::CellResult> = cells.iter().flatten().cloned().collect();
                text.push_str(&rack::render_sweep(&ok));
                text.push('\n');
                if !failures.is_empty() {
                    text.push_str(&format!(
                        "!! {} of {n_cells} cells failed and are omitted:\n",
                        failures.len()
                    ));
                    for (label, failure) in &failures {
                        text.push_str(&format!("!!   {label}: {failure}\n"));
                    }
                    text.push('\n');
                }
                let artifact = RackArtifact { cells };
                ArtifactReport {
                    id: *id,
                    text,
                    json: to_json(&artifact)?,
                    wall,
                    transitions,
                    failures,
                }
            }
            _ => {
                let r = next();
                let output = match &r.outcome {
                    Ok(output) => output,
                    Err(f) => {
                        let label = r.scenario.label();
                        reports.push(ArtifactReport {
                            id: *id,
                            text: format!(
                                "{}\n\n!! scenario '{label}' {f}\n!! artifact unavailable this run\n\n",
                                artifact_header(*id)
                            ),
                            json: to_json(&FailedArtifact {
                                scenario: label.clone(),
                                failed: f.kind.to_string(),
                                error: f.detail.clone(),
                            })?,
                            wall: r.wall,
                            transitions: r.transitions,
                            failures: vec![(label.clone(), f.clone())],
                        });
                        continue;
                    }
                };
                let (text, json) = match output {
                    Output::Table2(t) => (
                        format!(
                            "== Table II: microbenchmark cycle counts ==\n\n{}\nworst residual: {:.1}%\n\n",
                            t.render(),
                            t.worst_error() * 100.0
                        ),
                        to_json(t)?,
                    ),
                    Output::Table3(t) => (
                        format!("== Table III: KVM ARM hypercall breakdown ==\n\n{}\n", t.render()),
                        to_json(t)?,
                    ),
                    Output::Table5(t) => (
                        format!("== Table V: netperf TCP_RR decomposition ==\n\n{}\n", t.render()),
                        to_json(t.as_ref())?,
                    ),
                    Output::Irq(rows) => (
                        format!(
                            "== Section V: interrupt-distribution ablation ==\n\n{}\n",
                            ablations::render_irq_distribution(rows)
                        ),
                        to_json(rows)?,
                    ),
                    Output::Vhe(p) => (
                        format!("== Section VI: VHE projection ==\n\n{}\n", ablations::render_vhe(p)),
                        to_json(p)?,
                    ),
                    Output::ZeroCopy(z) => (
                        format!(
                            "== Section V: zero-copy trade ==\n\n{}\n",
                            ablations::render_zero_copy(z)
                        ),
                        to_json(z)?,
                    ),
                    Output::Link(l) => (
                        format!(
                            "== Section III: link-speed observation ==\n\n{}\n",
                            ablations::render_link_speed(l)
                        ),
                        to_json(l)?,
                    ),
                    Output::Vapic(v) => (
                        format!("== Section IV: vAPIC note ==\n\n{}\n", ablations::render_vapic(v)),
                        to_json(v)?,
                    ),
                    Output::Storage(s) => (
                        format!(
                            "== Section III devices: storage ablation ==\n\n{}\n",
                            ablations::render_storage(s)
                        ),
                        to_json(s)?,
                    ),
                    Output::Oversub(o) => (
                        format!(
                            "== Table I motivation: oversubscription sweep ==\n\n{}\n",
                            ablations::render_oversubscription(o)
                        ),
                        to_json(o)?,
                    ),
                    Output::FaultRec(f) => (
                        format!(
                            "== Ablation: fault injection & recovery ==\n\n{}\n",
                            ablations::render_fault_recovery(f)
                        ),
                        to_json(f)?,
                    ),
                    Output::Fig4Cell(_)
                    | Output::Consolidation(_)
                    | Output::Rack(_)
                    | Output::Chaos => {
                        return Err(Error::PlanMismatch {
                            expected: 1,
                            got: 0,
                        });
                    }
                };
                ArtifactReport {
                    id: *id,
                    text,
                    json,
                    wall: r.wall,
                    transitions: r.transitions,
                    failures: Vec::new(),
                }
            }
        };
        reports.push(report);
    }
    debug_assert!(it.next().is_none(), "length checked against the plan");
    Ok(reports)
}

/// Convenience wrapper: plan, run with `jobs` workers, assemble.
///
/// # Errors
///
/// As for [`run_scenarios`] and [`assemble`].
pub fn run_artifacts(artifacts: &[ArtifactId], jobs: usize) -> Result<Vec<ArtifactReport>, Error> {
    run_artifacts_with(artifacts, jobs, &RunnerConfig::default()).map(|o| o.reports)
}

/// Everything one configured run produced: the assembled artifacts and
/// the outcomes of any injected chaos scenarios.
#[derive(Debug)]
pub struct RunOutcome {
    /// Per-artifact reports, in request order.
    pub reports: Vec<ArtifactReport>,
    /// Failures from [`RunnerConfig::chaos`] scenarios (which belong to
    /// no artifact). A chaos scenario that survives its run reports
    /// nothing.
    pub chaos_failures: Vec<(String, ScenarioFailure)>,
    /// One structured record per scenario, in plan order with chaos
    /// injections last — the machine-readable counterpart of the
    /// rendered artifact text (`hvx-repro run --out json`).
    pub cells: Vec<hvx_core::report::CellReport>,
}

impl RunOutcome {
    /// Every failure in the run — artifact scenarios first (request
    /// order), then chaos scenarios.
    pub fn failures(&self) -> Vec<(String, ScenarioFailure)> {
        let mut all: Vec<(String, ScenarioFailure)> = self
            .reports
            .iter()
            .flat_map(|r| r.failures.iter().cloned())
            .collect();
        all.extend(self.chaos_failures.iter().cloned());
        all
    }
}

/// [`run_artifacts`] with an explicit [`RunnerConfig`]: appends any
/// chaos scenarios to the plan, fans the whole thing out, assembles
/// the artifacts (degrading failed cells), and reports chaos outcomes
/// separately.
///
/// # Errors
///
/// As for [`run_scenarios_with`] and [`assemble`].
pub fn run_artifacts_with(
    artifacts: &[ArtifactId],
    jobs: usize,
    cfg: &RunnerConfig,
) -> Result<RunOutcome, Error> {
    let mut full_plan = plan(artifacts);
    let base = full_plan.len();
    full_plan.extend(cfg.chaos.iter().map(|k| Scenario::Chaos(*k)));
    let results = run_scenarios_with(&full_plan, jobs, cfg)?;
    let cells = results.iter().map(ScenarioResult::cell_report).collect();
    let reports = assemble(artifacts, &results[..base])?;
    let chaos_failures = results[base..]
        .iter()
        .filter_map(|r| {
            r.outcome
                .as_ref()
                .err()
                .map(|f| (r.scenario.label(), f.clone()))
        })
        .collect();
    Ok(RunOutcome {
        reports,
        chaos_failures,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fans_fig4_into_cells() {
        let p = plan(&[ArtifactId::Fig4]);
        assert_eq!(p.len(), 36);
        assert!(matches!(
            p[0],
            Scenario::Fig4Cell {
                workload: 0,
                column: 0
            }
        ));
        let p = plan(&[ArtifactId::Table2, ArtifactId::Vhe]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn artifact_names_round_trip() {
        for a in ArtifactId::ALL {
            assert_eq!(ArtifactId::parse(a.cli_name()), Some(a));
            assert!(!a.json_name().is_empty());
        }
        assert_eq!(ArtifactId::parse("nope"), None);
    }

    #[test]
    fn parallel_ablations_match_serial() {
        let artifacts = [ArtifactId::Table3, ArtifactId::Vhe, ArtifactId::Link];
        let p = plan(&artifacts);
        let serial = assemble(&artifacts, &run_scenarios(&p, 1).unwrap()).unwrap();
        // This plan is light enough that run_scenarios(.., 3) would
        // short-circuit to the inline path; call the pool directly so
        // the worker machinery stays covered.
        let pooled = assemble(
            &artifacts,
            &run_scenarios_pooled(&p, 3, &RunnerConfig::default()),
        )
        .unwrap();
        for (s, q) in serial.iter().zip(&pooled) {
            assert_eq!(s.json, q.json, "{:?} diverged", s.id);
            assert_eq!(s.text, q.text, "{:?} text diverged", s.id);
            assert_eq!(s.transitions, q.transitions, "{:?} transitions", s.id);
            assert!(s.transitions > 0, "{:?} simulated nothing", s.id);
        }
    }

    #[test]
    fn light_plans_run_inline_even_with_many_jobs() {
        // The whole paper suite weighs under the parallel cutoff, so a
        // multi-job run of a small plan must behave exactly like jobs=1
        // (the 0.86x fan-out regression this cutoff removes).
        let p = plan(&[ArtifactId::Vhe]);
        let many = run_scenarios(&p, 4).unwrap();
        let one = run_scenarios(&p, 1).unwrap();
        assert_eq!(many.len(), one.len());
        assert_eq!(many[0].transitions, one[0].transitions);
    }

    #[test]
    fn fig4_cells_assemble_to_measure() {
        let artifacts = [ArtifactId::Fig4];
        let p = plan(&artifacts);
        let reports = assemble(&artifacts, &run_scenarios(&p, 4).unwrap()).unwrap();
        let direct = fig4::Figure4::measure().unwrap();
        assert_eq!(reports[0].json, super::to_json(&direct).unwrap());
    }

    #[test]
    fn zero_jobs_is_an_error_not_a_panic() {
        assert!(matches!(
            run_scenarios(&[], 0),
            Err(Error::InvalidJobs { jobs: 0 })
        ));
    }

    #[test]
    fn short_results_are_a_plan_mismatch() {
        let artifacts = [ArtifactId::Fig4];
        let err = assemble(&artifacts, &[]).unwrap_err();
        assert!(matches!(
            err,
            Error::PlanMismatch {
                expected: 36,
                got: 0
            }
        ));
    }

    #[test]
    fn a_panicking_scenario_does_not_prevent_its_siblings() {
        let p = [
            Scenario::Table3,
            Scenario::Chaos(ChaosKind::Panic),
            Scenario::Ablation(ArtifactId::Vhe),
        ];
        for jobs in [1, 3] {
            let results = run_scenarios(&p, jobs).unwrap();
            assert_eq!(results.len(), 3);
            assert!(results[0].outcome.is_ok(), "jobs={jobs}: table3 completed");
            assert!(results[2].outcome.is_ok(), "jobs={jobs}: vhe completed");
            let failure = results[1].outcome.as_ref().unwrap_err();
            assert_eq!(failure.kind, ScenarioFailureKind::Panicked);
            assert!(failure.detail.contains("deliberate panic"));
        }
    }

    #[test]
    fn cycle_budget_classifies_as_timed_out() {
        let cfg = RunnerConfig {
            watchdog: Watchdog {
                cycle_budget: Some(1_000_000),
                livelock_threshold: None,
            },
            ..RunnerConfig::default()
        };
        let results = run_scenarios_with(&[Scenario::Chaos(ChaosKind::Spin)], 1, &cfg).unwrap();
        let failure = results[0].outcome.as_ref().unwrap_err();
        assert_eq!(failure.kind, ScenarioFailureKind::TimedOut);
        assert!(
            failure.detail.contains("cycle budget"),
            "{}",
            failure.detail
        );
    }

    #[test]
    fn zero_progress_spin_classifies_as_livelocked() {
        let cfg = RunnerConfig {
            watchdog: Watchdog {
                cycle_budget: None,
                livelock_threshold: Some(10_000),
            },
            ..RunnerConfig::default()
        };
        let results = run_scenarios_with(&[Scenario::Chaos(ChaosKind::Livelock)], 1, &cfg).unwrap();
        let failure = results[0].outcome.as_ref().unwrap_err();
        assert_eq!(failure.kind, ScenarioFailureKind::Livelocked);
    }

    #[test]
    fn wall_timeout_classifies_after_the_fact() {
        let cfg = RunnerConfig {
            wall_timeout: Some(Duration::ZERO),
            ..RunnerConfig::default()
        };
        let results = run_scenarios_with(&[Scenario::Table3], 1, &cfg).unwrap();
        let failure = results[0].outcome.as_ref().unwrap_err();
        assert_eq!(failure.kind, ScenarioFailureKind::TimedOut);
        assert!(failure.detail.contains("wall clock"));
    }

    #[test]
    fn failed_fig4_cell_degrades_to_marked_gap() {
        let artifacts = [ArtifactId::Fig4];
        let p = plan(&artifacts);
        let mut results = run_scenarios(&p, 4).unwrap();
        results[5].outcome = Err(ScenarioFailure {
            kind: ScenarioFailureKind::Panicked,
            detail: "induced for the test".to_string(),
        });
        let reports = assemble(&artifacts, &results).unwrap();
        assert_eq!(reports[0].failures.len(), 1);
        assert!(reports[0].text.contains("!! 1 of 36 cells failed"));
        assert!(reports[0].text.contains("induced for the test"));
        // The JSON keeps the Figure4 shape; the failed cell is null.
        assert!(reports[0].json.contains("\"measured\": null"));
    }

    #[test]
    fn failed_single_scenario_artifact_reports_but_does_not_abort() {
        let artifacts = [ArtifactId::Table3, ArtifactId::Vhe];
        let p = plan(&artifacts);
        let mut results = run_scenarios(&p, 1).unwrap();
        results[0].outcome = Err(ScenarioFailure {
            kind: ScenarioFailureKind::Livelocked,
            detail: "induced".to_string(),
        });
        let reports = assemble(&artifacts, &results).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports[0].text.contains("== Table III"));
        assert!(reports[0].text.contains("!! scenario 'table3' livelocked"));
        assert!(reports[0].json.contains("\"failed\": \"livelocked\""));
        assert!(reports[1].failures.is_empty());
        assert!(reports[1].text.contains("VHE"));
    }

    #[test]
    fn chaos_failures_surface_without_touching_artifacts() {
        let cfg = RunnerConfig {
            chaos: vec![ChaosKind::Panic],
            ..RunnerConfig::default()
        };
        let outcome = run_artifacts_with(&[ArtifactId::Table3], 2, &cfg).unwrap();
        assert_eq!(outcome.reports.len(), 1);
        assert!(outcome.reports[0].failures.is_empty());
        assert_eq!(outcome.chaos_failures.len(), 1);
        assert_eq!(outcome.chaos_failures[0].0, "chaos-panic");
        assert_eq!(outcome.failures().len(), 1);
    }

    #[test]
    fn panicked_scenarios_retry_up_to_the_policy_then_settle() {
        let cfg = RunnerConfig {
            retry: RetryPolicy {
                max_retries: 2,
                backoff: Duration::ZERO,
            },
            ..RunnerConfig::default()
        };
        // A chaos panic is deterministic, so every retry fails too: the
        // runner must spend exactly max_retries extra attempts and then
        // report the typed failure with the retry count attached.
        let results = run_scenarios_with(&[Scenario::Chaos(ChaosKind::Panic)], 1, &cfg).unwrap();
        assert_eq!(results[0].retries, 2);
        let failure = results[0].outcome.as_ref().unwrap_err();
        assert_eq!(failure.kind, ScenarioFailureKind::Panicked);

        // A clean scenario never retries, even with the policy armed.
        let results = run_scenarios_with(&[Scenario::Table3], 1, &cfg).unwrap();
        assert_eq!(results[0].retries, 0);
        assert!(results[0].outcome.is_ok());

        // Typed (non-panic) failures are not retried: they are
        // deterministic rejections, not transient crashes.
        let timeout_cfg = RunnerConfig {
            wall_timeout: Some(Duration::ZERO),
            retry: RetryPolicy {
                max_retries: 3,
                backoff: Duration::ZERO,
            },
            ..RunnerConfig::default()
        };
        let results = run_scenarios_with(&[Scenario::Table3], 1, &timeout_cfg).unwrap();
        assert_eq!(results[0].retries, 0);
        assert_eq!(
            results[0].outcome.as_ref().unwrap_err().kind,
            ScenarioFailureKind::TimedOut
        );
    }

    #[test]
    fn run_outcome_carries_structured_cells_for_every_scenario() {
        let cfg = RunnerConfig {
            chaos: vec![ChaosKind::Panic],
            ..RunnerConfig::default()
        };
        let outcome = run_artifacts_with(&[ArtifactId::Table3], 1, &cfg).unwrap();
        // One artifact scenario plus the chaos injection, plan order.
        assert_eq!(outcome.cells.len(), 2);
        let table3 = &outcome.cells[0];
        assert_eq!(table3.scenario, "table3");
        assert!(table3.ok());
        assert!(!table3.cached);
        assert_eq!(table3.retries, 0);
        // Cacheable scenarios carry their input fingerprint even when
        // no cache is configured — it names the cell's content.
        assert_eq!(
            table3.fingerprint.as_deref().map(str::len),
            Some(32),
            "{:?}",
            table3.fingerprint
        );
        let chaos = &outcome.cells[1];
        assert_eq!(chaos.scenario, "chaos-panic");
        assert!(chaos.fingerprint.is_none(), "chaos is uncacheable");
        assert_eq!(
            chaos.failure.as_ref().map(|f| f.kind),
            Some(ScenarioFailureKind::Panicked)
        );
    }

    #[test]
    fn chaos_kinds_parse_and_label() {
        for k in [ChaosKind::Panic, ChaosKind::Spin, ChaosKind::Livelock] {
            assert_eq!(ChaosKind::parse(k.name()), Some(k));
            assert!(Scenario::Chaos(k).label().starts_with("chaos-"));
        }
        assert_eq!(ChaosKind::parse("explode"), None);
    }

    #[test]
    fn default_config_matches_legacy_run_byte_for_byte() {
        let artifacts = [ArtifactId::Table2, ArtifactId::Table3];
        let legacy = run_artifacts(&artifacts, 2).unwrap();
        let configured = run_artifacts_with(&artifacts, 2, &RunnerConfig::default()).unwrap();
        for (a, b) in legacy.iter().zip(&configured.reports) {
            assert_eq!(a.text, b.text);
            assert_eq!(a.json, b.json);
        }
        assert!(configured.chaos_failures.is_empty());
    }
}
