//! Causal-trace scenarios: traced workload runs exported as Chrome
//! trace-event JSON, a query/validation pass over exported traces, and
//! the tracing-overhead benchmark.
//!
//! Where [`crate::profile`] aggregates *where cycles went*, a traced
//! run keeps *what happened, when, and what caused it*: every charge
//! becomes a slice on a per-core track and the cross-machine causal
//! chains (guest kick → vhost/Dom0 handling → vIRQ delivery) are
//! stitched with Chrome flow events. The export loads directly in
//! Perfetto or `chrome://tracing`; the derivation pass folds each
//! chain's end-to-end latency into the machine's [`MetricsRegistry`]
//! so the Fig. 4 asymmetry quantities are queryable without a viewer.
//!
//! ```
//! use hvx_suite::trace::TraceScenario;
//!
//! let sc = TraceScenario::resolve("tcp_rr", Some("kvm-arm"), None).unwrap();
//! let report = hvx_suite::trace::run_trace(sc).unwrap();
//! let parsed = hvx_suite::trace::ParsedTrace::parse(&report.json).unwrap();
//! assert!(hvx_suite::trace::validate(&parsed).is_ok());
//! ```
//!
//! [`MetricsRegistry`]: hvx_engine::MetricsRegistry

use crate::profile::{self, ProfileScenario};
use crate::workloads;
use hvx_core::{Error, HvKind, SimBuilder, VirqPolicy, Workload};
use hvx_engine::TraceMode;
use serde::{Serialize, Value};
use std::time::Instant;

/// One traced scenario: a Figure 4 workload on one configuration, with
/// an optional ring-buffer cap on the event stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceScenario {
    /// The workload whose operation mix is run.
    pub workload: Workload,
    /// The configuration under trace.
    pub kind: HvKind,
    /// Ring-buffer capacity in events (`None` = unbounded).
    pub ring: Option<usize>,
}

/// Parses a hypervisor CLI slug (`kvm-arm`, `xen-arm`, ...).
pub fn parse_hypervisor(slug: &str) -> Option<HvKind> {
    [
        HvKind::KvmArm,
        HvKind::XenArm,
        HvKind::KvmX86,
        HvKind::XenX86,
        HvKind::KvmArmVhe,
        HvKind::Native,
    ]
    .into_iter()
    .find(|k| profile::kind_slug(*k) == slug)
}

impl TraceScenario {
    /// Resolves the CLI form: either `trace <workload> --hypervisor
    /// <hv>` or the combined `<workload>-<hv>` scenario name the
    /// profiler uses.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownScenario`] when the hypervisor slug (or combined
    /// name) does not resolve; [`Error::UnknownWorkload`] for an
    /// unknown workload prefix.
    pub fn resolve(
        scenario: &str,
        hypervisor: Option<&str>,
        ring: Option<usize>,
    ) -> Result<TraceScenario, Error> {
        let (workload, kind) = match hypervisor {
            Some(slug) => {
                let kind = parse_hypervisor(slug).ok_or_else(|| Error::UnknownScenario {
                    name: slug.to_string(),
                })?;
                (Workload::parse(scenario)?, kind)
            }
            None => {
                let sc = ProfileScenario::parse(scenario)?;
                (sc.workload, sc.kind)
            }
        };
        Ok(TraceScenario {
            workload,
            kind,
            ring,
        })
    }

    /// The scenario's CLI name, `<workload>-<kind>`.
    pub fn name(&self) -> String {
        ProfileScenario {
            workload: self.workload,
            kind: self.kind,
        }
        .name()
    }
}

/// One traced run: the Chrome trace-event JSON plus the headline
/// numbers the CLI prints.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The scenario's CLI name.
    pub scenario: String,
    /// Ring capacity the run used (`None` = unbounded).
    pub ring: Option<usize>,
    /// The run's makespan in cycles.
    pub makespan_cycles: u64,
    /// Slices ever recorded (including ring casualties).
    pub events_recorded: u64,
    /// Slices lost to ring overwrites.
    pub events_dropped: u64,
    /// Complete flow chains (begin and end both survived).
    pub flows_complete: u64,
    /// Chains missing their begin or end (ring overwrites).
    pub flows_incomplete: u64,
    /// Mean end-to-end interrupt-delivery latency, cycles (the Fig. 4
    /// asymmetry quantity), 0.0 when no chain completed.
    pub irq_delivery_mean: f64,
    /// Mean end-to-end I/O-kick latency, cycles.
    pub io_kick_mean: f64,
    /// Pretty-printed Chrome trace-event JSON.
    pub json: String,
}

/// Runs one scenario with event tracing enabled and exports the trace.
///
/// The derivation pass runs before export: the chain latencies land in
/// the machine's metrics registry, so the report's means come from the
/// same [`hvx_engine::HistogramSketch`]s a profile would read.
///
/// # Errors
///
/// Build/run errors from the simulation ([`Error::InvalidCpus`],
/// [`Error::UnknownWorkload`], ...); [`Error::Serialize`] if the trace
/// JSON fails to render.
pub fn run_trace(scenario: TraceScenario) -> Result<TraceReport, Error> {
    let mix = profile::mix_for(scenario.workload)?;
    let mut builder = SimBuilder::new(scenario.kind)
        .workload(scenario.workload)
        .tracing(TraceMode::Aggregate)
        .profiling(true);
    builder = match scenario.ring {
        Some(slots) => builder.event_ring(slots),
        None => builder.event_tracing(true),
    };
    let mut sim = builder.build()?;
    let makespan = workloads::run(sim.as_dyn_mut(), mix, VirqPolicy::Vcpu0)?;
    sim.sample_metrics();

    let tracer = sim
        .machine_mut()
        .take_event_tracer()
        .expect("event tracing was enabled by the builder");
    if let Some(metrics) = sim.machine_mut().metrics_mut() {
        tracer.derive_metrics(metrics);
    }

    let machine = sim.machine();
    let tracks: Vec<String> = machine
        .topology()
        .all_cores()
        .map(|c| c.to_string())
        .collect();
    let name = scenario.name();
    let trace = tracer.chrome_trace(&name, &tracks);
    let json = serde_json::to_string_pretty(&trace).map_err(|e| Error::Serialize {
        what: "chrome trace",
        detail: e.to_string(),
    })?;

    let (mut complete, mut incomplete) = (0u64, 0u64);
    for c in tracer.chains() {
        if c.complete {
            complete += 1;
        } else {
            incomplete += 1;
        }
    }
    let metrics = machine
        .metrics()
        .expect("profiling was enabled by the builder");
    let mean = |h: &str| metrics.histogram(h).map_or(0.0, |h| h.mean());
    Ok(TraceReport {
        scenario: name,
        ring: scenario.ring,
        makespan_cycles: makespan.as_u64(),
        events_recorded: tracer.recorded(),
        events_dropped: tracer.dropped_slices(),
        flows_complete: complete,
        flows_incomplete: incomplete,
        irq_delivery_mean: mean("trace.latency.irq_delivery"),
        io_kick_mean: mean("trace.latency.io_kick"),
        json,
    })
}

impl TraceReport {
    /// Renders the headline summary `hvx-repro trace` prints (the JSON
    /// itself goes to `--out`).
    pub fn render(&self) -> String {
        let mode = match self.ring {
            Some(n) => format!("ring, {n} slots"),
            None => "unbounded".to_string(),
        };
        format!(
            "== Trace: {} ==\n\n\
             events:   {} recorded, {} dropped ({mode})\n\
             flows:    {} chains complete, {} incomplete\n\
             derived:  irq_delivery mean {:.1} cycles, io_kick mean {:.1} cycles\n\
             makespan: {} cycles\n",
            self.scenario,
            self.events_recorded,
            self.events_dropped,
            self.flows_complete,
            self.flows_incomplete,
            self.irq_delivery_mean,
            self.io_kick_mean,
            self.makespan_cycles,
        )
    }
}

// ---------------------------------------------------------------------------
// Query / validation over exported traces
// ---------------------------------------------------------------------------

/// One `ph:"X"` complete event read back from a trace file.
#[derive(Debug, Clone)]
pub struct QSlice {
    /// The charge label.
    pub name: String,
    /// Start instant (cycles).
    pub ts: u64,
    /// Duration (cycles).
    pub dur: u64,
    /// Track id.
    pub tid: u64,
    /// `args.transition`, when the slice was charged through a span.
    pub transition: Option<String>,
    /// `args.fault` — the slice opens a charged recovery path.
    pub fault: bool,
}

/// One flow point (`ph:"s"/"t"/"f"`) read back from a trace file.
#[derive(Debug, Clone)]
pub struct QFlowPoint {
    /// The flow kind name (`virtio_kick`, `irq_delivery`, ...).
    pub kind: String,
    /// The Chrome phase letter.
    pub ph: String,
    /// The chain id.
    pub id: u64,
    /// Instant (cycles).
    pub ts: u64,
    /// Track id.
    pub tid: u64,
    /// The hop label (`args.hop`).
    pub hop: String,
}

/// One causal chain reassembled from a trace file's flow points.
#[derive(Debug, Clone)]
pub struct QChain {
    /// The flow kind name.
    pub kind: String,
    /// The chain id.
    pub id: u64,
    /// The chain's points, in file order.
    pub hops: Vec<QFlowPoint>,
    /// Both the begin (`s`) and end (`f`) point are present.
    pub complete: bool,
    /// End-to-end latency in cycles (0 unless complete).
    pub latency: u64,
}

/// A Chrome trace-event file decoded back into typed events.
#[derive(Debug, Clone)]
pub struct ParsedTrace {
    /// `(tid, thread name)` from the metadata events, in file order.
    pub thread_names: Vec<(u64, String)>,
    /// The `ph:"X"` slices, in file order.
    pub slices: Vec<QSlice>,
    /// The flow points, in file order.
    pub flows: Vec<QFlowPoint>,
    /// Structural problems found while decoding (missing fields,
    /// unknown phases). Empty for a well-formed export.
    pub problems: Vec<String>,
}

fn field_u64(ev: &Value, key: &str) -> Option<u64> {
    ev.get(key).and_then(Value::as_u64)
}

fn field_str<'a>(ev: &'a Value, key: &str) -> Option<&'a str> {
    ev.get(key).and_then(Value::as_str)
}

impl ParsedTrace {
    /// Parses exported Chrome trace-event JSON back into typed events.
    ///
    /// # Errors
    ///
    /// [`Error::Serialize`] when the text is not valid JSON or has no
    /// `traceEvents` array (per-event shape problems are collected in
    /// [`ParsedTrace::problems`] instead, so `--validate` can report
    /// them all at once).
    pub fn parse(json: &str) -> Result<ParsedTrace, Error> {
        let root = serde_json::parse_value(json).map_err(|e| Error::Serialize {
            what: "trace JSON",
            detail: e.to_string(),
        })?;
        let events = root
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or(Error::Serialize {
                what: "trace JSON",
                detail: "no traceEvents array".to_string(),
            })?;
        let mut out = ParsedTrace {
            thread_names: Vec::new(),
            slices: Vec::new(),
            flows: Vec::new(),
            problems: Vec::new(),
        };
        for (i, ev) in events.iter().enumerate() {
            let Some(ph) = field_str(ev, "ph") else {
                out.problems.push(format!("event {i}: missing ph"));
                continue;
            };
            match ph {
                "M" => {
                    if field_str(ev, "name") == Some("thread_name") {
                        let tid = field_u64(ev, "tid").unwrap_or(0);
                        let name = ev
                            .get("args")
                            .and_then(|a| a.get("name"))
                            .and_then(Value::as_str)
                            .unwrap_or("")
                            .to_string();
                        out.thread_names.push((tid, name));
                    }
                }
                "X" => {
                    let (Some(ts), Some(dur), Some(tid)) = (
                        field_u64(ev, "ts"),
                        field_u64(ev, "dur"),
                        field_u64(ev, "tid"),
                    ) else {
                        out.problems
                            .push(format!("event {i}: X event missing ts/dur/tid"));
                        continue;
                    };
                    let args = &ev["args"];
                    out.slices.push(QSlice {
                        name: field_str(ev, "name").unwrap_or("").to_string(),
                        ts,
                        dur,
                        tid,
                        transition: args
                            .get("transition")
                            .and_then(Value::as_str)
                            .map(str::to_string),
                        fault: args.get("fault").is_some(),
                    });
                }
                "s" | "t" | "f" => {
                    let (Some(ts), Some(tid), Some(id)) = (
                        field_u64(ev, "ts"),
                        field_u64(ev, "tid"),
                        field_u64(ev, "id"),
                    ) else {
                        out.problems
                            .push(format!("event {i}: flow event missing ts/tid/id"));
                        continue;
                    };
                    out.flows.push(QFlowPoint {
                        kind: field_str(ev, "name").unwrap_or("").to_string(),
                        ph: ph.to_string(),
                        id,
                        ts,
                        tid,
                        hop: ev
                            .get("args")
                            .and_then(|a| a.get("hop"))
                            .and_then(Value::as_str)
                            .unwrap_or("")
                            .to_string(),
                    });
                }
                other => out
                    .problems
                    .push(format!("event {i}: unknown phase '{other}'")),
            }
        }
        Ok(out)
    }

    /// The thread name for a track id, `track<N>` when unnamed.
    pub fn track_name(&self, tid: u64) -> String {
        self.thread_names
            .iter()
            .find(|(t, _)| *t == tid)
            .map_or_else(|| format!("track{tid}"), |(_, n)| n.clone())
    }

    /// Reassembles the flow points into chains, in order of each
    /// chain's first point in the file.
    pub fn chains(&self) -> Vec<QChain> {
        let mut index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut chains: Vec<QChain> = Vec::new();
        for p in &self.flows {
            let slot = *index.entry(p.id).or_insert_with(|| {
                chains.push(QChain {
                    kind: p.kind.clone(),
                    id: p.id,
                    hops: Vec::new(),
                    complete: false,
                    latency: 0,
                });
                chains.len() - 1
            });
            chains[slot].hops.push(p.clone());
        }
        for c in &mut chains {
            let begin = c.hops.iter().find(|p| p.ph == "s");
            let end = c.hops.iter().rfind(|p| p.ph == "f");
            if let (Some(b), Some(e)) = (begin, end) {
                c.complete = true;
                c.latency = e.ts.saturating_sub(b.ts);
            }
        }
        chains
    }
}

/// Filters for `hvx-repro trace query`.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Keep only slices attributed to this transition name.
    pub transition: Option<String>,
    /// Keep only events on this track (thread name, e.g. `pcpu4`).
    pub track: Option<String>,
    /// Keep only events with `ts >= from`.
    pub from: Option<u64>,
    /// Keep only events with `ts < to`.
    pub to: Option<u64>,
    /// Chains to show in the critical-chain ranking (default 5).
    pub top: Option<usize>,
}

impl Query {
    fn keeps_slice(&self, s: &QSlice, trace: &ParsedTrace) -> bool {
        if let Some(t) = &self.transition {
            if s.transition.as_deref() != Some(t.as_str()) {
                return false;
            }
        }
        if let Some(track) = &self.track {
            if &trace.track_name(s.tid) != track {
                return false;
            }
        }
        self.from.is_none_or(|f| s.ts >= f) && self.to.is_none_or(|t| s.ts < t)
    }

    fn keeps_chain(&self, c: &QChain, trace: &ParsedTrace) -> bool {
        if self.transition.is_some() {
            // Transition is a slice attribute; chains pass untouched
            // only when no slice filter is active.
            return false;
        }
        if let Some(track) = &self.track {
            if !c.hops.iter().any(|p| &trace.track_name(p.tid) == track) {
                return false;
            }
        }
        let first = c.hops.first().map_or(0, |p| p.ts);
        self.from.is_none_or(|f| first >= f) && self.to.is_none_or(|t| first < t)
    }
}

/// Runs a query over a parsed trace and renders the report: filtered
/// event totals, the top-K critical chains by end-to-end latency, and
/// per-kind chain-length statistics.
pub fn render_query(trace: &ParsedTrace, q: &Query, source: &str) -> String {
    let mut out = format!("== Trace query: {source} ==\n\n");
    let mut tracks: Vec<u64> = trace.slices.iter().map(|s| s.tid).collect();
    tracks.sort_unstable();
    tracks.dedup();
    out.push_str(&format!(
        "events: {} slices on {} tracks, {} flow points\n",
        trace.slices.len(),
        tracks.len(),
        trace.flows.len()
    ));

    let mut filters = Vec::new();
    if let Some(t) = &q.transition {
        filters.push(format!("transition={t}"));
    }
    if let Some(t) = &q.track {
        filters.push(format!("track={t}"));
    }
    if q.from.is_some() || q.to.is_some() {
        filters.push(format!(
            "window=[{}, {})",
            q.from.map_or_else(|| "start".into(), |f| f.to_string()),
            q.to.map_or_else(|| "end".into(), |t| t.to_string()),
        ));
    }
    let kept: Vec<&QSlice> = trace
        .slices
        .iter()
        .filter(|s| q.keeps_slice(s, trace))
        .collect();
    let cycles: u64 = kept.iter().map(|s| s.dur).sum();
    if filters.is_empty() {
        out.push_str(&format!(
            "matched: all {} slices, {cycles} cycles\n",
            kept.len()
        ));
    } else {
        out.push_str(&format!(
            "filters: {} -> {} slices, {cycles} cycles\n",
            filters.join(" "),
            kept.len()
        ));
    }

    let mut chains: Vec<QChain> = trace
        .chains()
        .into_iter()
        .filter(|c| c.complete && q.keeps_chain(c, trace))
        .collect();
    chains.sort_by(|a, b| b.latency.cmp(&a.latency).then(a.id.cmp(&b.id)));
    let top = q.top.unwrap_or(5);
    out.push_str(&format!(
        "\ntop {} of {} complete chains by latency:\n",
        top.min(chains.len()),
        chains.len()
    ));
    for (rank, c) in chains.iter().take(top).enumerate() {
        let first = c.hops.first().expect("complete chain has hops");
        let last = c.hops.last().expect("complete chain has hops");
        out.push_str(&format!(
            "  {}. {:<14} id={:<4} {} hops {:>8} cycles  {} -> {}  ({} -> {})\n",
            rank + 1,
            c.kind,
            c.id,
            c.hops.len(),
            c.latency,
            trace.track_name(first.tid),
            trace.track_name(last.tid),
            first.hop,
            last.hop,
        ));
    }

    out.push_str("\nchain stats (complete chains, unfiltered):\n");
    out.push_str(&format!(
        "  {:<16}{:>7}{:>12}{:>12}{:>16}\n",
        "kind", "count", "incomplete", "mean hops", "mean latency"
    ));
    let all = trace.chains();
    let mut kinds: Vec<&str> = all.iter().map(|c| c.kind.as_str()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    for kind in kinds {
        let complete: Vec<&QChain> = all
            .iter()
            .filter(|c| c.kind == kind && c.complete)
            .collect();
        let incomplete = all.iter().filter(|c| c.kind == kind && !c.complete).count();
        let n = complete.len().max(1) as f64;
        let hops: usize = complete.iter().map(|c| c.hops.len()).sum();
        let latency: u64 = complete.iter().map(|c| c.latency).sum();
        out.push_str(&format!(
            "  {:<16}{:>7}{:>12}{:>12.1}{:>16.1}\n",
            kind,
            complete.len(),
            incomplete,
            hops as f64 / n,
            latency as f64 / n,
        ));
    }
    out
}

/// Validates the structural invariants `scripts/trace_smoke.sh` gates
/// on: every event decoded cleanly, per-track slice timestamps are
/// monotone, and at least one complete kick chain (virtio kick or
/// event-channel signal) *and* one complete interrupt-delivery chain
/// ending at the guest acknowledge are present.
///
/// # Errors
///
/// [`Error::TraceInvalid`] listing every violation.
pub fn validate(trace: &ParsedTrace) -> Result<String, Error> {
    let mut problems = trace.problems.clone();
    if trace.slices.is_empty() {
        problems.push("trace has no slices".to_string());
    }
    let mut last: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for s in &trace.slices {
        let prev = last.entry(s.tid).or_insert(0);
        if s.ts < *prev {
            problems.push(format!(
                "track {} time went backwards: {} after {}",
                trace.track_name(s.tid),
                s.ts,
                *prev
            ));
        }
        *prev = (*prev).max(s.ts + s.dur);
    }
    let chains = trace.chains();
    let kick = chains
        .iter()
        .find(|c| c.complete && (c.kind == "virtio_kick" || c.kind == "evtchn_signal"));
    if kick.is_none() {
        problems.push("no complete kick chain (virtio_kick/evtchn_signal)".to_string());
    }
    let delivery = chains
        .iter()
        .find(|c| c.complete && c.kind == "irq_delivery");
    match delivery {
        None => problems.push("no complete irq_delivery chain".to_string()),
        Some(c) => {
            if c.hops.last().map(|p| p.hop.as_str()) != Some("guest:ack") {
                problems.push("irq_delivery chain does not end at guest:ack".to_string());
            }
            if let (Some(k), 1..) = (kick, c.hops.len()) {
                // Both chains present: the kick must cross cores too.
                let span = |c: &QChain| {
                    let mut t: Vec<u64> = c.hops.iter().map(|p| p.tid).collect();
                    t.sort_unstable();
                    t.dedup();
                    t.len()
                };
                if span(k) < 2 {
                    problems.push("kick chain never crosses cores".to_string());
                }
                if span(c) < 2 {
                    problems.push("irq_delivery chain never crosses cores".to_string());
                }
            }
        }
    }
    if problems.is_empty() {
        let complete = chains.iter().filter(|c| c.complete).count();
        Ok(format!(
            "trace OK: {} slices, {} flow points, {} complete chains \
             (kick -> delivery present), per-track timestamps monotone\n",
            trace.slices.len(),
            trace.flows.len(),
            complete
        ))
    } else {
        Err(Error::TraceInvalid { problems })
    }
}

// ---------------------------------------------------------------------------
// Tracing-overhead benchmark (BENCH_trace.json)
// ---------------------------------------------------------------------------

/// The nine Figure 4 workloads, in catalog order.
pub const FIG4_WORKLOADS: [Workload; 9] = [
    Workload::Kernbench,
    Workload::Hackbench,
    Workload::SpecJvm2008,
    Workload::TcpRr,
    Workload::TcpStream,
    Workload::TcpMaerts,
    Workload::Apache,
    Workload::Memcached,
    Workload::Mysql,
];

/// Wall time of one Fig. 4 cell under one tracing mode.
#[derive(Debug, Clone, Serialize)]
pub struct TraceBenchCell {
    /// The cell's `<workload>-<kind>` name.
    pub scenario: String,
    /// Tracing disabled.
    pub off_seconds: f64,
    /// Unbounded tracing.
    pub on_seconds: f64,
    /// Ring-buffer tracing.
    pub ring_seconds: f64,
}

/// The tracing-overhead benchmark over the full Fig. 4 sweep.
#[derive(Debug, Clone, Serialize)]
pub struct TraceBench {
    /// Ring capacity used for the ring mode.
    pub ring_slots: usize,
    /// Total wall seconds, tracing off.
    pub off_seconds: f64,
    /// Total wall seconds, unbounded tracing.
    pub on_seconds: f64,
    /// Total wall seconds, ring-buffer tracing.
    pub ring_seconds: f64,
    /// `on_seconds / off_seconds`.
    pub on_overhead: f64,
    /// `ring_seconds / off_seconds`.
    pub ring_overhead: f64,
    /// Per-cell wall times.
    pub cells: Vec<TraceBenchCell>,
}

fn bench_cell(workload: Workload, kind: HvKind, ring: Option<Option<usize>>) -> Result<f64, Error> {
    let mix = profile::mix_for(workload)?;
    let mut builder = SimBuilder::new(kind).workload(workload);
    builder = match ring {
        None => builder,
        Some(None) => builder.event_tracing(true),
        Some(Some(slots)) => builder.event_ring(slots),
    };
    let start = Instant::now();
    let mut sim = builder.build()?;
    workloads::run(sim.as_dyn_mut(), mix, VirqPolicy::Vcpu0)?;
    Ok(start.elapsed().as_secs_f64())
}

/// Runs the Fig. 4 sweep (nine workloads × the four measured
/// configurations) three times — tracing off, unbounded, and ring —
/// and reports the wall-clock comparison. Off-mode runs are exactly
/// the builder configuration the Figure 4 artifact uses, so its total
/// is comparable with `BENCH.json`.
///
/// # Errors
///
/// Build/run errors from any cell.
pub fn run_trace_bench(ring_slots: usize) -> Result<TraceBench, Error> {
    let mut cells = Vec::new();
    let (mut off, mut on, mut ring) = (0.0, 0.0, 0.0);
    for workload in FIG4_WORKLOADS {
        for kind in HvKind::MEASURED {
            let name = ProfileScenario { workload, kind }.name();
            let off_s = bench_cell(workload, kind, None)?;
            let on_s = bench_cell(workload, kind, Some(None))?;
            let ring_s = bench_cell(workload, kind, Some(Some(ring_slots)))?;
            off += off_s;
            on += on_s;
            ring += ring_s;
            cells.push(TraceBenchCell {
                scenario: name,
                off_seconds: off_s,
                on_seconds: on_s,
                ring_seconds: ring_s,
            });
        }
    }
    Ok(TraceBench {
        ring_slots,
        off_seconds: off,
        on_seconds: on,
        ring_seconds: ring,
        on_overhead: if off > 0.0 { on / off } else { 0.0 },
        ring_overhead: if off > 0.0 { ring / off } else { 0.0 },
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_resolution_covers_both_cli_forms() {
        let a = TraceScenario::resolve("tcp_rr", Some("kvm-arm"), None).unwrap();
        let b = TraceScenario::resolve("tcp_rr-kvm-arm", None, Some(64)).unwrap();
        assert_eq!(a.workload, Workload::TcpRr);
        assert_eq!(a.kind, HvKind::KvmArm);
        assert_eq!(b.kind, HvKind::KvmArm);
        assert_eq!(b.ring, Some(64));
        assert_eq!(a.name(), "tcp_rr-kvm-arm");
        assert!(TraceScenario::resolve("tcp_rr", Some("riscv"), None).is_err());
        assert!(TraceScenario::resolve("doom", Some("kvm-arm"), None).is_err());
    }

    #[test]
    fn traced_tcp_rr_round_trips_and_validates_on_both_arms() {
        for hv in ["kvm-arm", "xen-arm"] {
            let sc = TraceScenario::resolve("tcp_rr", Some(hv), None).unwrap();
            let report = run_trace(sc).unwrap();
            assert!(report.events_recorded > 0, "{hv} recorded nothing");
            assert_eq!(report.events_dropped, 0, "{hv} dropped unbounded events");
            assert!(report.flows_complete > 0, "{hv} completed no chains");
            assert!(report.irq_delivery_mean > 0.0, "{hv} derived no latency");
            let parsed = ParsedTrace::parse(&report.json).unwrap();
            assert!(parsed.problems.is_empty(), "{hv}: {:?}", parsed.problems);
            let verdict = validate(&parsed).unwrap();
            assert!(verdict.contains("trace OK"), "{hv}: {verdict}");
            assert!(report.render().contains(&format!("tcp_rr-{hv}")));
        }
    }

    #[test]
    fn xen_delivery_latency_exceeds_kvm_in_the_export() {
        // The Fig. 4 direction must survive the full export → parse →
        // reassemble round trip, not just the in-memory tracer.
        let mean = |hv: &str| {
            let sc = TraceScenario::resolve("tcp_rr", Some(hv), None).unwrap();
            run_trace(sc).unwrap().irq_delivery_mean
        };
        assert!(mean("xen-arm") > mean("kvm-arm"));
    }

    #[test]
    fn ring_mode_caps_events_and_surfaces_drops() {
        let sc = TraceScenario::resolve("tcp_rr-kvm-arm", None, Some(32)).unwrap();
        let report = run_trace(sc).unwrap();
        assert!(report.events_dropped > 0, "a 32-slot ring must overwrite");
        assert!(report.events_recorded > report.events_dropped);
        let parsed = ParsedTrace::parse(&report.json).unwrap();
        assert!(parsed.slices.len() <= 32);
    }

    #[test]
    fn query_filters_and_ranks_chains() {
        let sc = TraceScenario::resolve("tcp_rr-kvm-arm", None, None).unwrap();
        let report = run_trace(sc).unwrap();
        let parsed = ParsedTrace::parse(&report.json).unwrap();
        let all = render_query(&parsed, &Query::default(), "t.json");
        assert!(all.contains("complete chains by latency"));
        assert!(all.contains("irq_delivery"));
        let q = Query {
            track: Some("pcpu4".to_string()),
            top: Some(1),
            ..Query::default()
        };
        let filtered = render_query(&parsed, &q, "t.json");
        assert!(filtered.contains("track=pcpu4"));
        // A time window past the end matches nothing.
        let none = render_query(
            &parsed,
            &Query {
                from: Some(u64::MAX),
                ..Query::default()
            },
            "t.json",
        );
        assert!(none.contains("-> 0 slices, 0 cycles"));
    }

    #[test]
    fn validation_rejects_broken_traces() {
        assert!(ParsedTrace::parse("not json").is_err());
        assert!(ParsedTrace::parse("{\"noTraceEvents\": []}").is_err());
        // Well-formed JSON with no chains fails the chain gates.
        let empty = ParsedTrace::parse(
            "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"X\", \"ts\": 5, \
             \"dur\": 1, \"pid\": 0, \"tid\": 0, \"args\": {}}]}",
        )
        .unwrap();
        let err = validate(&empty).unwrap_err();
        assert!(err.to_string().contains("no complete kick chain"));
        // Backwards time on a track is caught.
        let backwards = ParsedTrace {
            thread_names: vec![],
            slices: vec![
                QSlice {
                    name: "a".into(),
                    ts: 100,
                    dur: 10,
                    tid: 0,
                    transition: None,
                    fault: false,
                },
                QSlice {
                    name: "b".into(),
                    ts: 50,
                    dur: 1,
                    tid: 0,
                    transition: None,
                    fault: false,
                },
            ],
            flows: vec![],
            problems: vec![],
        };
        let err = validate(&backwards).unwrap_err();
        assert!(err.to_string().contains("time went backwards"));
    }
}
