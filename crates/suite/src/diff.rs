//! Golden-baseline snapshots and the regression gate.
//!
//! `hvx-repro baseline write` snapshots every requested artifact's
//! exact text and JSON bytes under a baseline directory, together with
//! the input [`Fingerprint`] of every scenario that produced them and
//! per-cell span profiles for the Figure 4 matrix. `hvx-repro check`
//! re-runs the same artifacts (cache-accelerated when a [`ResultCache`]
//! is supplied), byte-compares against the snapshot, and classifies
//! every divergence:
//!
//! * **schema-bump** — the stored fingerprints no longer match the
//!   current input closure (a cost table, topology, workload mix, or
//!   [`SCHEMA_VERSION`] changed). The divergence is *expected*; the fix
//!   is to review it and rewrite the baseline.
//! * **drift** — fingerprints are unchanged but bytes differ: charging
//!   behaviour moved without its declared inputs moving. The check
//!   fails with [`Error::BaselineDrift`] (CLI exit code 4) and, for
//!   Figure 4, a per-cell span-delta report pinpointing which
//!   transitions absorbed the change.
//!
//! [`Fingerprint`]: hvx_engine::Fingerprint
//! [`ResultCache`]: crate::cache::ResultCache
//! [`SCHEMA_VERSION`]: crate::cache::SCHEMA_VERSION

use crate::cache::{scenario_fingerprint, ResultCache, SCHEMA_VERSION};
use crate::profile::{self, ProfileScenario};
use crate::runner::{self, ArtifactId, RunnerConfig};
use crate::{fig4, paper};
use hvx_core::{Error, HvKind};
use hvx_engine::ProfileSnapshot;
use serde::{Deserialize, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The conventional in-repo baseline directory.
pub const DEFAULT_DIR: &str = "baselines";

/// At most this many drifted Figure 4 cells are re-profiled for the
/// span-delta report; the rest are listed without a breakdown so a
/// wholesale drift doesn't trigger 30+ profiling runs.
const MAX_SPAN_DRILLDOWNS: usize = 6;

fn baseline_err(what: impl Into<String>, detail: impl Into<String>) -> Error {
    Error::Baseline {
        what: what.into(),
        detail: detail.into(),
    }
}

fn runner_config(cache: Option<Arc<ResultCache>>) -> RunnerConfig {
    // Baselines are always written and checked under the inert
    // configuration: no faults, no budgets. A faulted or truncated run
    // must never become (or be compared against) the golden record.
    RunnerConfig {
        cache,
        ..RunnerConfig::default()
    }
}

/// The Figure 4 cells that get a span profile in the baseline: every
/// (workload, measured column) pair the paper can run.
fn span_profile_cells() -> Vec<ProfileScenario> {
    let mut out = Vec::new();
    for workload in hvx_core::Workload::ALL {
        for kind in paper::COLUMNS {
            // The paper's missing bar (§V): Apache on Xen x86 does not
            // run, so there is nothing to profile.
            if workload.catalog_name() == "Apache" && kind == HvKind::XenX86 {
                continue;
            }
            out.push(ProfileScenario { workload, kind });
        }
    }
    out
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

fn artifact_paths(dir: &Path, id: ArtifactId) -> (PathBuf, PathBuf) {
    (
        dir.join(format!("{}.json", id.json_name())),
        dir.join(format!("{}.txt", id.json_name())),
    )
}

fn span_path(dir: &Path, scenario: &ProfileScenario) -> PathBuf {
    dir.join("spans").join(format!("{}.json", scenario.name()))
}

/// The parsed `manifest.json` of a baseline directory.
#[derive(Debug, Clone)]
pub struct BaselineManifest {
    /// Schema version the baseline was written under.
    pub schema: u32,
    /// Artifacts the baseline covers, in `ArtifactId::ALL` order.
    pub artifacts: Vec<ArtifactId>,
    /// `(scenario label, fingerprint hex)` for every scenario of the
    /// covered artifacts, in plan order.
    pub fingerprints: Vec<(String, String)>,
}

impl BaselineManifest {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".to_string(), Value::U64(u64::from(self.schema))),
            (
                "artifacts".to_string(),
                Value::Array(
                    self.artifacts
                        .iter()
                        .map(|a| Value::Str(a.cli_name().to_string()))
                        .collect(),
                ),
            ),
            (
                "fingerprints".to_string(),
                Value::Object(
                    self.fingerprints
                        .iter()
                        .map(|(label, hex)| (label.clone(), Value::Str(hex.clone())))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(v: &Value) -> Option<BaselineManifest> {
        let schema = u32::try_from(v.get("schema")?.as_u64()?).ok()?;
        let artifacts = v
            .get("artifacts")?
            .as_array()?
            .iter()
            .map(|a| ArtifactId::parse(a.as_str()?))
            .collect::<Option<Vec<_>>>()?;
        let fingerprints = v
            .get("fingerprints")?
            .as_object()?
            .iter()
            .map(|(label, hex)| Some((label.clone(), hex.as_str()?.to_string())))
            .collect::<Option<Vec<_>>>()?;
        Some(BaselineManifest {
            schema,
            artifacts,
            fingerprints,
        })
    }

    /// Loads and validates a baseline directory's manifest.
    ///
    /// # Errors
    ///
    /// [`Error::Baseline`] when the manifest is missing or malformed.
    pub fn load(dir: &Path) -> Result<BaselineManifest, Error> {
        let path = manifest_path(dir);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| baseline_err(format!("manifest {}", path.display()), e.to_string()))?;
        let value = serde_json::parse_value(&text)
            .map_err(|e| baseline_err(format!("manifest {}", path.display()), e.to_string()))?;
        BaselineManifest::from_value(&value).ok_or_else(|| {
            baseline_err(
                format!("manifest {}", path.display()),
                "missing or ill-typed manifest fields",
            )
        })
    }
}

fn current_fingerprints(artifacts: &[ArtifactId], cfg: &RunnerConfig) -> Vec<(String, String)> {
    runner::plan(artifacts)
        .into_iter()
        .map(|s| {
            (
                s.label(),
                scenario_fingerprint(s, cfg)
                    .map_or_else(|| "uncacheable".to_string(), |f| f.to_hex()),
            )
        })
        .collect()
}

/// What `baseline write` produced.
#[derive(Debug)]
pub struct WriteReport {
    /// Where the baseline was written.
    pub dir: PathBuf,
    /// The artifacts snapshotted.
    pub artifacts: Vec<ArtifactId>,
    /// How many per-cell span profiles were captured.
    pub span_profiles: usize,
}

/// Snapshots `artifacts` (text, JSON, fingerprints, and — when Figure 4
/// is included — per-cell span profiles) into `dir`, overwriting any
/// previous baseline there.
///
/// # Errors
///
/// [`Error::Baseline`] if any scenario fails (a failing run must not
/// become the golden record) or the directory cannot be written;
/// otherwise as for [`runner::run_artifacts_with`].
pub fn write_baseline(
    dir: &Path,
    artifacts: &[ArtifactId],
    jobs: usize,
    cache: Option<Arc<ResultCache>>,
) -> Result<WriteReport, Error> {
    let cfg = runner_config(cache);
    let outcome = runner::run_artifacts_with(artifacts, jobs, &cfg)?;
    let failures = outcome.failures();
    if let Some((label, failure)) = failures.first() {
        return Err(baseline_err(
            "write",
            format!(
                "{} scenario(s) failed (first: '{label}' {failure}); \
                 refusing to snapshot a failing run",
                failures.len()
            ),
        ));
    }
    std::fs::create_dir_all(dir)
        .map_err(|e| baseline_err(format!("directory {}", dir.display()), e.to_string()))?;
    for report in &outcome.reports {
        let (json_path, text_path) = artifact_paths(dir, report.id);
        std::fs::write(&json_path, &report.json)
            .map_err(|e| baseline_err(json_path.display().to_string(), e.to_string()))?;
        std::fs::write(&text_path, &report.text)
            .map_err(|e| baseline_err(text_path.display().to_string(), e.to_string()))?;
    }

    let mut span_profiles = 0;
    if artifacts.contains(&ArtifactId::Fig4) {
        let spans_dir = dir.join("spans");
        std::fs::create_dir_all(&spans_dir).map_err(|e| {
            baseline_err(format!("directory {}", spans_dir.display()), e.to_string())
        })?;
        for cell in span_profile_cells() {
            let report = profile::run_profile(cell)?;
            let data =
                serde_json::to_string_pretty(&report.snapshot).map_err(|e| Error::Serialize {
                    what: "span profile",
                    detail: e.to_string(),
                })?;
            let path = span_path(dir, &cell);
            std::fs::write(&path, data)
                .map_err(|e| baseline_err(path.display().to_string(), e.to_string()))?;
            span_profiles += 1;
        }
    }

    let manifest = BaselineManifest {
        schema: SCHEMA_VERSION,
        artifacts: artifacts.to_vec(),
        fingerprints: current_fingerprints(artifacts, &cfg),
    };
    let data = serde_json::to_string_pretty(manifest.to_value()).map_err(|e| Error::Serialize {
        what: "baseline manifest",
        detail: e.to_string(),
    })?;
    let path = manifest_path(dir);
    std::fs::write(&path, data)
        .map_err(|e| baseline_err(path.display().to_string(), e.to_string()))?;
    Ok(WriteReport {
        dir: dir.to_path_buf(),
        artifacts: artifacts.to_vec(),
        span_profiles,
    })
}

/// How one checked artifact compared against the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactVerdict {
    /// Byte-identical to the snapshot.
    Clean,
    /// Bytes differ and the input fingerprints also changed: expected.
    SchemaBump,
    /// Bytes differ under unchanged fingerprints: silent drift.
    Drift,
}

/// The outcome of `hvx-repro check`.
#[derive(Debug)]
pub struct CheckReport {
    /// Per-artifact verdicts, in check order.
    pub verdicts: Vec<(ArtifactId, ArtifactVerdict)>,
    /// Whether the run's input closure differs from the baseline's
    /// (fingerprints or schema version changed).
    pub schema_bump: bool,
    /// The rendered human report (verdict table plus any span deltas).
    pub rendered: String,
}

impl CheckReport {
    /// Artifacts that drifted.
    pub fn drifted(&self) -> Vec<ArtifactId> {
        self.verdicts
            .iter()
            .filter(|(_, v)| *v == ArtifactVerdict::Drift)
            .map(|(id, _)| *id)
            .collect()
    }

    /// `Ok(())` when the tree is clean (or divergence is an expected
    /// schema bump); [`Error::BaselineDrift`] when anything drifted.
    ///
    /// # Errors
    ///
    /// [`Error::BaselineDrift`] — the CLI maps it to exit code 4.
    pub fn into_result(self) -> Result<CheckReport, Error> {
        let drifted = self.drifted().len();
        if drifted == 0 {
            Ok(self)
        } else {
            Err(Error::BaselineDrift { drifted })
        }
    }
}

/// Builds the per-cell span-delta section for a drifted Figure 4
/// artifact: parses both JSON snapshots, finds the cells whose measured
/// overhead moved, and re-profiles each (up to [`MAX_SPAN_DRILLDOWNS`])
/// against the baseline's stored span profile.
fn fig4_drilldown(dir: &Path, baseline_json: &str, current_json: &str) -> String {
    let parse = |text: &str| -> Option<fig4::Figure4> {
        fig4::Figure4::deserialize(&serde_json::parse_value(text).ok()?).ok()
    };
    let (Some(base), Some(cur)) = (parse(baseline_json), parse(current_json)) else {
        return "    (fig4 JSON unparsable; no per-cell breakdown)\n".to_string();
    };
    let mut moved = Vec::new();
    for (bg, cg) in base.groups.iter().zip(&cur.groups) {
        for (bb, cb) in bg.bars.iter().zip(&cg.bars) {
            if bb.measured != cb.measured {
                moved.push((bg.workload.name, bb.hv, bb.measured, cb.measured));
            }
        }
    }
    if moved.is_empty() {
        return "    (no per-cell overhead change; divergence is outside the cell values)\n"
            .to_string();
    }
    let mut out = String::new();
    for (i, (workload, kind, was, now)) in moved.iter().enumerate() {
        let fmt = |v: &Option<f64>| v.map_or("n/a".to_string(), |x| format!("{x:.4}"));
        out.push_str(&format!(
            "  fig4[{workload}/{kind}]: overhead {} -> {}\n",
            fmt(was),
            fmt(now)
        ));
        if i >= MAX_SPAN_DRILLDOWNS {
            continue;
        }
        let Some(scenario) = hvx_core::Workload::ALL
            .into_iter()
            .find(|w| w.catalog_name() == *workload)
            .map(|w| ProfileScenario {
                workload: w,
                kind: *kind,
            })
        else {
            continue;
        };
        let path = span_path(dir, &scenario);
        let stored: Option<ProfileSnapshot> = std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| serde_json::from_str(&t).ok());
        let Some(stored) = stored else {
            out.push_str("    (no stored span profile for this cell)\n");
            continue;
        };
        match profile::run_profile(scenario) {
            Ok(report) => {
                let deltas = hvx_engine::span_deltas(&stored, &report.snapshot);
                if deltas.is_empty() {
                    out.push_str("    (span breakdown unchanged)\n");
                } else {
                    out.push_str(&hvx_engine::render_span_deltas(&deltas));
                }
            }
            Err(e) => out.push_str(&format!("    (re-profile failed: {e})\n")),
        }
    }
    let skipped = moved.len().saturating_sub(MAX_SPAN_DRILLDOWNS);
    if skipped > 0 {
        out.push_str(&format!(
            "  ({skipped} more drifted cell(s) not re-profiled; cap is {MAX_SPAN_DRILLDOWNS})\n"
        ));
    }
    out
}

/// Re-runs the baselined artifacts and classifies every divergence.
///
/// `filter` restricts the check to a subset of the baselined artifacts
/// (empty = all of them). The returned report is informational; call
/// [`CheckReport::into_result`] to turn drift into the CLI's exit-4
/// error.
///
/// # Errors
///
/// [`Error::Baseline`] for a missing/malformed baseline or a filter
/// naming an artifact the baseline does not cover; otherwise as for
/// [`runner::run_artifacts_with`].
pub fn check_baseline(
    dir: &Path,
    filter: &[ArtifactId],
    jobs: usize,
    cache: Option<Arc<ResultCache>>,
) -> Result<CheckReport, Error> {
    let manifest = BaselineManifest::load(dir)?;
    let artifacts: Vec<ArtifactId> = if filter.is_empty() {
        manifest.artifacts.clone()
    } else {
        for id in filter {
            if !manifest.artifacts.contains(id) {
                return Err(baseline_err(
                    "check",
                    format!("artifact '{}' is not in the baseline", id.cli_name()),
                ));
            }
        }
        manifest
            .artifacts
            .iter()
            .copied()
            .filter(|a| filter.contains(a))
            .collect()
    };

    let cfg = runner_config(cache);
    // Schema bump: the declared input closure changed, so every byte
    // divergence below is expected rather than drift.
    let current = current_fingerprints(&manifest.artifacts, &cfg);
    let stored: std::collections::BTreeMap<&str, &str> = manifest
        .fingerprints
        .iter()
        .map(|(l, h)| (l.as_str(), h.as_str()))
        .collect();
    let fingerprints_moved = current
        .iter()
        .any(|(label, hex)| stored.get(label.as_str()).copied() != Some(hex.as_str()));
    let schema_bump = manifest.schema != SCHEMA_VERSION || fingerprints_moved;

    let outcome = runner::run_artifacts_with(&artifacts, jobs, &cfg)?;
    let mut verdicts = Vec::new();
    let mut rendered = String::new();
    let mut drill = String::new();
    for report in &outcome.reports {
        let (json_path, text_path) = artifact_paths(dir, report.id);
        let stored_json = std::fs::read_to_string(&json_path)
            .map_err(|e| baseline_err(json_path.display().to_string(), e.to_string()))?;
        let stored_text = std::fs::read_to_string(&text_path)
            .map_err(|e| baseline_err(text_path.display().to_string(), e.to_string()))?;
        let identical = stored_json == report.json && stored_text == report.text;
        let verdict = if identical {
            ArtifactVerdict::Clean
        } else if schema_bump {
            ArtifactVerdict::SchemaBump
        } else {
            ArtifactVerdict::Drift
        };
        rendered.push_str(&format!(
            "{:<10} {}\n",
            report.id.cli_name(),
            match verdict {
                ArtifactVerdict::Clean => "clean (byte-identical to baseline)",
                ArtifactVerdict::SchemaBump =>
                    "changed (expected: input fingerprints moved — schema bump)",
                ArtifactVerdict::Drift => "DRIFT (bytes changed, input fingerprints unchanged)",
            }
        ));
        if verdict == ArtifactVerdict::Drift && report.id == ArtifactId::Fig4 {
            drill.push_str(&fig4_drilldown(dir, &stored_json, &report.json));
        }
        verdicts.push((report.id, verdict));
    }
    if !drill.is_empty() {
        rendered.push_str("\nper-cell span deltas (current vs baseline):\n");
        rendered.push_str(&drill);
    }
    if schema_bump {
        rendered.push_str(
            "\nschema bump detected: review the changes, then refresh with \
             `hvx-repro baseline write`.\n",
        );
    }
    Ok(CheckReport {
        verdicts,
        schema_bump,
        rendered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hvx-baseline-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    // Table3 + an ablation keeps the write/check cycle fast while still
    // exercising both the single-scenario and manifest paths. Fig4's
    // end-to-end gate (including the drift drill) runs in the CLI
    // integration tests and scripts/baseline_check.sh.
    const QUICK: [ArtifactId; 2] = [ArtifactId::Table3, ArtifactId::Vhe];

    #[test]
    fn write_then_check_is_clean() {
        let dir = tmpdir("clean");
        let report = write_baseline(&dir, &QUICK, 1, None).unwrap();
        assert_eq!(report.artifacts, QUICK);
        assert_eq!(report.span_profiles, 0, "no fig4, no span profiles");
        let check = check_baseline(&dir, &[], 1, None).unwrap();
        assert!(!check.schema_bump);
        assert!(check
            .verdicts
            .iter()
            .all(|(_, v)| *v == ArtifactVerdict::Clean));
        assert!(check.drifted().is_empty());
        check.into_result().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_change_under_same_fingerprints_is_drift() {
        let dir = tmpdir("drift");
        write_baseline(&dir, &QUICK, 1, None).unwrap();
        // Corrupt the stored snapshot: same manifest fingerprints, so
        // the re-run (whose inputs did not move) must classify as drift.
        let (json_path, _) = artifact_paths(&dir, ArtifactId::Vhe);
        let mut text = std::fs::read_to_string(&json_path).unwrap();
        text.push('\n');
        std::fs::write(&json_path, text).unwrap();
        let check = check_baseline(&dir, &[], 1, None).unwrap();
        assert!(!check.schema_bump);
        assert_eq!(check.drifted(), vec![ArtifactId::Vhe]);
        assert!(check.rendered.contains("DRIFT"));
        assert!(matches!(
            check.into_result(),
            Err(Error::BaselineDrift { drifted: 1 })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn moved_fingerprints_classify_as_schema_bump() {
        let dir = tmpdir("bump");
        write_baseline(&dir, &QUICK, 1, None).unwrap();
        // Rewrite the manifest with a bogus fingerprint for table3 and
        // perturb its stored bytes: the divergence must read as an
        // expected schema bump, not drift.
        let path = manifest_path(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        let fp = scenario_fingerprint(runner::plan(&QUICK)[0], &RunnerConfig::default()).unwrap();
        let text = text.replace(&fp.to_hex(), &"0".repeat(32));
        std::fs::write(&path, text).unwrap();
        let (json_path, _) = artifact_paths(&dir, ArtifactId::Table3);
        let mut stored = std::fs::read_to_string(&json_path).unwrap();
        stored.push('\n');
        std::fs::write(&json_path, stored).unwrap();
        let check = check_baseline(&dir, &[], 1, None).unwrap();
        assert!(check.schema_bump);
        assert!(check.drifted().is_empty());
        assert!(check
            .verdicts
            .iter()
            .any(|(id, v)| *id == ArtifactId::Table3 && *v == ArtifactVerdict::SchemaBump));
        check.into_result().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn filter_must_name_baselined_artifacts() {
        let dir = tmpdir("filter");
        write_baseline(&dir, &QUICK, 1, None).unwrap();
        let err = check_baseline(&dir, &[ArtifactId::Fig4], 1, None).unwrap_err();
        assert!(matches!(err, Error::Baseline { .. }));
        let check = check_baseline(&dir, &[ArtifactId::Vhe], 1, None).unwrap();
        assert_eq!(check.verdicts.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_a_typed_error() {
        let dir = tmpdir("missing");
        assert!(matches!(
            check_baseline(&dir, &[], 1, None),
            Err(Error::Baseline { .. })
        ));
    }
}
