//! The consolidation sweep: SMP guests sharing physical CPUs under a
//! hypervisor vCPU scheduler.
//!
//! The paper's measurements pin one vCPU per pCPU; real deployments
//! oversubscribe. Each cell here simulates `ratio` two-vCPU VMs sharing
//! two pCPUs (a `ratio`:1 vCPU:pCPU ratio) running a closed-loop
//! TCP_RR-style transaction per VM:
//!
//! * vCPU **A** (pinned to pCPU0) wakes on each request arrival, takes
//!   a guest kernel lock, does the RR work, kicks its sibling with a
//!   **virtual IPI routed through the modelled GIC distributor as an
//!   SGI** (`GICD_SGIR` write → [`Distributor::mmio_write`] fan-out →
//!   [`VgicCpuInterface::inject`]), and completes the transaction.
//! * vCPU **B** (pinned to pCPU1) wakes on the SGI, acks it, runs a
//!   locked critical section (softirq under the same kernel lock), a
//!   tail, and EOIs. Coalesced SGIs ([`VgicError::AlreadyListed`]) are
//!   counted — at high ratios the guest is too slow to drain them.
//!
//! Each pCPU multiplexes its `ratio` pinned vCPUs through a pluggable
//! [`VcpuScheduler`] (Xen-credit or KVM/CFS, per [`SchedPolicy`]) with
//! preemptive timer slicing and wake preemption. Every scheduling
//! action is charged through real modelled paths on the machine — VM
//! switches at the hypervisor's measured world-switch cost, timer
//! interrupts as [`TransitionId::SchedTimer`], and guest spinning on a
//! preempted lock holder as [`TransitionId::LockHolderSpin`] — so span
//! conservation stays exact. **Steal time** (runnable-but-not-running)
//! is an observation derived from the same clocks, never a charge.
//!
//! ## Compile eligibility
//!
//! At ratio 1:1 the cell is periodic: every transaction replays the
//! same op stream, so the driver opens a loop-compiler session and the
//! machine replays steady-state transactions in O(1). Under contention
//! (ratio > 1) the interleaving of `2×ratio` vCPUs across two shared
//! clocks is aperiodic at the transaction level, so the driver runs
//! fully interpreted — the transparent fallback the differential tests
//! in `tests/compile_diff.rs` pin down byte-for-byte.
//!
//! [`VcpuScheduler`]: hvx_core::VcpuScheduler
//! [`SchedPolicy`]: hvx_core::SchedPolicy
//! [`Distributor::mmio_write`]: hvx_gic::Distributor::mmio_write
//! [`VgicCpuInterface::inject`]: hvx_gic::VgicCpuInterface::inject
//! [`VgicError::AlreadyListed`]: hvx_gic::VgicError::AlreadyListed
//! [`TransitionId::SchedTimer`]: hvx_engine::TransitionId::SchedTimer
//! [`TransitionId::LockHolderSpin`]: hvx_engine::TransitionId::LockHolderSpin

use std::collections::VecDeque;

use hvx_core::{Error, HvKind, Hypervisor, SchedPolicy, SimBuilder, VCpu, VcpuScheduler};
use hvx_engine::{CoreId, Cycles, FaultPlan, FaultPoint, Machine, TraceKind, TransitionId};
use hvx_gic::{dist_reg, Distributor, VgicCpuInterface, VgicError};

use serde::{Deserialize, Serialize};

/// vCPU:pCPU ratios the sweep visits (1:1 .. 16:1).
pub const RATIOS: [u32; 5] = [1, 2, 4, 8, 16];

/// Default transactions per VM for artifact cells: enough steady-state
/// iterations past the loop compiler's confirm window that 1:1 cells
/// actually replay.
pub const TRANSACTIONS_PER_VM: u32 = 48;

/// Scheduler timeslice, in cycles (~12 µs at 2.4 GHz): shorter than a
/// full RR transaction, so a busy vCPU takes at least one timer
/// interrupt per activation and queued vCPUs rotate mid-transaction.
const QUANTUM: u64 = 30_000;
/// Cost of one scheduler-timer interrupt (trap, accounting, ERET).
const TIMER_COST: u64 = 800;
/// Guest cycles to take the uncontended kernel lock.
const LOCK_ACQ: u64 = 300;
/// Lock-spin probe granularity while the holder is preempted.
const SPIN_SLICE: u64 = 1_000;
/// Sibling's critical section under the kernel lock.
const LOCKED_WORK: u64 = 6_000;
/// Sibling's post-unlock softirq tail.
const TAIL_WORK: u64 = 8_000;
/// Primary vCPU's per-transaction request processing.
const RR_WORK: u64 = 40_000;
/// Primary vCPU's transaction completion (response post-processing).
const TX_FINISH: u64 = 2_000;
/// Client think time between a completion and the next arrival.
const THINK: u64 = 12_000;
/// Physical IPI wire latency between the two pCPUs.
const IPI_WIRE: u64 = 600;
/// SGI number the guest uses for its cross-vCPU kick.
const SGI: u32 = 4;
/// Guest cycles for the primary vCPU to notice its kick never landed
/// (a softirq watchdog / completion-timeout check at the top of the
/// next transaction) before it re-sends the SGI. Dominates the
/// latency penalty a dropped cross-vCPU IPI inflicts on the *next*
/// transaction — the TCP_RR stall the fault sweep measures.
const KICK_TIMEOUT: u64 = 20_000;

/// One consolidation cell's results. All fields are integers so cached
/// JSON is byte-stable; derived rates are computed at render time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellResult {
    /// Hypervisor column, as printed in Figure 4.
    pub column: String,
    /// vCPU:pCPU ratio (= VMs sharing the pCPU pair).
    pub ratio: u32,
    /// Scheduler policy name (`credit` / `cfs`).
    pub sched: String,
    /// Transactions each VM was asked to run.
    pub txns_per_vm: u32,
    /// Transactions completed across all VMs.
    pub transactions: u64,
    /// Σ per-transaction latency (arrival → completion), cycles.
    pub sum_latency_cycles: u64,
    /// Σ cycles vCPUs spent runnable-but-not-running.
    pub steal_cycles: u64,
    /// Σ cycles guests burnt spinning on a preempted lock holder.
    pub lock_spin_cycles: u64,
    /// Hypervisor world switches charged.
    pub vm_switches: u64,
    /// Involuntary deschedules (timer or wake preemption).
    pub preemptions: u64,
    /// Scheduler-timer interrupts charged.
    pub timer_fires: u64,
    /// SGIs sent through the distributor.
    pub ipis_sent: u64,
    /// SGI injections coalesced onto an already-pending vIRQ.
    pub ipis_coalesced: u64,
    /// Cross-vCPU kicks the fault plan dropped on the delivery path.
    pub ipis_dropped: u64,
    /// Kicks the guest re-sent after its completion timeout noticed a
    /// drop (each charged `KICK_TIMEOUT` + a second SGIR emulation).
    pub ipis_resent: u64,
    /// Global makespan of the cell, cycles.
    pub makespan_cycles: u64,
    /// Iterations the loop compiler replayed (0 under contention).
    pub iters_replayed: u64,
}

impl CellResult {
    /// Mean transaction latency in microseconds (2.4 GHz clock).
    pub fn mean_latency_us(&self) -> f64 {
        if self.transactions == 0 {
            return 0.0;
        }
        self.sum_latency_cycles as f64 / self.transactions as f64 / 2_400.0
    }

    /// Steal share of the makespan across the two pCPUs, percent.
    pub fn steal_pct(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        100.0 * self.steal_cycles as f64 / (2.0 * self.makespan_cycles as f64)
    }
}

/// Full cell configuration (the artifact path uses [`run_cell`]).
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Hypervisor under test.
    pub kind: HvKind,
    /// vCPU:pCPU ratio (number of VMs on the pCPU pair).
    pub ratio: u32,
    /// vCPU scheduler policy.
    pub policy: SchedPolicy,
    /// Transactions per VM.
    pub txns_per_vm: u32,
    /// Attempt loop compilation (only engaged at ratio 1).
    pub compile: bool,
    /// Enable span profiling + the metrics registry (forces the
    /// interpreter; used by conservation and metrics tests).
    pub profiling: bool,
    /// Fault plan armed on the cell machine. [`FaultPoint::VirqDrop`]
    /// is consulted on the emulated `GICD_SGIR` delivery path, so
    /// dropped cross-vCPU kicks surface as TCP_RR stalls with the
    /// recovery (timeout + resend) charged through spans. A fault-armed
    /// machine always interprets: `loop_begin` declines it.
    pub fault: Option<FaultPlan>,
}

/// Per-hypervisor costs, probed once per cell from the real model so
/// they track the calibrated cost model (including `HVX_COST_PERTURB`).
struct Costs {
    switch: u64,
    ipi_send: u64,
    virq_recv: u64,
    eoi: u64,
}

fn probe_costs(kind: HvKind) -> Result<Costs, Error> {
    let mut sim = SimBuilder::new(kind).without_tracing().build()?;
    Ok(Costs {
        switch: sim.vm_switch().as_u64(),
        ipi_send: sim.virtual_ipi(0, 1).as_u64(),
        virq_recv: sim.deliver_virq(1).as_u64(),
        eoi: sim.virq_complete(1).as_u64(),
    })
}

/// What a vCPU is doing, guest-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Blocked in WFI.
    Idle,
    // Primary (A, pCPU0):
    /// Trying to take the VM's kernel lock.
    Lock,
    /// Request processing, `0` cycles remaining → send.
    Work(u64),
    /// SGI kick to the sibling.
    Send,
    /// Transaction completion bookkeeping, then WFI.
    Finish,
    // Sibling (B, pCPU1):
    /// Acking the SGI.
    Ack,
    /// Critical section under the kernel lock.
    Locked(u64),
    /// Post-unlock softirq tail.
    Tail(u64),
    /// EOI, then drain or WFI.
    Eoi,
}

/// One VM: its emulated interrupt hardware and transaction state.
struct VmState {
    dist: Distributor,
    vgic_b: VgicCpuInterface,
    /// The sibling holds the guest kernel lock.
    lock_held: bool,
    /// Next request arrival (`u64::MAX` = none outstanding / done).
    arrival: u64,
    /// Arrival instant of the in-flight transaction (latency base).
    txn_started: u64,
    /// Transactions completed.
    done: u32,
    /// Sent-but-undelivered SGI wire arrivals, in send order.
    ipi_q: VecDeque<u64>,
    /// The last kick was dropped by the fault plan; the primary vCPU
    /// notices via its completion timeout at the top of the next
    /// transaction and re-sends.
    kick_lost: bool,
}

/// A vCPU with its guest phase.
struct Side {
    vcpu: VCpu,
    phase: Phase,
}

/// One physical CPU: its scheduler and dispatch state.
struct Pcpu {
    core: CoreId,
    sched: Box<dyn VcpuScheduler>,
    running: Option<usize>,
    /// Last vCPU (by VM index) that held the pCPU; `None` after idle,
    /// so a dispatch out of idle charges a world switch.
    last_ran: Option<usize>,
    quantum_left: u64,
}

/// Mutable counters a cell accumulates (live + replayed).
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    transactions: u64,
    sum_latency: u64,
    steal_replayed: u64,
    lock_spin: u64,
    vm_switches: u64,
    preemptions: u64,
    timer_fires: u64,
    ipis_sent: u64,
    ipis_coalesced: u64,
    ipis_dropped: u64,
    ipis_resent: u64,
}

impl Counters {
    /// Extends the counters by `k` more copies of the last iteration's
    /// delta (current values minus the `snap` taken when that iteration
    /// began). In steady state every replayed iteration contributes the
    /// same delta, so this is exact.
    fn extend_scaled(&mut self, snap: &Counters, k: u64) {
        self.transactions += (self.transactions - snap.transactions) * k;
        self.sum_latency += (self.sum_latency - snap.sum_latency) * k;
        self.steal_replayed += (self.steal_replayed - snap.steal_replayed) * k;
        self.lock_spin += (self.lock_spin - snap.lock_spin) * k;
        self.vm_switches += (self.vm_switches - snap.vm_switches) * k;
        self.preemptions += (self.preemptions - snap.preemptions) * k;
        self.timer_fires += (self.timer_fires - snap.timer_fires) * k;
        self.ipis_sent += (self.ipis_sent - snap.ipis_sent) * k;
        self.ipis_coalesced += (self.ipis_coalesced - snap.ipis_coalesced) * k;
        // Fault counters are structurally zero here — a fault-armed
        // machine never compiles — but scaling them keeps the delta
        // arithmetic total.
        self.ipis_dropped += (self.ipis_dropped - snap.ipis_dropped) * k;
        self.ipis_resent += (self.ipis_resent - snap.ipis_resent) * k;
    }
}

struct Cell {
    vms: Vec<VmState>,
    a: Vec<Side>,
    b: Vec<Side>,
    p: [Pcpu; 2],
    costs: Costs,
    txns_per_vm: u32,
    n: Counters,
}

impl Cell {
    fn new(
        kind_costs: Costs,
        ratio: u32,
        policy: SchedPolicy,
        txns: u32,
        topo: [CoreId; 2],
    ) -> Cell {
        let r = ratio as usize;
        let mut vms = Vec::with_capacity(r);
        for _ in 0..r {
            let mut dist = Distributor::new(2, 32);
            // The guest enables its kick SGI on the sibling through the
            // normal set-enable register before first use.
            dist.mmio_write(dist_reg::GICD_ISENABLER, 1 << SGI, 1)
                .expect("SGI enable");
            vms.push(VmState {
                dist,
                vgic_b: VgicCpuInterface::new(),
                lock_held: false,
                arrival: 0, // every VM's first request arrives at t=0
                txn_started: 0,
                done: 0,
                ipi_q: VecDeque::new(),
                kick_lost: false,
            });
        }
        let mk_pcpu = |core: CoreId| {
            let mut sched = policy.make();
            for v in 0..r {
                sched.add_vcpu(v, 256);
                // Guests boot into WFI; the first request wakes them.
                sched.block(v);
            }
            Pcpu {
                core,
                sched,
                running: None,
                last_ran: None,
                quantum_left: QUANTUM,
            }
        };
        Cell {
            vms,
            a: (0..r)
                .map(|_| Side {
                    vcpu: VCpu::new(0, 0),
                    phase: Phase::Idle,
                })
                .collect(),
            b: (0..r)
                .map(|_| Side {
                    vcpu: VCpu::new(1, 1),
                    phase: Phase::Idle,
                })
                .collect(),
            p: [mk_pcpu(topo[0]), mk_pcpu(topo[1])],
            costs: kind_costs,
            txns_per_vm: txns,
            n: Counters::default(),
        }
    }

    /// Earliest undelivered wake event for pCPU `p` (`u64::MAX` none).
    fn next_wake(&self, p: usize) -> u64 {
        let mut t = u64::MAX;
        for (v, vm) in self.vms.iter().enumerate() {
            if p == 0 {
                if self.a[v].phase == Phase::Idle && vm.arrival != u64::MAX {
                    t = t.min(vm.arrival);
                }
            } else if let Some(&arr) = vm.ipi_q.front() {
                t = t.min(arr);
            }
        }
        t
    }

    /// When pCPU `p` can next do something (`u64::MAX` = never).
    fn actionable(&self, m: &Machine, p: usize) -> u64 {
        let now = m.now(self.p[p].core).as_u64();
        if self.p[p].running.is_some() {
            return now;
        }
        let sides = if p == 0 { &self.a } else { &self.b };
        if sides
            .iter()
            .any(|s| s.vcpu.state() == hvx_core::VcpuState::Runnable)
        {
            return now;
        }
        match self.next_wake(p) {
            u64::MAX => u64::MAX,
            w => w.max(now),
        }
    }

    /// Marks the running vCPU of `p` runnable again (wake preemption).
    fn preempt_running(&mut self, m: &Machine, p: usize) {
        if let Some(cur) = self.p[p].running.take() {
            let now = m.now(self.p[p].core).as_u64();
            let side = if p == 0 {
                &mut self.a[cur]
            } else {
                &mut self.b[cur]
            };
            side.vcpu.preempt(now);
            self.n.preemptions += 1;
        }
    }

    /// Delivers due wake events on `p`: request arrivals (pCPU0) or
    /// SGI wire arrivals → vGIC injection (pCPU1).
    fn deliver_wakes(&mut self, m: &mut Machine, p: usize) {
        let now = m.now(self.p[p].core).as_u64();
        for v in 0..self.vms.len() {
            if p == 0 {
                let vm = &mut self.vms[v];
                if self.a[v].phase == Phase::Idle && vm.arrival != u64::MAX && vm.arrival <= now {
                    let at = vm.arrival;
                    vm.txn_started = at;
                    vm.arrival = u64::MAX; // in flight
                    self.a[v].vcpu.wake(at);
                    self.a[v].phase = Phase::Lock;
                    if self.p[0].sched.wake(v) {
                        self.preempt_running(m, 0);
                    }
                }
            } else {
                while let Some(&arr) = self.vms[v].ipi_q.front() {
                    if arr > now {
                        break;
                    }
                    self.vms[v].ipi_q.pop_front();
                    match self.vms[v].vgic_b.inject(SGI, 0x80) {
                        Ok(_) => {}
                        Err(VgicError::AlreadyListed { .. }) => self.n.ipis_coalesced += 1,
                        Err(e) => panic!("SGI injection failed: {e}"),
                    }
                    if self.b[v].phase == Phase::Idle {
                        self.b[v].vcpu.wake(arr);
                        self.b[v].phase = Phase::Ack;
                        if self.p[1].sched.wake(v) {
                            self.preempt_running(m, 1);
                        }
                    }
                }
            }
        }
    }

    /// Timer interrupt on `p`: charge, account, involuntarily
    /// deschedule the running vCPU.
    fn fire_timer(&mut self, m: &mut Machine, p: usize) {
        let core = self.p[p].core;
        let end = m
            .charge_as(
                core,
                "sched:timer",
                TraceKind::Sched,
                Cycles::new(TIMER_COST),
                TransitionId::SchedTimer,
            )
            .as_u64();
        self.n.timer_fires += 1;
        self.p[p].sched.tick();
        if let Some(cur) = self.p[p].running.take() {
            let side = if p == 0 {
                &mut self.a[cur]
            } else {
                &mut self.b[cur]
            };
            side.vcpu.preempt(end);
            self.n.preemptions += 1;
            self.p[p].sched.yield_current();
        }
        self.p[p].quantum_left = QUANTUM;
    }

    /// Dispatches the scheduler's pick on `p`, charging a world switch
    /// when the pCPU changes vCPU (or comes out of idle). Returns
    /// `false` if the pCPU went idle instead.
    fn dispatch(&mut self, m: &mut Machine, p: usize) -> bool {
        let core = self.p[p].core;
        match self.p[p].sched.pick() {
            None => {
                self.p[p].last_ran = None; // idle: next dispatch switches in
                let w = self.next_wake(p);
                let now = m.now(core).as_u64();
                if w != u64::MAX && w > now {
                    m.wait_until(core, Cycles::new(w));
                }
                false
            }
            Some(v) => {
                // Steal counts time queued behind other vCPUs, not the
                // world switch this dispatch itself costs — sample the
                // clock before charging it.
                let now = m.now(core).as_u64();
                if self.p[p].last_ran != Some(v) {
                    m.charge_as(
                        core,
                        "sched:vm-switch",
                        TraceKind::Sched,
                        Cycles::new(self.costs.switch),
                        TransitionId::Sched,
                    );
                    self.n.vm_switches += 1;
                }
                let side = if p == 0 {
                    &mut self.a[v]
                } else {
                    &mut self.b[v]
                };
                side.vcpu.schedule_in(now);
                self.p[p].running = Some(v);
                self.p[p].last_ran = Some(v);
                self.p[p].quantum_left = QUANTUM;
                true
            }
        }
    }

    /// Charges `cost` guest cycles for vCPU `v` on `p` and burns
    /// timeslice. Returns the completion instant.
    fn charge_guest(
        &mut self,
        m: &mut Machine,
        p: usize,
        v: usize,
        label: &'static str,
        cost: u64,
        id: TransitionId,
    ) -> u64 {
        let kind = if id == TransitionId::LockHolderSpin {
            TraceKind::Guest
        } else if id == TransitionId::GicdEmulate
            || id == TransitionId::VirqInject
            || id == TransitionId::GicAccess
        {
            TraceKind::Emulation
        } else {
            TraceKind::Guest
        };
        let end = m
            .charge_as(self.p[p].core, label, kind, Cycles::new(cost), id)
            .as_u64();
        self.p[p].sched.charge_cycles(v, cost);
        self.p[p].quantum_left = self.p[p].quantum_left.saturating_sub(cost);
        end
    }

    /// Executes one slice of the running vCPU on `p`.
    fn exec_slice(&mut self, m: &mut Machine, recording: bool, p: usize) {
        let v = self.p[p].running.expect("exec_slice needs a running vcpu");
        if self.p[p].quantum_left == 0 {
            self.fire_timer(m, p);
            return;
        }
        let quantum = self.p[p].quantum_left;
        let phase = if p == 0 {
            self.a[v].phase
        } else {
            self.b[v].phase
        };
        match phase {
            Phase::Idle => unreachable!("idle vcpu dispatched"),
            Phase::Lock => {
                if self.vms[v].kick_lost {
                    // The previous transaction's kick was dropped: the
                    // guest's completion timeout fires at the top of
                    // this transaction, and it re-sends the SGI through
                    // the same emulated GICD_SGIR path. Both halves of
                    // the recovery are charged, so the stall shows up
                    // in this transaction's latency *and* in spans.
                    self.charge_guest(
                        m,
                        p,
                        v,
                        "guest:kick-timeout",
                        KICK_TIMEOUT,
                        TransitionId::GuestRun,
                    );
                    self.charge_guest(
                        m,
                        p,
                        v,
                        "gicd:sgir-resend",
                        self.costs.ipi_send,
                        TransitionId::GicdEmulate,
                    );
                    let sgir = (u64::from(SGI) << 24) | (0b10 << 16);
                    let effect = self.vms[v]
                        .dist
                        .mmio_write(dist_reg::GICD_SGIR, sgir, 0)
                        .expect("SGIR resend");
                    debug_assert_eq!(effect.sgi_targets.len(), 1);
                    let arrival = m.signal(self.p[0].core, self.p[1].core, Cycles::new(IPI_WIRE));
                    self.vms[v].ipi_q.push_back(arrival.as_u64());
                    self.vms[v].kick_lost = false;
                    self.n.ipis_resent += 1;
                } else if self.vms[v].lock_held {
                    // The sibling holds the kernel lock; if it has been
                    // descheduled this is lock-holder preemption and the
                    // spin lasts until the scheduler runs it again.
                    let chunk = SPIN_SLICE.min(quantum);
                    self.charge_guest(
                        m,
                        p,
                        v,
                        "guest:lock-spin",
                        chunk,
                        TransitionId::LockHolderSpin,
                    );
                    self.n.lock_spin += chunk;
                } else {
                    self.charge_guest(
                        m,
                        p,
                        v,
                        "guest:lock-acquire",
                        LOCK_ACQ,
                        TransitionId::GuestRun,
                    );
                    self.a[v].phase = Phase::Work(RR_WORK);
                }
            }
            Phase::Work(left) => {
                let chunk = left.min(quantum);
                self.charge_guest(m, p, v, "guest:rr-work", chunk, TransitionId::GuestRun);
                let left = left - chunk;
                self.a[v].phase = if left == 0 {
                    Phase::Send
                } else {
                    Phase::Work(left)
                };
            }
            Phase::Send => {
                self.charge_guest(
                    m,
                    p,
                    v,
                    "gicd:sgir",
                    self.costs.ipi_send,
                    TransitionId::GicdEmulate,
                );
                // GICD_SGIR, model encoding: SGI id at [27:24], filter
                // TargetList at [29:28], CPU mask at [23:16] → cpu 1.
                let sgir = (u64::from(SGI) << 24) | (0b10 << 16);
                let effect = self.vms[v]
                    .dist
                    .mmio_write(dist_reg::GICD_SGIR, sgir, 0)
                    .expect("SGIR write");
                debug_assert_eq!(effect.sgi_targets.len(), 1);
                self.n.ipis_sent += 1;
                if m.fault(FaultPoint::VirqDrop) {
                    // The distributor accepted the guest's write, but
                    // the virtual-IRQ delivery to the sibling is lost:
                    // no wire signal, no wake. The guest only finds out
                    // through its completion timeout next transaction.
                    self.n.ipis_dropped += 1;
                    self.vms[v].kick_lost = true;
                } else {
                    let arrival = m.signal(self.p[0].core, self.p[1].core, Cycles::new(IPI_WIRE));
                    self.vms[v].ipi_q.push_back(arrival.as_u64());
                    if recording {
                        m.loop_set_reg(1, arrival);
                    }
                }
                self.a[v].phase = Phase::Finish;
            }
            Phase::Finish => {
                let end = self.charge_guest(
                    m,
                    p,
                    v,
                    "guest:tx-finish",
                    TX_FINISH,
                    TransitionId::GuestRun,
                );
                let vm = &mut self.vms[v];
                vm.done += 1;
                let latency = end - vm.txn_started;
                self.n.transactions += 1;
                self.n.sum_latency += latency;
                if vm.done < self.txns_per_vm {
                    vm.arrival = end + THINK;
                    if recording {
                        m.loop_set_reg(0, Cycles::new(vm.arrival));
                    }
                }
                self.a[v].vcpu.block(end);
                self.a[v].phase = Phase::Idle;
                self.p[0].sched.block(v);
                self.p[0].running = None;
            }
            Phase::Ack => {
                self.charge_guest(
                    m,
                    p,
                    v,
                    "virq:ack",
                    self.costs.virq_recv,
                    TransitionId::VirqInject,
                );
                let acked = self.vms[v].vgic_b.guest_ack();
                debug_assert_eq!(acked, Some(SGI));
                self.vms[v].lock_held = true;
                self.b[v].phase = Phase::Locked(LOCKED_WORK);
            }
            Phase::Locked(left) => {
                let chunk = left.min(quantum);
                self.charge_guest(
                    m,
                    p,
                    v,
                    "guest:locked-section",
                    chunk,
                    TransitionId::GuestRun,
                );
                let left = left - chunk;
                if left == 0 {
                    self.vms[v].lock_held = false;
                    self.b[v].phase = Phase::Tail(TAIL_WORK);
                } else {
                    self.b[v].phase = Phase::Locked(left);
                }
            }
            Phase::Tail(left) => {
                let chunk = left.min(quantum);
                self.charge_guest(m, p, v, "guest:softirq-tail", chunk, TransitionId::GuestRun);
                let left = left - chunk;
                self.b[v].phase = if left == 0 {
                    Phase::Eoi
                } else {
                    Phase::Tail(left)
                };
            }
            Phase::Eoi => {
                let end =
                    self.charge_guest(m, p, v, "virq:eoi", self.costs.eoi, TransitionId::GicAccess);
                self.vms[v].vgic_b.guest_eoi(SGI).expect("EOI of acked SGI");
                if self.vms[v].vgic_b.pending_virq().is_some() {
                    // A coalesced kick is already pending: service it
                    // without returning to WFI.
                    self.b[v].phase = Phase::Ack;
                } else {
                    self.b[v].vcpu.block(end);
                    self.b[v].phase = Phase::Idle;
                    self.p[1].sched.block(v);
                    self.p[1].running = None;
                }
            }
        }
    }

    /// One event-loop step: advance the pCPU that can act earliest.
    /// Returns `false` when neither pCPU will ever act again.
    fn step(&mut self, m: &mut Machine, recording: bool) -> bool {
        let t0 = self.actionable(m, 0);
        let t1 = self.actionable(m, 1);
        if t0 == u64::MAX && t1 == u64::MAX {
            return false;
        }
        let p = if t0 <= t1 { 0 } else { 1 };
        self.deliver_wakes(m, p);
        if self.p[p].running.is_none() && !self.dispatch(m, p) {
            return true; // went idle; the other pCPU (or a wake) is next
        }
        self.exec_slice(m, recording, p);
        true
    }

    /// Total vCPU steal, live bookkeeping plus replayed iterations.
    fn steal_total(&self) -> u64 {
        self.a
            .iter()
            .chain(&self.b)
            .map(|s| s.vcpu.steal_cycles())
            .sum::<u64>()
            + self.n.steal_replayed
    }
}

/// Runs one consolidation cell (artifact path: ambient compile toggle,
/// no profiling).
///
/// # Errors
///
/// Propagates [`Error`] from building the probe model (e.g. a bad
/// `HVX_COST_PERTURB` spec).
pub fn run_cell(
    kind: HvKind,
    ratio: u32,
    policy: SchedPolicy,
    txns_per_vm: u32,
    compile: bool,
) -> Result<CellResult, Error> {
    run_cell_with(CellConfig {
        kind,
        ratio,
        policy,
        txns_per_vm,
        compile,
        profiling: false,
        fault: None,
    })
}

/// Runs one consolidation cell with full knob control. With
/// `cfg.profiling` the machine records span attribution and per-vCPU
/// metrics, and the caller can assert conservation on the returned
/// machine via [`run_cell_machine`].
pub fn run_cell_with(cfg: CellConfig) -> Result<CellResult, Error> {
    run_cell_machine(cfg).map(|(r, _)| r)
}

/// [`run_cell_with`], also returning the machine the cell ran on (for
/// conservation and metrics assertions).
pub fn run_cell_machine(cfg: CellConfig) -> Result<(CellResult, Box<dyn Hypervisor>), Error> {
    assert!(cfg.ratio >= 1, "ratio must be at least 1:1");
    let costs = probe_costs(cfg.kind)?;
    let mut hv = SimBuilder::new(cfg.kind)
        .without_tracing()
        .profiling(cfg.profiling)
        .build()?
        .into_inner();
    if let Some(plan) = cfg.fault.clone() {
        // Arming the plan clears loop-compiler state, so a fault-armed
        // cell structurally cannot compile: loop_begin() below sees
        // faults installed and declines (fault sweeps must really
        // execute every consult, never replay around it).
        hv.machine_mut().set_fault_plan(plan);
    }
    let topo = {
        let t = hv.machine().topology();
        [t.guest_core(0), t.guest_core(1)]
    };
    let mut cell = Cell::new(costs, cfg.ratio, cfg.policy, cfg.txns_per_vm, topo);
    let m = hv.machine_mut();

    // Compile eligibility: only the uncontended 1:1 cell is provably
    // periodic per-pCPU (one transaction = one machine-level iteration,
    // with the two loop-carried instants — next arrival and the
    // in-flight SGI — in loop registers). loop_begin() itself declines
    // profiled or fault-armed machines; everything else interprets.
    let session = cfg.compile && cfg.ratio == 1 && m.loop_begin();
    if session {
        let total = u64::from(cfg.txns_per_vm);
        // Counter snapshot at the start of the most recent live
        // iteration; `current - snapshot` is one steady iteration's
        // delta once the loop has settled.
        let mut snap = cell.n;
        let mut steal_snap = cell.steal_total();
        while cell.vms[0].done < cfg.txns_per_vm {
            let done = u64::from(cell.vms[0].done);
            let skipped = m.loop_replay(total - done);
            if skipped > 0 {
                // Fast-forward host state across the replayed blocks:
                // per-iteration counter deltas are loop-invariant in
                // steady state (one transaction each), and the two
                // loop-carried instants — the next request arrival and
                // the in-flight SGI — come back through the registers.
                let steal_delta = cell.steal_total() - steal_snap;
                cell.n.extend_scaled(&snap, skipped);
                cell.n.steal_replayed += steal_delta * skipped;
                cell.vms[0].done += skipped as u32;
                cell.vms[0].arrival = if cell.vms[0].done < cfg.txns_per_vm {
                    m.loop_reg(0).map_or(u64::MAX, |c| c.as_u64())
                } else {
                    u64::MAX // run complete: nothing left to arrive
                };
                cell.vms[0].ipi_q.clear();
                if let Some(ipi) = m.loop_reg(1) {
                    cell.vms[0].ipi_q.push_back(ipi.as_u64());
                }
                continue;
            }
            m.loop_iter_begin();
            snap = cell.n;
            steal_snap = cell.steal_total();
            let target = cell.vms[0].done + 1;
            while cell.vms[0].done < target && cell.step(m, true) {}
        }
        m.loop_end();
        // Drain the sibling's final transaction outside the session.
        while cell.step(m, false) {}
    } else {
        while cell.step(m, false) {}
    }

    let steal = cell.steal_total();
    if m.profiling() {
        m.bump("consolidation.steal_cycles", steal);
        m.bump("consolidation.lock_spin_cycles", cell.n.lock_spin);
        m.bump("consolidation.vm_switches", cell.n.vm_switches);
        m.bump("consolidation.ipis_coalesced", cell.n.ipis_coalesced);
        for side in cell.a.iter().chain(&cell.b) {
            m.observe("consolidation.vcpu_steal", side.vcpu.steal_cycles());
            m.observe("consolidation.vcpu_ran", side.vcpu.ran_cycles());
        }
    }
    let result = CellResult {
        column: cfg.kind.to_string(),
        ratio: cfg.ratio,
        sched: cfg.policy.name().to_string(),
        txns_per_vm: cfg.txns_per_vm,
        transactions: cell.n.transactions,
        sum_latency_cycles: cell.n.sum_latency,
        steal_cycles: steal,
        lock_spin_cycles: cell.n.lock_spin,
        vm_switches: cell.n.vm_switches,
        preemptions: cell.n.preemptions,
        timer_fires: cell.n.timer_fires,
        ipis_sent: cell.n.ipis_sent,
        ipis_coalesced: cell.n.ipis_coalesced,
        ipis_dropped: cell.n.ipis_dropped,
        ipis_resent: cell.n.ipis_resent,
        makespan_cycles: m.global_now().as_u64(),
        iters_replayed: m.iters_replayed(),
    };
    Ok((result, hv))
}

/// The full sweep for one scheduler policy: every measured hypervisor ×
/// every ratio in [`RATIOS`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Scheduler policy name.
    pub sched: String,
    /// Cells in column-major order (hypervisor outer, ratio inner).
    pub cells: Vec<CellResult>,
}

/// Renders consolidation cells as the oversubscription sweep table.
/// `cells` must be grouped per hypervisor in [`RATIOS`] order (the
/// runner's plan order); missing cells were degraded by the hardened
/// runner and render as `n/a`.
pub fn render_sweep(sched: &str, cells: &[Option<CellResult>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("-- scheduler: {sched} --\n"));
    out.push_str(&format!(
        "{:<12}{:>6}{:>14}{:>12}{:>12}{:>10}{:>10}\n",
        "hypervisor", "ratio", "mean RR (us)", "steal %", "spin kcyc", "switches", "coalesced"
    ));
    for cell in cells {
        match cell {
            Some(c) => out.push_str(&format!(
                "{:<12}{:>4}:1{:>14.2}{:>12.2}{:>12}{:>10}{:>10}\n",
                c.column,
                c.ratio,
                c.mean_latency_us(),
                c.steal_pct(),
                c.lock_spin_cycles / 1_000,
                c.vm_switches,
                c.ipis_coalesced
            )),
            None => out.push_str(&format!("{:<12}{:>6}{:>14}\n", "?", "?", "n/a")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvx_core::SchedPolicy;

    const T: u32 = 12;

    #[test]
    fn cells_are_deterministic() {
        for policy in SchedPolicy::ALL {
            for ratio in [1, 4] {
                let a = run_cell(HvKind::KvmArm, ratio, policy, T, false).unwrap();
                let b = run_cell(HvKind::KvmArm, ratio, policy, T, false).unwrap();
                assert_eq!(a, b, "{policy:?} {ratio}:1");
                assert_eq!(a.transactions, u64::from(ratio) * u64::from(T));
            }
        }
    }

    #[test]
    fn steal_and_latency_grow_with_the_ratio() {
        for kind in HvKind::MEASURED {
            for policy in SchedPolicy::ALL {
                let mut prev: Option<CellResult> = None;
                for ratio in RATIOS {
                    let c = run_cell(kind, ratio, policy, T, false).unwrap();
                    if let Some(p) = &prev {
                        assert!(
                            c.steal_cycles > p.steal_cycles,
                            "{kind:?}/{policy:?}: steal not monotone at {ratio}:1 \
                             ({} <= {})",
                            c.steal_cycles,
                            p.steal_cycles
                        );
                        assert!(
                            c.mean_latency_us() > p.mean_latency_us(),
                            "{kind:?}/{policy:?}: latency not monotone at {ratio}:1"
                        );
                    }
                    prev = Some(c);
                }
            }
        }
    }

    #[test]
    fn uncontended_cells_have_no_steal() {
        let c = run_cell(HvKind::XenArm, 1, SchedPolicy::Credit, T, false).unwrap();
        // With a pCPU to itself a vCPU dispatches the instant it wakes:
        // zero steal, and no SGI ever finds a previous one pending.
        assert_eq!(c.steal_cycles, 0);
        assert_eq!(c.ipis_coalesced, 0);
        assert_eq!(c.transactions, u64::from(T));
        // One switch-in per transaction per pCPU.
        assert_eq!(c.vm_switches, 2 * u64::from(T));
        // The slice timer still runs (RR_WORK exceeds one quantum), but
        // re-dispatching the sole vCPU costs no world switch.
        assert!(c.timer_fires >= u64::from(T));
    }

    #[test]
    fn compiled_one_to_one_cell_replays_and_matches_interpretation() {
        for kind in [HvKind::KvmArm, HvKind::XenX86] {
            let compiled = run_cell(kind, 1, SchedPolicy::Credit, 64, true).unwrap();
            let interpreted = run_cell(kind, 1, SchedPolicy::Credit, 64, false).unwrap();
            assert!(
                compiled.iters_replayed > 0,
                "{kind:?}: 1:1 cell never engaged the compiler"
            );
            let strip = |mut c: CellResult| {
                c.iters_replayed = 0;
                c
            };
            assert_eq!(strip(compiled), strip(interpreted), "{kind:?}");
        }
    }

    #[test]
    fn contended_cells_fall_back_to_interpretation() {
        let c = run_cell(HvKind::KvmArm, 2, SchedPolicy::Cfs, T, true).unwrap();
        assert_eq!(c.iters_replayed, 0);
        let i = run_cell(HvKind::KvmArm, 2, SchedPolicy::Cfs, T, false).unwrap();
        assert_eq!(c, i);
    }

    #[test]
    fn profiled_cells_conserve_spans_and_surface_metrics() {
        let (r, hv) = run_cell_machine(CellConfig {
            kind: HvKind::KvmArm,
            ratio: 8,
            policy: SchedPolicy::Credit,
            txns_per_vm: T,
            compile: true, // profiling forces loop_begin to decline
            profiling: true,
            fault: None,
        })
        .unwrap();
        assert_eq!(r.iters_replayed, 0);
        let m = hv.machine();
        m.assert_conservation();
        let spans = m.spans().expect("profiled");
        assert!(spans.exclusive(TransitionId::SchedTimer) > 0);
        assert!(spans.exclusive(TransitionId::LockHolderSpin) > 0);
        assert!(spans.exclusive(TransitionId::Sched) > 0);
        // Unprofiled, identical timing (observation never shifts time).
        let plain = run_cell(HvKind::KvmArm, 8, SchedPolicy::Credit, T, false).unwrap();
        assert_eq!(plain.makespan_cycles, r.makespan_cycles);
    }

    #[test]
    fn schedulers_differ_under_contention() {
        let credit = run_cell(HvKind::KvmArm, 8, SchedPolicy::Credit, T, false).unwrap();
        let cfs = run_cell(HvKind::KvmArm, 8, SchedPolicy::Cfs, T, false).unwrap();
        // Different algorithms must produce genuinely different
        // interleavings, not just a relabelled copy.
        assert_ne!(credit.makespan_cycles, cfs.makespan_cycles);
    }

    fn faulted_cfg(ratio: u32, rate: f64, compile: bool) -> CellConfig {
        CellConfig {
            kind: HvKind::KvmArm,
            ratio,
            policy: SchedPolicy::Credit,
            txns_per_vm: T,
            compile,
            profiling: false,
            fault: Some(FaultPlan::new(11).with_rate(FaultPoint::VirqDrop, rate)),
        }
    }

    #[test]
    fn dropped_kicks_are_deterministic_and_surface_as_rr_stalls() {
        let clean = run_cell(HvKind::KvmArm, 4, SchedPolicy::Credit, T, false).unwrap();
        let a = run_cell_with(faulted_cfg(4, 0.3, false)).unwrap();
        let b = run_cell_with(faulted_cfg(4, 0.3, false)).unwrap();
        assert_eq!(a, b, "fault injection must be deterministic");
        assert!(a.ipis_dropped > 0, "a 30% drop rate must drop kicks");
        assert_eq!(clean.ipis_dropped, 0);
        // Every drop except a VM's final transaction is recovered by a
        // timeout + resend; resends can never exceed drops.
        assert!(a.ipis_resent <= a.ipis_dropped);
        assert!(a.ipis_resent > 0, "recovery path must engage");
        // The same transactions complete on the primary side, but the
        // stalled kicks inflate latency and stretch the makespan.
        assert_eq!(a.transactions, clean.transactions);
        assert!(
            a.sum_latency_cycles > clean.sum_latency_cycles,
            "dropped kicks must stall TCP_RR transactions \
             ({} <= {})",
            a.sum_latency_cycles,
            clean.sum_latency_cycles
        );
        assert!(a.makespan_cycles > clean.makespan_cycles);
    }

    #[test]
    fn fault_armed_cells_interpret_never_compile() {
        let c = run_cell_with(faulted_cfg(1, 0.2, true)).unwrap();
        assert_eq!(
            c.iters_replayed, 0,
            "a fault-armed 1:1 cell must decline the loop compiler"
        );
        // And it is the same result the interpreter produces directly.
        let i = run_cell_with(faulted_cfg(1, 0.2, false)).unwrap();
        assert_eq!(c, i);
    }

    #[test]
    fn fault_seed_changes_the_drop_pattern() {
        let a = run_cell_with(faulted_cfg(4, 0.3, false)).unwrap();
        let mut cfg = faulted_cfg(4, 0.3, false);
        cfg.fault = Some(FaultPlan::new(12).with_rate(FaultPoint::VirqDrop, 0.3));
        let b = run_cell_with(cfg).unwrap();
        assert_ne!(
            (a.ipis_dropped, a.makespan_cycles),
            (b.ipis_dropped, b.makespan_cycles),
            "different seeds must produce different fault schedules"
        );
    }

    #[test]
    fn render_marks_failed_cells() {
        let c = run_cell(HvKind::KvmArm, 1, SchedPolicy::Credit, 4, false).unwrap();
        let s = render_sweep("credit", &[Some(c), None]);
        assert!(s.contains("KVM ARM"));
        assert!(s.contains("n/a"));
    }
}
