//! Table III: the KVM ARM hypercall save/restore breakdown.
//!
//! The paper instruments KVM ARM's world switch to attribute the
//! hypercall cost to register classes; hvx regenerates the table from
//! the transition trace — each `save:*` / `restore:*` step the world
//! switch charged during one hypercall.

use crate::paper;
use hvx_core::{Error, HvKind, SimBuilder};
use serde::{Deserialize, Serialize};

/// One row of the reproduced Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Register class as printed in the paper.
    pub class: &'static str,
    /// Measured save cycles.
    pub save: u64,
    /// Measured restore cycles.
    pub restore: u64,
    /// Paper's save cycles.
    pub paper_save: u64,
    /// Paper's restore cycles.
    pub paper_restore: u64,
}

/// The reproduced Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// One row per register class.
    pub rows: Vec<BreakdownRow>,
    /// Total hypercall cycles the breakdown was extracted from.
    pub hypercall_total: u64,
}

/// The trace labels corresponding to each Table III class.
const CLASS_LABELS: [(&str, &str, &str); 7] = [
    ("GP Regs", "save:gp", "restore:gp"),
    ("FP Regs", "save:fp", "restore:fp"),
    ("EL1 System Regs", "save:el1-sys", "restore:el1-sys"),
    ("VGIC Regs", "save:vgic", "restore:vgic"),
    ("Timer Regs", "save:timer", "restore:timer"),
    ("EL2 Config Regs", "save:el2-config", "restore:el2-config"),
    ("EL2 Virtual Memory Regs", "save:el2-vm", "restore:el2-vm"),
];

impl Table3 {
    /// Runs one traced hypercall on KVM ARM and decomposes it.
    ///
    /// # Errors
    ///
    /// Propagates configuration failures (e.g. a rejected cost
    /// perturbation) so the runner can degrade the artifact.
    pub fn measure() -> Result<Table3, Error> {
        let mut kvm = SimBuilder::new(HvKind::KvmArm).build()?;
        kvm.machine_mut().trace_mut().clear();
        let total = kvm.hypercall(0);
        let trace = kvm.machine().trace();
        let mut rows = Vec::new();
        for (i, (class, save_label, restore_label)) in CLASS_LABELS.iter().enumerate() {
            rows.push(BreakdownRow {
                class,
                save: trace.total_by_label(save_label).as_u64(),
                restore: trace.total_by_label(restore_label).as_u64(),
                paper_save: paper::TABLE3[i].1,
                paper_restore: paper::TABLE3[i].2,
            });
        }
        Ok(Table3 {
            rows,
            hypercall_total: total.as_u64(),
        })
    }

    /// Sum of all save cells.
    pub fn total_save(&self) -> u64 {
        self.rows.iter().map(|r| r.save).sum()
    }

    /// Sum of all restore cells.
    pub fn total_restore(&self) -> u64 {
        self.rows.iter().map(|r| r.restore).sum()
    }

    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26}{:>10}{:>10}{:>14}{:>14}\n",
            "Register State", "Save", "Restore", "(paper save)", "(paper rest.)"
        ));
        out.push_str(&"-".repeat(74));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{:<26}{:>10}{:>10}{:>14}{:>14}\n",
                r.class, r.save, r.restore, r.paper_save, r.paper_restore
            ));
        }
        out.push_str(&format!(
            "{:<26}{:>10}{:>10}   (hypercall total: {} cycles)\n",
            "Sum",
            self.total_save(),
            self.total_restore(),
            self.hypercall_total
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_is_paper_verbatim() {
        let t = Table3::measure().unwrap();
        for r in &t.rows {
            assert_eq!(r.save, r.paper_save, "{} save", r.class);
            assert_eq!(r.restore, r.paper_restore, "{} restore", r.class);
        }
    }

    #[test]
    fn context_switching_dominates_the_hypercall() {
        // §IV: "The cost of saving and restoring this state accounts for
        // almost all of the Hypercall time".
        let t = Table3::measure().unwrap();
        let switching = t.total_save() + t.total_restore();
        assert!(switching as f64 > 0.85 * t.hypercall_total as f64);
        assert_eq!(t.hypercall_total, 6_500);
    }

    #[test]
    fn saving_is_much_more_expensive_than_restoring() {
        // §IV: due to reading back the VGIC state.
        let t = Table3::measure().unwrap();
        assert!(t.total_save() > 2 * t.total_restore());
        let vgic = t.rows.iter().find(|r| r.class == "VGIC Regs").unwrap();
        assert!(vgic.save > 15 * vgic.restore);
    }

    #[test]
    fn render_is_complete() {
        let t = Table3::measure().unwrap();
        let s = t.render();
        assert!(s.contains("VGIC Regs"));
        assert!(s.contains("3250") || s.contains("3,250"));
        assert!(s.contains("Sum"));
    }
}
