//! The paper's published numbers — the reproduction targets.
//!
//! Sources are marked per item:
//!
//! * **verbatim** — printed in the paper (Tables II, III, V; §V prose
//!   percentages).
//! * **estimated** — read off Figure 4's bars (the paper prints no
//!   numeric values for most application results); these carry wider
//!   tolerance and are labelled `est.` in reports.

use hvx_core::HvKind;

/// Table II, in the paper's row and column order (KVM ARM, Xen ARM,
/// KVM x86, Xen x86). Cycle counts, verbatim.
pub const TABLE2: [(&str, [u64; 4]); 7] = [
    ("Hypercall", [6_500, 376, 1_300, 1_228]),
    ("Interrupt Controller Trap", [7_370, 1_356, 2_384, 1_734]),
    ("Virtual IPI", [11_557, 5_978, 5_230, 5_562]),
    ("Virtual IRQ Completion", [71, 71, 1_556, 1_464]),
    ("VM Switch", [10_387, 8_799, 4_812, 10_534]),
    ("I/O Latency Out", [6_024, 16_491, 560, 11_262]),
    ("I/O Latency In", [13_872, 15_650, 18_923, 10_050]),
];

/// Table III: KVM ARM hypercall save/restore breakdown (cycles),
/// verbatim.
pub const TABLE3: [(&str, u64, u64); 7] = [
    ("GP Regs", 152, 184),
    ("FP Regs", 282, 310),
    ("EL1 System Regs", 230, 511),
    ("VGIC Regs", 3_250, 181),
    ("Timer Regs", 104, 106),
    ("EL2 Config Regs", 92, 107),
    ("EL2 Virtual Memory Regs", 92, 107),
];

/// Table V: netperf TCP_RR analysis on ARM, microseconds, verbatim.
/// Columns: native, KVM, Xen. `None` marks cells the paper leaves blank
/// (native has no VM boundary).
#[derive(Debug, Clone, Copy)]
pub struct Table5Row {
    /// Row label as printed.
    pub label: &'static str,
    /// Native column (µs).
    pub native: Option<f64>,
    /// KVM column (µs).
    pub kvm: Option<f64>,
    /// Xen column (µs).
    pub xen: Option<f64>,
}

/// Table V verbatim.
pub const TABLE5: [Table5Row; 8] = [
    Table5Row {
        label: "Trans/s",
        native: Some(23_911.0),
        kvm: Some(11_591.0),
        xen: Some(10_253.0),
    },
    Table5Row {
        label: "Time/trans (us)",
        native: Some(41.8),
        kvm: Some(86.3),
        xen: Some(97.5),
    },
    Table5Row {
        label: "Overhead (us)",
        native: None,
        kvm: Some(44.5),
        xen: Some(55.7),
    },
    Table5Row {
        label: "send to recv (us)",
        native: Some(29.7),
        kvm: Some(29.8),
        xen: Some(33.9),
    },
    Table5Row {
        label: "recv to send (us)",
        native: Some(14.5),
        kvm: Some(53.0),
        xen: Some(64.6),
    },
    Table5Row {
        label: "recv to VM recv (us)",
        native: None,
        kvm: Some(21.1),
        xen: Some(25.9),
    },
    Table5Row {
        label: "VM recv to VM send (us)",
        native: None,
        kvm: Some(16.9),
        xen: Some(17.4),
    },
    Table5Row {
        label: "VM send to send (us)",
        native: None,
        kvm: Some(15.0),
        xen: Some(21.4),
    },
];

/// How a Figure 4 target was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TargetSource {
    /// Number appears in the paper's text.
    Verbatim,
    /// Estimated from the figure's bars.
    Estimated,
    /// The paper could not produce this data point (Apache on Xen x86
    /// crashed Dom0 with a Mellanox driver bug).
    Unavailable,
}

/// One Figure 4 bar group: normalized overhead per hypervisor (1.0 =
/// native performance).
#[derive(Debug, Clone, Copy)]
pub struct Fig4Target {
    /// Workload name as printed under the bars.
    pub workload: &'static str,
    /// (overhead, source) per hypervisor in Table II column order.
    pub bars: [(f64, TargetSource); 4],
}

/// Figure 4 reproduction targets.
///
/// Verbatim anchors from §V: Apache 35 % (KVM ARM) and 84 % (Xen ARM);
/// Memcached 26 % and 32 %; Hackbench Xen-vs-KVM gap ≈ 5 % of native;
/// TCP_RR follows Table V (86.3/41.8 = 2.06, 97.5/41.8 = 2.33);
/// TCP_STREAM "KVM has almost no overhead for x86 and ARM while Xen has
/// more than 250% overhead". Everything else estimated from the figure.
pub const FIG4: [Fig4Target; 9] = [
    Fig4Target {
        workload: "Kernbench",
        bars: [
            (1.05, TargetSource::Estimated),
            (1.07, TargetSource::Estimated),
            (1.03, TargetSource::Estimated),
            (1.04, TargetSource::Estimated),
        ],
    },
    Fig4Target {
        workload: "Hackbench",
        bars: [
            (1.10, TargetSource::Estimated),
            (1.05, TargetSource::Verbatim), // "only 5% of native performance"
            (1.08, TargetSource::Estimated),
            (1.10, TargetSource::Estimated),
        ],
    },
    Fig4Target {
        workload: "SPECjvm2008",
        bars: [
            (1.02, TargetSource::Estimated),
            (1.03, TargetSource::Estimated),
            (1.02, TargetSource::Estimated),
            (1.03, TargetSource::Estimated),
        ],
    },
    Fig4Target {
        workload: "TCP_RR",
        bars: [
            (2.06, TargetSource::Verbatim), // Table V ratio
            (2.33, TargetSource::Verbatim),
            (1.65, TargetSource::Estimated),
            (1.75, TargetSource::Estimated),
        ],
    },
    Fig4Target {
        workload: "TCP_STREAM",
        bars: [
            (1.02, TargetSource::Verbatim), // "almost no overhead"
            (2.65, TargetSource::Verbatim), // "more than 250% overhead"
            (1.02, TargetSource::Verbatim),
            (2.55, TargetSource::Estimated),
        ],
    },
    Fig4Target {
        workload: "TCP_MAERTS",
        bars: [
            (1.05, TargetSource::Estimated),
            (2.20, TargetSource::Estimated), // "substantially higher overhead"
            (1.03, TargetSource::Estimated),
            (1.80, TargetSource::Estimated),
        ],
    },
    Fig4Target {
        workload: "Apache",
        bars: [
            (1.35, TargetSource::Verbatim), // "from 35% to 14%"
            (1.84, TargetSource::Verbatim), // "from 84% to 16%"
            (1.30, TargetSource::Estimated),
            (0.0, TargetSource::Unavailable), // Dom0 kernel panic (§V)
        ],
    },
    Fig4Target {
        workload: "Memcached",
        bars: [
            (1.26, TargetSource::Verbatim), // "from 26% to 8%"
            (1.32, TargetSource::Verbatim), // "from 32% to 9%"
            (1.25, TargetSource::Estimated),
            (1.30, TargetSource::Estimated),
        ],
    },
    Fig4Target {
        workload: "MySQL",
        bars: [
            (1.10, TargetSource::Estimated),
            (1.15, TargetSource::Estimated),
            (1.07, TargetSource::Estimated),
            (1.17, TargetSource::Estimated),
        ],
    },
];

/// §V virtual-interrupt distribution ablation, verbatim: overhead before
/// → after distributing virqs across all VCPUs.
pub const IRQ_DISTRIBUTION: [(&str, HvKind, f64, f64); 4] = [
    ("Apache", HvKind::KvmArm, 0.35, 0.14),
    ("Apache", HvKind::XenArm, 0.84, 0.16),
    ("Memcached", HvKind::KvmArm, 0.26, 0.08),
    ("Memcached", HvKind::XenArm, 0.32, 0.09),
];

/// The hypervisor order of every table's columns.
pub const COLUMNS: [HvKind; 4] = HvKind::MEASURED;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_sums_match_paper_columns() {
        let save: u64 = TABLE3.iter().map(|(_, s, _)| s).sum();
        let restore: u64 = TABLE3.iter().map(|(_, _, r)| r).sum();
        assert_eq!(save, 4_202);
        assert_eq!(restore, 1_506);
    }

    #[test]
    fn table5_overhead_column_is_consistent() {
        // 86.3 - 41.8 = 44.5 and 97.5 - 41.8 = 55.7 as printed.
        let native = TABLE5[1].native.unwrap();
        assert!((TABLE5[1].kvm.unwrap() - native - TABLE5[2].kvm.unwrap()).abs() < 1e-9);
        assert!((TABLE5[1].xen.unwrap() - native - TABLE5[2].xen.unwrap()).abs() < 1e-9);
    }

    #[test]
    fn tcp_rr_targets_match_table5_ratio() {
        let rr = FIG4.iter().find(|f| f.workload == "TCP_RR").unwrap();
        assert!((rr.bars[0].0 - 86.3 / 41.8).abs() < 0.01);
        assert!((rr.bars[1].0 - 97.5 / 41.8).abs() < 0.01);
    }

    #[test]
    fn apache_xen_x86_is_unavailable() {
        let apache = FIG4.iter().find(|f| f.workload == "Apache").unwrap();
        assert_eq!(apache.bars[3].1, TargetSource::Unavailable);
    }

    #[test]
    fn fig4_covers_all_table_iv_workloads() {
        // Table IV lists 7 entries; netperf expands to 3 modes -> 9 bars.
        assert_eq!(FIG4.len(), 9);
    }
}
