//! Netperf TCP_RR and the Table V latency decomposition.
//!
//! The paper instruments the RR path with `tcpdump` timestamps at the
//! data-link layer and synchronized counters across VMs and hypervisor
//! (§V). hvx does the equivalent with trace events: one traced
//! transaction yields the same five segments the paper reports, with the
//! boundaries defined at the same places:
//!
//! * **recv** — the host/Dom0 network driver starts on the packet
//!   (`host:net-stack-rx` for virtualized runs, `native:net-stack-rx`
//!   natively);
//! * **VM recv** — the guest has taken the virtual interrupt and the
//!   guest data-link processing begins (`guest:net-stack-rx` start);
//! * **VM send** — the guest hands the response to its paravirtual
//!   driver (`guest:net-stack-tx` end);
//! * **send** — the NIC DMA of the response completes (`nic:dma` end).

use hvx_core::{Error, HvKind, Hypervisor, SimBuilder, Workload};
use hvx_engine::{Cycles, FaultPoint, Frequency, TraceKind, TransitionId};
use serde::{Deserialize, Serialize};

/// Client turnaround: server send → request back at the server NIC
/// (both wire directions plus the native client's processing). Taken
/// from Table V's native `send to recv` of 29.7 µs.
pub const CLIENT_RTT_US: f64 = 29.7;

/// netperf server work per transaction (request parse + response build).
pub const APP_WORK: Cycles = Cycles::new(1_200);

/// Guest TCP retransmission timeout at model scale. Real Linux floors
/// the RTO at 200 ms, which would dwarf a 30 µs RTT by four orders of
/// magnitude and make loss sweeps degenerate; the model keeps the same
/// *shape* (RTO ≫ RTT, doubling per consecutive loss) at a scale where
/// recovery remains visible next to the transaction itself.
pub const TCP_RTO_US: f64 = 240.0;

/// Retransmission attempts before the model gives up on a segment and
/// the transaction proceeds as if delivered (bounds worst-case time
/// under a 100% loss plan).
pub const TCP_MAX_RETRANSMITS: u32 = 4;

/// Fault and recovery counters from one lossy RR run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrFaultStats {
    /// Response segments lost on the wire (full RTO paid).
    pub drops: u64,
    /// Response segments corrupted in flight (checksum catches them at
    /// the client; recovery after one RTT instead of a full RTO).
    pub corruptions: u64,
    /// Retransmissions issued by the guest's TCP timer.
    pub retransmits: u64,
    /// Busy guest cycles spent rebuilding and re-sending segments
    /// (charged as [`TransitionId::TcpRetransmit`] spans).
    pub recovery_busy_cycles: u64,
    /// Idle cycles the server spent waiting for retransmit timers.
    pub rto_idle_cycles: u64,
}

impl RrFaultStats {
    /// Merges another run's counters into this one.
    pub fn absorb(&mut self, other: RrFaultStats) {
        self.drops += other.drops;
        self.corruptions += other.corruptions;
        self.retransmits += other.retransmits;
        self.recovery_busy_cycles += other.recovery_busy_cycles;
        self.rto_idle_cycles += other.rto_idle_cycles;
    }
}

/// Runs the guest TCP retransmit state machine over one transaction's
/// reply leg.
///
/// Consults [`FaultPoint::WireDrop`] and [`FaultPoint::WireCorrupt`]
/// once per flight of the response segment: a drop waits out the full
/// (doubling) RTO before the timer fires; corruption is detected by the
/// client's checksum and recovered within one RTT. Each recovery
/// charges guest work as a [`TransitionId::TcpRetransmit`] span and
/// re-sends through the hypervisor's real transmit path, so retry
/// traffic pays the same virtualization costs as first-try traffic.
///
/// Returns the cycle at which a response last left the server. With no
/// fault plan installed this returns `t_send` untouched and charges
/// nothing, keeping fault-free runs byte-identical.
pub fn tcp_reply_with_retransmits(
    hv: &mut dyn Hypervisor,
    vcpu: usize,
    mut t_send: Cycles,
    freq: Frequency,
    mut stats: Option<&mut RrFaultStats>,
) -> Cycles {
    if !hv.machine().faults_enabled() {
        return t_send;
    }
    let retx_work = hv.cost().stack_tx_per_packet;
    let rtt = Cycles::from_micros(CLIENT_RTT_US, freq);
    let mut rto = Cycles::from_micros(TCP_RTO_US, freq);
    for _ in 0..TCP_MAX_RETRANSMITS {
        let dropped = hv.machine_mut().fault(FaultPoint::WireDrop);
        let corrupted = !dropped && hv.machine_mut().fault(FaultPoint::WireCorrupt);
        if !dropped && !corrupted {
            break;
        }
        let wake = t_send + if corrupted { rtt } else { rto };
        let m = hv.machine_mut();
        let core = m.topology().guest_core(vcpu);
        let timer_fired = m.wait_until(core, wake);
        m.charge_as(
            core,
            "guest:tcp-retransmit",
            TraceKind::Guest,
            retx_work,
            TransitionId::TcpRetransmit,
        );
        if let Some(s) = stats.as_deref_mut() {
            s.drops += u64::from(dropped);
            s.corruptions += u64::from(corrupted);
            s.retransmits += 1;
            s.recovery_busy_cycles += retx_work.as_u64();
            s.rto_idle_cycles += timer_fired.saturating_sub(t_send).as_u64();
        }
        t_send = hv.transmit(vcpu, 1);
        rto = rto * 2;
    }
    t_send
}

/// The reproduced Table V column for one configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RrColumn {
    /// Transactions per second.
    pub trans_per_s: f64,
    /// Microseconds per transaction.
    pub time_per_trans: f64,
    /// Overhead vs native (µs); `None` for the native column.
    pub overhead: Option<f64>,
    /// Server send → request received (µs).
    pub send_to_recv: f64,
    /// Request received → response sent (µs).
    pub recv_to_send: f64,
    /// Driver receive → VM receive (µs); virtualized only.
    pub recv_to_vm_recv: Option<f64>,
    /// VM receive → VM send (µs); virtualized only.
    pub vm_recv_to_vm_send: Option<f64>,
    /// VM send → wire send (µs); virtualized only.
    pub vm_send_to_send: Option<f64>,
}

/// Runs `transactions` closed-loop 1-byte RR transactions on `hv` and
/// decomposes the final transaction from the trace.
///
/// # Panics
///
/// Panics if the hypervisor's I/O path produces no trace events (the
/// trace must be enabled, which `Machine::new` guarantees).
pub fn run_rr(hv: &mut dyn Hypervisor, transactions: usize, freq: Frequency) -> RrColumn {
    run_rr_lossy(hv, transactions, freq).0
}

/// [`run_rr`] with the wire-fault/TCP-retransmit model applied to every
/// reply leg, returning the recovery counters alongside the column.
///
/// With no fault plan on the machine this is exactly [`run_rr`]: the
/// stats come back zeroed and the column is byte-identical.
pub fn run_rr_lossy(
    hv: &mut dyn Hypervisor,
    transactions: usize,
    freq: Frequency,
) -> (RrColumn, RrFaultStats) {
    assert!(transactions > 0);
    let client_rtt = Cycles::from_micros(CLIENT_RTT_US, freq);
    let virtualized = hv.io_latency_out(0) > Cycles::ZERO;
    hv.machine_mut().barrier();
    let t_start = hv.machine_mut().barrier();
    let mut t_send = t_start;
    let mut last = TransactionInstants::default();
    let mut stats = RrFaultStats::default();
    for i in 0..transactions {
        let trace_this = i == transactions - 1;
        if trace_this {
            hv.machine_mut().trace_mut().clear();
        }
        let nic_arrival = t_send + client_rtt;
        let (_vm_done, vcpu) = hv.receive(1, nic_arrival);
        hv.guest_compute(vcpu, APP_WORK);
        let sent = hv.transmit(vcpu, 1);
        let send_done = tcp_reply_with_retransmits(hv, vcpu, sent, freq, Some(&mut stats));
        if trace_this {
            last = TransactionInstants::extract(hv, nic_arrival, send_done);
        }
        t_send = send_done;
    }
    let total = t_send - t_start;
    let cycles_per_trans = total.as_u64() as f64 / transactions as f64;
    let time_per_trans = cycles_per_trans / freq.cycles_per_micro();
    let us = |c: Cycles| c.to_micros(freq);
    let recv_to_send = us(last.send.saturating_sub(last.recv));
    let column = RrColumn {
        trans_per_s: freq.as_hz() as f64 / cycles_per_trans,
        time_per_trans,
        overhead: None,
        send_to_recv: CLIENT_RTT_US + us(last.recv.saturating_sub(last.nic_arrival)),
        recv_to_send,
        recv_to_vm_recv: virtualized.then(|| us(last.vm_recv.saturating_sub(last.recv))),
        vm_recv_to_vm_send: virtualized.then(|| us(last.vm_send.saturating_sub(last.vm_recv))),
        vm_send_to_send: virtualized.then(|| us(last.send.saturating_sub(last.vm_send))),
    };
    (column, stats)
}

#[derive(Debug, Clone, Copy, Default)]
struct TransactionInstants {
    nic_arrival: Cycles,
    recv: Cycles,
    vm_recv: Cycles,
    vm_send: Cycles,
    send: Cycles,
}

impl TransactionInstants {
    fn extract(hv: &dyn Hypervisor, nic_arrival: Cycles, send_done: Cycles) -> Self {
        let trace = hv.machine().trace();
        let find_start = |label: &str| {
            trace
                .events()
                .iter()
                .find(|e| e.label == label)
                .map(|e| e.start)
        };
        let find_end = |label: &str| {
            trace
                .events()
                .iter()
                .rev()
                .find(|e| e.label == label)
                .map(|e| e.end())
        };
        let recv = find_start("host:net-stack-rx")
            .or_else(|| find_start("native:net-stack-rx"))
            .unwrap_or(nic_arrival);
        TransactionInstants {
            nic_arrival,
            recv,
            vm_recv: find_start("guest:net-stack-rx").unwrap_or(recv),
            vm_send: find_end("guest:net-stack-tx").unwrap_or(recv),
            send: find_end("nic:dma").unwrap_or(send_done),
        }
    }
}

/// The reproduced Table V: native, KVM ARM, Xen ARM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5 {
    /// Native column.
    pub native: RrColumn,
    /// KVM ARM column.
    pub kvm: RrColumn,
    /// Xen ARM column.
    pub xen: RrColumn,
}

impl Table5 {
    /// Runs the full Table V experiment.
    ///
    /// # Errors
    ///
    /// Propagates configuration failures (e.g. a rejected cost
    /// perturbation) so the runner can degrade the artifact.
    pub fn measure(transactions: usize) -> Result<Table5, Error> {
        let freq = Frequency::ARM_M400;
        let build = |kind| SimBuilder::new(kind).workload(Workload::Netperf).build();
        let mut native_col = run_rr(build(HvKind::Native)?.as_dyn_mut(), transactions, freq);
        let mut kvm_col = run_rr(build(HvKind::KvmArm)?.as_dyn_mut(), transactions, freq);
        let mut xen_col = run_rr(build(HvKind::XenArm)?.as_dyn_mut(), transactions, freq);
        native_col.overhead = None;
        kvm_col.overhead = Some(kvm_col.time_per_trans - native_col.time_per_trans);
        xen_col.overhead = Some(xen_col.time_per_trans - native_col.time_per_trans);
        Ok(Table5 {
            native: native_col,
            kvm: kvm_col,
            xen: xen_col,
        })
    }

    /// Renders in the paper's layout alongside the published numbers.
    pub fn render(&self) -> String {
        /// One rendered row: label, the three measured cells, the three
        /// paper cells.
        type Row = (&'static str, Vec<Option<f64>>, [&'static str; 3]);
        let cols = [&self.native, &self.kvm, &self.xen];
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26}{:>12}{:>12}{:>12}   (paper: native/KVM/Xen)\n",
            "", "Native", "KVM", "Xen"
        ));
        out.push_str(&"-".repeat(92));
        out.push('\n');
        let rows: Vec<Row> = vec![
            (
                "Trans/s",
                cols.iter().map(|c| Some(c.trans_per_s)).collect(),
                ["23911", "11591", "10253"],
            ),
            (
                "Time/trans (us)",
                cols.iter().map(|c| Some(c.time_per_trans)).collect(),
                ["41.8", "86.3", "97.5"],
            ),
            (
                "Overhead (us)",
                cols.iter().map(|c| c.overhead).collect(),
                ["-", "44.5", "55.7"],
            ),
            (
                "send to recv (us)",
                cols.iter().map(|c| Some(c.send_to_recv)).collect(),
                ["29.7", "29.8", "33.9"],
            ),
            (
                "recv to send (us)",
                cols.iter().map(|c| Some(c.recv_to_send)).collect(),
                ["14.5", "53.0", "64.6"],
            ),
            (
                "recv to VM recv (us)",
                cols.iter().map(|c| c.recv_to_vm_recv).collect(),
                ["-", "21.1", "25.9"],
            ),
            (
                "VM recv to VM send (us)",
                cols.iter().map(|c| c.vm_recv_to_vm_send).collect(),
                ["-", "16.9", "17.4"],
            ),
            (
                "VM send to send (us)",
                cols.iter().map(|c| c.vm_send_to_send).collect(),
                ["-", "15.0", "21.4"],
            ),
        ];
        for (label, vals, paper) in rows {
            out.push_str(&format!("{label:<26}"));
            for v in &vals {
                match v {
                    Some(x) if *x > 1000.0 => out.push_str(&format!("{x:>12.0}")),
                    Some(x) => out.push_str(&format!("{x:>12.1}")),
                    None => out.push_str(&format!("{:>12}", "-")),
                }
            }
            out.push_str(&format!(
                "   ({} / {} / {})\n",
                paper[0], paper[1], paper[2]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(got: f64, want: f64, tol_pct: f64) -> bool {
        (got - want).abs() / want <= tol_pct / 100.0
    }

    #[test]
    fn native_column_matches_paper_within_10_percent() {
        let t5 = Table5::measure(20).unwrap();
        assert!(
            close(t5.native.recv_to_send, 14.5, 10.0),
            "native recv_to_send {}",
            t5.native.recv_to_send
        );
        assert!(close(t5.native.time_per_trans, 41.8, 10.0));
    }

    #[test]
    fn kvm_column_matches_paper_within_10_percent() {
        let t5 = Table5::measure(20).unwrap();
        assert!(
            close(t5.kvm.recv_to_vm_recv.unwrap(), 21.1, 10.0),
            "recv_to_vm_recv {}",
            t5.kvm.recv_to_vm_recv.unwrap()
        );
        assert!(
            close(t5.kvm.vm_recv_to_vm_send.unwrap(), 16.9, 10.0),
            "vm window {}",
            t5.kvm.vm_recv_to_vm_send.unwrap()
        );
        assert!(
            close(t5.kvm.vm_send_to_send.unwrap(), 15.0, 10.0),
            "vm_send_to_send {}",
            t5.kvm.vm_send_to_send.unwrap()
        );
        assert!(
            close(t5.kvm.time_per_trans, 86.3, 10.0),
            "time/trans {}",
            t5.kvm.time_per_trans
        );
    }

    #[test]
    fn xen_column_matches_paper_within_12_percent() {
        let t5 = Table5::measure(20).unwrap();
        assert!(
            close(t5.xen.recv_to_vm_recv.unwrap(), 25.9, 12.0),
            "recv_to_vm_recv {}",
            t5.xen.recv_to_vm_recv.unwrap()
        );
        assert!(
            close(t5.xen.vm_send_to_send.unwrap(), 21.4, 12.0),
            "vm_send_to_send {}",
            t5.xen.vm_send_to_send.unwrap()
        );
        assert!(
            close(t5.xen.time_per_trans, 97.5, 12.0),
            "time/trans {}",
            t5.xen.time_per_trans
        );
    }

    #[test]
    fn ordering_matches_paper() {
        // Native < KVM < Xen on time/trans; Xen's send_to_recv exceeds
        // the others (the hypervisor delays incoming packets).
        let t5 = Table5::measure(10).unwrap();
        assert!(t5.native.time_per_trans < t5.kvm.time_per_trans);
        assert!(t5.kvm.time_per_trans < t5.xen.time_per_trans);
        assert!(t5.xen.send_to_recv > t5.kvm.send_to_recv + 1.0);
        assert!(t5.native.trans_per_s > 2.0 * t5.kvm.trans_per_s * 0.9);
    }

    #[test]
    fn dominant_overhead_is_hypervisor_packet_processing() {
        // §V: "the dominant overhead for both KVM and Xen is due to the
        // time required by the hypervisor to process packets" — the VM
        // window is only slightly above native recv_to_send.
        let t5 = Table5::measure(10).unwrap();
        let vm_window = t5.kvm.vm_recv_to_vm_send.unwrap();
        assert!(vm_window < t5.native.recv_to_send * 1.35);
        let hypervisor_share = t5.kvm.recv_to_vm_recv.unwrap() + t5.kvm.vm_send_to_send.unwrap();
        assert!(hypervisor_share > vm_window);
    }

    #[test]
    fn lossless_and_lossy_agree_without_a_plan() {
        let mut a = hvx_core::KvmArm::new();
        let mut b = hvx_core::KvmArm::new();
        let col = run_rr(&mut a, 10, Frequency::ARM_M400);
        let (lossy_col, stats) = run_rr_lossy(&mut b, 10, Frequency::ARM_M400);
        assert_eq!(stats, RrFaultStats::default());
        assert_eq!(
            col.time_per_trans.to_bits(),
            lossy_col.time_per_trans.to_bits()
        );
        assert_eq!(col.trans_per_s.to_bits(), lossy_col.trans_per_s.to_bits());
    }

    #[test]
    fn wire_drops_cost_rto_and_charge_retransmit_spans() {
        use hvx_engine::{FaultPlan, FaultPoint};
        let mut clean = hvx_core::KvmArm::new();
        let clean_col = run_rr(&mut clean, 10, Frequency::ARM_M400);
        let mut hv = hvx_core::KvmArm::new();
        hv.machine_mut()
            .set_fault_plan(FaultPlan::new(7).with_occurrence(FaultPoint::WireDrop, 2));
        let (col, stats) = run_rr_lossy(&mut hv, 10, Frequency::ARM_M400);
        assert_eq!(stats.drops, 1);
        assert_eq!(stats.retransmits, 1);
        assert!(stats.recovery_busy_cycles > 0);
        assert!(stats.rto_idle_cycles > 0, "the RTO wait is idle time");
        assert!(
            col.time_per_trans > clean_col.time_per_trans + TCP_RTO_US / 10.0 / 2.0,
            "one RTO across 10 transactions must show: {} vs {}",
            col.time_per_trans,
            clean_col.time_per_trans
        );
        assert_eq!(
            hv.machine().faults_injected(FaultPoint::WireDrop),
            1,
            "injection counter matches"
        );
    }

    #[test]
    fn corruption_recovers_faster_than_a_drop() {
        use hvx_engine::{FaultPlan, FaultPoint};
        let mut dropped = hvx_core::KvmArm::new();
        dropped
            .machine_mut()
            .set_fault_plan(FaultPlan::new(7).with_occurrence(FaultPoint::WireDrop, 2));
        let (drop_col, drop_stats) = run_rr_lossy(&mut dropped, 10, Frequency::ARM_M400);
        let mut corrupted = hvx_core::KvmArm::new();
        corrupted
            .machine_mut()
            .set_fault_plan(FaultPlan::new(7).with_occurrence(FaultPoint::WireCorrupt, 2));
        let (corrupt_col, corrupt_stats) = run_rr_lossy(&mut corrupted, 10, Frequency::ARM_M400);
        assert_eq!(corrupt_stats.corruptions, 1);
        assert_eq!(corrupt_stats.retransmits, 1);
        assert!(
            corrupt_col.time_per_trans < drop_col.time_per_trans,
            "checksum-detected corruption beats a silent drop: {} vs {}",
            corrupt_col.time_per_trans,
            drop_col.time_per_trans
        );
        assert!(corrupt_stats.rto_idle_cycles < drop_stats.rto_idle_cycles);
    }

    #[test]
    fn retransmits_are_bounded_under_certain_loss() {
        use hvx_engine::{FaultPlan, FaultPoint};
        let mut hv = hvx_core::KvmArm::new();
        hv.machine_mut()
            .set_fault_plan(FaultPlan::new(1).with_rate(FaultPoint::WireDrop, 1.0));
        let (_, stats) = run_rr_lossy(&mut hv, 5, Frequency::ARM_M400);
        assert_eq!(
            stats.retransmits,
            5 * u64::from(TCP_MAX_RETRANSMITS),
            "every transaction gives up after the bounded attempts"
        );
    }

    #[test]
    fn render_contains_all_rows() {
        let t5 = Table5::measure(3).unwrap();
        let s = t5.render();
        for label in ["Trans/s", "recv to VM recv", "VM send to send"] {
            assert!(s.contains(label), "missing {label}");
        }
    }
}
