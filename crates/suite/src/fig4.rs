//! Figure 4: normalized application performance for all four measured
//! configurations.

use crate::paper::{self, TargetSource};
use crate::workloads::{self, Workload};
use hvx_core::{CostModel, Error, HvKind, Hypervisor, Sim, SimBuilder, VirqPolicy};
use serde::{Deserialize, Serialize};

/// One reproduced Figure 4 bar.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Bar {
    /// Configuration.
    pub hv: HvKind,
    /// Measured normalized overhead (1.0 = native; `None` when the
    /// configuration cannot run the workload, mirroring the paper's
    /// missing Apache/Xen-x86 bar).
    pub measured: Option<f64>,
    /// Paper target and its provenance.
    pub paper: (f64, TargetSource),
}

/// One bar group (a workload).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BarGroup {
    /// The workload.
    pub workload: Workload,
    /// The four bars in column order.
    pub bars: Vec<Bar>,
}

/// The reproduced figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4 {
    /// One group per workload.
    pub groups: Vec<BarGroup>,
}

fn build(kind: HvKind) -> Result<Box<dyn Hypervisor>, Error> {
    Ok(SimBuilder::new(kind).build()?.into_inner())
}

fn native_for(kind: HvKind) -> Result<Sim, Error> {
    let builder = SimBuilder::new(HvKind::Native);
    match kind.platform() {
        hvx_core::Platform::X86 => builder.cost_model(CostModel::x86()),
        _ => builder,
    }
    .build()
}

/// Measures one workload on one configuration (against its platform's
/// native baseline). Returns `Ok(None)` for the paper's unrunnable
/// combination (Apache on Xen x86 — Dom0 kernel panic, §V).
///
/// # Errors
///
/// Propagates configuration and workload failures so the hardened
/// runner can degrade the cell instead of unwinding.
pub fn measure_bar(
    workload: &Workload,
    kind: HvKind,
    policy: VirqPolicy,
) -> Result<Option<f64>, Error> {
    if workload.name == "Apache" && kind == HvKind::XenX86 {
        return Ok(None);
    }
    let mut hv = build(kind)?;
    let mut native = native_for(kind)?;
    Ok(Some(workloads::overhead(
        hv.as_mut(),
        native.as_dyn_mut(),
        workload.mix,
        policy,
    )?))
}

impl Figure4 {
    /// Reproduces the full figure (36 bars, one missing).
    ///
    /// # Errors
    ///
    /// Propagates the first cell failure.
    pub fn measure() -> Result<Figure4, Error> {
        let cat = workloads::catalog();
        let mut cells = Vec::with_capacity(cat.len() * paper::COLUMNS.len());
        for w in &cat {
            for kind in paper::COLUMNS {
                cells.push(measure_bar(w, kind, VirqPolicy::Vcpu0)?);
            }
        }
        Ok(Figure4::from_cells(&cells))
    }

    /// Assembles the figure from pre-measured cells in workload-major,
    /// column-minor order (9 workloads × 4 columns). This is the single
    /// assembly path shared by [`Figure4::measure`] and the parallel
    /// scenario runner, so a parallel run is byte-identical to a serial
    /// one by construction.
    ///
    /// # Panics
    ///
    /// Panics unless exactly 36 cells are supplied.
    pub fn from_cells(cells: &[Option<f64>]) -> Figure4 {
        let cat = workloads::catalog();
        assert_eq!(
            cells.len(),
            cat.len() * paper::COLUMNS.len(),
            "need one cell per (workload, column)"
        );
        let mut groups = Vec::new();
        for (wi, w) in cat.iter().enumerate() {
            let targets = paper::FIG4[wi];
            debug_assert_eq!(targets.workload, w.name);
            let mut bars = Vec::new();
            for (ci, kind) in paper::COLUMNS.into_iter().enumerate() {
                bars.push(Bar {
                    hv: kind,
                    measured: cells[wi * paper::COLUMNS.len() + ci],
                    paper: targets.bars[ci],
                });
            }
            groups.push(BarGroup { workload: *w, bars });
        }
        Figure4 { groups }
    }

    /// Renders the figure as a table plus ASCII bars.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14}{:>22}{:>22}{:>22}{:>22}\n",
            "Workload", "KVM ARM", "Xen ARM", "KVM x86", "Xen x86"
        ));
        out.push_str(&format!(
            "{:<14}{:>22}{:>22}{:>22}{:>22}\n",
            "", "meas (paper)", "meas (paper)", "meas (paper)", "meas (paper)"
        ));
        out.push_str(&"-".repeat(14 + 4 * 22));
        out.push('\n');
        for g in &self.groups {
            out.push_str(&format!("{:<14}", g.workload.name));
            for b in &g.bars {
                let cell = match (b.measured, b.paper.1) {
                    (None, _) | (_, TargetSource::Unavailable) => "n/a (n/a)".to_string(),
                    (Some(m), src) => {
                        let tag = if src == TargetSource::Estimated {
                            "est."
                        } else {
                            ""
                        };
                        format!("{m:.2} ({:.2}{tag})", b.paper.0)
                    }
                };
                out.push_str(&format!("{cell:>22}"));
            }
            out.push('\n');
        }
        out.push('\n');
        out.push_str("Normalized overhead, 1.0 = native (lower is better):\n");
        for g in &self.groups {
            out.push_str(&format!("{}\n", g.workload.name));
            for b in &g.bars {
                match b.measured {
                    Some(m) => {
                        let len = (m * 20.0).round() as usize;
                        out.push_str(&format!(
                            "  {:<9} {:5.2} |{}\n",
                            b.hv.to_string(),
                            m,
                            "#".repeat(len.min(100))
                        ));
                    }
                    None => out.push_str(&format!("  {:<9}   n/a |\n", b.hv.to_string())),
                }
            }
        }
        out
    }

    /// Worst absolute deviation from a verbatim (non-estimated) paper
    /// target.
    pub fn worst_verbatim_error(&self) -> f64 {
        self.groups
            .iter()
            .flat_map(|g| g.bars.iter())
            .filter(|b| b.paper.1 == TargetSource::Verbatim)
            .filter_map(|b| b.measured.map(|m| (m - b.paper.0).abs()))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apache_xen_x86_is_unavailable_like_the_paper() {
        let w = workloads::catalog()
            .into_iter()
            .find(|w| w.name == "Apache")
            .unwrap();
        assert!(measure_bar(&w, HvKind::XenX86, VirqPolicy::Vcpu0)
            .unwrap()
            .is_none());
        assert!(measure_bar(&w, HvKind::KvmX86, VirqPolicy::Vcpu0)
            .unwrap()
            .is_some());
    }

    #[test]
    fn verbatim_targets_reproduce_within_tolerance() {
        let fig = Figure4::measure().unwrap();
        for g in &fig.groups {
            for b in &g.bars {
                let (target, src) = b.paper;
                let Some(m) = b.measured else { continue };
                match src {
                    TargetSource::Verbatim => assert!(
                        (m - target).abs() <= 0.35,
                        "{} {}: measured {m:.2} vs verbatim {target:.2}",
                        g.workload.name,
                        b.hv
                    ),
                    TargetSource::Estimated => assert!(
                        (m - target).abs() <= 0.45,
                        "{} {}: measured {m:.2} vs estimated {target:.2}",
                        g.workload.name,
                        b.hv
                    ),
                    TargetSource::Unavailable => {}
                }
            }
        }
        assert!(fig.worst_verbatim_error() <= 0.35);
    }

    #[test]
    fn who_wins_matches_the_paper_everywhere() {
        // The headline shape claims of §V, checked bar by bar.
        let fig = Figure4::measure().unwrap();
        let get = |w: &str, hv: HvKind| {
            fig.groups
                .iter()
                .find(|g| g.workload.name == w)
                .and_then(|g| g.bars.iter().find(|b| b.hv == hv))
                .and_then(|b| b.measured)
                .unwrap()
        };
        // KVM ARM meets or exceeds Xen ARM on every I/O workload.
        for w in [
            "TCP_RR",
            "TCP_STREAM",
            "TCP_MAERTS",
            "Apache",
            "Memcached",
            "MySQL",
        ] {
            assert!(
                get(w, HvKind::KvmArm) < get(w, HvKind::XenArm),
                "{w}: KVM ARM should beat Xen ARM"
            );
        }
        // Xen wins (slightly) on Hackbench thanks to fast virtual IPIs.
        assert!(get("Hackbench", HvKind::XenArm) < get("Hackbench", HvKind::KvmArm));
        // ARM hypervisors achieve similar or lower overhead than x86
        // counterparts on CPU-bound work (within a few points).
        assert!(get("Kernbench", HvKind::KvmArm) < get("Kernbench", HvKind::KvmX86) + 0.06);
        // Xen's STREAM overhead is architecture-independent (the I/O
        // model, not the hardware, is the cause).
        assert!(
            (get("TCP_STREAM", HvKind::XenArm) - get("TCP_STREAM", HvKind::XenX86)).abs() < 0.4
        );
    }

    #[test]
    fn render_has_all_nine_groups() {
        // Use a reduced measure for speed: rendering path only.
        let fig = Figure4::measure().unwrap();
        let s = fig.render();
        for name in ["Kernbench", "TCP_STREAM", "MySQL"] {
            assert!(s.contains(name));
        }
        assert_eq!(fig.groups.len(), 9);
    }
}
