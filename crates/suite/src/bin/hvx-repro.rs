//! `hvx-repro` — one-command reproduction of every artifact in the
//! paper, with optional JSON export and a parallel scenario runner.
//!
//! ```text
//! hvx-repro [--json DIR] [--jobs N] [--timing] [--bench FILE] [ARTIFACT...]
//!
//! ARTIFACTs: table2 table3 table5 fig4 irq vhe zerocopy link vapic
//!            oversub storage all   (default: all)
//! ```
//!
//! `--jobs N` fans independent scenarios (each Figure 4 cell, each
//! table, each ablation) across N OS threads; output is byte-identical
//! to `--jobs 1`. `--timing` reports per-artifact wall-clock on stderr.
//! `--bench FILE` times the full suite serial then parallel, checks the
//! outputs match byte-for-byte, and writes the measurements to FILE.

use hvx_suite::runner::{self, ArtifactId};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    json_dir: Option<PathBuf>,
    jobs: usize,
    timing: bool,
    bench: Option<PathBuf>,
    artifacts: Vec<ArtifactId>,
}

fn usage() -> String {
    let names: Vec<&str> = ArtifactId::ALL.iter().map(|a| a.cli_name()).collect();
    format!(
        "usage: hvx-repro [--json DIR] [--jobs N] [--timing] [--bench FILE] [ARTIFACT...]\n\
         artifacts: {} all",
        names.join(" ")
    )
}

enum Parsed {
    Run(Args),
    Help,
}

fn parse_args() -> Result<Parsed, String> {
    let mut json_dir = None;
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut timing = false;
    let mut bench = None;
    let mut requested = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                let dir = it.next().ok_or("--json requires a directory")?;
                json_dir = Some(PathBuf::from(dir));
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs requires a count")?;
                jobs = n
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--jobs needs a positive integer, got '{n}'"))?;
            }
            "--timing" => timing = true,
            "--bench" => {
                let file = it.next().ok_or("--bench requires an output file")?;
                bench = Some(PathBuf::from(file));
            }
            "--help" | "-h" => return Ok(Parsed::Help),
            "all" => requested.extend(ArtifactId::ALL),
            other => match ArtifactId::parse(other) {
                Some(a) => requested.push(a),
                None => return Err(format!("unknown artifact '{other}'; try --help")),
            },
        }
    }
    if requested.is_empty() {
        requested.extend(ArtifactId::ALL);
    }
    // Print order is fixed (the ALL order); requests only select.
    let artifacts: Vec<ArtifactId> = ArtifactId::ALL
        .into_iter()
        .filter(|a| requested.contains(a))
        .collect();
    Ok(Parsed::Run(Args {
        json_dir,
        jobs,
        timing,
        bench,
        artifacts,
    }))
}

#[derive(Serialize)]
struct BenchArtifact {
    name: &'static str,
    serial_seconds: f64,
    parallel_seconds: f64,
}

#[derive(Serialize)]
struct BenchReport {
    jobs: usize,
    serial_seconds: f64,
    parallel_seconds: f64,
    speedup: f64,
    artifacts: Vec<BenchArtifact>,
}

/// Runs the full suite serial then parallel, asserts the outputs are
/// byte-identical, and writes the wall-clock comparison to `path`.
fn bench(path: &PathBuf, jobs: usize) {
    let artifacts = ArtifactId::ALL;
    eprintln!("bench: running full suite with --jobs 1 ...");
    let t0 = Instant::now();
    let serial = runner::run_artifacts(&artifacts, 1);
    let serial_seconds = t0.elapsed().as_secs_f64();
    eprintln!("bench: running full suite with --jobs {jobs} ...");
    let t1 = Instant::now();
    let parallel = runner::run_artifacts(&artifacts, jobs);
    let parallel_seconds = t1.elapsed().as_secs_f64();
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.text, p.text, "{} text diverged", s.id.cli_name());
        assert_eq!(s.json, p.json, "{} JSON diverged", s.id.cli_name());
    }
    let report = BenchReport {
        jobs,
        serial_seconds,
        parallel_seconds,
        speedup: serial_seconds / parallel_seconds,
        artifacts: serial
            .iter()
            .zip(&parallel)
            .map(|(s, p)| BenchArtifact {
                name: s.id.cli_name(),
                serial_seconds: s.wall.as_secs_f64(),
                parallel_seconds: p.wall.as_secs_f64(),
            })
            .collect(),
    };
    let data = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(path, data).expect("write bench report");
    eprintln!(
        "bench: serial {serial_seconds:.3}s, parallel {parallel_seconds:.3}s \
         ({:.2}x, outputs byte-identical), wrote {}",
        report.speedup,
        path.display()
    );
}

fn main() {
    let args = match parse_args() {
        Ok(Parsed::Run(a)) => a,
        Ok(Parsed::Help) => {
            println!("{}", usage());
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &args.bench {
        bench(path, args.jobs);
        return;
    }

    println!("hvx — reproducing \"ARM Virtualization: Performance and Architectural");
    println!("Implications\" (ISCA 2016) on the simulator. Paper values in parentheses.\n");

    let reports = runner::run_artifacts(&args.artifacts, args.jobs);
    for r in &reports {
        print!("{}", r.text);
        if let Some(dir) = &args.json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = dir.join(format!("{}.json", r.id.json_name()));
            std::fs::write(&path, &r.json).expect("write json");
            eprintln!("wrote {}", path.display());
        }
        if args.timing {
            eprintln!(
                "[timing] {:<10} {:>9.3}s",
                r.id.cli_name(),
                r.wall.as_secs_f64()
            );
        }
    }
    if args.timing {
        let total: f64 = reports.iter().map(|r| r.wall.as_secs_f64()).sum();
        eprintln!(
            "[timing] {:<10} {total:>9.3}s (sum over scenarios, --jobs {})",
            "total", args.jobs
        );
    }
}
