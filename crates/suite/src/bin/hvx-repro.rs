//! `hvx-repro` — one-command reproduction of every artifact in the
//! paper, with optional JSON export.
//!
//! ```text
//! hvx-repro [--json DIR] [ARTIFACT...]
//!
//! ARTIFACTs: table2 table3 table5 fig4 irq vhe zerocopy link vapic
//!            oversub all   (default: all)
//! ```

use hvx_suite::{ablations, fig4, micro, netperf, table3};
use std::collections::BTreeSet;
use std::path::PathBuf;

struct Args {
    json_dir: Option<PathBuf>,
    artifacts: BTreeSet<String>,
}

const ALL: [&str; 11] = [
    "table2", "table3", "table5", "fig4", "irq", "vhe", "zerocopy", "link", "vapic", "oversub",
    "storage",
];

fn parse_args() -> Result<Args, String> {
    let mut json_dir = None;
    let mut artifacts = BTreeSet::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                let dir = it.next().ok_or("--json requires a directory")?;
                json_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: hvx-repro [--json DIR] [ARTIFACT...]\nartifacts: {} all",
                    ALL.join(" ")
                ));
            }
            "all" => artifacts.extend(ALL.iter().map(|s| s.to_string())),
            a if ALL.contains(&a) => {
                artifacts.insert(a.to_string());
            }
            other => return Err(format!("unknown artifact '{other}'; try --help")),
        }
    }
    if artifacts.is_empty() {
        artifacts.extend(ALL.iter().map(|s| s.to_string()));
    }
    Ok(Args {
        json_dir,
        artifacts,
    })
}

fn write_json<T: serde::Serialize>(dir: &Option<PathBuf>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create json dir");
    let path = dir.join(format!("{name}.json"));
    let data = serde_json::to_string_pretty(value).expect("serialize");
    std::fs::write(&path, data).expect("write json");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let want = |name: &str| args.artifacts.contains(name);

    println!("hvx — reproducing \"ARM Virtualization: Performance and Architectural");
    println!("Implications\" (ISCA 2016) on the simulator. Paper values in parentheses.\n");

    if want("table2") {
        println!("== Table II: microbenchmark cycle counts ==\n");
        let t = micro::Table2::measure(10);
        println!("{}", t.render());
        println!("worst residual: {:.1}%\n", t.worst_error() * 100.0);
        write_json(&args.json_dir, "table2", &t);
    }
    if want("table3") {
        println!("== Table III: KVM ARM hypercall breakdown ==\n");
        let t = table3::Table3::measure();
        println!("{}", t.render());
        write_json(&args.json_dir, "table3", &t);
    }
    if want("table5") {
        println!("== Table V: netperf TCP_RR decomposition ==\n");
        let t = netperf::Table5::measure(50);
        println!("{}", t.render());
        write_json(&args.json_dir, "table5", &t);
    }
    if want("fig4") {
        println!("{}", hvx_suite::workloads::render_table4());
        println!("== Figure 4: application benchmarks ==\n");
        let f = fig4::Figure4::measure();
        println!("{}", f.render());
        write_json(&args.json_dir, "fig4", &f);
    }
    if want("irq") {
        println!("== Section V: interrupt-distribution ablation ==\n");
        let rows = ablations::irq_distribution();
        println!("{}", ablations::render_irq_distribution(&rows));
        write_json(&args.json_dir, "irq_distribution", &rows);
    }
    if want("vhe") {
        println!("== Section VI: VHE projection ==\n");
        let p = ablations::vhe();
        println!("{}", ablations::render_vhe(&p));
        write_json(&args.json_dir, "vhe", &p);
    }
    if want("zerocopy") {
        println!("== Section V: zero-copy trade ==\n");
        let z = ablations::zero_copy();
        println!("{}", ablations::render_zero_copy(&z));
        write_json(&args.json_dir, "zero_copy", &z);
    }
    if want("link") {
        println!("== Section III: link-speed observation ==\n");
        let l = ablations::link_speed();
        println!("{}", ablations::render_link_speed(&l));
        write_json(&args.json_dir, "link_speed", &l);
    }
    if want("vapic") {
        println!("== Section IV: vAPIC note ==\n");
        let v = ablations::vapic();
        println!("{}", ablations::render_vapic(&v));
        write_json(&args.json_dir, "vapic", &v);
    }
    if want("storage") {
        println!("== Section III devices: storage ablation ==\n");
        let st = ablations::storage();
        println!("{}", ablations::render_storage(&st));
        write_json(&args.json_dir, "storage", &st);
    }
    if want("oversub") {
        println!("== Table I motivation: oversubscription sweep ==\n");
        let o = ablations::oversubscription();
        println!("{}", ablations::render_oversubscription(&o));
        write_json(&args.json_dir, "oversubscription", &o);
    }
}
