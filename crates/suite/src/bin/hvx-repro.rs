//! `hvx-repro` — one-command reproduction of every artifact in the
//! paper, with optional JSON export, a parallel scenario runner, and an
//! instrumentation-driven profiler.
//!
//! ```text
//! hvx-repro run [--json DIR] [--jobs N] [--timing] [--bench FILE]
//!           [--fault-plan SPEC] [--fault-seed N] [--keep-going]
//!           [--cycle-budget N] [--livelock-limit N] [--wall-timeout SECS]
//!           [--chaos KIND] [--spec FILE] [ARTIFACT...]
//! hvx-repro bench --out FILE [--jobs N]
//! hvx-repro profile [--scenario NAME]... [--jobs N] [--json DIR]
//!           [--fault-plan SPEC] [--fault-seed N]
//! hvx-repro trace <scenario> [--hypervisor HV] [--out FILE] [--ring N]
//! hvx-repro trace query FILE [--transition NAME] [--track pcpuN]
//!           [--from CYC] [--to CYC] [--top K] [--validate]
//! hvx-repro trace bench [--out FILE] [--ring N]
//! hvx-repro serve [--addr HOST:PORT] [--workers N] [--cache DIR]
//!           [--journal FILE] [--max-queue-weight N] [--client-cap N]
//!           [--max-results N] [--retries N]
//! hvx-repro serve submit --addr A (--spec FILE | --chaos KIND)
//!           [--client NAME] [--wait SECS]
//! hvx-repro serve sweep --addr A --template FILE [--client NAME]
//! hvx-repro serve poll --addr A JOBID
//! hvx-repro serve stats --addr A
//! hvx-repro serve metrics --addr A
//! hvx-repro serve trace --addr A FINGERPRINT [--top K]
//! hvx-repro serve drain --addr A
//! hvx-repro serve bench [--out FILE]
//! hvx-repro list-scenarios
//!
//! ARTIFACTs: table2 table3 table5 fig4 irq vhe zerocopy link vapic
//!            oversub storage faultrec rack all   (default: all)
//! ```
//!
//! `--fault-plan` installs a seeded deterministic fault plan (wire
//! drops, vIRQ loss, grant-copy failures, ...) that every scenario
//! consults; recovery costs are charged through the normal transition
//! accounting so profiles stay conservative. Scenario failures are
//! isolated: a panicking, timed-out, or livelocked scenario degrades to
//! a marked gap in its artifact and the process exits 3 (0 with
//! `--keep-going`, which demotes failures to stderr warnings).
//!
//! Invoking the binary with no arguments at all behaves like `run`
//! with every artifact. The historical pre-subcommand spelling
//! (`hvx-repro table2 --jobs 2` and friends) is retired: any first
//! token that is not a subcommand exits 2 with a pointer to the
//! equivalent `run` invocation. `run --spec FILE` runs the single
//! scenario a JSON [`ScenarioSpec`](hvx_core::ScenarioSpec) file
//! describes instead of an artifact matrix. `--jobs N` fans
//! independent scenarios across N OS threads; output is byte-identical
//! to `--jobs 1`.
//! `--timing` reports per-artifact wall-clock on stderr. `--bench FILE`
//! (or the `bench` subcommand) times the full suite serial then
//! parallel, checks the outputs match byte-for-byte, and writes the
//! measurements to the named file.
//!
//! `profile` runs scenarios with the observability layer enabled and
//! prints a Table-3-style cycle-attribution breakdown per scenario; the
//! per-transition exclusive cycles sum exactly to the run's total busy
//! cycles (conservation), and output is byte-identical across `--jobs`.
//!
//! `trace` runs one scenario with the causal event tracer on and writes
//! Chrome trace-event JSON (open it in <https://ui.perfetto.dev> or
//! `chrome://tracing`); `trace query` filters an exported trace, ranks
//! critical chains, and (with `--validate`) gates on its structural
//! invariants; `trace bench` measures tracing overhead over the Fig. 4
//! sweep.
//!
//! `baseline write` snapshots every artifact (bytes + input
//! fingerprints + Figure 4 span profiles) under `baselines/`;
//! `check` re-runs and classifies divergences: an expected schema bump
//! (fingerprints moved) exits 0, silent drift (same fingerprints,
//! different bytes) exits 4 with a per-cell span-delta report.
//! `--cache DIR` on `run`/`baseline write`/`check` consults a
//! content-addressed result cache so warm reruns skip unchanged cells.
//!
//! `serve` starts the crash-safe sweep server (`hvx-serve`): clients
//! POST spec bodies and poll results over HTTP/JSON while the server
//! sheds overload, quarantines failing fingerprints, and journals
//! every acceptance for exactly-once crash recovery. The `serve
//! submit/sweep/poll/stats/drain` subcommands are a built-in client
//! (responses print as JSON envelopes carrying the HTTP `status`);
//! `serve bench` measures cold/warm round-trip latency and the shed
//! threshold, writing `BENCH_serve.json`. `run --out json` switches
//! stdout to the structured [`RunReport`](hvx_core::report::RunReport)
//! (one record per scenario: typed failure kind, retry count, content
//! fingerprint) instead of rendered artifact text.

use hvx_core::Error;
use hvx_engine::{FaultPlan, Watchdog};
use hvx_serve::{client as serve_client, Server, ServerConfig};
use hvx_suite::bench_grid;
use hvx_suite::cache::ResultCache;
use hvx_suite::diff;
use hvx_suite::profile::{self, ProfileScenario};
use hvx_suite::runner::{self, ArtifactId, ChaosKind, RunnerConfig};
use hvx_suite::service::{self, SuiteExecutor};
use hvx_suite::spec_run;
use hvx_suite::trace::{self, TraceScenario};
use serde::{Serialize, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct RunArgs {
    json_dir: Option<PathBuf>,
    jobs: usize,
    timing: bool,
    bench: Option<PathBuf>,
    artifacts: Vec<ArtifactId>,
    cfg: RunnerConfig,
    keep_going: bool,
    cache_dir: Option<PathBuf>,
    out_json: bool,
}

struct ServeArgs {
    addr: String,
    workers: usize,
    cache_dir: Option<PathBuf>,
    journal: Option<PathBuf>,
    max_queue_weight: u64,
    client_cap: usize,
    max_results: usize,
    retries: u32,
}

struct BaselineArgs {
    dir: PathBuf,
    artifacts: Vec<ArtifactId>,
    jobs: usize,
    cache_dir: Option<PathBuf>,
}

struct ProfileArgs {
    scenarios: Vec<ProfileScenario>,
    jobs: usize,
    json_dir: Option<PathBuf>,
    fault_plan: Option<FaultPlan>,
}

struct TraceRunArgs {
    scenario: TraceScenario,
    out: Option<PathBuf>,
}

struct TraceQueryArgs {
    file: PathBuf,
    query: trace::Query,
    validate: bool,
}

fn usage() -> String {
    let names: Vec<&str> = ArtifactId::ALL.iter().map(|a| a.cli_name()).collect();
    format!(
        "usage: hvx-repro run [--json DIR] [--jobs N] [--timing] [--bench FILE]\n\
         \x20               [--cache DIR] [--spec FILE] [ARTIFACT...]\n\
         \x20               (no arguments at all: same as 'run all')\n\
         \x20      hvx-repro bench --out FILE [--jobs N]\n\
         \x20      hvx-repro profile [--scenario NAME]... [--jobs N] [--json DIR]\n\
         \x20      hvx-repro trace SCENARIO [--hypervisor HV] [--out FILE] [--ring N]\n\
         \x20      hvx-repro trace query FILE [--transition NAME] [--track pcpuN]\n\
         \x20                [--from CYC] [--to CYC] [--top K] [--validate]\n\
         \x20      hvx-repro trace bench [--out FILE] [--ring N]\n\
         \x20      hvx-repro baseline write [--dir DIR] [--jobs N] [--cache DIR] [ARTIFACT...]\n\
         \x20      hvx-repro check [--baseline DIR] [--jobs N] [--cache DIR] [ARTIFACT...]\n\
         \x20      hvx-repro serve [--addr HOST:PORT] [--workers N] [--cache DIR]\n\
         \x20                [--journal FILE] [--max-queue-weight N] [--client-cap N]\n\
         \x20                [--max-results N] [--retries N]\n\
         \x20      hvx-repro serve submit --addr A (--spec FILE | --chaos KIND)\n\
         \x20                [--client NAME] [--wait SECS]\n\
         \x20      hvx-repro serve sweep --addr A --template FILE [--client NAME]\n\
         \x20      hvx-repro serve poll --addr A JOBID\n\
         \x20      hvx-repro serve stats --addr A | serve drain --addr A\n\
         \x20      hvx-repro serve metrics --addr A\n\
         \x20      hvx-repro serve trace --addr A FINGERPRINT [--top K]\n\
         \x20      hvx-repro serve bench [--out FILE]\n\
         \x20      hvx-repro list-scenarios\n\
         run/profile fault options:\n\
         \x20 --fault-plan SPEC    inject faults, e.g. 'wire_drop=0.02,grant_copy_fail=0.01'\n\
         \x20 --fault-seed N       seed for the fault plan's deterministic RNG (default 42)\n\
         run spec option:\n\
         \x20 --spec FILE          run the one scenario a JSON ScenarioSpec file\n\
         \x20                      describes (paper or consolidation shape) and print\n\
         \x20                      its report; combines with no other run options\n\
         run output option:\n\
         \x20 --out json|text      'json' prints the structured RunReport (one record per\n\
         \x20                      scenario: label, fingerprint, retries, cached, failure)\n\
         \x20                      instead of rendered artifact text (default 'text')\n\
         run robustness options:\n\
         \x20 --keep-going         report failed scenarios on stderr but exit 0\n\
         \x20 --cycle-budget N     abort any scenario past N simulated cycles (timed out)\n\
         \x20 --livelock-limit N   abort after N consecutive zero-progress charges\n\
         \x20 --wall-timeout SECS  classify scenarios over SECS wall seconds as timed out\n\
         \x20 --chaos KIND         append a chaos scenario: panic, spin, or livelock\n\
         observability:\n\
         \x20 --log-level LEVEL    structured JSON logs on stderr: off, error, info,\n\
         \x20                      debug (default off; HVX_LOG=LEVEL sets the same knob;\n\
         \x20                      accepted before or after any subcommand)\n\
         \x20 GET /metrics         a running 'serve' exports Prometheus text; /trace/FP\n\
         \x20                      serves ranked critical chains from the warm cache\n\
         caching / baselines:\n\
         \x20 --cache DIR          content-addressed result cache; warm reruns skip\n\
         \x20                      unchanged scenarios (bypassed when HVX_COST_PERTURB is set)\n\
         \x20 baseline write       snapshot artifacts + fingerprints under --dir (default\n\
         \x20                      '{base}')\n\
         \x20 check                re-run and diff against the baseline; schema bumps are\n\
         \x20                      expected, silent drift exits 4 with a span-delta report\n\
         exit codes: 0 ok, 1 runtime error (incl. invalid trace), 2 usage error,\n\
         \x20           3 scenario failure, 4 drift\n\
         artifacts: {} all\n\
         profile/trace scenarios: <workload>-<hypervisor>, e.g. netperf-kvm-arm \
         (see list-scenarios)",
        names.join(" "),
        base = diff::DEFAULT_DIR,
    )
}

enum SubmitSource {
    Spec(PathBuf),
    Chaos(String),
}

enum ServeCmd {
    Run(ServeArgs),
    Submit {
        addr: String,
        client: String,
        source: SubmitSource,
        wait_secs: Option<f64>,
    },
    Sweep {
        addr: String,
        client: String,
        template: PathBuf,
    },
    Poll {
        addr: String,
        job: u64,
    },
    Stats {
        addr: String,
    },
    Metrics {
        addr: String,
    },
    TraceQuery {
        addr: String,
        fingerprint: String,
        top: usize,
    },
    Drain {
        addr: String,
    },
    Bench {
        out: PathBuf,
    },
}

enum Parsed {
    Run(RunArgs),
    SpecRun { path: PathBuf, out_json: bool },
    Serve(ServeCmd),
    Bench { out: PathBuf, jobs: usize },
    Profile(ProfileArgs),
    TraceRun(TraceRunArgs),
    TraceQuery(TraceQueryArgs),
    TraceBench { out: PathBuf, ring: usize },
    BaselineWrite(BaselineArgs),
    Check(BaselineArgs),
    ListScenarios,
    Help,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_jobs(it: &mut impl Iterator<Item = String>) -> Result<usize, String> {
    let n = it.next().ok_or("--jobs requires a count")?;
    n.parse::<usize>()
        .ok()
        .filter(|n| *n >= 1)
        .ok_or_else(|| format!("--jobs needs a positive integer, got '{n}'"))
}

fn parse_u64(flag: &str, it: &mut impl Iterator<Item = String>) -> Result<u64, String> {
    let n = it
        .next()
        .ok_or_else(|| format!("{flag} requires a count"))?;
    n.parse::<u64>()
        .map_err(|_| format!("{flag} needs a non-negative integer, got '{n}'"))
}

fn build_fault_plan(spec: Option<&str>, seed: u64) -> Result<Option<FaultPlan>, String> {
    spec.map(|s| FaultPlan::parse(s, seed).map_err(|e| format!("--fault-plan: {e}")))
        .transpose()
}

/// Parses the `run` subcommand's flags (also what a bare `hvx-repro`
/// invocation gets: run everything with the defaults).
fn parse_run(it: &mut impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut json_dir = None;
    let mut spec = None;
    let mut jobs = default_jobs();
    let mut timing = false;
    let mut bench = None;
    let mut requested = Vec::new();
    let mut fault_spec: Option<String> = None;
    let mut fault_seed = 42u64;
    let mut keep_going = false;
    let mut cycle_budget = None;
    let mut livelock_limit = None;
    let mut wall_timeout = None;
    let mut chaos = Vec::new();
    let mut cache_dir = None;
    let mut out_json = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let mode = it.next().ok_or("--out requires 'json' or 'text'")?;
                out_json = match mode.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("--out needs 'json' or 'text', got '{other}'")),
                };
            }
            "--json" => {
                let dir = it.next().ok_or("--json requires a directory")?;
                json_dir = Some(PathBuf::from(dir));
            }
            "--cache" => {
                let dir = it.next().ok_or("--cache requires a directory")?;
                cache_dir = Some(PathBuf::from(dir));
            }
            "--spec" => {
                let file = it.next().ok_or("--spec requires a spec file")?;
                spec = Some(PathBuf::from(file));
            }
            "--jobs" => jobs = parse_jobs(it)?,
            "--timing" => timing = true,
            "--bench" => {
                let file = it.next().ok_or("--bench requires an output file")?;
                bench = Some(PathBuf::from(file));
            }
            "--fault-plan" => {
                let spec = it.next().ok_or("--fault-plan requires a spec")?;
                fault_spec = Some(spec);
            }
            "--fault-seed" => fault_seed = parse_u64("--fault-seed", it)?,
            "--keep-going" => keep_going = true,
            "--cycle-budget" => cycle_budget = Some(parse_u64("--cycle-budget", it)?),
            "--livelock-limit" => livelock_limit = Some(parse_u64("--livelock-limit", it)?),
            "--wall-timeout" => {
                let secs = it.next().ok_or("--wall-timeout requires seconds")?;
                let secs = secs
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .ok_or_else(|| {
                        format!("--wall-timeout needs non-negative seconds, got '{secs}'")
                    })?;
                wall_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--chaos" => {
                let kind = it.next().ok_or("--chaos requires a kind")?;
                chaos.push(ChaosKind::parse(&kind).ok_or_else(|| {
                    format!("--chaos needs panic, spin, or livelock, got '{kind}'")
                })?);
            }
            "--help" | "-h" => return Ok(Parsed::Help),
            "all" => requested.extend(ArtifactId::ALL),
            other => match ArtifactId::parse(other) {
                Some(a) => requested.push(a),
                None => return Err(format!("unknown artifact '{other}'; try --help")),
            },
        }
    }
    if let Some(path) = spec {
        // A spec file is the single source of truth for its scenario;
        // conflicting knobs are rejected, never silently dropped.
        let mut extra = Vec::new();
        if json_dir.is_some() {
            extra.push("--json");
        }
        if timing {
            extra.push("--timing");
        }
        if bench.is_some() {
            extra.push("--bench");
        }
        if fault_spec.is_some() {
            extra.push("--fault-plan");
        }
        if keep_going {
            extra.push("--keep-going");
        }
        if cycle_budget.is_some() {
            extra.push("--cycle-budget");
        }
        if livelock_limit.is_some() {
            extra.push("--livelock-limit");
        }
        if wall_timeout.is_some() {
            extra.push("--wall-timeout");
        }
        if !chaos.is_empty() {
            extra.push("--chaos");
        }
        if cache_dir.is_some() {
            extra.push("--cache");
        }
        if !requested.is_empty() {
            extra.push("artifact names");
        }
        if !extra.is_empty() {
            return Err(format!(
                "--spec runs exactly the scenario the file describes; drop {}",
                extra.join(", ")
            ));
        }
        return Ok(Parsed::SpecRun { path, out_json });
    }
    if requested.is_empty() {
        requested.extend(ArtifactId::ALL);
    }
    // Print order is fixed (the ALL order); requests only select.
    let artifacts: Vec<ArtifactId> = ArtifactId::ALL
        .into_iter()
        .filter(|a| requested.contains(a))
        .collect();
    let cfg = RunnerConfig {
        fault_plan: build_fault_plan(fault_spec.as_deref(), fault_seed)?,
        watchdog: Watchdog {
            cycle_budget,
            livelock_threshold: livelock_limit,
        },
        wall_timeout,
        chaos,
        cache: None,
        retry: runner::RetryPolicy::default(),
    };
    Ok(Parsed::Run(RunArgs {
        json_dir,
        jobs,
        timing,
        bench,
        artifacts,
        cfg,
        keep_going,
        cache_dir,
        out_json,
    }))
}

/// Parses the `serve` subcommand family: bare `serve` starts the
/// server; `serve submit|sweep|poll|stats|drain|bench` are clients.
fn parse_serve(it: &mut impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut it = it.peekable();
    match it.peek().map(String::as_str) {
        Some("submit") => {
            it.next();
            parse_serve_submit(&mut it)
        }
        Some("sweep") => {
            it.next();
            parse_serve_sweep(&mut it)
        }
        Some("poll") => {
            it.next();
            parse_serve_poll(&mut it)
        }
        Some("stats") => {
            it.next();
            Ok(Parsed::Serve(ServeCmd::Stats {
                addr: parse_addr_only(&mut it, "serve stats")?,
            }))
        }
        Some("metrics") => {
            it.next();
            Ok(Parsed::Serve(ServeCmd::Metrics {
                addr: parse_addr_only(&mut it, "serve metrics")?,
            }))
        }
        Some("trace") => {
            it.next();
            parse_serve_trace(&mut it)
        }
        Some("drain") => {
            it.next();
            Ok(Parsed::Serve(ServeCmd::Drain {
                addr: parse_addr_only(&mut it, "serve drain")?,
            }))
        }
        Some("bench") => {
            it.next();
            let mut out = PathBuf::from("BENCH_serve.json");
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--out" => {
                        let file = it.next().ok_or("--out requires an output file")?;
                        out = PathBuf::from(file);
                    }
                    "--help" | "-h" => return Ok(Parsed::Help),
                    other => {
                        return Err(format!(
                            "serve bench: unexpected argument '{other}'; try --help"
                        ))
                    }
                }
            }
            Ok(Parsed::Serve(ServeCmd::Bench { out }))
        }
        _ => parse_serve_run(&mut it),
    }
}

fn parse_serve_run(it: &mut impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut args = ServeArgs {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_dir: None,
        journal: Some(PathBuf::from("hvx-serve.journal.jsonl")),
        max_queue_weight: 120,
        client_cap: 8,
        max_results: 256,
        retries: 2,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = it.next().ok_or("--addr requires HOST:PORT")?,
            "--workers" => args.workers = parse_jobs(it)?,
            "--cache" => {
                let dir = it.next().ok_or("--cache requires a directory")?;
                args.cache_dir = Some(PathBuf::from(dir));
            }
            "--journal" => {
                let file = it.next().ok_or("--journal requires a file")?;
                args.journal = Some(PathBuf::from(file));
            }
            "--no-journal" => args.journal = None,
            "--max-queue-weight" => {
                args.max_queue_weight = parse_u64("--max-queue-weight", it)?;
            }
            "--client-cap" => {
                args.client_cap = usize::try_from(parse_u64("--client-cap", it)?)
                    .map_err(|_| "--client-cap out of range".to_string())?;
            }
            "--max-results" => {
                args.max_results = usize::try_from(parse_u64("--max-results", it)?)
                    .map_err(|_| "--max-results out of range".to_string())?;
            }
            "--retries" => {
                args.retries = u32::try_from(parse_u64("--retries", it)?)
                    .map_err(|_| "--retries out of range".to_string())?;
            }
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("serve: unexpected argument '{other}'; try --help")),
        }
    }
    Ok(Parsed::Serve(ServeCmd::Run(args)))
}

fn parse_addr_only(it: &mut impl Iterator<Item = String>, what: &str) -> Result<String, String> {
    let mut addr = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().ok_or("--addr requires HOST:PORT")?),
            other => return Err(format!("{what}: unexpected argument '{other}'; try --help")),
        }
    }
    addr.ok_or_else(|| format!("{what} requires --addr HOST:PORT"))
}

fn parse_serve_submit(it: &mut impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut addr = None;
    let mut client = "cli".to_string();
    let mut source = None;
    let mut wait_secs = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().ok_or("--addr requires HOST:PORT")?),
            "--client" => client = it.next().ok_or("--client requires a name")?,
            "--spec" => {
                let file = it.next().ok_or("--spec requires a spec file")?;
                source = Some(SubmitSource::Spec(PathBuf::from(file)));
            }
            "--chaos" => {
                let kind = it.next().ok_or("--chaos requires a kind")?;
                source = Some(SubmitSource::Chaos(kind));
            }
            "--wait" => {
                let secs = it.next().ok_or("--wait requires seconds")?;
                wait_secs = Some(
                    secs.parse::<f64>()
                        .ok()
                        .filter(|s| *s > 0.0)
                        .ok_or_else(|| format!("--wait needs positive seconds, got '{secs}'"))?,
                );
            }
            "--help" | "-h" => return Ok(Parsed::Help),
            other => {
                return Err(format!(
                    "serve submit: unexpected argument '{other}'; try --help"
                ))
            }
        }
    }
    Ok(Parsed::Serve(ServeCmd::Submit {
        addr: addr.ok_or("serve submit requires --addr HOST:PORT")?,
        client,
        source: source.ok_or("serve submit requires --spec FILE or --chaos KIND")?,
        wait_secs,
    }))
}

fn parse_serve_sweep(it: &mut impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut addr = None;
    let mut client = "cli".to_string();
    let mut template = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().ok_or("--addr requires HOST:PORT")?),
            "--client" => client = it.next().ok_or("--client requires a name")?,
            "--template" => {
                let file = it.next().ok_or("--template requires a file")?;
                template = Some(PathBuf::from(file));
            }
            "--help" | "-h" => return Ok(Parsed::Help),
            other => {
                return Err(format!(
                    "serve sweep: unexpected argument '{other}'; try --help"
                ))
            }
        }
    }
    Ok(Parsed::Serve(ServeCmd::Sweep {
        addr: addr.ok_or("serve sweep requires --addr HOST:PORT")?,
        client,
        template: template.ok_or("serve sweep requires --template FILE")?,
    }))
}

fn parse_serve_poll(it: &mut impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut addr = None;
    let mut job = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().ok_or("--addr requires HOST:PORT")?),
            "--help" | "-h" => return Ok(Parsed::Help),
            other => match other.parse::<u64>() {
                Ok(id) => job = Some(id),
                Err(_) => {
                    return Err(format!(
                        "serve poll: expected a job id, got '{other}'; try --help"
                    ))
                }
            },
        }
    }
    Ok(Parsed::Serve(ServeCmd::Poll {
        addr: addr.ok_or("serve poll requires --addr HOST:PORT")?,
        job: job.ok_or("serve poll requires a job id")?,
    }))
}

fn parse_serve_trace(it: &mut impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut addr = None;
    let mut fingerprint = None;
    let mut top = 5usize;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().ok_or("--addr requires HOST:PORT")?),
            "--top" => {
                let n = it.next().ok_or("--top requires a count")?;
                top = n
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or(format!("--top expects a positive integer, got '{n}'"))?;
            }
            "--help" | "-h" => return Ok(Parsed::Help),
            other if !other.starts_with('-') && fingerprint.is_none() => {
                fingerprint = Some(other.to_string());
            }
            other => {
                return Err(format!(
                    "serve trace: unexpected argument '{other}'; try --help"
                ))
            }
        }
    }
    Ok(Parsed::Serve(ServeCmd::TraceQuery {
        addr: addr.ok_or("serve trace requires --addr HOST:PORT")?,
        fingerprint: fingerprint.ok_or("serve trace requires a scenario fingerprint")?,
        top,
    }))
}

/// Parses `baseline write` / `check` arguments. `dir_flag` is the flag
/// that names the baseline directory (`--dir` resp. `--baseline`).
fn parse_baseline(
    it: &mut impl Iterator<Item = String>,
    dir_flag: &str,
    wrap: fn(BaselineArgs) -> Parsed,
) -> Result<Parsed, String> {
    let mut dir = PathBuf::from(diff::DEFAULT_DIR);
    let mut jobs = default_jobs();
    let mut cache_dir = None;
    let mut requested = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            flag if flag == dir_flag => {
                let d = it
                    .next()
                    .ok_or_else(|| format!("{dir_flag} requires a directory"))?;
                dir = PathBuf::from(d);
            }
            "--jobs" => jobs = parse_jobs(it)?,
            "--cache" => {
                let d = it.next().ok_or("--cache requires a directory")?;
                cache_dir = Some(PathBuf::from(d));
            }
            "--help" | "-h" => return Ok(Parsed::Help),
            "all" => requested.extend(ArtifactId::ALL),
            other => match ArtifactId::parse(other) {
                Some(a) => requested.push(a),
                None => return Err(format!("unknown artifact '{other}'; try --help")),
            },
        }
    }
    let artifacts: Vec<ArtifactId> = ArtifactId::ALL
        .into_iter()
        .filter(|a| requested.contains(a))
        .collect();
    Ok(wrap(BaselineArgs {
        dir,
        artifacts,
        jobs,
        cache_dir,
    }))
}

fn parse_bench(it: &mut impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut out = None;
    let mut jobs = default_jobs();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let file = it.next().ok_or("--out requires an output file")?;
                out = Some(PathBuf::from(file));
            }
            "--jobs" => jobs = parse_jobs(it)?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("bench: unexpected argument '{other}'; try --help")),
        }
    }
    let out = out.ok_or("bench requires --out FILE")?;
    Ok(Parsed::Bench { out, jobs })
}

fn parse_profile(it: &mut impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut scenarios = Vec::new();
    let mut jobs = default_jobs();
    let mut json_dir = None;
    let mut fault_spec: Option<String> = None;
    let mut fault_seed = 42u64;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenario" => {
                let name = it.next().ok_or("--scenario requires a name")?;
                scenarios.push(ProfileScenario::parse(&name).map_err(|e| e.to_string())?);
            }
            "--jobs" => jobs = parse_jobs(it)?,
            "--json" => {
                let dir = it.next().ok_or("--json requires a directory")?;
                json_dir = Some(PathBuf::from(dir));
            }
            "--fault-plan" => {
                let spec = it.next().ok_or("--fault-plan requires a spec")?;
                fault_spec = Some(spec);
            }
            "--fault-seed" => fault_seed = parse_u64("--fault-seed", it)?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => {
                return Err(format!(
                    "profile: unexpected argument '{other}'; try --help"
                ))
            }
        }
    }
    if scenarios.is_empty() {
        scenarios = ProfileScenario::default_set();
    }
    Ok(Parsed::Profile(ProfileArgs {
        scenarios,
        jobs,
        json_dir,
        fault_plan: build_fault_plan(fault_spec.as_deref(), fault_seed)?,
    }))
}

/// Parses the `trace` subcommand family: `trace <scenario> ...`,
/// `trace query FILE ...`, `trace bench ...`.
fn parse_trace(it: &mut impl Iterator<Item = String>) -> Result<Parsed, String> {
    let Some(first) = it.next() else {
        return Ok(Parsed::Help);
    };
    match first.as_str() {
        "query" => parse_trace_query(it),
        "bench" => parse_trace_bench(it),
        "--help" | "-h" => Ok(Parsed::Help),
        _ => parse_trace_run(first, it),
    }
}

fn parse_ring(it: &mut impl Iterator<Item = String>) -> Result<usize, String> {
    let n = parse_u64("--ring", it)?;
    usize::try_from(n)
        .ok()
        .filter(|n| *n >= 1)
        .ok_or_else(|| format!("--ring needs a positive slot count, got '{n}'"))
}

fn parse_trace_run(
    scenario: String,
    it: &mut impl Iterator<Item = String>,
) -> Result<Parsed, String> {
    let mut hypervisor = None;
    let mut out = None;
    let mut ring = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--hypervisor" => {
                hypervisor = Some(it.next().ok_or("--hypervisor requires a name")?);
            }
            "--out" => {
                let file = it.next().ok_or("--out requires an output file")?;
                out = Some(PathBuf::from(file));
            }
            "--ring" => ring = Some(parse_ring(it)?),
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("trace: unexpected argument '{other}'; try --help")),
        }
    }
    let scenario = TraceScenario::resolve(&scenario, hypervisor.as_deref(), ring)
        .map_err(|e| format!("trace: {e}"))?;
    Ok(Parsed::TraceRun(TraceRunArgs { scenario, out }))
}

fn parse_trace_query(it: &mut impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut file = None;
    let mut query = trace::Query::default();
    let mut validate = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--transition" => {
                query.transition = Some(it.next().ok_or("--transition requires a name")?);
            }
            "--track" => query.track = Some(it.next().ok_or("--track requires a track name")?),
            "--from" => query.from = Some(parse_u64("--from", it)?),
            "--to" => query.to = Some(parse_u64("--to", it)?),
            "--top" => {
                let n = parse_u64("--top", it)?;
                query.top = usize::try_from(n)
                    .ok()
                    .filter(|n| *n >= 1)
                    .map(Some)
                    .ok_or_else(|| format!("--top needs a positive count, got '{n}'"))?;
            }
            "--validate" => validate = true,
            "--help" | "-h" => return Ok(Parsed::Help),
            other if file.is_none() && !other.starts_with('-') => {
                file = Some(PathBuf::from(other));
            }
            other => {
                return Err(format!(
                    "trace query: unexpected argument '{other}'; try --help"
                ))
            }
        }
    }
    let file = file.ok_or("trace query requires a trace file")?;
    Ok(Parsed::TraceQuery(TraceQueryArgs {
        file,
        query,
        validate,
    }))
}

fn parse_trace_bench(it: &mut impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut out = PathBuf::from("BENCH_trace.json");
    let mut ring = 4096usize;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let file = it.next().ok_or("--out requires an output file")?;
                out = PathBuf::from(file);
            }
            "--ring" => ring = parse_ring(it)?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => {
                return Err(format!(
                    "trace bench: unexpected argument '{other}'; try --help"
                ))
            }
        }
    }
    Ok(Parsed::TraceBench { out, ring })
}

fn parse_args() -> Result<Parsed, String> {
    // Structured logging is off unless HVX_LOG or --log-level turns it
    // on; either way the setting only ever writes to stderr, so
    // artifact stdout stays byte-identical.
    hvx_obs::log::init_from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    while let Some(pos) = args.iter().position(|a| a == "--log-level") {
        let Some(level) = args.get(pos + 1).cloned() else {
            return Err("--log-level requires a level (off, error, info, debug)".into());
        };
        let Some(lv) = hvx_obs::LogLevel::parse(&level) else {
            return Err(format!(
                "unknown log level '{level}' (off, error, info, debug)"
            ));
        };
        hvx_obs::log::set_level(lv);
        args.drain(pos..pos + 2);
    }
    let mut it = args.into_iter().peekable();
    match it.peek().map(String::as_str) {
        Some("run") => {
            it.next();
            parse_run(&mut it)
        }
        Some("bench") => {
            it.next();
            parse_bench(&mut it)
        }
        Some("profile") => {
            it.next();
            parse_profile(&mut it)
        }
        Some("trace") => {
            it.next();
            parse_trace(&mut it)
        }
        Some("serve") => {
            it.next();
            parse_serve(&mut it)
        }
        Some("baseline") => {
            it.next();
            match it.next().as_deref() {
                Some("write") => parse_baseline(&mut it, "--dir", Parsed::BaselineWrite),
                Some("--help" | "-h") | None => Ok(Parsed::Help),
                Some(other) => Err(format!(
                    "baseline: unknown subcommand '{other}' (expected 'write'); try --help"
                )),
            }
        }
        Some("check") => {
            it.next();
            parse_baseline(&mut it, "--baseline", Parsed::Check)
        }
        Some("list-scenarios") => {
            it.next();
            match it.next() {
                None => Ok(Parsed::ListScenarios),
                Some(other) => Err(format!(
                    "list-scenarios: unexpected argument '{other}'; try --help"
                )),
            }
        }
        Some("--help" | "-h") => Ok(Parsed::Help),
        // Bare `hvx-repro` still reproduces everything; the historical
        // pre-subcommand spelling (artifact names or flags as the first
        // token) is retired and points at the `run` equivalent.
        None => parse_run(&mut it),
        Some(other) => Err(format!(
            "the no-subcommand interface has been retired; \
             use 'hvx-repro run {other} ...' instead (try --help)"
        )),
    }
}

#[derive(Serialize)]
struct BenchArtifact {
    name: &'static str,
    serial_seconds: f64,
    parallel_seconds: f64,
    transitions: u64,
}

#[derive(Serialize)]
struct BenchReport {
    /// `--jobs` as requested (or the host's reported parallelism).
    requested_jobs: usize,
    /// Workers the parallel pass can actually use: the requested count
    /// clamped to hardware parallelism. On a 1-core box this is 1 no
    /// matter what was requested, and `speedup` is then omitted —
    /// serial-vs-serial noise must not pollute the perf trajectory.
    jobs: usize,
    serial_seconds: f64,
    parallel_seconds: f64,
    /// `serial_seconds / parallel_seconds`; `null` when `jobs == 1`.
    speedup: Option<f64>,
    transitions: u64,
    transitions_per_sec: f64,
    /// Parallel-pass worker utilization: busy worker-seconds over
    /// available worker-seconds, percent — the number `--timing`
    /// prints, recorded so the perf trajectory keeps it.
    worker_utilization_pct: f64,
    /// Cacheable scenarios that ran live during a cold pass over a
    /// fresh result cache.
    cache_cold_misses: u64,
    /// Lookups served from disk when the same suite immediately
    /// re-ran warm.
    cache_warm_hits: u64,
    artifacts: Vec<BenchArtifact>,
    grid: bench_grid::GridReport,
}

/// Runs the full suite serial then parallel, asserts the outputs are
/// byte-identical, runs the iteration-scaled benchmark grid, and
/// writes the wall-clock comparison to `path`.
fn bench(path: &PathBuf, jobs: usize) -> Result<(), Error> {
    let artifacts = ArtifactId::ALL;
    // What the parallel pass can actually use. `jobs` defaults to
    // `default_jobs()`, but recording that verbatim makes a 1-core box
    // write `"jobs": 4` next to a meaningless speedup.
    let effective_jobs = jobs
        .min(std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1);
    // The whole paper suite takes single-digit milliseconds, so one
    // sample is mostly allocator/scheduler noise; best-of-3 is the
    // usual cure and keeps the speedup field meaningful.
    let best_of_3 = |jobs: usize| -> Result<(Vec<runner::ArtifactReport>, f64), Error> {
        let mut best: Option<(Vec<runner::ArtifactReport>, f64)> = None;
        for _ in 0..3 {
            let t = Instant::now();
            let reports = runner::run_artifacts(&artifacts, jobs)?;
            let secs = t.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(_, b)| secs < *b) {
                best = Some((reports, secs));
            }
        }
        Ok(best.expect("three runs happened"))
    };
    eprintln!("bench: running full suite with --jobs 1 ...");
    let (serial, serial_seconds) = best_of_3(1)?;
    eprintln!("bench: running full suite with --jobs {effective_jobs} ...");
    let (parallel, parallel_seconds) = best_of_3(effective_jobs)?;
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.text, p.text, "{} text diverged", s.id.cli_name());
        assert_eq!(s.json, p.json, "{} JSON diverged", s.id.cli_name());
    }
    // Cold/warm cache passes over a fresh temp cache: the same
    // hit/miss telemetry `--timing` prints, made part of the recorded
    // perf trajectory.
    eprintln!("bench: cold + warm cached pass ...");
    let cache_dir = std::env::temp_dir().join(format!("hvx-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let bench_cache = Arc::new(ResultCache::open(&cache_dir)?);
    let cached_cfg = RunnerConfig {
        cache: Some(Arc::clone(&bench_cache)),
        ..RunnerConfig::default()
    };
    runner::run_artifacts_with(&artifacts, effective_jobs, &cached_cfg)?;
    let cold = bench_cache.stats();
    runner::run_artifacts_with(&artifacts, effective_jobs, &cached_cfg)?;
    let total_stats = bench_cache.stats();
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache_cold_misses = cold.misses;
    let cache_warm_hits = total_stats.hits - cold.hits;

    eprintln!(
        "bench: running the scale-{} grid with --jobs {jobs} ...",
        bench_grid::DEFAULT_SCALE
    );
    let grid = bench_grid::run(jobs, bench_grid::DEFAULT_SCALE);
    eprint!("{}", bench_grid::render(&grid));
    let transitions: u64 = serial.iter().map(|r| r.transitions).sum();
    let parallel_busy: f64 = parallel.iter().map(|r| r.wall.as_secs_f64()).sum();
    let worker_utilization_pct =
        100.0 * parallel_busy / (effective_jobs as f64 * parallel_seconds.max(1e-9));
    let report = BenchReport {
        requested_jobs: jobs,
        jobs: effective_jobs,
        serial_seconds,
        parallel_seconds,
        speedup: (effective_jobs > 1).then(|| serial_seconds / parallel_seconds),
        transitions,
        transitions_per_sec: transitions as f64 / serial_seconds.max(1e-9),
        worker_utilization_pct,
        cache_cold_misses,
        cache_warm_hits,
        artifacts: serial
            .iter()
            .zip(&parallel)
            .map(|(s, p)| BenchArtifact {
                name: s.id.cli_name(),
                serial_seconds: s.wall.as_secs_f64(),
                parallel_seconds: p.wall.as_secs_f64(),
                transitions: s.transitions,
            })
            .collect(),
        grid,
    };
    let data = serde_json::to_string_pretty(&report).map_err(|e| Error::Serialize {
        what: "bench report",
        detail: e.to_string(),
    })?;
    std::fs::write(path, data)?;
    let speedup = match report.speedup {
        Some(s) => format!("{s:.2}x, outputs byte-identical"),
        None => "1 effective worker, speedup omitted".to_string(),
    };
    eprintln!(
        "bench: serial {serial_seconds:.3}s, parallel {parallel_seconds:.3}s \
         ({speedup}), wrote {}",
        path.display()
    );
    eprintln!(
        "bench: worker utilization {worker_utilization_pct:.1}%, cache cold \
         {cache_cold_misses} misses / warm {cache_warm_hits} hits"
    );
    Ok(())
}

/// Opens the result cache named by `--cache`, or bypasses it (with a
/// warning) when `HVX_COST_PERTURB` is set: perturbed charging costs
/// are deliberately *not* part of the fingerprint — that is the drift
/// drill — so serving cached unperturbed results would mask exactly
/// the divergence the perturbation exists to demonstrate.
fn open_cache(dir: Option<&PathBuf>) -> Result<Option<Arc<ResultCache>>, Error> {
    let Some(dir) = dir else { return Ok(None) };
    if std::env::var("HVX_COST_PERTURB").is_ok_and(|s| !s.trim().is_empty()) {
        eprintln!(
            "hvx-repro: warning: HVX_COST_PERTURB is set; bypassing the result cache \
             so perturbed runs are never served from (or stored into) it"
        );
        return Ok(None);
    }
    Ok(Some(Arc::new(ResultCache::open(dir)?)))
}

fn report_cache_stats(cache: &Option<Arc<ResultCache>>) {
    if let Some(cache) = cache {
        eprintln!("hvx-repro: {}", cache.stats());
    }
}

fn baseline_write(args: &BaselineArgs) -> Result<(), Error> {
    let artifacts: Vec<ArtifactId> = if args.artifacts.is_empty() {
        ArtifactId::ALL.to_vec()
    } else {
        args.artifacts.clone()
    };
    let cache = open_cache(args.cache_dir.as_ref())?;
    let report = diff::write_baseline(&args.dir, &artifacts, args.jobs, cache.clone())?;
    report_cache_stats(&cache);
    println!(
        "baseline: wrote {} artifact(s) and {} span profile(s) to {}",
        report.artifacts.len(),
        report.span_profiles,
        report.dir.display()
    );
    Ok(())
}

fn check(args: &BaselineArgs) -> Result<(), Error> {
    let cache = open_cache(args.cache_dir.as_ref())?;
    let report = diff::check_baseline(&args.dir, &args.artifacts, args.jobs, cache.clone())?;
    report_cache_stats(&cache);
    print!("{}", report.rendered);
    let report = report.into_result()?;
    println!(
        "check: {} artifact(s) {}",
        report.verdicts.len(),
        if report.schema_bump {
            "checked; divergences are an expected schema bump"
        } else {
            "byte-identical to the baseline"
        }
    );
    Ok(())
}

fn run(args: &RunArgs) -> Result<(), Error> {
    if let Some(path) = &args.bench {
        return bench(path, args.jobs);
    }

    if !args.out_json {
        println!("hvx — reproducing \"ARM Virtualization: Performance and Architectural");
        println!("Implications\" (ISCA 2016) on the simulator. Paper values in parentheses.\n");
    }

    let cache = open_cache(args.cache_dir.as_ref())?;
    let cfg = RunnerConfig {
        cache: cache.clone(),
        ..args.cfg.clone()
    };
    let started = Instant::now();
    let outcome = runner::run_artifacts_with(&args.artifacts, args.jobs, &cfg)?;
    let elapsed = started.elapsed().as_secs_f64();
    let reports = &outcome.reports;
    for r in reports {
        if !args.out_json {
            print!("{}", r.text);
        }
        if let Some(dir) = &args.json_dir {
            std::fs::create_dir_all(dir)?;
            let path = dir.join(format!("{}.json", r.id.json_name()));
            std::fs::write(&path, &r.json)?;
            eprintln!("wrote {}", path.display());
        }
        if args.timing {
            eprintln!(
                "[timing] {:<10} {:>9.3}s",
                r.id.cli_name(),
                r.wall.as_secs_f64()
            );
        }
    }
    if args.timing {
        let total: f64 = reports.iter().map(|r| r.wall.as_secs_f64()).sum();
        eprintln!(
            "[timing] {:<10} {total:>9.3}s (sum over scenarios, --jobs {})",
            "total", args.jobs
        );
        // Self-telemetry: worker utilization distinguishes a warm run
        // (cache hits, workers mostly idle) from a cold one. stderr
        // only — artifact stdout/JSON must stay byte-identical.
        let capacity = args.jobs as f64 * elapsed;
        let utilization = if capacity > 0.0 {
            100.0 * total / capacity
        } else {
            0.0
        };
        eprintln!(
            "[timing] {:<10} {elapsed:>9.3}s wall, worker utilization {utilization:.1}%",
            "run"
        );
        if let Some(cache) = &cache {
            let s = cache.stats();
            let temperature = match (s.hits, s.misses) {
                (0, _) => "cold",
                (_, 0) => "warm",
                _ => "mixed",
            };
            eprintln!(
                "[timing] {:<10} {} hits, {} misses ({temperature})",
                "cache", s.hits, s.misses
            );
        }
    }

    if args.out_json {
        // The structured report replaces the rendered artifact text on
        // stdout: one record per scenario (chaos last), carrying the
        // typed failure kind, retry count, and content fingerprint.
        let report = hvx_core::report::RunReport {
            cells: outcome.cells.clone(),
        };
        println!("{}", pretty(&Serialize::serialize(&report))?);
    }

    report_cache_stats(&cache);
    let failures = outcome.failures();
    for (label, f) in &failures {
        eprintln!("hvx-repro: warning: scenario '{label}' {f}");
    }
    match failures.into_iter().next() {
        None => Ok(()),
        Some((scenario, f)) if args.keep_going => {
            eprintln!(
                "hvx-repro: warning: continuing despite failures \
                 (--keep-going); first was '{scenario}' ({})",
                f.kind
            );
            Ok(())
        }
        Some((scenario, f)) => Err(Error::Scenario {
            scenario,
            kind: f.kind,
            detail: f.detail,
        }),
    }
}

/// `run --spec FILE`: load the scenario spec, run the one scenario it
/// describes, print its report — as text, or (`--out json`) as the
/// structured `{report, cell}` record.
fn run_spec_file(path: &Path, out_json: bool) -> Result<(), Error> {
    let spec = spec_run::load(path)?;
    if out_json {
        let run = spec_run::run_spec_report(&spec)?;
        let v = Value::Object(vec![
            ("report".into(), Value::Str(run.report)),
            ("cell".into(), Serialize::serialize(&run.cell)),
        ]);
        println!("{}", pretty(&v)?);
    } else {
        print!("{}", spec_run::run_spec(&spec)?);
    }
    Ok(())
}

fn pretty(v: &Value) -> Result<String, Error> {
    serde_json::to_string_pretty(v).map_err(|e| Error::Serialize {
        what: "JSON output",
        detail: e.to_string(),
    })
}

/// Prints an HTTP client response as a JSON envelope: the response
/// body's fields with a `status` field prepended. The process exits 0
/// whenever the round trip succeeded — error *statuses* (shed,
/// quarantined, draining) are data for the caller to inspect, exactly
/// like `curl`.
fn print_envelope(status: u16, body: Value) -> Result<(), Error> {
    let mut pairs = vec![("status".to_string(), Value::U64(u64::from(status)))];
    match body {
        Value::Object(fields) => pairs.extend(fields),
        other => pairs.push(("body".to_string(), other)),
    }
    println!("{}", pretty(&Value::Object(pairs))?);
    Ok(())
}

fn serve_err(detail: String) -> Error {
    Error::Serve { detail }
}

/// `serve` with no client subcommand: bind, announce, serve until a
/// drain completes.
fn serve_run(args: &ServeArgs) -> Result<(), Error> {
    let cache = open_cache(args.cache_dir.as_ref())?;
    let cfg = ServerConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        max_queue_weight: args.max_queue_weight,
        client_inflight_cap: args.client_cap,
        max_results: args.max_results,
        max_retries: args.retries,
        journal: args.journal.clone(),
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg, Arc::new(SuiteExecutor::new(cache)))?;
    // The resolved address goes to stdout (scripts capture it to learn
    // an ephemeral port); progress chatter stays on stderr.
    println!("hvx-serve: listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!(
        "hvx-serve: journal {}, cache {}",
        args.journal
            .as_ref()
            .map_or("disabled".to_string(), |p| p.display().to_string()),
        args.cache_dir
            .as_ref()
            .map_or("disabled".to_string(), |p| p.display().to_string()),
    );
    server.run()
}

fn serve_cmd(cmd: &ServeCmd) -> Result<(), Error> {
    match cmd {
        ServeCmd::Run(args) => serve_run(args),
        ServeCmd::Submit {
            addr,
            client,
            source,
            wait_secs,
        } => {
            let body = match source {
                SubmitSource::Spec(path) => std::fs::read_to_string(path)?,
                SubmitSource::Chaos(kind) => format!("{{\"chaos\": \"{kind}\"}}"),
            };
            let (status, v) = serve_client::submit(addr, client, &body).map_err(serve_err)?;
            if let (Some(secs), Some(id)) = (wait_secs, v.get("job").and_then(Value::as_u64)) {
                if status == 200 || status == 202 {
                    let v = serve_client::wait(addr, id, Duration::from_secs_f64(*secs))
                        .map_err(serve_err)?;
                    return print_envelope(200, v);
                }
            }
            print_envelope(status, v)
        }
        ServeCmd::Sweep {
            addr,
            client,
            template,
        } => {
            let body = std::fs::read_to_string(template)?;
            let (status, v) = serve_client::sweep(addr, client, &body).map_err(serve_err)?;
            print_envelope(status, v)
        }
        ServeCmd::Poll { addr, job } => {
            let (status, v) = serve_client::poll(addr, *job).map_err(serve_err)?;
            print_envelope(status, v)
        }
        ServeCmd::Stats { addr } => {
            let v = serve_client::stats(addr).map_err(serve_err)?;
            print_envelope(200, v)
        }
        ServeCmd::Metrics { addr } => {
            let text = serve_client::metrics(addr).map_err(serve_err)?;
            print!("{text}");
            Ok(())
        }
        ServeCmd::TraceQuery {
            addr,
            fingerprint,
            top,
        } => {
            let (status, v) = serve_client::trace(addr, fingerprint, *top).map_err(serve_err)?;
            print_envelope(status, v)
        }
        ServeCmd::Drain { addr } => {
            serve_client::drain(addr).map_err(serve_err)?;
            print_envelope(
                200,
                Value::Object(vec![("draining".into(), Value::Bool(true))]),
            )
        }
        ServeCmd::Bench { out } => {
            eprintln!("serve bench: in-process server, cold + warm round trip, shed burst ...");
            let report = service::bench()?;
            let data = serde_json::to_string_pretty(&report).map_err(|e| Error::Serialize {
                what: "serve bench report",
                detail: e.to_string(),
            })?;
            std::fs::write(out, data)?;
            eprintln!(
                "serve bench: cold {}us, warm {}us ({:.1}x), shed after {} of weight bound {}, \
                 wrote {}",
                report.cold_us,
                report.warm_us,
                report.warm_speedup,
                report.accepted_before_shed,
                report.max_queue_weight,
                out.display()
            );
            eprintln!(
                "serve bench: scrape {}us, warm submit {}us plain vs {}us scraped \
                 ({:.1}% overhead)",
                report.scrape_us,
                report.warm_plain_us,
                report.warm_scraped_us,
                report.scrape_overhead_pct
            );
            Ok(())
        }
    }
}

fn run_profile(args: &ProfileArgs) -> Result<(), Error> {
    let reports = profile::run_profiles_with(&args.scenarios, args.jobs, args.fault_plan.as_ref())?;
    print!("{}", profile::render_profiles(&reports));
    if let Some(dir) = &args.json_dir {
        std::fs::create_dir_all(dir)?;
        for r in &reports {
            let data = serde_json::to_string_pretty(r).map_err(|e| Error::Serialize {
                what: "profile report",
                detail: e.to_string(),
            })?;
            let path = dir.join(format!("profile-{}.json", r.scenario));
            std::fs::write(&path, data)?;
            eprintln!("wrote {}", path.display());
        }
    }
    Ok(())
}

fn trace_run(args: &TraceRunArgs) -> Result<(), Error> {
    let report = trace::run_trace(args.scenario)?;
    print!("{}", report.render());
    let path = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("trace-{}.json", report.scenario)));
    std::fs::write(&path, &report.json)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

fn trace_query(args: &TraceQueryArgs) -> Result<(), Error> {
    let text = std::fs::read_to_string(&args.file)?;
    let parsed = trace::ParsedTrace::parse(&text)?;
    if args.validate {
        print!("{}", trace::validate(&parsed)?);
        return Ok(());
    }
    print!(
        "{}",
        trace::render_query(&parsed, &args.query, &args.file.display().to_string())
    );
    Ok(())
}

fn trace_bench(out: &PathBuf, ring: usize) -> Result<(), Error> {
    eprintln!("trace bench: running the Fig. 4 sweep tracing-off, tracing-on, ring({ring}) ...");
    let report = trace::run_trace_bench(ring)?;
    let data = serde_json::to_string_pretty(&report).map_err(|e| Error::Serialize {
        what: "trace bench report",
        detail: e.to_string(),
    })?;
    std::fs::write(out, data)?;
    eprintln!(
        "trace bench: off {:.3}s, on {:.3}s ({:.2}x), ring {:.3}s ({:.2}x), wrote {}",
        report.off_seconds,
        report.on_seconds,
        report.on_overhead,
        report.ring_seconds,
        report.ring_overhead,
        out.display()
    );
    Ok(())
}

fn list_scenarios() {
    println!("artifacts (run):");
    for a in ArtifactId::ALL {
        println!("  {}", a.cli_name());
    }
    println!("\nprofile scenarios (profile --scenario NAME):");
    println!("  default set:");
    for s in ProfileScenario::default_set() {
        println!("    {}", s.name());
    }
    println!("  (trace SCENARIO accepts the same names, or <workload> --hypervisor <hv>)");
    println!("  any <workload>-<hypervisor> combination, e.g. mysql-xen-arm;");
    println!("  workloads: kernbench hackbench specjvm2008 netperf tcp_rr");
    println!("             tcp_stream tcp_maerts apache memcached mysql");
    println!("  hypervisors: kvm-arm xen-arm kvm-x86 xen-x86 kvm-arm-vhe native");
}

fn main() {
    let parsed = match parse_args() {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let result = match &parsed {
        Parsed::Help => {
            println!("{}", usage());
            return;
        }
        Parsed::ListScenarios => {
            list_scenarios();
            return;
        }
        Parsed::Run(args) => run(args),
        Parsed::SpecRun { path, out_json } => run_spec_file(path, *out_json),
        Parsed::Serve(cmd) => serve_cmd(cmd),
        Parsed::Bench { out, jobs } => bench(out, *jobs),
        Parsed::Profile(args) => run_profile(args),
        Parsed::TraceRun(args) => trace_run(args),
        Parsed::TraceQuery(args) => trace_query(args),
        Parsed::TraceBench { out, ring } => trace_bench(out, *ring),
        Parsed::BaselineWrite(args) => baseline_write(args),
        Parsed::Check(args) => check(args),
    };
    if let Err(e) = result {
        eprintln!("hvx-repro: {e}");
        let code = match e {
            Error::Scenario { .. } => 3,
            Error::BaselineDrift { .. } => 4,
            _ => 1,
        };
        std::process::exit(code);
    }
}
