//! Scenario profiling: Table-3-style cycle attribution from live
//! instrumentation.
//!
//! Where [`crate::table3`] regenerates the paper's hypercall breakdown
//! from the step trace of a single microbenchmark, this module profiles
//! whole *workload runs*: it builds the configuration with
//! [`SimBuilder::profiling`] enabled, runs the workload's operation mix,
//! and reads the span tracer back — so the breakdown is produced by the
//! observability layer itself, not by summing cost constants. Every
//! report is conservation-checked: the per-transition exclusive cycles
//! plus the unattributed remainder must equal the machine's total busy
//! cycles, or [`Error::Conservation`] is returned.
//!
//! ```
//! use hvx_suite::profile::ProfileScenario;
//!
//! let sc = ProfileScenario::parse("netperf-kvm-arm").unwrap();
//! let report = hvx_suite::profile::run_profile(sc).unwrap();
//! assert_eq!(report.snapshot.accounted_cycles(), report.snapshot.total_cycles);
//! ```

use crate::workloads::{self, Mix};
use hvx_core::{Error, HvKind, SimBuilder, VirqPolicy, Workload};
use hvx_engine::{fault, FaultPlan, ProfileSnapshot, TraceMode, TransitionId, Watchdog};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// One profiling scenario: a Figure 4 workload on one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ProfileScenario {
    /// The workload whose operation mix is run.
    pub workload: Workload,
    /// The configuration under profile.
    pub kind: HvKind,
}

pub(crate) fn kind_slug(kind: HvKind) -> &'static str {
    match kind {
        HvKind::KvmArm => "kvm-arm",
        HvKind::XenArm => "xen-arm",
        HvKind::KvmX86 => "kvm-x86",
        HvKind::XenX86 => "xen-x86",
        HvKind::KvmArmVhe => "kvm-arm-vhe",
        HvKind::Native => "native",
    }
}

fn workload_slug(w: Workload) -> &'static str {
    match w {
        Workload::Netperf => "netperf",
        Workload::Kernbench => "kernbench",
        Workload::Hackbench => "hackbench",
        Workload::SpecJvm2008 => "specjvm2008",
        Workload::TcpRr => "tcp_rr",
        Workload::TcpStream => "tcp_stream",
        Workload::TcpMaerts => "tcp_maerts",
        Workload::Apache => "apache",
        Workload::Memcached => "memcached",
        Workload::Mysql => "mysql",
    }
}

impl ProfileScenario {
    /// The scenario's CLI name, `<workload>-<kind>` (e.g.
    /// `netperf-kvm-arm`).
    pub fn name(&self) -> String {
        format!("{}-{}", workload_slug(self.workload), kind_slug(self.kind))
    }

    /// Parses a `<workload>-<kind>` scenario name.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownScenario`] when no known kind suffix matches;
    /// [`Error::UnknownWorkload`] when the workload prefix does not
    /// name a Figure 4 workload.
    pub fn parse(name: &str) -> Result<ProfileScenario, Error> {
        // Longest suffix first so `kvm-arm-vhe` is not read as `kvm-arm`.
        let kinds = [
            HvKind::KvmArmVhe,
            HvKind::KvmArm,
            HvKind::XenArm,
            HvKind::KvmX86,
            HvKind::XenX86,
            HvKind::Native,
        ];
        for kind in kinds {
            let suffix = format!("-{}", kind_slug(kind));
            if let Some(prefix) = name.strip_suffix(&suffix) {
                if prefix.is_empty() {
                    break;
                }
                return Ok(ProfileScenario {
                    workload: Workload::parse(prefix)?,
                    kind,
                });
            }
        }
        Err(Error::UnknownScenario { name: name.into() })
    }

    /// The default profile set: the paper's canonical netperf workload
    /// on all four measured configurations, in Table II column order.
    pub fn default_set() -> Vec<ProfileScenario> {
        HvKind::MEASURED
            .into_iter()
            .map(|kind| ProfileScenario {
                workload: Workload::Netperf,
                kind,
            })
            .collect()
    }
}

/// The profile of one scenario run: the conservation-checked span
/// breakdown plus sampled metrics, ready to render or serialize.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileReport {
    /// The scenario's CLI name.
    pub scenario: String,
    /// The configuration profiled.
    pub kind: HvKind,
    /// The workload run.
    pub workload: Workload,
    /// The run's makespan in cycles (wall time of the simulated run).
    pub makespan_cycles: u64,
    /// The exported breakdown; `snapshot.total_cycles` is the summed
    /// busy time of every core.
    pub snapshot: ProfileSnapshot,
    /// Folded-stack flamegraph text (`flamegraph.pl`-compatible).
    pub folded: String,
}

pub(crate) fn mix_for(workload: Workload) -> Result<Mix, Error> {
    workloads::catalog()
        .into_iter()
        .find(|w| w.name == workload.catalog_name())
        .map(|w| w.mix)
        .ok_or_else(|| Error::UnknownWorkload {
            name: workload.catalog_name().into(),
        })
}

/// Runs one scenario under profiling and returns its report.
///
/// # Errors
///
/// [`Error::InvalidCpus`]/[`Error::UnknownWorkload`] from building the
/// simulation; [`Error::Conservation`] if the span breakdown fails to
/// account for every busy cycle (an instrumentation bug, not a user
/// error — surfaced rather than silently mis-reported).
pub fn run_profile(scenario: ProfileScenario) -> Result<ProfileReport, Error> {
    let mix = mix_for(scenario.workload)?;
    let mut sim = SimBuilder::new(scenario.kind)
        .workload(scenario.workload)
        .tracing(TraceMode::Aggregate)
        .profiling(true)
        .build()?;
    let makespan = workloads::run(sim.as_dyn_mut(), mix, VirqPolicy::Vcpu0)?;
    sim.sample_metrics();

    let machine = sim.machine();
    let spans = machine
        .spans()
        .expect("profiling was enabled by the builder");
    let exclusive_sum: u64 = TransitionId::ALL
        .into_iter()
        .map(|id| spans.exclusive(id))
        .sum();
    let attributed = exclusive_sum + spans.unattributed();
    let total = machine.total_busy().as_u64();
    if attributed != spans.total() || spans.total() != total {
        return Err(Error::Conservation { attributed, total });
    }

    let metrics = machine
        .metrics()
        .expect("profiling was enabled by the builder");
    Ok(ProfileReport {
        scenario: scenario.name(),
        kind: scenario.kind,
        workload: scenario.workload,
        makespan_cycles: makespan.as_u64(),
        snapshot: ProfileSnapshot::capture(spans, metrics),
        folded: spans.folded(&scenario.name()),
    })
}

/// Runs every scenario on up to `jobs` OS threads, returning reports
/// **in scenario order**. Each scenario is independently deterministic
/// and lands in a slot indexed by its position, so the result — and any
/// rendering of it — is byte-identical regardless of `jobs`.
///
/// # Errors
///
/// [`Error::InvalidJobs`] for `jobs == 0`; otherwise the first scenario
/// error in scenario order, if any.
pub fn run_profiles(
    scenarios: &[ProfileScenario],
    jobs: usize,
) -> Result<Vec<ProfileReport>, Error> {
    run_profiles_with(scenarios, jobs, None)
}

/// [`run_profiles`] with a fault plan installed around every scenario,
/// so recovery cycles show up as attributed spans in the breakdowns
/// (and the conservation check still holds over them). `None` is
/// byte-identical to [`run_profiles`].
///
/// # Errors
///
/// As for [`run_profiles`].
pub fn run_profiles_with(
    scenarios: &[ProfileScenario],
    jobs: usize,
    plan: Option<&FaultPlan>,
) -> Result<Vec<ProfileReport>, Error> {
    if jobs == 0 {
        return Err(Error::InvalidJobs { jobs });
    }
    // The ambient plan is thread-local, so it must be (re)installed on
    // whichever thread builds the machine — inline or worker.
    let profile_one = |sc: ProfileScenario| -> Result<ProfileReport, Error> {
        let _ambient = plan.map(|p| fault::install_ambient(Some(p.clone()), Watchdog::UNLIMITED));
        run_profile(sc)
    };
    if jobs == 1 || scenarios.len() <= 1 {
        return scenarios.iter().map(|s| profile_one(*s)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<ProfileReport, Error>>>> =
        scenarios.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(scenarios.len()) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= scenarios.len() {
                    break;
                }
                *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(profile_one(scenarios[idx]));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every scheduled scenario ran")
        })
        .collect()
}

impl ProfileReport {
    /// Renders the Table-3-style breakdown: one row per transition that
    /// saw cycles, heaviest exclusive share first, with the
    /// conservation line at the bottom.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Profile: {} ({}, {}) ==\n\n",
            self.scenario, self.kind, self.workload
        ));
        out.push_str(&format!(
            "{:<24}{:>10}{:>16}{:>16}{:>9}\n",
            "Transition", "Count", "Excl cycles", "Incl cycles", "Share"
        ));
        let width = 24 + 10 + 16 + 16 + 9;
        out.push_str(&"-".repeat(width));
        out.push('\n');
        let mut rows: Vec<_> = self
            .snapshot
            .spans
            .iter()
            .filter(|r| r.count > 0 || r.exclusive_cycles > 0)
            .collect();
        rows.sort_by(|a, b| {
            b.exclusive_cycles
                .cmp(&a.exclusive_cycles)
                .then_with(|| a.transition.cmp(b.transition))
        });
        for r in rows {
            out.push_str(&format!(
                "{:<24}{:>10}{:>16}{:>16}{:>8.2}%\n",
                r.transition, r.count, r.exclusive_cycles, r.inclusive_cycles, r.share_pct
            ));
        }
        if self.snapshot.unattributed_cycles > 0 {
            out.push_str(&format!(
                "{:<24}{:>10}{:>16}\n",
                "(unattributed)", "", self.snapshot.unattributed_cycles
            ));
        }
        out.push_str(&"-".repeat(width));
        out.push('\n');
        out.push_str(&format!(
            "{:<24}{:>10}{:>16}  = total busy cycles (conservation exact)\n",
            "total", "", self.snapshot.total_cycles
        ));
        if !self.snapshot.counters.is_empty() {
            out.push('\n');
            for c in &self.snapshot.counters {
                out.push_str(&format!("{:<32}{:>16}\n", c.name, c.value));
            }
        }
        if !self.snapshot.histograms.is_empty() {
            out.push('\n');
            out.push_str(&hvx_obs::render_histogram_summary(
                &self.snapshot.histograms,
            ));
        }
        out
    }
}

/// Renders a batch of reports as `hvx-repro profile` prints them.
pub fn render_profiles(reports: &[ProfileReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&r.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for sc in ProfileScenario::default_set() {
            assert_eq!(ProfileScenario::parse(&sc.name()).unwrap(), sc);
        }
        let sc = ProfileScenario::parse("mysql-kvm-arm-vhe").unwrap();
        assert_eq!(sc.kind, HvKind::KvmArmVhe);
        assert_eq!(sc.workload, Workload::Mysql);
        assert!(matches!(
            ProfileScenario::parse("netperf-riscv"),
            Err(Error::UnknownScenario { .. })
        ));
        assert!(matches!(
            ProfileScenario::parse("doom-kvm-arm"),
            Err(Error::UnknownWorkload { .. })
        ));
        assert!(matches!(
            ProfileScenario::parse("kvm-arm"),
            Err(Error::UnknownScenario { .. })
        ));
    }

    #[test]
    fn default_set_is_the_measured_columns() {
        let set = ProfileScenario::default_set();
        assert_eq!(set.len(), 4);
        assert_eq!(set[0].name(), "netperf-kvm-arm");
        assert_eq!(set[3].name(), "netperf-xen-x86");
    }

    #[test]
    fn profile_is_conservation_clean_and_non_empty() {
        for sc in ProfileScenario::default_set() {
            let r = run_profile(sc).unwrap();
            assert_eq!(
                r.snapshot.accounted_cycles(),
                r.snapshot.total_cycles,
                "{} leaks cycles",
                r.scenario
            );
            assert!(r.snapshot.total_cycles > 0, "{} did no work", r.scenario);
            let attributed: u64 = r.snapshot.spans.iter().map(|s| s.exclusive_cycles).sum();
            assert!(attributed > 0, "{} attributed nothing", r.scenario);
            assert!(!r.folded.is_empty());
            let rendered = r.render();
            assert!(rendered.contains("conservation exact"));
        }
    }

    #[test]
    fn zero_jobs_is_an_error_not_a_panic() {
        let set = ProfileScenario::default_set();
        assert!(matches!(
            run_profiles(&set, 0),
            Err(Error::InvalidJobs { jobs: 0 })
        ));
    }

    #[test]
    fn parallel_profiles_match_serial_byte_for_byte() {
        let set = ProfileScenario::default_set();
        let serial = run_profiles(&set, 1).unwrap();
        let parallel = run_profiles(&set, 4).unwrap();
        assert_eq!(render_profiles(&serial), render_profiles(&parallel));
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.folded, p.folded, "{} folded diverged", s.scenario);
        }
    }

    #[test]
    fn fault_plan_shows_recovery_spans_and_conserves() {
        use hvx_engine::FaultPoint;
        let plan = FaultPlan::new(11)
            .with_rate(FaultPoint::WireDrop, 0.2)
            .with_rate(FaultPoint::GrantCopyFail, 0.2);
        let set = ProfileScenario::default_set();
        let reports = run_profiles_with(&set, 2, Some(&plan)).unwrap();
        for r in &reports {
            // The conservation check inside run_profile already passed;
            // double-check through the snapshot arithmetic.
            assert_eq!(r.snapshot.accounted_cycles(), r.snapshot.total_cycles);
        }
        let any_retransmit = reports.iter().any(|r| {
            r.snapshot
                .spans
                .iter()
                .any(|s| s.transition == "tcp_retransmit" && s.exclusive_cycles > 0)
        });
        assert!(any_retransmit, "wire loss must surface as retransmit spans");
        let xen = &reports[1];
        assert!(
            xen.snapshot
                .spans
                .iter()
                .any(|s| s.transition == "grant_retry" && s.exclusive_cycles > 0),
            "grant-copy failures must surface as retry spans on Xen"
        );
        // Fault counters folded into the metrics registry.
        assert!(reports.iter().any(|r| r
            .snapshot
            .counters
            .iter()
            .any(|c| c.name.starts_with("fault."))));
    }

    #[test]
    fn no_plan_is_byte_identical_to_plain_profiles() {
        let set = ProfileScenario::default_set();
        let plain = run_profiles(&set, 1).unwrap();
        let with_none = run_profiles_with(&set, 1, None).unwrap();
        assert_eq!(render_profiles(&plain), render_profiles(&with_none));
    }
}
