//! Content-addressed scenario result cache.
//!
//! Every cacheable [`Scenario`] has a stable [`Fingerprint`] over its
//! **full input closure**: the simulator schema version, both pinned
//! cost tables, the paper topology, the ambient fault plan and
//! watchdog, and the scenario's own parameters (workload definition,
//! hypervisor kind, iteration counts). Two runs with identical inputs
//! therefore share a fingerprint, and a warm rerun can serve the stored
//! [`Output`] instead of re-simulating — byte-identical by
//! construction, because artifacts are assembled from the decoded
//! `Output` through the exact same rendering path a live run uses.
//!
//! The on-disk layout is `DIR/v<SCHEMA_VERSION>/<fingerprint>.json`.
//! Entries are written to a unique temp file and renamed into place, so
//! concurrent `--jobs N` workers (or concurrent processes) populate the
//! cache race-free: a rename either installs a complete entry or loses
//! to an identical one.
//!
//! Bump [`SCHEMA_VERSION`] whenever charging logic, trace labels, or
//! the serialized payload shapes change meaning without changing the
//! hashed inputs. The version is part of both the fingerprint and the
//! directory name, so stale entries are never consulted.
//!
//! ```no_run
//! use hvx_suite::cache::ResultCache;
//! use hvx_suite::runner::{self, ArtifactId, RunnerConfig};
//! use std::sync::Arc;
//!
//! let cfg = RunnerConfig {
//!     cache: Some(Arc::new(ResultCache::open("cache-dir".as_ref())?)),
//!     ..RunnerConfig::default()
//! };
//! let warm = runner::run_artifacts_with(&[ArtifactId::Table3], 1, &cfg)?;
//! # Ok::<(), hvx_core::Error>(())
//! ```

use crate::runner::{Output, RunnerConfig, Scenario};
use crate::{paper, workloads};
use hvx_core::{CostModel, Error};
use hvx_engine::{Fingerprint, FingerprintHasher, Topology};
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the simulator's charging semantics and payload shapes.
///
/// Part of every fingerprint **and** the cache/baseline directory
/// layout: bumping it invalidates all cached entries and turns every
/// baseline divergence into an expected `schema-bump` instead of drift.
pub const SCHEMA_VERSION: u32 = 5;

/// Computes the content fingerprint of one scenario under one runner
/// configuration, or `None` for scenarios that must never be cached
/// (chaos injections and out-of-catalog indices).
pub fn scenario_fingerprint(scenario: Scenario, cfg: &RunnerConfig) -> Option<Fingerprint> {
    let mut h = FingerprintHasher::new();
    h.write_str("hvx-scenario");
    h.write_u32(SCHEMA_VERSION);
    // The pinned charging constants for both platforms: editing any
    // cost table changes every scenario's fingerprint, which the
    // baseline gate classifies as a schema bump rather than drift.
    CostModel::arm().fingerprint_into(&mut h);
    CostModel::x86().fingerprint_into(&mut h);
    h.write_serialize(&Topology::paper_default());
    // Host-level topology of the multi-host executor: every host in a
    // rack runs the per-host topology above, and the inter-host wire
    // latency doubles as the PDES lookahead bound, so changing it
    // re-times every rack cell.
    h.write_str("host-topology");
    h.write_u64(crate::rack::RACK_WIRE);
    match &cfg.fault_plan {
        Some(plan) => plan.fingerprint_into(&mut h),
        None => h.write_str("no_faults"),
    }
    cfg.watchdog.fingerprint_into(&mut h);
    match scenario {
        Scenario::Table2 { iters } => {
            h.write_str("table2");
            h.write_u64(iters as u64);
        }
        Scenario::Table3 => h.write_str("table3"),
        Scenario::Table5 { transactions } => {
            h.write_str("table5");
            h.write_u64(transactions as u64);
        }
        Scenario::Fig4Cell { workload, column } => {
            h.write_str("fig4-cell");
            // The whole workload definition (name, request mix, sector
            // counts), not just its name: growing a mix must miss.
            h.write_serialize(workloads::catalog().get(workload)?);
            h.write_str(&paper::COLUMNS.get(column)?.to_string());
        }
        Scenario::ConsolidationCell {
            column,
            ratio,
            sched,
        } => {
            h.write_str("consolidation-cell");
            h.write_str(&crate::paper::COLUMNS.get(column)?.to_string());
            h.write_u64(u64::from(ratio));
            h.write_str(sched.name());
            h.write_u64(u64::from(crate::consolidation::TRANSACTIONS_PER_VM));
        }
        Scenario::RackCell { hosts, composition } => {
            h.write_str("rack-cell");
            h.write_u64(u64::from(hosts));
            h.write_str(composition.name());
            h.write_u64(u64::from(crate::rack::VMS_PER_HOST));
            h.write_u64(u64::from(crate::rack::ROUNDS));
        }
        Scenario::Ablation(a) => {
            h.write_str("ablation");
            h.write_str(a.cli_name());
        }
        Scenario::Chaos(_) => return None,
    }
    Some(h.finish())
}

/// Computes the content fingerprint of a full
/// [`ScenarioSpec`](hvx_core::ScenarioSpec): the
/// schema version, both pinned cost tables, and every field of the
/// spec itself (hypervisor, topology, scheduler, workload, virq
/// policy, transaction count, fault plan, watchdog — all captured by
/// the spec's canonical serialization).
///
/// This is the dedupe key of the sweep server: two clients submitting
/// byte-different JSON that parses to the same spec share a
/// fingerprint, and a warm submission is answered from the cache
/// without re-running. Distinct from [`scenario_fingerprint`] by the
/// domain tag, so spec entries and scenario entries never collide.
pub fn spec_fingerprint(spec: &hvx_core::ScenarioSpec) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("hvx-spec");
    h.write_u32(SCHEMA_VERSION);
    CostModel::arm().fingerprint_into(&mut h);
    CostModel::x86().fingerprint_into(&mut h);
    h.write_serialize(spec);
    h.finish()
}

/// Encodes an [`Output`] as a `(tag, payload)` pair, or `None` for the
/// uncacheable chaos sentinel.
fn encode_output(output: &Output) -> Option<(&'static str, Value)> {
    Some(match output {
        Output::Table2(t) => ("table2", t.serialize()),
        Output::Table3(t) => ("table3", t.serialize()),
        Output::Table5(t) => ("table5", t.as_ref().serialize()),
        Output::Fig4Cell(c) => ("fig4-cell", c.serialize()),
        Output::Irq(r) => ("irq", r.serialize()),
        Output::Vhe(v) => ("vhe", v.serialize()),
        Output::ZeroCopy(z) => ("zerocopy", z.serialize()),
        Output::Link(l) => ("link", l.serialize()),
        Output::Vapic(v) => ("vapic", v.serialize()),
        Output::Storage(s) => ("storage", s.serialize()),
        Output::Oversub(o) => ("oversub", o.serialize()),
        Output::Consolidation(c) => ("consolidation-cell", c.serialize()),
        Output::Rack(c) => ("rack-cell", c.serialize()),
        Output::FaultRec(f) => ("faultrec", f.serialize()),
        Output::Chaos => return None,
    })
}

/// Rebuilds an [`Output`] from its stored `(tag, payload)` pair.
fn decode_output(tag: &str, payload: &Value) -> Option<Output> {
    Some(match tag {
        "table2" => Output::Table2(Deserialize::deserialize(payload).ok()?),
        "table3" => Output::Table3(Deserialize::deserialize(payload).ok()?),
        "table5" => Output::Table5(Box::new(Deserialize::deserialize(payload).ok()?)),
        "fig4-cell" => Output::Fig4Cell(Deserialize::deserialize(payload).ok()?),
        "irq" => Output::Irq(Deserialize::deserialize(payload).ok()?),
        "vhe" => Output::Vhe(Deserialize::deserialize(payload).ok()?),
        "zerocopy" => Output::ZeroCopy(Deserialize::deserialize(payload).ok()?),
        "link" => Output::Link(Deserialize::deserialize(payload).ok()?),
        "vapic" => Output::Vapic(Deserialize::deserialize(payload).ok()?),
        "storage" => Output::Storage(Deserialize::deserialize(payload).ok()?),
        "oversub" => Output::Oversub(Deserialize::deserialize(payload).ok()?),
        "consolidation-cell" => Output::Consolidation(Deserialize::deserialize(payload).ok()?),
        "rack-cell" => Output::Rack(Deserialize::deserialize(payload).ok()?),
        "faultrec" => Output::FaultRec(Deserialize::deserialize(payload).ok()?),
        _ => return None,
    })
}

/// Hit/miss/store counters of one [`ResultCache`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Cacheable lookups that had to run live.
    pub misses: u64,
    /// Entries written this run.
    pub stores: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cache: {} hits, {} misses, {} stores",
            self.hits, self.misses, self.stores
        )
    }
}

/// A persistent, content-addressed store of scenario results.
///
/// Handles are cheap to share behind an `Arc`; all methods take `&self`
/// and are safe to call from the runner's worker threads.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    tmp_seq: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) the cache rooted at `dir`. Entries
    /// live under a schema-versioned subdirectory, so a schema bump
    /// abandons old entries without touching them.
    ///
    /// # Errors
    ///
    /// [`Error::Baseline`] if the directory cannot be created.
    pub fn open(dir: &Path) -> Result<ResultCache, Error> {
        let dir = dir.join(format!("v{SCHEMA_VERSION}"));
        std::fs::create_dir_all(&dir).map_err(|e| Error::Baseline {
            what: format!("cache directory {}", dir.display()),
            detail: e.to_string(),
        })?;
        Ok(ResultCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The versioned directory entries are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.json", fp.to_hex()))
    }

    /// Looks up the stored result for `scenario` under `cfg`. Counts a
    /// hit or miss; returns `None` for uncacheable scenarios, absent
    /// entries, and entries that fail validation (wrong schema, wrong
    /// fingerprint, undecodable payload — all treated as misses).
    pub fn lookup(&self, scenario: Scenario, cfg: &RunnerConfig) -> Option<Output> {
        let fp = scenario_fingerprint(scenario, cfg)?;
        match self.read_entry(fp) {
            Some(output) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(output)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn read_entry(&self, fp: Fingerprint) -> Option<Output> {
        let text = std::fs::read_to_string(self.entry_path(fp)).ok()?;
        let entry = serde_json::parse_value(&text).ok()?;
        if entry.get("schema")?.as_u64()? != u64::from(SCHEMA_VERSION) {
            return None;
        }
        if entry.get("fingerprint")?.as_str()? != fp.to_hex() {
            return None;
        }
        decode_output(entry.get("kind")?.as_str()?, entry.get("payload")?)
    }

    /// Stores a clean result. Best-effort: I/O failures drop the entry
    /// silently (the next run simply re-simulates). Chaos scenarios and
    /// failed outcomes are never stored.
    pub fn store(&self, scenario: Scenario, cfg: &RunnerConfig, output: &Output) {
        let Some(fp) = scenario_fingerprint(scenario, cfg) else {
            return;
        };
        let Some((tag, payload)) = encode_output(output) else {
            return;
        };
        let entry = Value::Object(vec![
            ("schema".to_string(), Value::U64(u64::from(SCHEMA_VERSION))),
            ("fingerprint".to_string(), Value::Str(fp.to_hex())),
            ("scenario".to_string(), Value::Str(scenario.label())),
            ("kind".to_string(), Value::Str(tag.to_string())),
            ("payload".to_string(), payload),
        ]);
        let Ok(text) = serde_json::to_string_pretty(&entry) else {
            return;
        };
        // Unique temp name per (process, handle, write): concurrent
        // workers never collide, and rename-into-place means readers
        // only ever see complete entries. Content addressing makes the
        // race benign — both writers install identical bytes.
        let tmp = self.dir.join(format!(
            "{}.{}.{}.tmp",
            fp.to_hex(),
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, self.entry_path(fp)).is_ok()
        {
            self.stores.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Looks up a raw entry by hex fingerprint and kind tag — the
    /// server-facing face of the cache, where keys are spec
    /// fingerprints ([`spec_fingerprint`]) rather than [`Scenario`]s.
    /// Returns the stored payload, validated the same way as scenario
    /// entries (schema, fingerprint, and kind must all match; anything
    /// else is a miss).
    pub fn lookup_raw(&self, fp_hex: &str, kind: &str) -> Option<Value> {
        let path = self.dir.join(format!("{fp_hex}.json"));
        let found = (|| {
            let text = std::fs::read_to_string(path).ok()?;
            let entry = serde_json::parse_value(&text).ok()?;
            if entry.get("schema")?.as_u64()? != u64::from(SCHEMA_VERSION) {
                return None;
            }
            if entry.get("fingerprint")?.as_str()? != fp_hex {
                return None;
            }
            if entry.get("kind")?.as_str()? != kind {
                return None;
            }
            Some(entry.get("payload")?.clone())
        })();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a raw entry under a hex fingerprint. Same atomicity and
    /// best-effort semantics as [`ResultCache::store`].
    pub fn store_raw(&self, fp_hex: &str, kind: &str, payload: Value) {
        let entry = Value::Object(vec![
            ("schema".to_string(), Value::U64(u64::from(SCHEMA_VERSION))),
            ("fingerprint".to_string(), Value::Str(fp_hex.to_string())),
            ("kind".to_string(), Value::Str(kind.to_string())),
            ("payload".to_string(), payload),
        ]);
        let Ok(text) = serde_json::to_string_pretty(&entry) else {
            return;
        };
        let tmp = self.dir.join(format!(
            "{fp_hex}.{}.{}.tmp",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        let dst = self.dir.join(format!("{fp_hex}.json"));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, dst).is_ok() {
            self.stores.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Counters accumulated by this handle since [`ResultCache::open`].
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ChaosKind;
    use hvx_engine::{FaultPlan, FaultPoint, Watchdog};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hvx-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprints_are_stable_and_scenario_specific() {
        let cfg = RunnerConfig::default();
        let a = scenario_fingerprint(Scenario::Table3, &cfg).unwrap();
        let b = scenario_fingerprint(Scenario::Table3, &cfg).unwrap();
        assert_eq!(a, b, "same inputs, same fingerprint");
        let c = scenario_fingerprint(Scenario::Table2 { iters: 10 }, &cfg).unwrap();
        assert_ne!(a, c);
        let d = scenario_fingerprint(Scenario::Table2 { iters: 11 }, &cfg).unwrap();
        assert_ne!(c, d, "iteration count is part of the closure");
    }

    #[test]
    fn fingerprint_tracks_every_input_dimension() {
        let base = RunnerConfig::default();
        let cell = Scenario::Fig4Cell {
            workload: 0,
            column: 0,
        };
        let fp = scenario_fingerprint(cell, &base).unwrap();
        // Different column → different fingerprint.
        let other = Scenario::Fig4Cell {
            workload: 0,
            column: 1,
        };
        assert_ne!(fp, scenario_fingerprint(other, &base).unwrap());
        // A fault plan changes the closure.
        let faulted = RunnerConfig {
            fault_plan: Some(FaultPlan::new(7).with_rate(FaultPoint::WireDrop, 0.05)),
            ..RunnerConfig::default()
        };
        assert_ne!(fp, scenario_fingerprint(cell, &faulted).unwrap());
        // So does the seed alone.
        let reseeded = RunnerConfig {
            fault_plan: Some(FaultPlan::new(8).with_rate(FaultPoint::WireDrop, 0.05)),
            ..RunnerConfig::default()
        };
        assert_ne!(
            scenario_fingerprint(cell, &faulted).unwrap(),
            scenario_fingerprint(cell, &reseeded).unwrap()
        );
        // And the watchdog budgets.
        let budgeted = RunnerConfig {
            watchdog: Watchdog {
                cycle_budget: Some(1_000_000),
                livelock_threshold: None,
            },
            ..RunnerConfig::default()
        };
        assert_ne!(fp, scenario_fingerprint(cell, &budgeted).unwrap());
    }

    #[test]
    fn chaos_and_out_of_range_scenarios_are_uncacheable() {
        let cfg = RunnerConfig::default();
        assert!(scenario_fingerprint(Scenario::Chaos(ChaosKind::Panic), &cfg).is_none());
        let bogus = Scenario::Fig4Cell {
            workload: 999,
            column: 0,
        };
        assert!(scenario_fingerprint(bogus, &cfg).is_none());
    }

    #[test]
    fn store_then_lookup_round_trips_every_output_kind() {
        let dir = tmpdir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let cfg = RunnerConfig::default();
        // A cheap scalar payload and a structurally rich one.
        let cell = Scenario::Fig4Cell {
            workload: 0,
            column: 0,
        };
        cache.store(cell, &cfg, &Output::Fig4Cell(Some(1.25)));
        let t3 = crate::table3::Table3::measure().unwrap();
        cache.store(Scenario::Table3, &cfg, &Output::Table3(t3.clone()));

        match cache.lookup(cell, &cfg) {
            Some(Output::Fig4Cell(Some(v))) => assert_eq!(v, 1.25),
            other => panic!("unexpected cache payload: {other:?}"),
        }
        match cache.lookup(Scenario::Table3, &cfg) {
            Some(Output::Table3(got)) => {
                assert_eq!(
                    serde_json::to_string_pretty(&got).unwrap(),
                    serde_json::to_string_pretty(&t3).unwrap(),
                    "decoded payload must serialize byte-identically"
                );
            }
            other => panic!("unexpected cache payload: {other:?}"),
        }
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().stores, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn raw_entries_round_trip_and_validate_kind_and_fingerprint() {
        let dir = tmpdir("raw");
        let cache = ResultCache::open(&dir).unwrap();
        let payload = Value::Object(vec![
            ("report".to_string(), Value::Str("text".into())),
            ("cells".to_string(), Value::Array(vec![])),
        ]);
        cache.store_raw("abc123", "spec-result", payload.clone());
        assert_eq!(cache.lookup_raw("abc123", "spec-result"), Some(payload));
        // Wrong kind and unknown fingerprints are misses, not errors.
        assert!(cache.lookup_raw("abc123", "other-kind").is_none());
        assert!(cache.lookup_raw("def456", "spec-result").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_fingerprints_track_every_spec_field() {
        let spec: hvx_core::ScenarioSpec =
            serde_json::from_str(include_str!("../../../specs/consolidation-8to1.json")).unwrap();
        let a = spec_fingerprint(&spec);
        assert_eq!(a, spec_fingerprint(&spec), "deterministic");
        let mut more_txns = spec.clone();
        more_txns.transactions = Some(more_txns.transactions.unwrap_or(48) + 1);
        assert_ne!(a, spec_fingerprint(&more_txns));
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let dir = tmpdir("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        let cfg = RunnerConfig::default();
        let fp = scenario_fingerprint(Scenario::Table3, &cfg).unwrap();
        std::fs::write(cache.entry_path(fp), "{ not json").unwrap();
        assert!(cache.lookup(Scenario::Table3, &cfg).is_none());
        assert_eq!(cache.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
