//! # hvx-suite — the paper's benchmark suite over the hvx models
//!
//! Reproduces every quantitative artifact of *"ARM Virtualization:
//! Performance and Architectural Implications"* (ISCA 2016):
//!
//! * [`micro`] — the seven Table I microbenchmarks and the Table II
//!   runner ([`micro::Table2`]);
//! * [`table3`] — the KVM ARM hypercall save/restore breakdown,
//!   regenerated from the transition trace;
//! * [`netperf`] — netperf TCP_RR with the Table V latency
//!   decomposition extracted from trace instants;
//! * [`workloads`] / [`fig4`] — the nine Figure 4 application workloads
//!   as operation mixes with emergent overheads;
//! * [`ablations`] — the §V interrupt-distribution ablation, the §V
//!   zero-copy analysis, and the §VI VHE projection;
//! * [`rack`] — the rack sweep: H hosts × N VMs serving TCP_RR traffic
//!   over the engine's sharded conservative-PDES executor, with per-host
//!   Xen-vs-KVM composition as the sweep axis;
//! * [`runner`] — the parallel scenario runner fanning the full artifact
//!   matrix across OS threads with byte-identical output to a serial run;
//! * [`service`] — the sweep-server executor: `hvx-serve`'s domain hooks
//!   wired to the spec runner and the content-addressed result cache;
//! * [`profile`] — workload profiling via the observability layer's span
//!   tracer: conservation-checked Table-3-style breakdowns per scenario;
//! * [`trace`] — causal event tracing: Chrome-trace/Perfetto exports of
//!   traced runs, a trace query/validation pass, and the tracing-overhead
//!   benchmark;
//! * [`paper`] — the published numbers every report compares against.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod bench_grid;
pub mod cache;
pub mod consolidation;
pub mod diff;
pub mod fig4;
pub mod micro;
pub mod netperf;
pub mod paper;
pub mod profile;
pub mod rack;
pub mod runner;
pub mod service;
pub mod spec_run;
pub mod table3;
pub mod trace;
pub mod workloads;
